"""Property tests proving the hot-path rewrites are behaviour-preserving.

The PR-level gate is byte-identity of the full bench matrix; these tests
pin the individual algebraic rewrites (memoized block footprints, DRAM
shift/mask address decomposition, the lean untraced engine loop) against
straightforward reference arithmetic so a regression is localized to one
function instead of "somewhere in the report".
"""

import json
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.bench.runner import build_memsys
from repro.mem.dram import DRAM
from repro.params import BLOCK_SIZE, DRAMParams
from repro.sim.memsys import _blocks_for
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload


def reference_blocks(address: int, nbytes: int) -> tuple[int, ...]:
    """The pre-memoization `_node_blocks` arithmetic, verbatim."""
    first = address - (address % BLOCK_SIZE)
    total = max(1, -(-(address + max(nbytes, 1) - first) // BLOCK_SIZE))
    touched = min(total, 1 + max(0, total - 1).bit_length())
    if touched >= total:
        picks = range(total)
    else:
        step = total / touched
        picks = sorted({int(i * step) for i in range(touched)})
    return tuple(first + p * BLOCK_SIZE for p in picks)


EXTENTS = st.tuples(
    st.integers(min_value=0, max_value=1 << 40),
    st.integers(min_value=0, max_value=1 << 16),
)


class TestBlocksFor:
    @settings(max_examples=200, deadline=None)
    @given(extent=EXTENTS)
    def test_matches_reference_arithmetic(self, extent):
        address, nbytes = extent
        assert _blocks_for(address, nbytes) == reference_blocks(address, nbytes)

    @settings(max_examples=50, deadline=None)
    @given(extent=EXTENTS)
    def test_memoized_call_is_stable(self, extent):
        address, nbytes = extent
        assert _blocks_for(address, nbytes) is _blocks_for(address, nbytes)


ADDRESSES = st.integers(min_value=0, max_value=1 << 44)


class TestDRAMDecomposition:
    """Shift/mask fast path vs the divmod definition, both geometries."""

    @settings(max_examples=200, deadline=None)
    @given(address=ADDRESSES)
    def test_pow2_geometry_uses_fast_path(self, address):
        dram = DRAM(DRAMParams())
        assert dram._fast_decomp
        p = dram.params
        assert dram.bank_of(address) == (address // BLOCK_SIZE) % p.banks
        assert dram.row_of(address) == address // p.row_bytes

    @settings(max_examples=200, deadline=None)
    @given(address=ADDRESSES)
    def test_non_pow2_geometry_falls_back(self, address):
        dram = DRAM(DRAMParams(banks=12, row_bytes=1536))
        assert not dram._fast_decomp
        p = dram.params
        assert dram.bank_of(address) == (address // BLOCK_SIZE) % p.banks
        assert dram.row_of(address) == address // p.row_bytes

    @settings(max_examples=60, deadline=None)
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=40
        ),
    )
    def test_bank_of_independent_of_decomposition_path(self, addresses):
        """Equal geometry, different code path, same bank mapping.

        A non-pow2 row size disables ``_fast_decomp`` wholesale, so the
        second model maps identical bank counts through the divmod path;
        the bank sequence (what bank timing depends on) must agree.
        """
        fast = DRAM(DRAMParams())
        slow = DRAM(DRAMParams(row_bytes=2048 * 3))
        assert fast._fast_decomp and not slow._fast_decomp
        for address in addresses:
            assert fast.bank_of(address) == slow.bank_of(address)


class TestTracedUntracedEquivalence:
    def test_run_result_to_dict_identical(self):
        """Tracing must not perturb the model (counters aside)."""
        workload = build_workload("scan", scale=0.02)
        results = {}
        for trace in (False, True):
            sim = replace(workload.config.sim_params(), trace=trace)
            memsys = build_memsys("metal", workload, sim=sim)
            results[trace] = simulate(
                memsys, workload.requests, sim, workload.total_index_blocks,
                record_latencies=True,
            )
        off = results[False].to_dict()
        on = dict(results[True].to_dict())
        on.pop("counters", None)  # tracing-only by construction
        assert json.dumps(off, sort_keys=True) == json.dumps(on, sort_keys=True)
