"""Run-pipeline tests: RunSpec hashing, executor semantics, result cache,
serialization round-trips, and serial/parallel/cached byte-identity.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import SYSTEMS, build_memsys
from repro.exec import (
    ExecError,
    Executor,
    ResultStore,
    RunSpec,
    code_version,
    resolve_jobs,
)
from repro.exec.worker import clear_workload_memo, execute_spec
from repro.sim.metrics import RunResult, simulate
from repro.workloads.suite import build_workload

SMALL = 0.02


# --------------------------------------------------------------------- #
# RunSpec
# --------------------------------------------------------------------- #

def test_spec_digest_stable_across_kwarg_order():
    a = RunSpec.make("scan", "metal", scale=SMALL,
                     memsys_kwargs={"tune": False, "batch_walks": 100})
    b = RunSpec.make("scan", "metal", scale=SMALL,
                     memsys_kwargs={"batch_walks": 100, "tune": False})
    assert a == b
    assert a.digest() == b.digest()
    assert a.canonical() == b.canonical()


def test_spec_digest_distinguishes_fields():
    base = RunSpec.make("scan", "metal", scale=SMALL)
    assert base.digest() != RunSpec.make("scan", "xcache", scale=SMALL).digest()
    assert base.digest() != RunSpec.make("scan", "metal", scale=SMALL,
                                         seed=1).digest()
    assert base.digest() != RunSpec.make("scan", "metal", scale=SMALL,
                                         cache_bytes=4096).digest()


def test_spec_is_hashable_and_frozen():
    spec = RunSpec.make("scan", "metal", scale=SMALL)
    assert spec in {spec}
    with pytest.raises(AttributeError):
        spec.system = "stream"


def test_spec_rejects_non_scalar_kwargs():
    with pytest.raises(TypeError):
        RunSpec.make("scan", "metal", memsys_kwargs={"bad": [1, 2]})


def test_code_version_is_hex_and_cached():
    version = code_version()
    assert len(version) == 64
    int(version, 16)
    assert code_version() == version


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs("3") == 3
    assert resolve_jobs("auto") >= 1
    with pytest.raises(ValueError):
        resolve_jobs(0)


# --------------------------------------------------------------------- #
# RunResult round-trip (satellite: from_dict inverse of to_dict)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("kind", SYSTEMS)
def test_runresult_roundtrip_byte_identical(kind):
    workload = build_workload("scan", scale=SMALL)
    memsys = build_memsys(kind, workload)
    result = simulate(
        memsys, workload.requests, memsys.sim, workload.total_index_blocks,
        record_latencies=True,
    )
    first = result.to_dict()
    wire = json.loads(json.dumps(first))
    second = RunResult.from_dict(wire).to_dict()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_runresult_roundtrip_preserves_histograms():
    workload = build_workload("scan", scale=SMALL)
    memsys = build_memsys("metal", workload)
    result = simulate(
        memsys, workload.requests, memsys.sim, workload.total_index_blocks,
        record_latencies=True,
    )
    restored = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored.latency_hist is not None
    assert restored.latency_hist.count == result.latency_hist.count
    assert restored.latency_hist.percentile(99) == result.latency_hist.percentile(99)
    assert restored.depth_hist is not None
    assert restored.depth_hist.max == result.depth_hist.max


# --------------------------------------------------------------------- #
# Engine functional path (satellite: record_latencies honored)
# --------------------------------------------------------------------- #

def test_run_functional_records_latencies():
    workload = build_workload("scan", scale=SMALL)
    memsys = build_memsys("stream", workload)
    result = simulate(
        memsys, workload.requests, memsys.sim, workload.total_index_blocks,
        timed=False, record_latencies=True,
    )
    assert len(result.walk_latencies) == len(workload.requests)
    assert result.latency_hist is not None
    assert result.latency_hist.count == len(workload.requests)


def test_run_functional_skips_latencies_by_default():
    workload = build_workload("scan", scale=SMALL)
    memsys = build_memsys("stream", workload)
    result = simulate(
        memsys, workload.requests, memsys.sim, workload.total_index_blocks,
        timed=False,
    )
    assert result.walk_latencies == []


# --------------------------------------------------------------------- #
# Executor: dedup, failure capture, parallel equivalence
# --------------------------------------------------------------------- #

def test_executor_dedups_within_and_across_batches():
    spec = RunSpec.make("scan", "stream", scale=SMALL)
    with Executor(jobs=1) as ex:
        first = ex.run([spec, spec])
        assert ex.stats.requested == 2
        assert ex.stats.computed == 1
        assert ex.stats.deduped == 1
        second = ex.run([spec])
        assert ex.stats.computed == 1  # memo, not recomputed
    assert first[0].payload == second[0].payload


def test_executor_captures_failures_without_killing_batch():
    good = RunSpec.make("scan", "stream", scale=SMALL)
    bad = RunSpec.make("scan", "no_such_system", scale=SMALL)
    with Executor(jobs=1) as ex:
        ok, failed = ex.run([good, bad])
    assert ok.ok and ok.require().num_walks > 0
    assert not failed.ok
    assert "no_such_system" in failed.error
    with pytest.raises(ExecError) as err:
        failed.require()
    assert "no_such_system" in str(err.value)
    assert ex.stats.failed == 1


def test_parallel_jobs_byte_identical_to_serial():
    specs = [
        RunSpec.make("scan", kind, scale=SMALL)
        for kind in ("stream", "address", "xcache", "metal")
    ]
    with Executor(jobs=1) as serial:
        serial_payloads = [o.payload for o in serial.run(specs)]
    clear_workload_memo()
    with Executor(jobs=4) as parallel:
        parallel_payloads = [o.payload for o in parallel.run(specs)]
    assert json.dumps(serial_payloads, sort_keys=True) == \
        json.dumps(parallel_payloads, sort_keys=True)


def test_fresh_builds_are_deterministic_per_system():
    """Two from-scratch builds + serial runs are byte-identical."""
    for kind in SYSTEMS:
        spec = RunSpec.make("sets", kind, scale=SMALL)
        clear_workload_memo()
        first = execute_spec(spec)
        clear_workload_memo()
        second = execute_spec(spec)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True), kind


# --------------------------------------------------------------------- #
# ResultStore
# --------------------------------------------------------------------- #

def test_store_roundtrip_and_warm_hits(tmp_path):
    specs = [
        RunSpec.make("scan", kind, scale=SMALL)
        for kind in ("stream", "metal")
    ]
    store = ResultStore(root=tmp_path)
    with Executor(jobs=1, store=store) as cold:
        cold_payloads = [o.payload for o in cold.run(specs)]
        assert cold.stats.computed == 2
    with Executor(jobs=1, store=ResultStore(root=tmp_path)) as warm:
        outcomes = warm.run(specs)
        assert warm.stats.computed == 0
        assert warm.stats.cache_hits == 2
        assert all(o.cached for o in outcomes)
    assert json.dumps(cold_payloads, sort_keys=True) == \
        json.dumps([o.payload for o in outcomes], sort_keys=True)


def test_store_miss_on_corruption(tmp_path):
    spec = RunSpec.make("scan", "stream", scale=SMALL)
    store = ResultStore(root=tmp_path)
    with Executor(jobs=1, store=store) as ex:
        ex.run([spec])
    path = store.path_for(spec)
    path.write_text("{not json")
    assert ResultStore(root=tmp_path).get(spec) is None


def test_store_invalidates_on_version_change(tmp_path):
    spec = RunSpec.make("scan", "stream", scale=SMALL)
    old = ResultStore(root=tmp_path, version="0" * 64)
    old.put(spec, {"op": "run", "result": {}, "extras": {}})
    current = ResultStore(root=tmp_path)
    assert current.get(spec) is None
    current.prune_stale()
    assert not old.path_for(spec).exists()


# --------------------------------------------------------------------- #
# FaultPlan digests & the exec store (satellite: faulted-spec caching)
# --------------------------------------------------------------------- #

def test_fault_plan_digest_stable():
    from repro.faults import FaultPlan

    plan = FaultPlan.uniform(0.05, seed=7)
    assert plan.digest() == FaultPlan.uniform(0.05, seed=7).digest()
    # A plan rebuilt from its own canonical items is the same plan.
    assert FaultPlan(**dict(plan.items())).digest() == plan.digest()
    assert plan.digest() != FaultPlan.uniform(0.05, seed=8).digest()
    assert plan.digest() != FaultPlan.uniform(0.06, seed=7).digest()


def test_faulted_and_unfaulted_specs_never_collide():
    from repro.faults import FaultPlan

    base = RunSpec.make("scan", "metal", scale=SMALL)
    faulted = RunSpec.make("scan", "metal", scale=SMALL,
                           faults=FaultPlan.uniform(0.05))
    assert base.digest() != faulted.digest()
    assert base.faults == ()
    assert faulted.faults != ()
    # Differing plans map to differing digests; identical plans collapse.
    other = RunSpec.make("scan", "metal", scale=SMALL,
                         faults=FaultPlan.uniform(0.1))
    assert other.digest() != faulted.digest()
    again = RunSpec.make("scan", "metal", scale=SMALL,
                         faults=FaultPlan.uniform(0.05))
    assert again == faulted and again.digest() == faulted.digest()
    # An empty plan *is* "no faults": it must share the unfaulted digest
    # so pre-fault-layer cache entries stay valid.
    empty = RunSpec.make("scan", "metal", scale=SMALL, faults=())
    assert empty == base and empty.digest() == base.digest()


def test_fault_plan_roundtrips_through_spec():
    from repro.faults import FaultPlan

    plan = FaultPlan.uniform(0.05, seed=3, walker_retry_limit=2)
    spec = RunSpec.make("scan", "metal", scale=SMALL, faults=plan)
    rebuilt = spec.fault_plan()
    assert rebuilt == plan
    assert RunSpec.make("scan", "metal", scale=SMALL).fault_plan() is None


def test_faulted_spec_roundtrips_store_byte_identically(tmp_path):
    from repro.faults import FaultPlan

    spec = RunSpec.make("scan", "metal", scale=SMALL,
                        faults=FaultPlan.uniform(0.05, seed=2))
    store = ResultStore(root=tmp_path)
    with Executor(jobs=1, store=store) as cold:
        (outcome,) = cold.run([spec])
        assert cold.stats.computed == 1
        cold_payload = outcome.payload
    assert cold_payload["result"]["faults"]["faults_injected"] > 0
    with Executor(jobs=1, store=ResultStore(root=tmp_path)) as warm:
        (cached,) = warm.run([spec])
        assert warm.stats.cache_hits == 1 and warm.stats.computed == 0
        assert cached.cached
    assert json.dumps(cold_payload, sort_keys=True) == \
        json.dumps(cached.payload, sort_keys=True)
    # The cached ledger revives into a RunResult with its faults intact.
    revived = RunResult.from_dict(cached.payload["result"])
    assert revived.faults == cold_payload["result"]["faults"]


# --------------------------------------------------------------------- #
# Report integration (satellite: cache summary line, --no-cache)
# --------------------------------------------------------------------- #

def test_report_prints_pipeline_summary(capsys, tmp_path):
    from repro.bench.report import main as report_main

    out = tmp_path / "cache"
    assert report_main(["--scale", "0.01", "--fast",
                        "--cache-dir", str(out)]) == 0
    text = capsys.readouterr().out
    line = next(l for l in text.splitlines() if l.startswith("Run pipeline:"))
    assert "cells requested" in line and "served from cache" in line
    assert "0 served from cache" in line

    # Warm re-run: every cell comes from the store, zero simulations.
    assert report_main(["--scale", "0.01", "--fast",
                        "--cache-dir", str(out)]) == 0
    warm = capsys.readouterr().out
    line = next(l for l in warm.splitlines() if l.startswith("Run pipeline:"))
    assert "0 computed" in line

    # --no-cache forces recomputation even with a warm store present.
    assert report_main(["--scale", "0.01", "--fast", "--no-cache"]) == 0
    nocache = capsys.readouterr().out
    line = next(l for l in nocache.splitlines()
                if l.startswith("Run pipeline:"))
    assert "0 served from cache" in line
    assert "0 computed" not in line
