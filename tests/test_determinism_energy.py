"""Determinism and conservation invariants across the simulator."""

import pytest

from repro.bench.runner import build_memsys, run_workload
from repro.params import DRAMParams
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload

SCALE = 0.05


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["stream", "address", "xcache", "metal_ix", "metal"])
    def test_identical_reruns(self, kind):
        """Same workload + system twice -> bit-identical metrics."""
        runs = []
        for _ in range(2):
            workload = build_workload("scan", scale=SCALE, seed=4)
            runs.append(run_workload(workload, kind))
        a, b = runs
        assert a.makespan == b.makespan
        assert a.dram.accesses == b.dram.accesses
        assert a.dram.energy_fj == b.dram.energy_fj
        assert a.index_dram_accesses == b.index_dram_accesses
        if a.cache_stats:
            assert a.cache_stats.hits == b.cache_stats.hits

    def test_different_seeds_differ(self):
        a = run_workload(build_workload("scan", scale=SCALE, seed=1), "metal")
        b = run_workload(build_workload("scan", scale=SCALE, seed=2), "metal")
        assert a.makespan != b.makespan


class TestEnergyAccounting:
    def test_dram_energy_decomposes(self):
        """energy = row_hits * e_hit + row_misses * e_miss, exactly."""
        workload = build_workload("scan", scale=SCALE)
        memsys = build_memsys("stream", workload)
        run = simulate(memsys, workload.requests, memsys.sim,
                       workload.total_index_blocks)
        p = DRAMParams()
        expected = run.dram.row_hits * p.e_row_hit + run.dram.row_misses * p.e_access
        assert run.dram.energy_fj == pytest.approx(expected)

    def test_bytes_match_accesses(self):
        workload = build_workload("scan", scale=SCALE)
        memsys = build_memsys("stream", workload)
        run = simulate(memsys, workload.requests, memsys.sim,
                       workload.total_index_blocks)
        assert run.dram.bytes_moved == run.dram.accesses * 64

    def test_row_events_partition_accesses(self):
        workload = build_workload("join", scale=SCALE)
        memsys = build_memsys("metal", workload)
        run = simulate(memsys, workload.requests, memsys.sim,
                       workload.total_index_blocks)
        assert run.dram.row_hits + run.dram.row_misses == run.dram.accesses


class TestCacheAccounting:
    @pytest.mark.parametrize("kind", ["address", "xcache", "metal_ix", "metal"])
    def test_hits_plus_misses(self, kind):
        workload = build_workload("scan", scale=SCALE)
        run = run_workload(workload, kind)
        stats = run.cache_stats
        assert stats.hits + stats.misses == stats.accesses

    def test_short_circuits_bounded_by_hits(self):
        workload = build_workload("scan", scale=SCALE)
        run = run_workload(workload, "metal_ix")
        assert run.short_circuited <= run.cache_stats.hits
        assert run.full_hits <= run.short_circuited


class TestWalkAccounting:
    @pytest.mark.parametrize("kind", ["stream", "metal", "xcache"])
    def test_index_traffic_at_most_baseline(self, kind):
        workload = build_workload("scan", scale=SCALE)
        run = run_workload(workload, kind)
        assert run.index_dram_accesses <= run.baseline_index_accesses

    def test_walk_cycles_bound_makespan(self):
        workload = build_workload("scan", scale=SCALE)
        run = run_workload(workload, "metal")
        # With C contexts, the serialized walk cycles can exceed the
        # makespan by at most the context count (perfect overlap).
        contexts = workload.config.sim_params().tiles * \
            workload.config.sim_params().tile.walker_contexts
        assert run.makespan <= run.total_walk_cycles + 1
        assert run.total_walk_cycles <= run.makespan * contexts
