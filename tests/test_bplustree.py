"""Tests for the B+tree, including property-based structural invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.bplustree import BPlusTree


class TestBulkLoad:
    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert tree.height == 1

    def test_single(self):
        tree = BPlusTree.bulk_load([(5, "v")])
        assert tree.get(5) == "v"
        assert tree.height == 1

    def test_unsorted_input(self):
        tree = BPlusTree.bulk_load([(3, "c"), (1, "a"), (2, "b")], fanout=2)
        assert [k for k, _ in tree.items()] == [1, 2, 3]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(1, "a"), (1, "b")])

    def test_all_keys_retrievable(self):
        items = [(k, k * 10) for k in range(500)]
        tree = BPlusTree.bulk_load(items, fanout=5)
        for k, v in items:
            assert tree.get(k) == v

    def test_absent_key(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(0, 100, 2)], fanout=4)
        assert tree.get(31) is None
        assert tree.get(31, "dflt") == "dflt"
        assert 30 in tree and 31 not in tree

    def test_depth_grows_with_size(self):
        small = BPlusTree.bulk_load([(k, k) for k in range(10)], fanout=3)
        large = BPlusTree.bulk_load([(k, k) for k in range(1000)], fanout=3)
        assert large.height > small.height

    def test_fanout_for_depth(self):
        fanout = BPlusTree.fanout_for_depth(100_000, 10)
        tree = BPlusTree.bulk_load([(k, k) for k in range(5_000)], fanout=fanout)
        assert 6 <= tree.height  # deep-ish even at reduced key count

    def test_invariants_after_bulk_load(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(777)], fanout=4)
        tree.check_invariants()


class TestWalk:
    def test_walk_reaches_leaf(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(200)], fanout=4)
        path = tree.walk(137)
        assert path[0] is tree.root
        assert path[-1].is_leaf
        assert 137 in path[-1].keys

    def test_walk_levels_increase(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(200)], fanout=4)
        path = tree.walk(50)
        assert [n.level for n in path] == list(range(len(path)))

    def test_walk_covers_key(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(200)], fanout=4)
        for node in tree.walk(123)[1:]:
            assert node.covers(123)

    def test_walk_from_midpath(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(500)], fanout=4)
        full = tree.walk(321)
        mid = full[2]
        partial = tree.walk_from(mid, 321)
        assert partial == full[2:]

    def test_walk_from_noncovering_rejected(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(500)], fanout=4)
        leaf_of_0 = tree.walk(0)[-1]
        with pytest.raises(ValueError):
            tree.walk_from(leaf_of_0, 499)


class TestRangeScan:
    def test_inclusive_bounds(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(100)], fanout=4)
        assert [k for k, _ in tree.range_scan(10, 20)] == list(range(10, 21))

    def test_empty_range(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(100)], fanout=4)
        assert list(tree.range_scan(50, 40)) == []

    def test_sparse_keys(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(0, 100, 7)], fanout=4)
        assert [k for k, _ in tree.range_scan(10, 30)] == [14, 21, 28]

    def test_full_scan_equals_items(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(321)], fanout=5)
        assert list(tree.range_scan(0, 320)) == list(tree.items())


class TestInsert:
    def test_insert_into_empty(self):
        tree = BPlusTree(fanout=4)
        tree.insert(1, "a")
        assert tree.get(1) == "a"
        assert len(tree) == 1

    def test_insert_overwrites(self):
        tree = BPlusTree(fanout=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_insert_many_sorted_order(self):
        tree = BPlusTree(fanout=4)
        for k in range(200):
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == list(range(200))
        tree.check_invariants()

    def test_insert_reverse_order(self):
        tree = BPlusTree(fanout=3)
        for k in reversed(range(150)):
            tree.insert(k, k)
        tree.check_invariants()
        assert tree.get(0) == 0 and tree.get(149) == 149

    def test_insert_into_bulk_loaded(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(0, 100, 2)], fanout=4)
        for k in range(1, 100, 2):
            tree.insert(k, -k)
        tree.check_invariants()
        assert len(tree) == 100
        assert tree.get(31) == -31

    def test_addresses_assigned_to_new_nodes(self):
        tree = BPlusTree(fanout=3)
        for k in range(100):
            tree.insert(k, k)
        for node in tree.nodes():
            assert node.address > 0
            assert node.nbytes > 0

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=1)


class TestGeometry:
    def test_nodes_bfs_order(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(100)], fanout=4)
        levels = [n.level for n in tree.nodes()]
        assert levels == sorted(levels)

    def test_level_nodes_partition(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(300)], fanout=4)
        total = sum(len(tree.level_nodes(lvl)) for lvl in range(tree.height))
        assert total == sum(1 for _ in tree.nodes())

    def test_total_blocks_positive(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(300)], fanout=4)
        assert tree.total_blocks() > 0


@settings(max_examples=50, deadline=None)
@given(keys=st.sets(st.integers(0, 10_000), min_size=1, max_size=300),
       fanout=st.integers(3, 9))
def test_property_bulk_load_invariants(keys, fanout):
    tree = BPlusTree.bulk_load([(k, k) for k in keys], fanout=fanout)
    tree.check_invariants()
    assert sorted(keys) == [k for k, _ in tree.items()]


@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(0, 2_000), min_size=1, max_size=200),
       fanout=st.integers(3, 6))
def test_property_insert_invariants(keys, fanout):
    tree = BPlusTree(fanout=fanout)
    for k in keys:
        tree.insert(k, k * 2)
    tree.check_invariants()
    for k in keys:
        assert tree.get(k) == k * 2


@settings(max_examples=40, deadline=None)
@given(keys=st.sets(st.integers(0, 5_000), min_size=2, max_size=200),
       fanout=st.integers(3, 7))
def test_property_walk_finds_every_key(keys, fanout):
    tree = BPlusTree.bulk_load([(k, k) for k in keys], fanout=fanout)
    for k in keys:
        leaf = tree.walk(k)[-1]
        assert k in leaf.keys


@settings(max_examples=30, deadline=None)
@given(keys=st.sets(st.integers(0, 1_000), min_size=5, max_size=150))
def test_property_range_scan_matches_filter(keys):
    tree = BPlusTree.bulk_load([(k, k) for k in keys], fanout=4)
    lo, hi = 100, 600
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert [k for k, _ in tree.range_scan(lo, hi)] == expected
