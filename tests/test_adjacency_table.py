"""Tests for the adjacency-list graph and the relational record table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.adjacency import AdjacencyList
from repro.indexes.table import RecordTable


EDGES = [(0, 1), (0, 2), (1, 2), (2, 0), (3, 1)]


class TestAdjacency:
    def test_neighbors(self):
        g = AdjacencyList(EDGES)
        assert g.neighbors(0) == (1, 2)
        assert g.neighbors(3) == (1,)
        assert g.neighbors(5) == ()

    def test_degree(self):
        g = AdjacencyList(EDGES)
        assert g.degree(0) == 2
        assert g.degree(4) == 0

    def test_counts(self):
        g = AdjacencyList(EDGES)
        assert g.num_vertices == 4
        assert g.num_edges == 5

    def test_explicit_vertex_count(self):
        g = AdjacencyList(EDGES, num_vertices=10)
        assert g.num_vertices == 10

    def test_vertex_overflow_rejected(self):
        with pytest.raises(ValueError):
            AdjacencyList([(0, 5)], num_vertices=3)

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError):
            AdjacencyList([(-1, 0)])

    def test_walk_reaches_vertex_record(self):
        edges = [(v, (v + 1) % 50) for v in range(50)]
        g = AdjacencyList(edges, fanout=3)
        leaf = g.walk(25)[-1]
        assert leaf.is_leaf
        assert 25 in leaf.keys

    def test_edge_lists_in_data_region(self):
        from repro.mem.layout import Allocator

        g = AdjacencyList(EDGES)
        assert g.record(0).address >= Allocator.DATA_BASE

    def test_pagerank_sums_to_one(self):
        edges = [(v, (v * 3 + 1) % 30) for v in range(30)]
        g = AdjacencyList(edges)
        ranks = g.pagerank_push(iterations=30)
        assert sum(ranks) == pytest.approx(1.0, abs=1e-6)
        assert all(r > 0 for r in ranks)

    def test_pagerank_hub_ranks_higher(self):
        # Everyone points at vertex 0.
        edges = [(v, 0) for v in range(1, 20)]
        g = AdjacencyList(edges, num_vertices=20)
        ranks = g.pagerank_push(iterations=30)
        assert ranks[0] == max(ranks)

    def test_pagerank_empty_graph(self):
        g = AdjacencyList([], num_vertices=0)
        assert g.pagerank_push() == []


def make_table(n=100, fanout=4):
    return RecordTable.from_records(
        ("id", "value"),
        "id",
        ({"id": k, "value": k * 3} for k in range(n)),
        fanout=fanout,
    )


class TestRecordTable:
    def test_get(self):
        t = make_table()
        assert t.get(42) == {"id": 42, "value": 126}
        assert t.get(1000) is None

    def test_key_column_validated(self):
        with pytest.raises(ValueError):
            RecordTable(("a", "b"), "missing")

    def test_missing_columns_rejected(self):
        t = RecordTable(("id", "value"), "id")
        with pytest.raises(ValueError):
            t.insert({"id": 1})

    def test_insert(self):
        t = RecordTable(("id", "value"), "id")
        t.insert({"id": 7, "value": 1})
        assert len(t) == 1
        assert t.get(7)["value"] == 1

    def test_select_range(self):
        t = make_table()
        got = [r["id"] for r in t.select_range(10, 14)]
        assert got == [10, 11, 12, 13, 14]

    def test_where_predicate(self):
        t = make_table(20)
        evens = list(t.where(lambda r: r["value"] % 2 == 0))
        assert all(r["value"] % 2 == 0 for r in evens)
        # value = 3k is even exactly when k is even.
        assert len(evens) == 10

    def test_join(self):
        left = RecordTable.from_records(
            ("id", "fk"), "id", ({"id": i, "fk": i * 2} for i in range(10))
        )
        right = make_table(30)
        joined = list(left.join(right, "fk"))
        assert len(joined) == 10
        for l, r in joined:
            assert l["fk"] == r["id"]

    def test_join_missing_keys_skipped(self):
        left = RecordTable.from_records(
            ("id", "fk"), "id", [{"id": 0, "fk": 999}]
        )
        right = make_table(10)
        assert list(left.join(right, "fk")) == []

    def test_scan_order(self):
        t = make_table(50)
        assert [r["id"] for r in t.scan()] == list(range(50))

    def test_record_address_in_data_region(self):
        from repro.mem.layout import Allocator

        t = make_table(10)
        assert t.record_address(3) >= Allocator.DATA_BASE
        assert t.record_address(99) is None

    def test_walk_surface(self):
        t = make_table(200, fanout=3)
        path = t.walk(150)
        assert path[-1].is_leaf
        assert t.height == len(path)


@settings(max_examples=25, deadline=None)
@given(edges=st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=1, max_size=100,
))
def test_property_adjacency_matches_dict(edges):
    g = AdjacencyList(edges)
    expected: dict[int, list[int]] = {}
    for s, d in edges:
        expected.setdefault(s, []).append(d)
    for v, neighbors in expected.items():
        assert g.neighbors(v) == tuple(sorted(neighbors))
