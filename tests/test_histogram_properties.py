"""Property-based invariants of the HDR-style streaming histogram.

The histogram's contract, for any input sequence and precision:

* percentiles are monotone: p50 <= p90 <= p99 <= max,
* bucket counts sum to the number of observations,
* every recorded value's bucket upper bound over-approximates it by at
  most the configured relative error (2^-significant_bits),
* merge is equivalent to recording the concatenation.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.histogram import Histogram

VALUES = st.lists(st.integers(0, 2**40), min_size=1, max_size=200)
SIG_BITS = st.integers(0, 8)


@settings(max_examples=200, deadline=None)
@given(values=VALUES, sb=SIG_BITS)
def test_percentiles_monotone(values, sb):
    hist = Histogram.from_values(values, significant_bits=sb)
    ps = [hist.percentile(p) for p in (0, 25, 50, 90, 99, 100)]
    assert ps == sorted(ps)
    assert ps[-1] == hist.max == max(values)
    assert hist.percentile(0) >= hist.min or hist.percentile(0) >= 0


@settings(max_examples=200, deadline=None)
@given(values=VALUES, sb=SIG_BITS)
def test_bucket_counts_sum_to_observations(values, sb):
    hist = Histogram.from_values(values, significant_bits=sb)
    buckets = list(hist.buckets())
    assert hist.count == len(values)
    # buckets() yields cumulative counts; the last equals the total.
    assert buckets[-1][1] == len(values)
    bounds = [bound for bound, _ in buckets]
    assert bounds == sorted(bounds)


@settings(max_examples=300, deadline=None)
@given(value=st.integers(0, 2**62), sb=SIG_BITS)
def test_bucket_bound_within_relative_error(value, sb):
    hist = Histogram(significant_bits=sb)
    bound = hist.bucket_bound(hist.bucket_index(value))
    assert bound >= value
    assert bound - value <= value * hist.max_relative_error


@settings(max_examples=200, deadline=None)
@given(value=st.integers(0, 2**62), sb=SIG_BITS)
def test_bucket_index_is_monotone_nondecreasing(value, sb):
    hist = Histogram(significant_bits=sb)
    assert hist.bucket_index(value + 1) >= hist.bucket_index(value)


@settings(max_examples=100, deadline=None)
@given(left=VALUES, right=VALUES, sb=SIG_BITS)
def test_merge_equals_concatenation(left, right, sb):
    merged = Histogram.from_values(left, significant_bits=sb)
    merged.merge(Histogram.from_values(right, significant_bits=sb))
    direct = Histogram.from_values(left + right, significant_bits=sb)
    assert merged.count == direct.count
    assert merged.total == direct.total
    assert merged.min == direct.min
    assert merged.max == direct.max
    assert list(merged.buckets()) == list(direct.buckets())
    for p in (50, 90, 99):
        assert merged.percentile(p) == direct.percentile(p)


@settings(max_examples=100, deadline=None)
@given(values=VALUES, sb=SIG_BITS)
def test_percentile_within_error_of_exact(values, sb):
    """The reported percentile over-approximates the exact one by at most
    the relative error bound (and never exceeds the recorded max)."""
    hist = Histogram.from_values(values, significant_bits=sb)
    ordered = sorted(values)
    for p in (50, 90, 99):
        exact = ordered[max(0, -(-len(ordered) * p // 100) - 1)]
        reported = hist.percentile(p)
        assert reported >= exact
        assert reported - exact <= exact * hist.max_relative_error
        assert reported <= hist.max


@settings(max_examples=100, deadline=None)
@given(values=VALUES)
def test_mean_and_total_exact(values):
    # min/max/mean/total are tracked exactly, independent of bucketing.
    hist = Histogram.from_values(values, significant_bits=2)
    assert hist.total == sum(values)
    assert hist.mean == sum(values) / len(values)
    assert hist.min == min(values)
    assert hist.max == max(values)


def test_empty_histogram_defaults():
    hist = Histogram()
    assert hist.count == 0
    assert hist.percentile(99) == 0
    assert hist.mean == 0.0
    assert list(hist.buckets()) == []
    assert hist.to_dict()["count"] == 0


def test_rejects_invalid_inputs():
    import pytest

    with pytest.raises(ValueError):
        Histogram(significant_bits=17)
    with pytest.raises(ValueError):
        Histogram().record(-1)
    with pytest.raises(ValueError):
        Histogram().percentile(101)
    with pytest.raises(ValueError):
        Histogram(2).merge(Histogram(3))
