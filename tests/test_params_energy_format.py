"""Tests for params, the energy model, and report formatting."""

import pytest

from repro.bench.format import geomean, render_bars, render_table
from repro.core.energy_model import (
    CacheEnergyModel,
    TAG_MATCH_TABLE,
)
from repro.params import (
    ADDRESS_CACHE_ENERGY_FJ,
    BLOCK_SIZE,
    CacheParams,
    DRAMParams,
    IXCACHE_ENERGY_FJ,
    SimParams,
    XCACHE_ENERGY_FJ,
)


class TestParams:
    def test_cache_entries(self):
        assert CacheParams(capacity_bytes=64 * 1024).entries == 1024

    def test_cache_sets(self):
        params = CacheParams(capacity_bytes=64 * 1024, ways=16)
        assert params.sets == 64

    def test_block_size_is_64(self):
        # "All cache blocks are set to 64 bytes to ensure a fair comparison"
        assert BLOCK_SIZE == 64
        assert CacheParams().block_bytes == 64

    def test_paper_energy_constants(self):
        # Section 5.7: 9000 fJ vs 7000 fJ per access.
        assert IXCACHE_ENERGY_FJ == 9_000.0
        assert ADDRESS_CACHE_ENERGY_FJ == XCACHE_ENERGY_FJ == 7_000.0

    def test_dram_dominates_sram(self):
        dram = DRAMParams()
        assert dram.e_access > 50 * IXCACHE_ENERGY_FJ
        assert dram.t_access > SimParams().t_ix_probe

    def test_sim_defaults_consistent(self):
        sim = SimParams()
        # One IX probe per walk must cost less than one per-level address
        # probe chain of even a 1-level walk.
        assert sim.t_ix_probe < sim.t_addr_probe
        assert sim.t_fa_probe > sim.t_addr_probe


class TestEnergyModel:
    def test_known_organizations(self):
        model = CacheEnergyModel()
        assert model.cache_energy("metal", 10) == 90_000.0
        assert model.cache_energy("address", 10) == 70_000.0
        assert model.cache_energy("stream", 1_000) == 0.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            CacheEnergyModel().cache_energy("l3", 1)

    def test_tag_match_table_shape(self):
        assert len(TAG_MATCH_TABLE) == 5
        metal = TAG_MATCH_TABLE[-1]
        assert metal.process_nm == 45
        assert metal.bits == "2x32"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_float_formatting(self):
        out = render_table(["v"], [[0.123456], [123.456], [1.5]])
        assert "0.123" in out
        assert "123" in out
        assert "1.50" in out


class TestRenderBars:
    def test_peak_gets_full_width(self):
        out = render_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_zero_values(self):
        out = render_bars(["a"], [0.0])
        assert "#" not in out


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == 3.0

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == 4.0

    def test_empty(self):
        assert geomean([]) == 0.0
