"""Tests for the discrete-event engine."""

from repro.mem.dram import DRAM
from repro.params import BLOCK_SIZE, DRAMParams, SimParams, TileParams
from repro.sim.engine import Access, Engine, WalkTrace


def trace(*accesses, key=0):
    return WalkTrace(key, list(accesses))


def sim(tiles=2, contexts=2, **dram_kw):
    return SimParams(
        dram=DRAMParams(**dram_kw),
        tile=TileParams(walker_contexts=contexts),
        tiles=tiles,
    )


class TestTimedRun:
    def test_empty(self):
        result = Engine(sim()).run([])
        assert result.makespan == 0
        assert result.num_walks == 0

    def test_single_compute_walk(self):
        engine = Engine(sim())
        result = engine.run([trace(Access("compute", cycles=42))])
        assert result.makespan == 42
        assert result.avg_walk_latency == 42

    def test_serial_accesses_within_walk(self):
        engine = Engine(sim(tiles=1, contexts=1))
        result = engine.run([
            trace(Access("compute", cycles=10), Access("sram", cycles=5))
        ])
        assert result.makespan == 15

    def test_walks_on_one_context_serialize(self):
        engine = Engine(sim(tiles=1, contexts=1))
        result = engine.run([
            trace(Access("compute", cycles=10)),
            trace(Access("compute", cycles=10)),
        ])
        assert result.makespan == 20

    def test_walks_across_contexts_overlap(self):
        engine = Engine(sim(tiles=1, contexts=2))
        result = engine.run([
            trace(Access("compute", cycles=10)),
            trace(Access("compute", cycles=10)),
        ])
        assert result.makespan == 10

    def test_dram_latency_applied(self):
        engine = Engine(sim(tiles=1, contexts=1))
        result = engine.run([trace(Access("dram", address=0))])
        assert result.makespan == engine.params.dram.t_access

    def test_bank_contention_bounds_throughput(self):
        # Many independent single-access walks to the same bank.
        engine = Engine(sim(tiles=4, contexts=4, banks=1, t_occupancy=50))
        same_bank = [trace(Access("dram", address=0)) for _ in range(8)]
        result = engine.run(same_bank)
        assert result.makespan >= 7 * 50

    def test_multi_block_access_expanded(self):
        engine = Engine(sim(tiles=1, contexts=1))
        result = engine.run([
            trace(Access("dram", address=0, nbytes=BLOCK_SIZE * 4))
        ])
        assert engine.dram.stats.reads == 4

    def test_latencies_recorded(self):
        engine = Engine(sim(tiles=1, contexts=1))
        result = engine.run(
            [trace(Access("compute", cycles=7)) for _ in range(3)],
            record_latencies=True,
        )
        assert result.walk_latencies == [7, 7, 7]

    def test_mlp_beats_serial(self):
        """Independent DRAM walks overlap; more contexts = faster."""
        walks = [trace(Access("dram", address=i * BLOCK_SIZE)) for i in range(16)]
        serial = Engine(sim(tiles=1, contexts=1)).run(list(walks))
        parallel = Engine(sim(tiles=4, contexts=4)).run(list(walks))
        assert parallel.makespan < serial.makespan


class TestFunctionalRun:
    def test_counts_traffic(self):
        engine = Engine(sim())
        engine.run_functional([trace(Access("dram", address=0))])
        assert engine.dram.stats.reads == 1

    def test_nominal_latency(self):
        engine = Engine(sim(tiles=1, contexts=1))
        result = engine.run_functional([
            trace(Access("dram", address=0), Access("compute", cycles=10))
        ])
        assert result.total_walk_cycles == engine.params.dram.t_access + 10

    def test_makespan_scaled_by_contexts(self):
        walks = [trace(Access("compute", cycles=100)) for _ in range(8)]
        narrow = Engine(sim(tiles=1, contexts=1)).run_functional(list(walks))
        wide = Engine(sim(tiles=4, contexts=2)).run_functional(list(walks))
        assert wide.makespan < narrow.makespan


class TestContexts:
    def test_context_count(self):
        assert Engine(sim(tiles=3, contexts=5)).contexts == 15


class TestCrossbar:
    def test_port_arbitration_serializes(self):
        from repro.sim.noc import Crossbar
        from repro.params import CrossbarParams

        xbar = Crossbar(CrossbarParams(ports=1, t_occupancy=5))
        first = xbar.access(0, 0, 2)
        second = xbar.access(0, 0, 2)
        assert second > first

    def test_distinct_ports_overlap(self):
        from repro.sim.noc import Crossbar
        from repro.params import CrossbarParams

        xbar = Crossbar(CrossbarParams(ports=4, t_occupancy=5))
        a = xbar.access(0, 0, 2)
        b = xbar.access(1, 0, 2)
        assert a == b == 2

    def test_average_wait(self):
        from repro.sim.noc import Crossbar
        from repro.params import CrossbarParams

        xbar = Crossbar(CrossbarParams(ports=1, t_occupancy=10))
        xbar.access(0, 0, 1)
        xbar.access(0, 0, 1)
        assert xbar.average_wait == 5.0

    def test_invalid_ports(self):
        import pytest

        from repro.sim.noc import Crossbar
        from repro.params import CrossbarParams

        with pytest.raises(ValueError):
            Crossbar(CrossbarParams(ports=0))

    def test_engine_contends_probes(self):
        """Many concurrent walks probing one port serialize on the xbar."""
        from repro.params import CrossbarParams, DRAMParams, TileParams

        params = SimParams(
            dram=DRAMParams(),
            tile=TileParams(walker_contexts=8),
            xbar=CrossbarParams(ports=1, t_occupancy=10),
            tiles=2,
        )
        walks = [trace(Access("sram", cycles=2, port=0)) for _ in range(8)]
        contended = Engine(params).run(list(walks))
        free = Engine(sim(tiles=2, contexts=8)).run(
            [trace(Access("sram", cycles=2)) for _ in range(8)]
        )
        assert contended.makespan > free.makespan
