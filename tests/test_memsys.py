"""Tests for the memory-system organizations (the Section 5 contenders)."""

import pytest

from repro.core.descriptors import LevelDescriptor, NodeDescriptor
from repro.indexes.bplustree import BPlusTree
from repro.params import BLOCK_SIZE, CacheParams, SimParams
from repro.sim.memsys import (
    AddressCacheMemSys,
    FAOPTMemSys,
    MetalMemSys,
    NS_STRIDE,
    StreamingMemSys,
    XCacheMemSys,
    make_memsys,
    namespace_fn,
    _node_blocks,
)


@pytest.fixture(scope="module")
def tree():
    return BPlusTree.bulk_load([(k, k) for k in range(2_000)], fanout=4)


def params(entries=64):
    return CacheParams(capacity_bytes=entries * BLOCK_SIZE)


class TestNamespace:
    def test_distinct_indexes_disjoint(self, tree):
        other = BPlusTree.bulk_load([(k, k) for k in range(10)])
        ns_a, ns_b = namespace_fn(tree), namespace_fn(other)
        assert ns_a(5) != ns_b(5)
        assert abs(ns_a(5) - ns_b(5)) % NS_STRIDE == 0

    def test_sentinels_clamped(self, tree):
        ns = namespace_fn(tree)
        assert ns(float("-inf")) == ns(0)
        assert ns(float("inf")) == ns(NS_STRIDE - 1)
        assert ns(-5) == ns(0)


class TestNodeBlocks:
    def test_small_node_one_block(self, tree):
        leaf = tree.walk(0)[-1]
        assert len(_node_blocks(leaf)) == 1

    def test_blocks_aligned(self, tree):
        for node in tree.walk(123):
            for addr in _node_blocks(node):
                assert addr % BLOCK_SIZE == 0

    def test_wide_node_sublinear(self):
        from repro.indexes.base import IndexNode

        node = IndexNode(0, list(range(200)), values=list(range(200)))
        node.address = 0
        node.nbytes = node.byte_size()
        total_blocks = -(-node.nbytes // BLOCK_SIZE)
        touched = _node_blocks(node)
        assert len(touched) < total_blocks
        assert len(touched) >= 2


class TestStreaming:
    def test_every_node_hits_dram(self, tree):
        ms = StreamingMemSys()
        trace = ms.process_walk(tree, 1_000)
        drams = [a for a in trace.accesses if a.kind == "dram"]
        assert len(drams) >= tree.height
        assert trace.nodes_visited == tree.height

    def test_no_cache_stats(self, tree):
        assert StreamingMemSys().cache_stats is None


class TestAddressCache:
    def test_second_walk_hits(self, tree):
        ms = AddressCacheMemSys(cache_params=params())
        t1 = ms.process_walk(tree, 500)
        t2 = ms.process_walk(tree, 500)
        dram1 = sum(1 for a in t1.accesses if a.kind == "dram")
        dram2 = sum(1 for a in t2.accesses if a.kind == "dram")
        assert dram2 < dram1

    def test_probe_cost_per_block(self, tree):
        ms = AddressCacheMemSys(cache_params=params())
        trace = ms.process_walk(tree, 500)
        srams = [a for a in trace.accesses if a.kind == "sram"]
        assert len(srams) >= tree.height  # one probe per touched block


class TestXCache:
    def test_hit_short_circuits_completely(self, tree):
        ms = XCacheMemSys(cache_params=params())
        ms.process_walk(tree, 42)
        trace = ms.process_walk(tree, 42)
        assert trace.full_hit
        assert not any(a.kind == "dram" for a in trace.accesses)

    def test_adjacent_key_misses(self, tree):
        ms = XCacheMemSys(cache_params=params())
        ms.process_walk(tree, 42)
        trace = ms.process_walk(tree, 43)  # same leaf, different key
        assert not trace.full_hit

    def test_miss_walks_root_to_leaf(self, tree):
        ms = XCacheMemSys(cache_params=params())
        trace = ms.process_walk(tree, 99)
        assert trace.nodes_visited == tree.height


class TestFAOPT:
    def test_prepare_and_replay(self, tree):
        keys = [5, 10, 5, 10, 5]
        ms = FAOPTMemSys.prepare([(tree, k) for k in keys], params())
        traces = [ms.process_walk(tree, k) for k in keys]
        # Later repeats should be cheaper than the first walk.
        dram_first = sum(1 for a in traces[0].accesses if a.kind == "dram")
        dram_last = sum(1 for a in traces[-1].accesses if a.kind == "dram")
        assert dram_last < dram_first

    def test_overrun_rejected(self, tree):
        ms = FAOPTMemSys.prepare([(tree, 1)], params())
        ms.process_walk(tree, 1)
        with pytest.raises(IndexError):
            ms.process_walk(tree, 1)

    def test_fa_probe_cost_used(self, tree):
        sim = SimParams()
        ms = FAOPTMemSys.prepare([(tree, 1)], params(), sim)
        trace = ms.process_walk(tree, 1)
        srams = [a for a in trace.accesses if a.kind == "sram"]
        assert all(a.cycles == sim.t_fa_probe for a in srams)


class TestMetalMemSys:
    def test_miss_then_short_circuit(self, tree):
        ms = make_memsys("metal_ix", cache_params=params())
        t1 = ms.process_walk(tree, 777)
        assert not t1.short_circuited
        t2 = ms.process_walk(tree, 777)
        assert t2.short_circuited
        assert t2.start_level > 0

    def test_full_hit_at_leaf(self, tree):
        ms = make_memsys("metal_ix", cache_params=params())
        ms.process_walk(tree, 777)
        t2 = ms.process_walk(tree, 777)
        # Leaf was inserted on the first walk: complete short-circuit.
        assert t2.full_hit
        assert not any(a.kind == "dram" for a in t2.accesses)

    def test_sibling_key_partial_short_circuit(self, tree):
        ms = make_memsys("metal_ix", cache_params=params())
        ms.process_walk(tree, 1_000)
        trace = ms.process_walk(tree, 1_900)
        # Root is cached, so at minimum the walk starts below level 0...
        assert trace.short_circuited

    def test_metal_respects_descriptor(self, tree):
        desc = NodeDescriptor("leaf", life=1)
        ms = make_memsys("metal", cache_params=params(), descriptors=desc)
        ms.process_walk(tree, 55)
        stats = ms.cache_stats
        assert stats.bypasses > 0  # non-leaf nodes bypassed

    def test_probe_charged_once_per_walk(self, tree):
        sim = SimParams()
        ms = make_memsys("metal_ix", sim=sim, cache_params=params())
        trace = ms.process_walk(tree, 3)
        srams = [a for a in trace.accesses if a.kind == "sram"]
        assert len(srams) == 1
        assert srams[0].cycles == sim.t_ix_probe


class TestFactory:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_memsys("l2")

    def test_metal_requires_descriptors(self):
        with pytest.raises(ValueError):
            make_memsys("metal")

    def test_fa_opt_requires_requests(self):
        with pytest.raises(ValueError):
            make_memsys("fa_opt")

    def test_all_kinds_constructible(self, tree):
        for kind in ("stream", "address", "xcache", "metal_ix"):
            assert make_memsys(kind).name == kind
        assert make_memsys(
            "metal", descriptors=LevelDescriptor(1, 3)
        ).name == "metal"
        assert make_memsys("fa_opt", requests=[(tree, 1)]).name == "fa_opt"


class TestRangeScans:
    def test_scan_streams_leaves(self, tree):
        ms = StreamingMemSys()
        point = ms.process_walk(tree, 100)
        ms2 = StreamingMemSys()
        scan = ms2.process_range_scan(tree, 100, 160)
        point_dram = sum(1 for a in point.accesses if a.kind == "dram")
        scan_dram = sum(1 for a in scan.accesses if a.kind == "dram")
        assert scan_dram > point_dram

    def test_scan_bounded_by_hi(self, tree):
        ms = StreamingMemSys()
        narrow = ms.process_range_scan(tree, 100, 110)
        ms2 = StreamingMemSys()
        wide = ms2.process_range_scan(tree, 100, 400)
        assert wide.nodes_visited > narrow.nodes_visited

    def test_address_cache_serves_rescans(self, tree):
        ms = AddressCacheMemSys(cache_params=params(256))
        first = ms.process_range_scan(tree, 100, 160)
        second = ms.process_range_scan(tree, 100, 160)
        dram1 = sum(1 for a in first.accesses if a.kind == "dram")
        dram2 = sum(1 for a in second.accesses if a.kind == "dram")
        assert dram2 < dram1

    def test_metal_serves_cached_scan_leaves(self, tree):
        ms = make_memsys("metal_ix", cache_params=params(256))
        first = ms.process_range_scan(tree, 100, 160)
        second = ms.process_range_scan(tree, 100, 160)
        dram1 = sum(1 for a in first.accesses if a.kind == "dram")
        dram2 = sum(1 for a in second.accesses if a.kind == "dram")
        assert dram2 < dram1

    def test_empty_range_is_point_walk(self, tree):
        ms = StreamingMemSys()
        scan = ms.process_range_scan(tree, 100, 100)
        assert scan.nodes_visited >= tree.height
