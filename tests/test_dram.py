"""Tests for the banked DRAM model."""

from repro.mem.dram import DRAM
from repro.params import BLOCK_SIZE, DRAMParams


def make_dram(**kw) -> DRAM:
    return DRAM(DRAMParams(**kw))


class TestTiming:
    def test_first_access_pays_row_miss(self):
        dram = make_dram()
        done = dram.access(0, 0)
        assert done == dram.params.t_access

    def test_row_hit_is_faster(self):
        dram = make_dram()
        t1 = dram.access(0, 0)
        t2 = dram.access(BLOCK_SIZE * dram.params.banks, t1)  # same bank, same row
        assert t2 - t1 <= dram.params.t_row_hit + dram.params.t_occupancy

    def test_bank_occupancy_serializes(self):
        dram = make_dram(banks=1)
        first = dram.access(0, 0)
        # Second access to the same bank issued at time 0 must wait.
        second = dram.access(1 << 20, 0)
        assert second > first or second >= dram.params.t_occupancy

    def test_different_banks_overlap(self):
        dram = make_dram()
        a = dram.access(0, 0)
        b = dram.access(BLOCK_SIZE, 0)  # next block = next bank
        # Both start at 0; neither is delayed by the other's occupancy.
        assert b <= a + dram.params.t_access

    def test_bank_of_interleaves_blocks(self):
        dram = make_dram(banks=4)
        banks = [dram.bank_of(i * BLOCK_SIZE) for i in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]


class TestStats:
    def test_reads_and_writes_counted(self):
        dram = make_dram()
        dram.access(0, 0)
        dram.access(64, 0, write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1

    def test_energy_accumulates(self):
        dram = make_dram()
        dram.access(0, 0)
        e1 = dram.stats.energy_fj
        dram.access(1 << 20, 0)
        assert dram.stats.energy_fj > e1 > 0

    def test_row_hit_energy_lower(self):
        dram = make_dram()
        dram.access(0, 0)
        miss_energy = dram.stats.energy_fj
        dram.access(0, 1000)  # same row: hit
        hit_energy = dram.stats.energy_fj - miss_energy
        assert hit_energy < miss_energy

    def test_touched_blocks_distinct(self):
        dram = make_dram()
        dram.access(0, 0)
        dram.access(0, 10)
        dram.access(BLOCK_SIZE, 20)
        assert len(dram.stats.touched_blocks) == 2

    def test_multi_block_access_touches_span(self):
        dram = make_dram()
        dram.access(0, 0, nbytes=BLOCK_SIZE * 3)
        assert len(dram.stats.touched_blocks) == 3

    def test_bytes_moved(self):
        dram = make_dram()
        dram.access(0, 0)
        assert dram.stats.bytes_moved == BLOCK_SIZE


class TestBandwidth:
    def test_utilization_fraction(self):
        dram = make_dram()
        dram.access(0, 0)
        util = dram.bandwidth_utilization(100)
        expected = BLOCK_SIZE / (dram.params.peak_bytes_per_cycle * 100)
        assert abs(util - expected) < 1e-12

    def test_zero_cycles(self):
        dram = make_dram()
        assert dram.bandwidth_utilization(0) == 0.0

    def test_reset_timing_keeps_stats(self):
        dram = make_dram()
        dram.access(0, 0)
        dram.reset_timing()
        assert dram.stats.reads == 1
        assert dram.access(0, 0) == dram.params.t_access  # row closed again
