"""Exporter contracts: JSONL round-trip, Chrome schema, OpenMetrics.

JSONL must round-trip every event field-for-field (it is the archival
format offline tools re-parse); the Chrome export must be structurally
valid ``trace_event`` JSON with balanced B/E pairs; the OpenMetrics
exposition must follow the text format (typed families, cumulative
``le`` buckets, ``# EOF`` terminator).
"""

import json
import re
from dataclasses import replace

import pytest

from repro.bench.runner import build_memsys
from repro.obs.export import (
    event_to_dict,
    to_chrome_trace,
    to_openmetrics,
    write_chrome_trace,
    write_jsonl,
    write_openmetrics,
)
from repro.obs.histogram import Histogram
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload


@pytest.fixture(scope="module")
def run():
    workload = build_workload("scan", scale=0.03, seed=0)
    sim = replace(workload.config.sim_params(), trace=True)
    memsys = build_memsys("metal", workload, sim=sim)
    return simulate(memsys, workload.requests, sim, workload.total_index_blocks)


class TestJsonlRoundTrip:
    def test_every_event_field_survives(self, run, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(run.tracer, str(path))
        lines = path.read_text().splitlines()
        events = list(run.tracer)
        assert len(lines) == len(events)
        for line, event in zip(lines, events):
            parsed = json.loads(line)
            # Field-for-field: the parsed object equals the flat view,
            # and the flat view carries every source attribute and arg.
            assert parsed == event_to_dict(event)
            assert parsed["kind"] == event.kind
            assert parsed["phase"] == event.phase
            assert parsed["ts"] == event.ts
            assert parsed["walk"] == event.walk
            for key, value in event.args.items():
                assert parsed[key] == value

    def test_lines_have_sorted_keys(self, run, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(run.tracer, str(path))
        for line in path.read_text().splitlines()[:100]:
            keys = list(json.loads(line))
            assert keys == sorted(keys)


class TestChromeTraceSchema:
    def test_written_file_is_valid_trace_event_json(self, run, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(run.tracer, str(path), run.counters)
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["otherData"]["dropped_events"] == 0
        assert payload["otherData"]["counters"] == dict(run.counters)
        for record in payload["traceEvents"]:
            assert record["ph"] in ("B", "E", "X", "i", "M")
            assert isinstance(record["pid"], int)
            assert isinstance(record["tid"], int)
            if record["ph"] != "M":
                assert record["ts"] >= 0
            if record["ph"] == "X":
                assert record["dur"] >= 0

    def test_b_e_pairs_balanced_per_track(self, run):
        payload = to_chrome_trace(run.tracer)
        depth: dict[int, int] = {}
        for record in payload["traceEvents"]:
            if record["ph"] == "B":
                depth[record["tid"]] = depth.get(record["tid"], 0) + 1
            elif record["ph"] == "E":
                depth[record["tid"]] = depth.get(record["tid"], 0) - 1
                assert depth[record["tid"]] >= 0
        assert all(balance == 0 for balance in depth.values())

    def test_process_name_metadata_present(self, run):
        payload = to_chrome_trace(run.tracer)
        names = [r["args"]["name"] for r in payload["traceEvents"]
                 if r["ph"] == "M"]
        assert any("engine" in n for n in names)
        assert any("dram" in n for n in names)


class TestOpenMetrics:
    def test_format_shape(self):
        hist = Histogram.from_values([1, 5, 5, 300])
        text = to_openmetrics(
            counters={"dram.reads": 7, "ix.hit_rate": 0.5},
            histograms={"walk_latency": hist},
        )
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert "# TYPE repro_dram_reads gauge" in lines
        assert "repro_dram_reads 7" in lines
        assert "repro_ix_hit_rate 0.5" in lines
        assert "# TYPE repro_walk_latency histogram" in lines
        assert 'repro_walk_latency_bucket{le="+Inf"} 4' in lines
        assert "repro_walk_latency_count 4" in lines
        assert "repro_walk_latency_sum 311" in lines

    def test_bucket_counts_cumulative_and_ordered(self):
        hist = Histogram.from_values([1, 2, 2, 1000, 50_000])
        text = to_openmetrics(histograms={"h": hist})
        buckets = re.findall(r'repro_h_bucket\{le="(\d+)"\} (\d+)', text)
        bounds = [int(b) for b, _ in buckets]
        counts = [int(c) for _, c in buckets]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == hist.count

    def test_metric_name_sanitization(self):
        text = to_openmetrics(counters={"ix.l2-cache/hits": 1, "0bad": 2})
        assert "repro_ix_l2_cache_hits 1" in text
        assert "repro_0bad 2" in text  # prefix keeps it letter-leading

    def test_empty_snapshot_is_just_eof(self):
        assert to_openmetrics() == "# EOF\n"

    def test_write_openmetrics_end_to_end(self, run, tmp_path):
        path = tmp_path / "run.om"
        write_openmetrics(str(path), run.counters,
                          {"walk_latency": run.latency_hist})
        text = path.read_text()
        assert text.endswith("# EOF\n")
        # Spot-check a counter that must exist on a traced metal run.
        assert re.search(r"^repro_engine_makespan \d+$", text, re.M)
        assert f"repro_walk_latency_count {run.num_walks}" in text
