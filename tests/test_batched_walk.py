"""Batched numpy walk generation vs the scalar SoA tree walk.

``SoABPlusTree.batch_positions`` resolves a whole chunk of probe keys
through the level arrays with ``searchsorted``; the scalar reference is
``tree.walk(key)``, one ``child_for`` chain per key. Every row of the
batched result must name exactly the per-level node positions the
scalar walk visits — including duplicate keys in one chunk and keys
outside the keyspace (clamped to the edge leaves, as ``child_for``
does).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.indexes.soa import SoABPlusTree
from repro.sim.batch import BatchWalkPlanner


def _tree(num_keys, fanout):
    return SoABPlusTree(np.arange(num_keys, dtype=np.int64) * 3,
                        fanout=fanout)


def _scalar_positions(tree, key):
    """Per-level node positions of the scalar root-to-leaf walk."""
    return [node._pos for node in tree.walk(key)]


@settings(max_examples=40, deadline=None)
@given(
    num_keys=st.integers(2, 600),
    fanout=st.integers(3, 16),
    data=st.data(),
)
def test_property_batched_rows_match_scalar_walks(num_keys, fanout, data):
    tree = _tree(num_keys, fanout)
    hi = (num_keys - 1) * 3
    keys = data.draw(st.lists(
        st.integers(-2 * hi - 7, 2 * hi + 7), min_size=1, max_size=64,
    ))
    rows = tree.batch_positions(np.asarray(keys, dtype=np.int64))
    assert rows.shape == (len(keys), tree.height)
    for row, key in zip(rows.tolist(), keys):
        assert row == _scalar_positions(tree, key)


@settings(max_examples=25, deadline=None)
@given(num_keys=st.integers(2, 300), fanout=st.integers(3, 12))
def test_property_duplicate_keys_share_rows(num_keys, fanout):
    """A chunk of one repeated key resolves to one repeated row."""
    tree = _tree(num_keys, fanout)
    key = (num_keys // 2) * 3
    rows = tree.batch_positions(np.full(17, key, dtype=np.int64))
    assert (rows == rows[0]).all()
    assert rows[0].tolist() == _scalar_positions(tree, key)


@settings(max_examples=25, deadline=None)
@given(num_keys=st.integers(2, 300), fanout=st.integers(3, 12))
def test_property_out_of_range_keys_clamp_to_edge_leaves(num_keys, fanout):
    tree = _tree(num_keys, fanout)
    hi = (num_keys - 1) * 3
    rows = tree.batch_positions(
        np.asarray([-10**9, -1, hi + 1, 10**9], dtype=np.int64)
    )
    for row, key in zip(rows.tolist(), (-10**9, -1, hi + 1, 10**9)):
        assert row == _scalar_positions(tree, key)
    # Leftmost / rightmost leaves exactly.
    assert rows[0][-1] == 0
    assert rows[-1][-1] == len(tree._levels[-1]) - 1


@settings(max_examples=20, deadline=None)
@given(num_keys=st.integers(2, 400), fanout=st.integers(3, 12))
def test_property_planner_counts_match_level_sizes(num_keys, fanout):
    """The planner's cached per-level block counts describe real nodes."""
    tree = _tree(num_keys, fanout)
    planner = BatchWalkPlanner(tree)
    for level in range(tree.height):
        counts = planner._counts(level)
        nodes = tree.level_nodes(level)
        assert len(counts) == len(nodes)
        for pos, node in enumerate(nodes):
            assert counts[pos] == len(planner.blocks(level, pos))
