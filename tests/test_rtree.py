"""Tests for the paired-B-tree R-tree and spatial semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.rtree import Rect, RTree2D


def rects_grid(n=20, size=10, gap=50):
    return [
        Rect(i, i * gap, i * gap + size, (i * 7) % 500, (i * 7) % 500 + size)
        for i in range(n)
    ]


class TestRect:
    def test_contains(self):
        r = Rect(0, 0, 10, 0, 10)
        assert r.contains(5, 5)
        assert r.contains(0, 10)
        assert not r.contains(11, 5)

    def test_intersects(self):
        a = Rect(0, 0, 10, 0, 10)
        b = Rect(1, 5, 15, 5, 15)
        c = Rect(2, 20, 30, 20, 30)
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 10, 0, 0, 10)


class TestRTree:
    def test_builds_two_trees(self):
        rt = RTree2D(rects_grid())
        assert rt.x_tree.height >= 1
        assert rt.y_tree.height >= 1
        assert len(rt) == 20

    def test_duplicate_ids_rejected(self):
        r = Rect(1, 0, 1, 0, 1)
        with pytest.raises(ValueError):
            RTree2D([r, r])

    def test_query_point_finds_containing(self):
        rt = RTree2D(rects_grid())
        hits = rt.query_point(5, 5)
        assert [r.rect_id for r in hits] == [0]

    def test_query_point_empty(self):
        rt = RTree2D(rects_grid())
        assert rt.query_point(25, 25) == []

    def test_query_window(self):
        rt = RTree2D(rects_grid(gap=50, size=10))
        window = Rect(99, 0, 60, 0, 600)
        hits = rt.query_window(window)
        assert all(r.intersects(window) for r in hits)
        assert len(hits) >= 1

    def test_correlated_y_keys(self):
        rt = RTree2D(rects_grid())
        ys = rt.correlated_y_keys(0, window=0)
        assert ys == [rects_grid()[0].y_lo]

    def test_walks_reach_leaves(self):
        rt = RTree2D(rects_grid(n=100))
        assert rt.x_walk(250)[-1].is_leaf
        assert rt.y_walk(49)[-1].is_leaf

    def test_nodes_iterates_both_trees(self):
        rt = RTree2D(rects_grid())
        x_ids = {n.node_id for n in rt.x_tree.nodes()}
        all_ids = {n.node_id for n in rt.nodes()}
        assert x_ids < all_ids


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 500), st.integers(1, 20),
                  st.integers(0, 500), st.integers(1, 20)),
        min_size=1, max_size=50, unique_by=lambda t: t[0],
    ),
    px=st.integers(0, 520), py=st.integers(0, 520),
)
def test_property_query_point_matches_bruteforce(data, px, py):
    rects = [
        Rect(i, x, x + w, y, y + h) for i, (x, w, y, h) in enumerate(data)
    ]
    rt = RTree2D(rects)
    expected = sorted(
        (r.rect_id for r in rects if r.contains(px, py))
    )
    got = [r.rect_id for r in rt.query_point(px, py)]
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 500), st.integers(1, 20),
                  st.integers(0, 500), st.integers(1, 20)),
        min_size=1, max_size=50, unique_by=lambda t: t[0],
    ),
    wx=st.integers(0, 480), wy=st.integers(0, 480),
    ww=st.integers(1, 40), wh=st.integers(1, 40),
)
def test_property_query_window_matches_bruteforce(data, wx, wy, ww, wh):
    rects = [
        Rect(i, x, x + w, y, y + h) for i, (x, w, y, h) in enumerate(data)
    ]
    rt = RTree2D(rects)
    window = Rect(999, wx, wx + ww, wy, wy + wh)
    assert rt.query_window(window) == rt.query_window_bruteforce(window)
