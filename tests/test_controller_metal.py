"""Tests for the pattern controller and the Metal/MetalIX facades."""

from repro.core.controller import PatternController
from repro.core.descriptors import (
    LevelDescriptor,
    NodeDescriptor,
    WalkContext,
)
from repro.core.ix_cache import IXCache
from repro.core.metal import Metal, MetalIX
from repro.indexes.base import IndexNode
from repro.params import BLOCK_SIZE, CacheParams


def node(level, lo=0, hi=10):
    return IndexNode(level, [lo, hi], values=[0, 0], lo=lo, hi=hi)


def make_cache(entries=32):
    return IXCache(CacheParams(capacity_bytes=entries * BLOCK_SIZE, ways=4))


HEIGHT = 6


class TestController:
    def test_default_descriptor_applies_to_all(self):
        ctl = PatternController(LevelDescriptor(1, 3, min_touches=1), make_cache())
        assert ctl.decide(0, node(2), HEIGHT).insert
        assert ctl.decide(99, node(2), HEIGHT).insert

    def test_per_index_descriptors(self):
        ctl = PatternController(
            {7: NodeDescriptor("leaf", life=1)}, make_cache()
        )
        assert ctl.decide(7, node(HEIGHT - 1), HEIGHT).insert
        assert not ctl.decide(7, node(0), HEIGHT).insert
        # Unknown index falls back to insert-all.
        assert ctl.decide(8, node(0), HEIGHT).insert

    def test_batch_history_recorded(self):
        cache = make_cache()
        ctl = PatternController(
            LevelDescriptor(1, 3, min_touches=1), cache, batch_walks=2
        )
        for _ in range(6):
            ctl.begin_walk(0, 5)
            ctl.decide(0, node(2), HEIGHT)
            ctl.end_walk()
        assert len(ctl.history) == 3
        assert all("descriptors" in h for h in ctl.history)

    def test_tuning_can_be_disabled(self):
        desc = LevelDescriptor(2, 3, low_utility=1.0)
        ctl = PatternController(desc, make_cache(), batch_walks=1, tune=False)
        for _ in range(8):
            ctl.begin_walk(0, 5)
            ctl.decide(0, node(2), HEIGHT)
            ctl.end_walk()
        assert (desc.start, desc.end) == (2, 3)

    def test_invalid_batch(self):
        import pytest

        with pytest.raises(ValueError):
            PatternController(LevelDescriptor(1, 2), make_cache(), batch_walks=0)

    def test_insertions_by_level_feed_feedback(self):
        desc = LevelDescriptor(1, HEIGHT - 1, min_touches=1, frontier=False,
                               low_utility=0.9, high_utility=1e9)
        cache = make_cache(entries=4)
        ctl = PatternController(desc, cache, batch_walks=4)
        # Insert lots at deep level with no hits -> utility low -> after two
        # low batches the band shifts up.
        for i in range(16):
            ctl.begin_walk(0, i)
            ctl.decide(0, node(HEIGHT - 1, lo=i * 100, hi=i * 100 + 5), HEIGHT)
            ctl.end_walk()
        assert desc.end < HEIGHT - 1


class TestMetalIX:
    def test_insert_all_policy(self):
        policy = MetalIX(CacheParams(capacity_bytes=32 * BLOCK_SIZE))
        n = node(2, 0, 10)
        assert policy.consider(0, n, HEIGHT, lambda k: k)
        assert policy.probe(5) is n

    def test_no_controller(self):
        assert MetalIX().controller is None

    def test_stats_exposed(self):
        policy = MetalIX()
        policy.probe(1)
        assert policy.stats.accesses == 1


class TestMetal:
    def test_bypass_respected(self):
        policy = Metal(NodeDescriptor("leaf", life=1))
        upper = node(0, 0, 10)
        assert not policy.consider(0, upper, HEIGHT, lambda k: k)
        assert policy.cache.stats.bypasses == 1
        assert policy.probe(5) is None

    def test_insert_with_life(self):
        policy = Metal(NodeDescriptor("leaf", life=9))
        leaf = node(HEIGHT - 1, 0, 10)
        assert policy.consider(0, leaf, HEIGHT, lambda k: k)
        entry = policy.cache.entries()[0]
        assert entry.life == 9

    def test_walk_lifecycle_batches(self):
        policy = Metal(LevelDescriptor(1, 3, min_touches=1), batch_walks=2)
        for i in range(4):
            policy.begin_walk(0, i)
            policy.consider(0, node(2, i * 50, i * 50 + 5), HEIGHT,
                            lambda k: k, WalkContext(False, 0))
            policy.end_walk()
        assert len(policy.controller.history) == 2

    def test_key_focused_insert_forwarded(self):
        policy = Metal(LevelDescriptor(0, HEIGHT - 1, min_level=0, min_touches=1,
                                       frontier=False))
        children = [node(3, i * 10, i * 10 + 9) for i in range(30)]
        wide = IndexNode(2, [c.lo for c in children[1:]], children=children,
                         lo=0, hi=299)
        policy.consider(0, wide, HEIGHT, lambda k: k, key=155)
        assert policy.cache.peek(155) is wide
        assert policy.cache.peek(5) is None

    def test_name_tags(self):
        assert MetalIX().name == "metal_ix"
        assert Metal(NodeDescriptor("leaf", life=1)).name == "metal"
