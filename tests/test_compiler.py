"""Tests for the declarative dataflow front-end and lowering."""

import pytest

from repro.core.descriptors import CompositeDescriptor, LevelDescriptor
from repro.dsa.compiler import DataflowProgram, LoweredProgram, lower
from repro.dsa.gorgon import ANALYTICS_CONFIG, SCAN_CONFIG
from repro.dsa.capstan import SPMM_CONFIG
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.indexes.table import RecordTable
from repro.params import BLOCK_SIZE, CacheParams
from repro.sim.memsys import make_memsys
from repro.sim.metrics import simulate


def table(n=500):
    return RecordTable.from_records(
        ("id", "fk"), "id",
        ({"id": k, "fk": (k * 13) % n} for k in range(n)),
        fanout=3,
    )


class TestProgramBuilding:
    def test_lookup_operator(self):
        prog = DataflowProgram(SCAN_CONFIG)
        op = prog.lookup(table(), [1, 2, 3])
        assert op.kind == "lookup"
        assert len(prog.operators) == 1

    def test_unknown_kind_rejected(self):
        prog = DataflowProgram(SCAN_CONFIG)
        with pytest.raises(ValueError):
            prog._add("shuffle", table())

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            lower(DataflowProgram(SCAN_CONFIG))


class TestLowering:
    def test_lookup_requests(self):
        prog = DataflowProgram(SCAN_CONFIG)
        t = table()
        prog.lookup(t, [5, 6, 7])
        lowered = lower(prog)
        assert [r.key for r in lowered.requests] == [5, 6, 7]
        assert all(r.index is t for r in lowered.requests)

    def test_select_requests_carry_scan_hi(self):
        prog = DataflowProgram(ANALYTICS_CONFIG)
        prog.select(table(), [(10, 30)])
        lowered = lower(prog)
        assert lowered.requests[0].scan_hi == 30

    def test_join_touches_both_tables(self):
        prog = DataflowProgram(ANALYTICS_CONFIG)
        outer, inner = table(50), table(200)
        prog.join(outer, inner, "fk")
        lowered = lower(prog)
        indexes_touched = {id(r.index) for r in lowered.requests}
        assert indexes_touched == {id(outer), id(inner)}
        assert len(lowered.requests) == 100  # outer walk + inner probe each

    def test_spmm_requests(self):
        b = DynamicSparseTensor.from_coo(
            (20, 20), [(r, c, 1.0) for r in range(4) for c in range(4)]
        )
        prog = DataflowProgram(SPMM_CONFIG)
        prog.spmm(b, [[(0, 1.0), (2, 1.0)]])
        lowered = lower(prog)
        assert sorted(r.key for r in lowered.requests) == [0, 2]

    def test_descriptor_pattern_mapping(self):
        prog = DataflowProgram(SCAN_CONFIG)
        t = table()
        prog.lookup(t, [1])
        lowered = lower(prog)
        assert isinstance(lowered.descriptors[t.index_id], LevelDescriptor)

    def test_spmm_gets_composite(self):
        b = DynamicSparseTensor.from_coo((20, 20), [(0, 0, 1.0)])
        prog = DataflowProgram(SPMM_CONFIG)
        prog.spmm(b, [[(0, 1.0)]])
        lowered = lower(prog)
        assert isinstance(lowered.descriptors[b.index_id], CompositeDescriptor)

    def test_shared_index_merges_descriptors(self):
        prog = DataflowProgram(SCAN_CONFIG)
        t = table()
        prog.lookup(t, [1])
        prog.where(t, [2])
        lowered = lower(prog)
        merged = lowered.descriptors[t.index_id]
        assert isinstance(merged, CompositeDescriptor)
        assert len(merged.members) == 2

    def test_placement_round_robin(self):
        prog = DataflowProgram(SCAN_CONFIG)
        t = table()
        for _ in range(5):
            prog.lookup(t, [1])
        lowered = lower(prog)
        tiles = list(lowered.placement.values())
        assert tiles == [i % SCAN_CONFIG.tiles for i in range(5)]


class TestEndToEnd:
    def test_lowered_program_simulates_with_metal(self):
        prog = DataflowProgram(ANALYTICS_CONFIG)
        outer, inner = table(80), table(400)
        prog.join(outer, inner, "fk")
        prog.lookup(inner, [3, 5, 7])
        lowered = lower(prog)
        ms = make_memsys(
            "metal",
            cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE),
            descriptors=lowered.descriptors,
        )
        run = simulate(ms, lowered.requests, ms.sim)
        assert run.num_walks == len(lowered.requests)
        assert run.short_circuited > 0

    def test_pattern_summary(self):
        prog = DataflowProgram(SCAN_CONFIG)
        t = table()
        prog.lookup(t, [1])
        lowered = lower(prog)
        assert lowered.pattern_summary[t.index_id] == "LevelDescriptor"
