"""Trace-anchored regression tests for the observability layer.

These assert *event-level* invariants on a tiny fixed-seed workload, so a
drift in EXPERIMENTS.md trends can be localized from the trace instead of
print-debugging the engine:

* every ``walk_end`` has a matching ``walk_start`` (same walk id),
* ``ix_short_circuit`` events only occur on IX-cache configurations,
* DRAM event counts equal ``DRAMStats`` access counts,
* counter snapshots reconcile exactly with ``RunResult`` aggregates,
* two identical runs export byte-identical JSONL and identical counters,
* the Chrome export is well-formed ``trace_event`` JSON.
"""

import json
from collections import Counter
from dataclasses import replace

import pytest

from repro.bench.runner import build_memsys
from repro.obs.export import to_chrome_trace, to_jsonl
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload

SCALE = 0.03
WORKLOAD = "scan"


def traced_run(kind: str, workload=None, **sim_overrides):
    workload = workload or build_workload(WORKLOAD, scale=SCALE, seed=0)
    sim = replace(workload.config.sim_params(), trace=True, **sim_overrides)
    memsys = build_memsys(kind, workload, sim=sim)
    return simulate(memsys, workload.requests, sim, workload.total_index_blocks)


@pytest.fixture(scope="module")
def metal_run():
    return traced_run("metal")


@pytest.fixture(scope="module")
def xcache_run():
    return traced_run("xcache")


class TestWalkPairing:
    def test_every_walk_end_has_matching_start(self, metal_run):
        tracer = metal_run.tracer
        starts = Counter(e.walk for e in tracer.events("walk_start"))
        ends = Counter(e.walk for e in tracer.events("walk_end"))
        assert starts == ends
        assert all(count == 1 for count in starts.values())
        assert len(ends) == metal_run.num_walks

    def test_walk_end_after_start(self, metal_run):
        start_ts = {e.walk: e.ts for e in metal_run.tracer.events("walk_start")}
        for end in metal_run.tracer.events("walk_end"):
            assert end.ts >= start_ts[end.walk]
            assert end.args["latency"] == end.ts - start_ts[end.walk]

    def test_walk_ids_cover_every_request(self, metal_run):
        ends = {e.walk for e in metal_run.tracer.events("walk_end")}
        assert ends == set(range(metal_run.num_walks))


class TestShortCircuitProvenance:
    def test_metal_short_circuits_match_aggregate(self, metal_run):
        assert metal_run.short_circuited > 0
        events = metal_run.tracer.events("ix_short_circuit")
        assert len(events) == metal_run.short_circuited

    def test_short_circuit_only_on_ix_configurations(self, xcache_run):
        # The X-cache also short-circuits walks (full-hit fast path) but
        # has no IX-cache: an ix_short_circuit event from it would mean
        # instrumentation leaked across organizations.
        assert xcache_run.short_circuited > 0
        assert xcache_run.tracer.counts["ix_short_circuit"] == 0
        assert xcache_run.tracer.counts["ix_probe"] == 0

    def test_stream_emits_no_cache_events(self):
        run = traced_run("stream")
        cache_kinds = [k for k in run.tracer.counts
                       if k.startswith(("ix_", "xcache_", "addr_", "opt_"))]
        assert cache_kinds == []


class TestDramReconciliation:
    def test_dram_event_count_equals_stats(self, metal_run):
        assert metal_run.tracer.counts["dram_access"] == metal_run.dram.accesses

    def test_row_hit_split_matches_stats(self, metal_run):
        events = metal_run.tracer.events("dram_access")
        hits = sum(1 for e in events if e.args["row_hit"])
        assert hits == metal_run.dram.row_hits
        assert len(events) - hits == metal_run.dram.row_misses

    def test_every_system_reconciles(self):
        for kind in ("address", "xcache", "metal_ix"):
            run = traced_run(kind)
            assert run.tracer.counts["dram_access"] == run.dram.accesses, kind


class TestCounterReconciliation:
    def test_cache_counters_match_stats(self, metal_run):
        counters = metal_run.counters
        stats = metal_run.cache_stats
        assert counters["cache.metal.accesses"] == stats.accesses
        assert counters["cache.metal.hits"] == stats.hits
        assert counters["cache.metal.misses"] == stats.misses
        assert counters["cache.metal.insertions"] == stats.insertions
        assert counters["cache.metal.evictions"] == stats.evictions
        assert counters["cache.metal.bypasses"] == stats.bypasses

    def test_event_counters_match_stats(self, metal_run):
        counters = metal_run.counters
        stats = metal_run.cache_stats
        assert counters["events.ix_probe"] == stats.accesses
        assert counters["events.ix_hit"] == stats.hits
        assert counters["events.ix_insert"] == stats.insertions
        assert counters["events.ix_evict"] == stats.evictions
        assert counters["events.ix_bypass"] == stats.bypasses

    def test_engine_counters_match_run(self, metal_run):
        counters = metal_run.counters
        assert counters["engine.num_walks"] == metal_run.num_walks
        assert counters["engine.makespan"] == metal_run.makespan
        assert counters["events.walk_end"] == metal_run.num_walks
        assert counters["walks.short_circuited"] == metal_run.short_circuited

    def test_dram_counters_match_stats(self, metal_run):
        counters = metal_run.counters
        assert counters["dram.reads"] == metal_run.dram.reads
        assert counters["dram.writes"] == metal_run.dram.writes
        assert counters["dram.energy_fj"] == metal_run.dram.energy_fj

    def test_counters_flow_into_to_dict(self, metal_run):
        payload = metal_run.to_dict()
        assert payload["counters"]["dram.reads"] == metal_run.dram.reads


class TestDeterminism:
    @staticmethod
    def _digest(data: str) -> str:
        import hashlib

        return hashlib.sha256(data.encode()).hexdigest()

    def test_identical_runs_export_identical_traces(self):
        # Same workload object, fresh memory system per run: byte-identical
        # JSONL and identical counters. (Note: rebuilding the workload
        # allocates a fresh global index_id, which namespaces keys
        # differently — cross-process identity is covered below.)
        workload = build_workload(WORKLOAD, scale=SCALE, seed=0)
        first = traced_run("metal", workload=workload)
        second = traced_run("metal", workload=workload)
        assert self._digest(to_jsonl(first.tracer)) == \
            self._digest(to_jsonl(second.tracer))
        assert first.counters == second.counters

    def test_chrome_export_deterministic(self):
        workload = build_workload(WORKLOAD, scale=SCALE, seed=0)
        first = traced_run("metal_ix", workload=workload)
        second = traced_run("metal_ix", workload=workload)
        a = json.dumps(to_chrome_trace(first.tracer, first.counters), sort_keys=True)
        b = json.dumps(to_chrome_trace(second.tracer, second.counters), sort_keys=True)
        assert self._digest(a) == self._digest(b)

    def test_fresh_process_runs_are_byte_identical(self, tmp_path):
        # Two cold CLI invocations: catches dict-ordering and hash-seed
        # leaks that in-process reruns cannot (each subprocess gets its
        # own PYTHONHASHSEED).
        import os
        import subprocess
        import sys

        outputs = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            env = dict(os.environ)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            env.pop("PYTHONHASHSEED", None)
            subprocess.run(
                [sys.executable, "-m", "repro", "trace", WORKLOAD,
                 "--system", "metal", "--scale", "0.02", "--seed", "0",
                 "--out", str(tmp_path / (name + ".chrome.json")),
                 "--jsonl", str(path)],
                check=True, capture_output=True, cwd=os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))),
                env=env,
            )
            outputs.append(path.read_bytes())
        assert outputs[0] == outputs[1]


class TestChromeExport:
    def test_well_formed_trace_events(self, metal_run):
        payload = to_chrome_trace(metal_run.tracer, metal_run.counters)
        # Round-trips through JSON (no exotic types leaked into args).
        payload = json.loads(json.dumps(payload))
        assert isinstance(payload["traceEvents"], list)
        for record in payload["traceEvents"]:
            assert record["ph"] in ("B", "E", "X", "i", "M")
            assert "pid" in record and "tid" in record
            if record["ph"] != "M":
                assert isinstance(record["ts"], int)
            if record["ph"] == "X":
                assert record["dur"] >= 1

    def test_begin_end_balanced_per_track(self, metal_run):
        payload = to_chrome_trace(metal_run.tracer)
        depth: Counter = Counter()
        for record in payload["traceEvents"]:
            if record["ph"] == "B":
                depth[record["tid"]] += 1
            elif record["ph"] == "E":
                depth[record["tid"]] -= 1
                assert depth[record["tid"]] >= 0
        assert all(count == 0 for count in depth.values())

    def test_counters_embedded(self, metal_run):
        payload = to_chrome_trace(metal_run.tracer, metal_run.counters)
        assert payload["otherData"]["counters"] == metal_run.counters


class TestDisabledPath:
    def test_trace_off_produces_no_observability_state(self):
        workload = build_workload(WORKLOAD, scale=SCALE, seed=0)
        memsys = build_memsys("metal", workload)
        run = simulate(memsys, workload.requests,
                       total_index_blocks=workload.total_index_blocks)
        assert run.tracer is None
        assert run.counters is None
        assert memsys.tracer is NULL_TRACER
        assert memsys.policy.cache.tracer is NULL_TRACER
        assert "counters" not in run.to_dict()

    def test_tracing_does_not_perturb_aggregates(self):
        workload = build_workload(WORKLOAD, scale=SCALE, seed=0)
        plain = simulate(build_memsys("metal", workload), workload.requests,
                         total_index_blocks=workload.total_index_blocks)
        traced = traced_run("metal", workload=build_workload(
            WORKLOAD, scale=SCALE, seed=0))
        assert plain.makespan == traced.makespan
        assert plain.total_walk_cycles == traced.total_walk_cycles
        assert plain.dram.accesses == traced.dram.accesses
        assert plain.short_circuited == traced.short_circuited


class TestFaultedTraceParity:
    """Observability must not perturb the fault schedule: with a nonzero
    ``FaultPlan``, the traced and untraced runs are the same simulation."""

    def _faulted_run(self, trace: bool):
        from repro.faults import FaultPlan

        workload = build_workload(WORKLOAD, scale=SCALE, seed=0)
        plan = FaultPlan.uniform(0.05, seed=4)
        sim = replace(workload.config.sim_params(), trace=trace, faults=plan)
        memsys = build_memsys("metal", workload, sim=sim)
        return simulate(memsys, workload.requests, sim,
                        workload.total_index_blocks, record_latencies=True)

    def test_trace_on_off_to_dict_identical_under_faults(self):
        off = self._faulted_run(trace=False).to_dict()
        on = self._faulted_run(trace=True).to_dict()
        # Counters exist only when tracing; everything else — makespan,
        # latency histograms, and the fault ledger itself — must match
        # byte for byte, or tracing forked the injection schedule.
        assert off.pop("counters", None) is None
        counters = on.pop("counters")
        assert json.dumps(on, sort_keys=True) == json.dumps(
            off, sort_keys=True)
        # The ledger is also mirrored into faults.* gauges when traced.
        ledger = on["faults"]
        assert ledger["faults_injected"] > 0
        for name, value in ledger.items():
            assert counters[f"faults.{name}"] == value

    def test_walk_end_events_carry_resilience_args(self):
        run = self._faulted_run(trace=True)
        ends = [e for e in run.tracer if e.kind == "walk_end"]
        assert ends
        assert all(
            "retry" in e.args and "degraded" in e.args for e in ends
        )
        retried = sum(e.args["retry"] for e in ends)
        assert retried == run.faults["retry_backoff_cycles"]


class TestRingBuffer:
    def test_bounded_buffer_drops_but_counts_stay_exact(self):
        run = traced_run("metal", trace_buffer=64)
        tracer = run.tracer
        assert len(tracer) == 64
        assert tracer.dropped > 0
        assert tracer.counts["dram_access"] == run.dram.accesses

    def test_truncated_chrome_export_still_balanced(self):
        run = traced_run("metal", trace_buffer=64)
        payload = to_chrome_trace(run.tracer)
        depth: Counter = Counter()
        for record in payload["traceEvents"]:
            if record["ph"] == "B":
                depth[record["tid"]] += 1
            elif record["ph"] == "E":
                depth[record["tid"]] -= 1
                assert depth[record["tid"]] >= 0
        assert all(count == 0 for count in depth.values())

    def test_explicit_tracer_wins_over_params(self):
        workload = build_workload(WORKLOAD, scale=SCALE, seed=0)
        tracer = Tracer(capacity=1 << 16)
        memsys = build_memsys("metal_ix", workload)
        run = simulate(memsys, workload.requests,
                       total_index_blocks=workload.total_index_blocks,
                       tracer=tracer)
        assert run.tracer is tracer
        assert len(tracer) > 0
