"""Tests for the DSA models: tiles, grids, and the four architectures."""

import pytest

from repro.dsa.aurochs import Aurochs, PAGERANK_CONFIG, RTREE_CONFIG
from repro.dsa.capstan import Capstan, SPMM_CONFIG
from repro.dsa.config import DSAConfig
from repro.dsa.gorgon import ANALYTICS_CONFIG, Gorgon, SCAN_CONFIG
from repro.dsa.grid import TileGrid
from repro.dsa.tile import ComputeTile
from repro.dsa.widx import Widx, WIDX_CONFIG
from repro.indexes.adjacency import AdjacencyList
from repro.indexes.rtree import Rect, RTree2D
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.indexes.table import RecordTable


def table(n=100):
    return RecordTable.from_records(
        ("id", "fk"), "id", ({"id": k, "fk": (k * 7) % n} for k in range(n))
    )


class TestDSAConfig:
    def test_compute_cycles(self):
        cfg = DSAConfig("x", "task", ops_per_cycle=4, ops_per_compute=100)
        assert cfg.compute_cycles_per_walk == 25

    def test_walk_overhead_scales_with_nodes(self):
        cfg = DSAConfig("x", "task", ops_per_walk=80)
        assert cfg.walk_overhead_cycles(10, 10) > cfg.walk_overhead_cycles(2, 10)

    def test_sim_params_geometry(self):
        cfg = DSAConfig("x", "task", tiles=32, walker_contexts=8)
        sim = cfg.sim_params()
        assert sim.tiles == 32
        assert sim.tile.walker_contexts == 8

    def test_scaled(self):
        assert SCAN_CONFIG.scaled(64).tiles == 64
        assert SCAN_CONFIG.scaled(64).ops_per_walk == SCAN_CONFIG.ops_per_walk


class TestTile:
    def test_execute_requires_configuration(self):
        tile = ComputeTile(0)
        with pytest.raises(RuntimeError):
            tile.execute(1)

    def test_execute_counts_ops(self):
        tile = ComputeTile(0)
        tile.configure(lambda x: x * 2)
        assert tile.execute(21, ops=5) == 42
        assert tile.ops_executed == 5

    def test_compute_cycles_rounds_up(self):
        tile = ComputeTile(0)
        assert tile.compute_cycles(5) == -(-5 // tile.params.ops_per_cycle)

    def test_stage_leaf(self):
        tile = ComputeTile(0)
        tile.stage_leaf("obj", 128)
        assert "obj" in tile.scratchpad


class TestGrid:
    def test_tile_count(self):
        grid = TileGrid(DSAConfig("x", "task", tiles=8))
        assert len(grid) == 8

    def test_round_robin_distribution(self):
        grid = TileGrid(DSAConfig("x", "task", tiles=3))
        buckets = grid.map_work(list(range(10)))
        assert [len(b) for b in buckets] == [4, 3, 3]

    def test_execute_all(self):
        grid = TileGrid(DSAConfig("x", "task", tiles=4))
        grid.configure_all(lambda x: x + 1)
        assert sorted(grid.execute_all([1, 2, 3])) == [2, 3, 4]

    def test_total_contexts(self):
        grid = TileGrid(DSAConfig("x", "task", tiles=4, walker_contexts=3))
        assert grid.total_contexts == 12


class TestGorgon:
    def test_scan_requests_carry_data_addresses(self):
        g = Gorgon(SCAN_CONFIG)
        reqs = g.scan_requests(table(), [1, 2, 3])
        assert len(reqs) == 3
        assert all(r.data_address is not None for r in reqs)

    def test_join_requests_probe_inner(self):
        g = Gorgon(ANALYTICS_CONFIG)
        outer, inner = table(20), table(50)
        reqs = g.join_requests(outer, inner, "fk")
        assert len(reqs) == 20
        assert all(r.index is inner for r in reqs)

    def test_join_functional_semantics(self):
        outer, inner = table(20), table(20)
        joined = Gorgon.join(outer, inner, "fk")
        assert all(l["fk"] == r["id"] for l, r in joined)

    def test_select_range_bounded_compute(self):
        g = Gorgon(ANALYTICS_CONFIG)
        reqs = g.select_requests(table(), [(0, 1000)])
        assert reqs[0].compute_cycles <= g.config.compute_cycles_per_walk * 8


class TestCapstan:
    def test_spmm_requests_per_nonzero(self):
        b = DynamicSparseTensor.from_coo(
            (10, 10), [(r, c, 1.0) for r in range(3) for c in range(3)]
        )
        cap = Capstan(SPMM_CONFIG)
        a_rows = [[(0, 1.0), (2, 1.0)], [(1, 1.0)]]
        reqs = cap.spmm_requests(a_rows, b)
        assert len(reqs) == 3
        assert {r.key for r in reqs} == {0, 1, 2}

    def test_spmm_functional_matches_dense(self):
        triples = [(0, 0, 2.0), (1, 1, 3.0), (0, 1, 4.0)]
        b = DynamicSparseTensor.from_coo((2, 2), triples)
        a_rows = [[(0, 1.0), (1, 1.0)]]
        out = Capstan.spmm(a_rows, b, 2)
        # C[0][j] = sum_k A[0,k] B[k,j] = B[0,j] + B[1,j]
        assert out[0] == {0: 2.0, 1: 7.0}


class TestAurochs:
    def test_rtree_requests_mix_trees(self):
        rects = [Rect(i, i * 10, i * 10 + 5, i * 3, i * 3 + 5) for i in range(50)]
        rt = RTree2D(rects)
        au = Aurochs(RTREE_CONFIG)
        reqs = au.rtree_requests(rt, [100, 250], y_per_x=2)
        indexes = {id(r.index) for r in reqs}
        assert id(rt.x_tree) in indexes

    def test_pagerank_requests_have_edge_payload(self):
        g = AdjacencyList([(v, (v + 1) % 20) for v in range(20)])
        au = Aurochs(PAGERANK_CONFIG)
        reqs = au.pagerank_requests(g, [0, 1, 2])
        assert len(reqs) == 3
        assert all(r.data_address is not None for r in reqs)


class TestWidx:
    def test_uses_address_cache(self):
        w = Widx(WIDX_CONFIG)
        from repro.sim.memsys import AddressCacheMemSys

        assert isinstance(w.memsys, AddressCacheMemSys)

    def test_lookup_requests(self):
        w = Widx()
        reqs = w.lookup_requests(table(), [5, 6])
        assert len(reqs) == 2

    def test_join_requests(self):
        w = Widx()
        outer, inner = table(10), table(30)
        reqs = w.join_requests(outer, inner, "fk")
        assert len(reqs) == 10
