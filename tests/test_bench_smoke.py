"""Smoke tests: every ``benchmarks/bench_*.py`` target at tiny scale.

The pytest bench files under ``benchmarks/`` assert *paper trends*
(speedup orderings, miss-rate gaps) that are calibrated for the default
``REPRO_BENCH_SCALE``; at smoke scale the cache/working-set ratios invert
and those assertions are meaningless. What must hold at any scale is that
each target's run_*/format_* pipeline completes and emits well-formed
rows. Every test here drives the same ``repro.bench`` entry points its
bench file drives, at scale 0.01, and the completeness guard fails if a
new ``bench_*.py`` lands without a smoke entry.
"""

from pathlib import Path

import pytest

from repro.bench import (
    ablation,
    adaptivity,
    breakdown,
    dynamic,
    energy,
    occupancy,
    scale_sensitivity,
    scaling,
    seeds,
    sweep,
    tables,
    tagmatch,
    trends,
)
from repro.bench import speedup as speedup_mod
from repro.bench import summary as summary_mod
from repro.workloads.suite import WORKLOAD_BUILDERS, build_workload

SCALE = 0.01
BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

#: bench-file stem -> smoke test function (filled by @smokes).
SMOKE_TARGETS: dict[str, object] = {}


def smokes(target: str):
    """Mark a test as the smoke entry for one ``benchmarks/<target>.py``."""

    def deco(fn):
        SMOKE_TARGETS[target] = fn
        return fn

    return deco


def assert_rows(text: str) -> None:
    """The formatted figure is a non-empty table: header plus data rows."""
    assert isinstance(text, str)
    lines = [line for line in text.splitlines() if line.strip()]
    assert len(lines) >= 2, f"no data rows in:\n{text}"


@pytest.fixture(scope="module")
def workloads():
    return {
        name: build_workload(name, scale=SCALE) for name in WORKLOAD_BUILDERS
    }


@pytest.fixture(scope="module")
def trend_results(workloads):
    return trends.run_trends(scale=SCALE, prebuilt=workloads)


@pytest.fixture(scope="module")
def energy_results(workloads):
    return energy.run_energy(scale=SCALE, prebuilt=workloads)


@smokes("bench_fig07_tagmatch")
def test_fig07_tagmatch():
    assert_rows(tagmatch.format_fig7(tagmatch.run_tagmatch()))


@smokes("bench_table2_workloads")
def test_table2_workloads(workloads):
    assert_rows(tables.format_table2(list(workloads.values())))


@smokes("bench_fig15_missrate")
def test_fig15_missrate(trend_results):
    assert_rows(trends.format_fig15(trend_results))


@smokes("bench_fig16_workingset")
def test_fig16_workingset(trend_results):
    assert_rows(trends.format_fig16(trend_results))


@smokes("bench_fig17_walklatency")
def test_fig17_walklatency(trend_results):
    assert_rows(trends.format_fig17(trend_results))


@smokes("bench_fig18_speedup")
def test_fig18_speedup(workloads):
    results = speedup_mod.run_speedups(scale=SCALE, prebuilt=workloads)
    assert_rows(speedup_mod.format_fig18(results))


@smokes("bench_fig19_dram_energy")
def test_fig19_dram_energy(energy_results):
    assert_rows(energy.format_fig19(energy_results))


@smokes("bench_fig25_cache_energy")
def test_fig25_cache_energy(energy_results):
    assert_rows(energy.format_fig25(energy_results))


@smokes("bench_fig20_breakdown")
def test_fig20_breakdown(workloads):
    results = breakdown.run_breakdown(scale=SCALE, prebuilt=workloads)
    assert_rows(breakdown.format_fig20(results))


@smokes("bench_fig21_occupancy")
def test_fig21_occupancy(workloads):
    results = occupancy.run_occupancy(scale=SCALE, prebuilt=workloads)
    assert_rows(occupancy.format_fig21(results))


@smokes("bench_fig22_adaptivity")
def test_fig22_adaptivity(workloads):
    result = adaptivity.run_adaptivity(scale=SCALE, prebuilt=workloads["scan"])
    assert_rows(adaptivity.format_fig22(result))


@smokes("bench_fig23_scaling")
def test_fig23_scaling():
    cells = scaling.run_records_sweep(scales=(SCALE,), cache_sizes=(4 * 1024,))
    assert_rows(scaling.format_fig23a(cells))
    depth_cells = scaling.run_depth_sweep(depths=(6,), scale=SCALE)
    assert_rows(scaling.format_fig23b(depth_cells))


@smokes("bench_fig24_sweep")
def test_fig24_sweep(workloads):
    cells = sweep.run_sweep(
        workloads=("join",), tiles=(4, 8), caches=(2 * 1024, 8 * 1024),
        scale=SCALE, prebuilt=workloads,
    )
    assert_rows(sweep.format_fig24(cells))


@smokes("bench_robustness")
def test_robustness():
    result = seeds.run_seed_sweep("scan", seeds=(0, 1), scale=SCALE)
    assert_rows(seeds.format_seed_sweep(result))


@smokes("bench_scale_sensitivity")
def test_scale_sensitivity():
    points = scale_sensitivity.run_scale_sensitivity(
        "scan", scales=(SCALE, 2 * SCALE)
    )
    assert_rows(scale_sensitivity.format_scale_sensitivity(points, "scan"))


@smokes("bench_scale_sweep")
def test_scale_sweep():
    from repro.bench import scale_sweep

    # Tiny paper fractions (floors dominate the sizing); the trend
    # predicates are calibrated for the real CI fractions, so the smoke
    # only requires the pipeline to complete and render.
    points = scale_sweep.run_scale_sweep(points=(0.0001, 0.0005))
    assert_rows(scale_sweep.format_sweep(points))
    for p in points:
        assert p.build_peak_bytes <= p.budget_bytes
        assert set(p.metrics) == set(scale_sweep.SYSTEMS)


@smokes("bench_ext_dynamic")
def test_ext_dynamic():
    results = dynamic.run_dynamic_mix(num_records=400, num_ops=300)
    assert_rows(dynamic.format_dynamic_mix(results))


@smokes("bench_ablation")
def test_ablation(workloads):
    scan = workloads["scan"]
    assert_rows(ablation.format_geometry(
        ablation.run_geometry_sweep(scan, ways_options=(1, 4))))
    assert_rows(ablation.format_shared_vs_private(
        ablation.run_shared_vs_private(scan, partitions=4)))
    assert_rows(ablation.format_toggles(ablation.run_mechanism_toggles(scan)))
    assert_rows(ablation.format_scheduling(ablation.run_scheduling(scan)))


@smokes("bench_table3_summary")
def test_table3_summary():
    assert_rows(summary_mod.format_table3(summary_mod.run_summary(scale=SCALE)))


@smokes("bench_chaos")
def test_chaos():
    from repro.bench import chaos

    curve = chaos.run_chaos("scan", rates=(0.0, 0.05), scale=SCALE)
    assert_rows(chaos.format_chaos(curve))
    assert not chaos.check_graceful(curve)


@smokes("bench_serve")
def test_serve():
    from repro.bench import serve as serve_mod

    curve = serve_mod.run_serve_sweep(
        "scan", loads=(0.5, 1.3), scale=SCALE, duration_ms=2)
    assert_rows(serve_mod.format_serve(curve))
    assert all(p.completed == p.offered > 0 for p in curve.points)
    # The calibrated sweep keeps its physics at any scale: the past-
    # saturation point queues harder than the half-load point.
    assert curve.points[1].p99 >= curve.points[0].p99


def test_serve_least_loaded_beats_round_robin_on_skew():
    """With half the fleet running at quarter speed, a backlog-aware
    balancer must not lose to blind round-robin on tail latency."""
    from repro.bench import serve as serve_mod

    kwargs = dict(loads=(0.6,), scale=SCALE, duration_ms=2,
                  tile_speedups=(1.0, 0.25, 1.0, 0.25))
    rr = serve_mod.run_serve_sweep("scan", balancer="round_robin", **kwargs)
    ll = serve_mod.run_serve_sweep("scan", balancer="least_loaded", **kwargs)
    assert ll.points[0].p99 <= rr.points[0].p99


def test_serve_cli_end_to_end(capsys):
    """`python -m repro serve` at smoke scale: runs, prints the curve."""
    from repro.cli import main

    rc = main(["serve", "scan", "--scale", "0.01", "--duration-ms", "2",
               "--loads", "0.5,1.0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Saturation curve" in out
    assert_rows(out)


def test_every_bench_file_has_a_smoke_entry():
    bench_files = {path.stem for path in BENCH_DIR.glob("bench_*.py")}
    assert bench_files, "benchmarks/ directory went missing"
    missing = bench_files - set(SMOKE_TARGETS)
    assert not missing, (
        f"bench files without a smoke test: {sorted(missing)} — add a "
        f"@smokes(...) entry to tests/test_bench_smoke.py"
    )
    stale = set(SMOKE_TARGETS) - bench_files
    assert not stale, f"smoke entries for deleted bench files: {sorted(stale)}"
