"""Tests for the simulate() driver and RunResult metrics."""

import pytest

from repro.indexes.bplustree import BPlusTree
from repro.params import BLOCK_SIZE, CacheParams, SimParams
from repro.sim.memsys import make_memsys
from repro.sim.metrics import RunResult, WalkRequest, simulate


@pytest.fixture(scope="module")
def tree():
    return BPlusTree.bulk_load([(k, k) for k in range(1_000)], fanout=4)


def requests(tree, keys, **kw):
    return [WalkRequest(tree, k, **kw) for k in keys]


class TestSimulate:
    def test_basic_run(self, tree):
        ms = make_memsys("stream")
        result = simulate(ms, requests(tree, [1, 2, 3]), total_index_blocks=tree.total_blocks())
        assert result.num_walks == 3
        assert result.makespan > 0
        assert result.name == "stream"

    def test_stream_working_set_is_one(self, tree):
        ms = make_memsys("stream")
        result = simulate(ms, requests(tree, range(100)), total_index_blocks=tree.total_blocks())
        assert result.working_set_fraction == pytest.approx(1.0)

    def test_cached_working_set_below_one(self, tree):
        ms = make_memsys("metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE))
        keys = [k % 50 for k in range(500)]
        result = simulate(ms, requests(tree, keys), total_index_blocks=tree.total_blocks())
        assert result.working_set_fraction < 0.7

    def test_compute_cycles_add_latency(self, tree):
        ms1 = make_memsys("stream")
        base = simulate(ms1, requests(tree, [1]))
        ms2 = make_memsys("stream")
        heavy = simulate(ms2, requests(tree, [1], compute_cycles=10_000))
        assert heavy.makespan > base.makespan + 9_000

    def test_data_access_counted(self, tree):
        from repro.mem.layout import Allocator

        ms = make_memsys("stream")
        result = simulate(
            ms,
            requests(tree, [1], data_address=Allocator.DATA_BASE, data_bytes=64),
        )
        # Data access reaches DRAM but is excluded from index traffic.
        assert result.index_dram_accesses < result.dram.accesses

    def test_untimed_mode(self, tree):
        ms = make_memsys("stream")
        result = simulate(ms, requests(tree, [1, 2]), timed=False)
        assert result.makespan > 0

    def test_record_latencies(self, tree):
        ms = make_memsys("stream")
        result = simulate(ms, requests(tree, [1, 2]), record_latencies=True)
        assert len(result.walk_latencies) == 2


class TestRunResult:
    def make(self, **kw):
        from repro.mem.stats import DRAMStats

        defaults = dict(
            name="x", makespan=100, num_walks=10, total_walk_cycles=500,
            dram=DRAMStats(), cache_stats=None, total_index_blocks=100,
        )
        defaults.update(kw)
        return RunResult(**defaults)

    def test_avg_walk_latency(self):
        assert self.make().avg_walk_latency == 50.0

    def test_avg_latency_empty(self):
        assert self.make(num_walks=0, total_walk_cycles=0).avg_walk_latency == 0.0

    def test_miss_rate_no_cache(self):
        assert self.make().miss_rate == 1.0

    def test_speedup(self):
        fast = self.make(makespan=50)
        slow = self.make(makespan=200)
        assert fast.speedup_vs(slow) == 4.0

    def test_working_set_no_baseline(self):
        assert self.make().working_set_fraction == 0.0

    def test_working_set_fraction_capped(self):
        r = self.make(index_dram_accesses=500, baseline_index_accesses=100)
        assert r.working_set_fraction == 1.0


class TestCrossSystemInvariants:
    """Relationships that must hold between organizations on any workload."""

    def test_caches_never_exceed_stream_traffic(self, tree):
        keys = [k % 100 for k in range(400)]
        blocks = tree.total_blocks()
        stream = simulate(make_memsys("stream"), requests(tree, keys), total_index_blocks=blocks)
        for kind in ("address", "xcache", "metal_ix"):
            run = simulate(make_memsys(kind), requests(tree, keys), total_index_blocks=blocks)
            assert run.index_dram_accesses <= stream.index_dram_accesses

    def test_metal_short_circuits_reduce_visits(self, tree):
        keys = [k % 100 for k in range(400)]
        stream = simulate(make_memsys("stream"), requests(tree, keys))
        metal = simulate(make_memsys("metal_ix"), requests(tree, keys))
        assert metal.nodes_visited < stream.nodes_visited


class TestToDict:
    def test_json_serializable(self, tree):
        import json

        ms = make_memsys("metal_ix")
        result = simulate(ms, requests(tree, [1, 2, 3]),
                          total_index_blocks=tree.total_blocks())
        payload = result.to_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["system"] == "metal_ix"
        assert back["num_walks"] == 3
        assert back["cache"]["accesses"] == 3

    def test_stream_has_no_cache_section(self, tree):
        ms = make_memsys("stream")
        result = simulate(ms, requests(tree, [1]))
        assert result.to_dict()["cache"] is None
