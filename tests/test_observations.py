"""The paper's numbered observations (Section 5.1/5.2) as executable tests.

Each test names the observation it verifies; together they pin the
qualitative claims the reproduction must preserve regardless of scale.
"""

import pytest

from repro.bench.runner import compare_systems, run_workload
from repro.bench.trends import run_trends
from repro.workloads.suite import build_workload

SCALE = 0.12


@pytest.fixture(scope="module")
def trends():
    prebuilt = {"scan": build_workload("scan", scale=SCALE),
                "join": build_workload("join", scale=SCALE)}
    return run_trends(("scan", "join"), scale=SCALE, prebuilt=prebuilt)


class TestObservation1:
    """Address-caches are limited by working set; policy has less impact."""

    def test_opt_policy_does_not_rescue_the_organization(self, trends):
        for trend in trends:
            fa = trend.runs["fa_opt"]
            metal = trend.runs["metal"]
            # Even optimal replacement keeps pulling the index from DRAM
            # every walk (no short-circuit): its per-walk latency floor is
            # the serial probe chain + deep-level misses.
            assert fa.avg_walk_latency > metal.avg_walk_latency * 0.8
            assert fa.short_circuited == 0


class TestObservation2:
    """Miss rates can be misleading when comparing organizations."""

    def test_lower_miss_rate_does_not_imply_faster(self, trends):
        for trend in trends:
            fa = trend.runs["fa_opt"]
            metal_ix = trend.runs["metal_ix"]
            # METAL-IX's probe-level miss rate is near zero (the root
            # covers everything), FA-OPT's is real — yet FA-OPT's hit path
            # still walks every level.
            assert metal_ix.miss_rate < fa.miss_rate
            # And X-cache's high miss rate coexists with real speedup over
            # streaming on hit-friendly workloads (hit fully eliminates
            # the walk).
            x = trend.runs["xcache"]
            assert x.miss_rate > 0.5


class TestObservation3:
    """X-cache has high miss rate since the leaf working set is large."""

    def test_leaf_only_tagging_misses(self, trends):
        for trend in trends:
            assert 0.5 < trend.runs["xcache"].miss_rate <= 1.0

    def test_xcache_misses_pay_full_walks(self):
        wl = build_workload("scan", scale=SCALE)
        x = run_workload(wl, "xcache")
        height = wl.indexes[0].height
        misses = x.cache_stats.misses
        # Every miss re-walks root-to-leaf.
        assert x.nodes_visited == pytest.approx(misses * height, rel=0.05)


class TestObservation4:
    """METAL short-circuits more walks, reducing the working set."""

    def test_working_set_below_xcache(self, trends):
        for trend in trends:
            assert (trend.runs["metal"].working_set_fraction
                    < trend.runs["xcache"].working_set_fraction)

    def test_most_walks_short_circuit(self, trends):
        for trend in trends:
            metal = trend.runs["metal"]
            assert metal.short_circuited > metal.num_walks * 0.6


class TestObservation5:
    """METAL reduces walk latency vs X-cache (and holds vs FA-OPT)."""

    def test_latency_vs_xcache(self, trends):
        for trend in trends:
            ratio = (trend.runs["xcache"].avg_walk_latency
                     / trend.runs["metal"].avg_walk_latency)
            assert ratio > 1.3  # paper: 1.5x


class TestObservation6:
    """METAL shrinks the cache size requirement."""

    def test_small_metal_matches_bigger_address_cache(self):
        wl = build_workload("scan", scale=SCALE)
        small_metal = run_workload(wl, "metal", cache_bytes=4 * 1024)
        big_addr = run_workload(wl, "address", cache_bytes=16 * 1024)
        # A 4x smaller IX-cache stays within 40% of the address cache
        # (at paper scale it outright wins by 20%).
        assert small_metal.makespan < big_addr.makespan * 1.4


class TestSection52:
    """Headline performance relationships of the performance evaluation."""

    def test_reach_workloads_favor_metal_over_xcache(self):
        for name in ("scan", "join"):
            wl = build_workload(name, scale=SCALE)
            runs = compare_systems(wl, kinds=("xcache", "metal"))
            assert runs["metal"].makespan < runs["xcache"].makespan / 1.5

    def test_deep_beats_shallow_advantage(self):
        deep = compare_systems(build_workload("sets", scale=SCALE),
                               kinds=("xcache", "metal"))
        shallow = compare_systems(build_workload("sets_s", scale=SCALE),
                                  kinds=("xcache", "metal"))
        deep_ratio = deep["xcache"].makespan / deep["metal"].makespan
        shallow_ratio = shallow["xcache"].makespan / shallow["metal"].makespan
        assert deep_ratio > shallow_ratio
