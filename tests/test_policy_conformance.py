"""Conformance suite for pluggable IX-cache replacement policies.

Every registered policy must honour the protocol contract the cache
relies on (victims come from the candidate list, choices are
deterministic, ``clear()`` resets cross-entry state), and the default
policy must reproduce the pre-refactor simulation byte-for-byte — the
committed golden digests pin that across all six systems, both index
backends, scan and select.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.ix_cache import IXCache
from repro.core.policy import (
    POLICIES,
    UtilityRRIPPolicy,
    make_policy,
)
from repro.indexes.base import IndexNode
from repro.obs.tracer import Tracer
from repro.params import BLOCK_SIZE, CacheParams

GOLDEN_PATH = Path(__file__).parent / "golden_policy_baseline.json"

POLICY_NAMES = sorted(POLICIES)


def node(level, lo, hi, keys=None):
    keys = keys if keys is not None else [lo, hi]
    n = IndexNode(level, keys, values=[0] * len(keys), lo=lo, hi=hi)
    n.nbytes = n.byte_size()
    return n


def cache(entries=32, ways=4, **kw) -> IXCache:
    return IXCache(
        CacheParams(capacity_bytes=entries * BLOCK_SIZE, ways=ways), **kw
    )


def fill_one_set(c: IXCache, count: int, life: int = 0, width: int = 4):
    """Insert ``count`` disjoint same-set leaf nodes (no coalescing)."""
    for i in range(count):
        lo = i * (width + 1)
        c.insert(node(5, lo, lo + width), life=life)


def resident_tags(c: IXCache):
    return sorted((e.tag.lo, e.tag.hi, e.tag.level) for e in c.entries())


@pytest.fixture(params=POLICY_NAMES)
def policy_name(request):
    return request.param


class TestVictimContract:
    def test_victim_always_from_candidates_and_unpinned(self, policy_name):
        c = cache(key_block_bits=30, coalesce=False, policy=policy_name)
        chosen = []
        orig = c.policy.select_victim

        def spy(candidates):
            victim = orig(candidates)
            chosen.append((list(candidates), victim))
            return victim

        c.policy.select_victim = spy
        fill_one_set(c, 3 * c.ways)
        assert chosen, "overfilling a set must trigger evictions"
        for candidates, victim in chosen:
            assert victim in candidates
            assert victim.life <= 0, "policy evicted a pinned entry"

    def test_eviction_count_conservation(self, policy_name):
        c = cache(key_block_bits=30, coalesce=False, policy=policy_name)
        fill_one_set(c, 4 * c.ways)
        stats = c.stats
        assert stats.insertions - stats.evictions == len(c)
        assert stats.evictions > 0

    def test_deterministic_victim_choice(self, policy_name):
        def run():
            c = cache(key_block_bits=30, coalesce=False, policy=policy_name)
            fill_one_set(c, 3 * c.ways)
            # Interleave probes so recency/frequency state diverges from
            # insertion order, then force more evictions.
            for key in (0, 5, 0, 10, 5, 0):
                c.probe(key)
            for i in range(c.ways):
                lo = 1000 + i * 5
                c.insert(node(5, lo, lo + 4))
            return resident_tags(c)

        assert run() == run()

    def test_clear_resets_policy_state(self, policy_name):
        c = cache(key_block_bits=30, coalesce=False, policy=policy_name)
        fill_one_set(c, 3 * c.ways)
        for key in (0, 5, 10):
            c.probe(key)
        c.clear()
        assert len(c) == 0
        # A cleared cache must behave like a fresh one under the same
        # sequence (cross-entry state — LRU ticks — must not leak).
        fresh = cache(key_block_bits=30, coalesce=False, policy=policy_name)
        for target in (c, fresh):
            fill_one_set(target, 3 * target.ways)
            for key in (0, 5, 0, 10):
                target.probe(key)
        assert resident_tags(c) == resident_tags(fresh)

    def test_default_policy_flag_detects_subclasses(self):
        # LevelCostPolicy subclasses UtilityRRIPPolicy but overrides the
        # victim score: the inlined fast path must not swallow it.
        c = cache(policy="level_cost")
        assert not c._default_policy
        assert c._default_policy is False
        assert cache()._default_policy is True

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("not_a_policy")


class TestPinnedReclaimAging:
    """Regression: survivor aging must run on both eviction paths.

    Before the policy refactor, ``_evict_from`` aged survivors after a
    forced (unpinned) eviction but *not* after a pinned reclaim — a
    fully-pinned set under eviction pressure kept its utility counters
    permanently fresher than an unpinned one. Both paths now route
    through ``epoch_decay``.
    """

    def test_pinned_reclaim_ages_survivors(self):
        c = cache(key_block_bits=30, coalesce=False)
        fill_one_set(c, c.ways, life=100)
        survivors_before = {e.seq: e.utility for e in c.entries()}
        assert all(e.pinned for e in c.entries())
        # A fully pinned set: the next insert must reclaim a pinned entry.
        c.insert(node(5, 9000, 9004))
        reclaimed = set(survivors_before) - {e.seq for e in c.entries()}
        assert len(reclaimed) == 1
        aged = [
            e for e in c.entries()
            if e.seq in survivors_before
            and e.utility == survivors_before[e.seq] - 1
        ]
        # Every pre-existing survivor aged one notch (victim utility 3 > 0).
        assert len(aged) == len(survivors_before) - 1

    def test_unpinned_eviction_still_ages_survivors(self):
        c = cache(key_block_bits=30, coalesce=False)
        fill_one_set(c, c.ways)
        before = {e.seq: e.utility for e in c.entries()}
        c.insert(node(5, 9000, 9004))
        aged = [
            e for e in c.entries()
            if e.seq in before and e.utility == before[e.seq] - 1
        ]
        assert len(aged) == len(before) - 1


class TestCoverageBackfill:
    """invalidate_range eviction accounting + note_bypass tracing."""

    def test_invalidate_range_counts_evictions(self):
        c = cache(key_block_bits=30, coalesce=False)
        fill_one_set(c, 4)  # exactly one set's worth: nothing evicted yet
        resident = len(c)
        evictions_before = c.stats.evictions
        assert evictions_before == 0
        removed = c.invalidate_range(0, 14)  # overlaps the first 3 nodes
        assert removed == 3
        assert c.stats.evictions == evictions_before + removed
        assert len(c) == resident - removed

    def test_invalidate_range_covers_wide_array(self):
        c = cache(key_block_bits=4, replication_limit=2, coalesce=False)
        c.insert(node(0, 0, 10_000))  # spans many blocks -> wide array
        assert len(c._wide) == 1
        assert c.invalidate_range(5_000, 5_001) == 1
        assert len(c._wide) == 0
        assert c.stats.evictions == 1

    def test_invalidate_range_rejects_inverted(self):
        with pytest.raises(ValueError, match="invalid range"):
            cache().invalidate_range(10, 5)

    def test_note_bypass_traces_and_counts(self):
        c = cache()
        tracer = Tracer()
        c.attach_obs(tracer)
        c.note_bypass()
        c.note_bypass()
        assert c.stats.bypasses == 2
        events = tracer.events("ix_bypass")
        assert len(events) == 2
        assert all(e.args["reason"] == "pattern" for e in events)

    def test_invalidate_range_traces_evictions(self):
        c = cache(key_block_bits=30, coalesce=False)
        fill_one_set(c, 4)
        tracer = Tracer()
        c.attach_obs(tracer)
        removed = c.invalidate_range(0, 100)
        events = tracer.events("ix_evict")
        assert len(events) == removed
        assert all(e.args["reason"] == "invalidate" for e in events)


class TestGoldenByteIdentity:
    """The default policy reproduces pre-refactor results byte-for-byte."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as f:
            return json.load(f)["digests"]

    def test_golden_covers_full_matrix(self, golden):
        from repro.bench.runner import SYSTEMS

        assert len(golden) == 2 * 2 * len(SYSTEMS)

    @pytest.mark.parametrize("workload_name", ["scan", "select"])
    @pytest.mark.parametrize("backend", ["soa", "object"])
    def test_byte_identical_to_golden(self, golden, workload_name, backend):
        from repro.bench.runner import SYSTEMS, run_workload
        from repro.workloads.suite import build_workload

        workload = build_workload(workload_name, scale=0.01, backend=backend)
        for system in SYSTEMS:
            result = run_workload(workload, system)
            canon = json.dumps(result.to_dict(), sort_keys=True)
            digest = hashlib.sha256(canon.encode()).hexdigest()
            key = f"0.01/{workload_name}/{backend}/{system}"
            assert digest == golden[key], (
                f"{key}: RunResult diverged from the pre-policy-refactor "
                f"golden under the default policy"
            )


class TestDefaultPolicyEquivalence:
    """Explicit utility_rrip instance == the inlined default fast path."""

    def test_instance_matches_name(self):
        seq = [(5, i * 6, i * 6 + 4) for i in range(12)]
        results = []
        for policy in ("utility_rrip", UtilityRRIPPolicy()):
            c = cache(key_block_bits=30, coalesce=False, policy=policy)
            for level, lo, hi in seq:
                c.insert(node(level, lo, hi))
                c.probe(lo)
            results.append((resident_tags(c), c.stats.evictions))
        assert results[0] == results[1]
