"""Profiler correctness: exact attribution, reconciliation, series.

The load-bearing invariant of the profiling layer is *exactness*: per
walk, the six attribution components sum to the measured walk latency,
and the summed spans reconcile with the RunResult aggregates, cycle for
cycle. These tests pin that invariant across memory systems, plus the
offline series reconstruction (IX occupancy integrated from events must
equal the live cache's entry count) and the attribution cross-check in
bench/breakdown.py.
"""

from dataclasses import replace

import pytest

from repro.bench.runner import build_memsys
from repro.obs.profile import (
    ATTRIBUTION_CATEGORIES,
    build_profile,
    format_profile,
    reconcile,
)
from repro.obs.series import engine_series, gen_series
from repro.obs.tracer import Tracer
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload

SCALE = 0.03
WORKLOAD = "scan"


def traced_pair(kind: str, workload_name: str = WORKLOAD, scale: float = SCALE):
    """(RunResult, memsys) for one traced run — tests need both."""
    workload = build_workload(workload_name, scale=scale, seed=0)
    sim = replace(workload.config.sim_params(), trace=True)
    memsys = build_memsys(kind, workload, sim=sim)
    result = simulate(memsys, workload.requests, sim, workload.total_index_blocks)
    return result, memsys


@pytest.fixture(scope="module")
def metal_pair():
    return traced_pair("metal")


@pytest.fixture(scope="module")
def metal_profile(metal_pair):
    result, _ = metal_pair
    return build_profile(result.tracer)


class TestExactReconciliation:
    @pytest.mark.parametrize("kind", ["stream", "address", "xcache",
                                      "metal_ix", "metal"])
    def test_profile_reconciles_across_systems(self, kind):
        result, _ = traced_pair(kind)
        assert result.tracer.dropped == 0
        profile = build_profile(result.tracer)
        assert reconcile(profile, result) == []

    def test_every_span_fully_attributed(self, metal_profile):
        for span in metal_profile.spans:
            assert span.unattributed == 0, (
                f"walk {span.walk}: latency {span.latency} != "
                f"attributed {span.attributed} ({span.attribution})"
            )

    def test_totals_match_span_sums(self, metal_profile):
        for category in ATTRIBUTION_CATEGORIES:
            assert metal_profile.totals[category] == sum(
                span.attribution.get(category, 0)
                for span in metal_profile.spans
            )

    def test_fractions_sum_to_one(self, metal_profile):
        assert sum(metal_profile.fractions().values()) == pytest.approx(1.0)

    def test_spans_ordered_and_bounded(self, metal_pair, metal_profile):
        result, _ = metal_pair
        walks = [span.walk for span in metal_profile.spans]
        assert walks == sorted(walks)
        assert metal_profile.makespan == result.makespan
        for span in metal_profile.spans:
            assert span.end - span.start == span.latency
            assert 0 <= span.start <= span.end <= result.makespan

    def test_stream_has_no_probe_cycles(self):
        # The streaming DSA has no cache: nothing to probe, everything
        # from DRAM.
        result, _ = traced_pair("stream")
        profile = build_profile(result.tracer)
        assert profile.totals["probe"] == 0
        assert profile.totals["dram_hit"] + profile.totals["dram_miss"] > 0

    def test_metal_shifts_cycles_from_dram_to_probe(self, metal_profile):
        stream_result, _ = traced_pair("stream")
        stream = build_profile(stream_result.tracer)
        dram = ("dram_queue", "dram_hit", "dram_miss")
        metal_dram = sum(metal_profile.totals[c] for c in dram)
        stream_dram = sum(stream.totals[c] for c in dram)
        assert metal_dram < stream_dram
        assert metal_profile.totals["probe"] > 0

    def test_strict_rejects_dropped_events(self):
        workload = build_workload(WORKLOAD, scale=SCALE, seed=0)
        sim = replace(workload.config.sim_params(), trace=True,
                      trace_buffer=64)
        memsys = build_memsys("metal", workload, sim=sim)
        result = simulate(memsys, workload.requests, sim,
                          workload.total_index_blocks)
        assert result.tracer.dropped > 0
        with pytest.raises(ValueError, match="dropped"):
            build_profile(result.tracer)
        # strict=False still builds (approximate) spans.
        build_profile(result.tracer, strict=False)

    def test_prefetches_never_attributed_to_walks(self):
        # address_pf issues next-line prefetches tagged walk=-1: they
        # must not inflate any walk's DRAM attribution, and the profile
        # must still reconcile exactly.
        result, _ = traced_pair("address_pf")
        prefetch_events = [e for e in result.tracer.events("dram_access")
                           if e.walk < 0]
        assert prefetch_events, "expected walk=-1 prefetch DRAM accesses"
        profile = build_profile(result.tracer)
        assert reconcile(profile, result) == []


class TestProfileOutputs:
    def test_to_dict_shape(self, metal_profile):
        d = metal_profile.to_dict()
        assert d["num_walks"] == metal_profile.num_walks
        assert set(d["attribution"]) == set(ATTRIBUTION_CATEGORIES)
        assert d["latency"]["count"] == metal_profile.num_walks
        assert sum(d["attribution"].values()) == d["total_walk_cycles"]

    def test_format_profile_renders(self, metal_profile):
        text = format_profile(metal_profile)
        assert "DRAM row-buffer miss" in text
        assert "p99" in text
        assert "100.0%" in text

    def test_latency_histogram_matches_run(self, metal_pair, metal_profile):
        result, _ = metal_pair
        hist = metal_profile.latency_histogram()
        assert hist.count == result.num_walks
        assert hist.total == result.total_walk_cycles
        assert hist.max == max(result.walk_latencies)


class TestGenSeries:
    def test_occupancy_matches_live_cache(self, metal_pair):
        # The integrated (inserts - evicts) reconstruction must land
        # exactly on the cache's live entry count at end of run.
        result, memsys = metal_pair
        series = gen_series(result.tracer)
        assert series.column("ix_resident")[-1] == len(memsys.policy.cache)

    def test_occupancy_never_negative_and_bounded(self, metal_pair):
        result, memsys = metal_pair
        series = gen_series(result.tracer)
        capacity = memsys.policy.cache.capacity_entries
        for resident in series.column("ix_resident"):
            assert 0 <= resident <= capacity

    def test_window_counts_sum_to_event_counts(self, metal_pair):
        result, _ = metal_pair
        series = gen_series(result.tracer, walk_interval=32)
        counts = result.tracer.counts
        assert sum(series.column("probes")) == counts.get("ix_probe", 0)
        assert sum(series.column("ix_evictions")) == counts.get("ix_evict", 0)
        assert sum(series.column("short_circuits")) == counts.get(
            "ix_short_circuit", 0)

    def test_walk_column_covers_run(self, metal_pair):
        result, _ = metal_pair
        series = gen_series(result.tracer, walk_interval=64)
        walks = series.column("walk")
        assert walks == sorted(walks)
        assert walks[-1] == result.num_walks - 1

    def test_rates_bounded(self, metal_pair):
        result, _ = metal_pair
        series = gen_series(result.tracer)
        for rate in series.column("hit_rate"):
            assert 0.0 <= rate <= 1.0
        for rate in series.column("short_circuit_rate"):
            assert 0.0 <= rate <= 1.0


class TestEngineSeries:
    def test_dram_counts_reconcile_with_stats(self, metal_pair):
        result, _ = metal_pair
        series = engine_series(result.tracer, makespan=result.makespan)
        assert sum(series.column("dram_accesses")) == result.dram.accesses
        assert sum(series.column("row_hits")) == result.dram.row_hits
        assert sum(series.column("row_misses")) == result.dram.row_misses

    def test_bandwidth_is_bytes_over_interval(self, metal_pair):
        result, _ = metal_pair
        series = engine_series(result.tracer, cycle_interval=100)
        for row in series.to_dicts():
            assert row["bandwidth_bytes_per_cycle"] == pytest.approx(
                row["bytes"] / 100)

    def test_cycle_column_within_makespan(self, metal_pair):
        result, _ = metal_pair
        series = engine_series(result.tracer, makespan=result.makespan)
        cycles = series.column("cycle")
        assert cycles == sorted(cycles)
        assert all(0 <= c <= result.makespan for c in cycles)


class TestSeriesContainer:
    def test_csv_round_trip(self, tmp_path):
        from repro.obs.series import Series

        series = Series("t", ["a", "b"], [[1, 0.5], [2, 1.0 / 3.0]])
        path = tmp_path / "s.csv"
        series.write_csv(str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,0.5"
        assert len(lines) == 3

    def test_empty_tracer_gives_empty_series(self):
        tracer = Tracer(capacity=16)
        assert len(gen_series(tracer)) == 0
        assert len(engine_series(tracer)) == 0


class TestBenchAttributionCrossCheck:
    def test_run_attribution_exact_and_ranked(self):
        # The bench-level cross-check: attribution totals equal walk
        # cycles (exactness survives the bench plumbing), and the DRAM
        # share shrinks going stream -> metal, which is *why* Fig. 20's
        # factors deliver speedup.
        from repro.bench.breakdown import run_attribution

        results = run_attribution(
            workloads=("scan",), systems=("stream", "metal"), scale=SCALE
        )
        assert [r.system for r in results] == ["stream", "metal"]
        by_system = {r.system: r for r in results}
        for r in results:
            assert r.dropped == 0
            assert sum(r.totals.values()) == r.total_walk_cycles
        dram = ("dram_queue", "dram_hit", "dram_miss")
        stream_share = sum(by_system["stream"].fraction(c) for c in dram)
        metal_cycles = sum(by_system["metal"].totals[c] for c in dram)
        stream_cycles = sum(by_system["stream"].totals[c] for c in dram)
        assert metal_cycles < stream_cycles
        assert stream_share > 0.5  # streaming DSA is DRAM-bound

    def test_format_attribution_renders(self):
        from repro.bench.breakdown import AttributionResult, format_attribution

        text = format_attribution([
            AttributionResult("scan", "metal", 100,
                              {c: 0 for c in ATTRIBUTION_CATEGORIES}),
        ])
        assert "dram_miss %" in text
        assert "metal" in text
