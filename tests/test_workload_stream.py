"""KeyStream vs eager keygen: byte-identity is a hard contract.

The committed baselines (BENCH_baseline.json, perf checksums) were
produced by the eager generators in ``repro.workloads.keygen``; the
streamed twins in ``repro.workloads.stream`` must replicate them bit for
bit — across seeds, skews, universes, and *any* chunk size, since the
chunking is exactly what changes between a laptop run and a paper-scale
run. Hypothesis owns that surface; a few example tests pin the structural
properties (prefix heads, restartability, sizing helpers).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import keygen
from repro.workloads.stream import KeyStream, range_spans
from repro.workloads.suite import scaled, workload_stats

universes = st.integers(min_value=1, max_value=500)
counts = st.integers(min_value=0, max_value=600)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
chunk_sizes = st.integers(min_value=1, max_value=700)
skews = st.sampled_from([0.0, 0.3, 0.8, 0.9, 1.2])


@given(universe=universes, count=counts, seed=seeds, chunk=chunk_sizes)
@settings(max_examples=60, deadline=None)
def test_uniform_stream_matches_eager(universe, count, seed, chunk):
    stream = KeyStream.uniform(universe, count, seed=seed, chunk_size=chunk)
    assert stream.materialize() == keygen.uniform_stream(universe, count, seed=seed)


@given(universe=universes, count=counts, seed=seeds, chunk=chunk_sizes,
       skew=skews, shuffle=st.booleans())
@settings(max_examples=60, deadline=None)
def test_zipf_stream_matches_eager(universe, count, seed, chunk, skew, shuffle):
    stream = KeyStream.zipf(
        universe, count, skew=skew, seed=seed, shuffle_ranks=shuffle,
        chunk_size=chunk,
    )
    eager = keygen.zipf_stream(
        universe, count, skew=skew, seed=seed, shuffle_ranks=shuffle
    )
    assert stream.materialize() == eager


@given(universe=st.integers(min_value=1, max_value=300), count=counts,
       seed=seeds, chunk=chunk_sizes,
       num_clusters=st.integers(min_value=1, max_value=12),
       drift=st.sampled_from([0, 7, 64, 512]))
@settings(max_examples=60, deadline=None)
def test_clustered_stream_matches_eager(universe, count, seed, chunk,
                                        num_clusters, drift):
    stream = KeyStream.clustered(
        universe, count, num_clusters=num_clusters, drift_every=drift,
        seed=seed, chunk_size=chunk,
    )
    eager = keygen.clustered_stream(
        universe, count, num_clusters=num_clusters, drift_every=drift,
        seed=seed,
    )
    assert stream.materialize() == eager


@given(universe=universes, count=counts, seed=seeds, chunk=chunk_sizes,
       head=st.integers(min_value=0, max_value=700))
@settings(max_examples=60, deadline=None)
def test_head_is_exact_prefix(universe, count, seed, chunk, head):
    """head(k) must equal the first k keys of the full stream — the
    shuffled-Zipf permutation burn depends on full_count, so this is the
    property the scale sweep's walk cap stands on."""
    stream = KeyStream.zipf(universe, count, seed=seed, chunk_size=chunk)
    full = stream.materialize()
    prefix = stream.head(head)
    assert prefix.materialize() == full[: min(head, count)]
    assert prefix.full_count == stream.full_count


def test_streams_are_restartable():
    stream = KeyStream.zipf(100, 50, seed=3, chunk_size=7)
    assert stream.materialize() == stream.materialize()
    assert list(stream) == stream.materialize()
    assert stream.first() == stream.materialize()[0]
    assert len(stream) == 50


def test_chunks_are_bounded_and_concatenate():
    stream = KeyStream.uniform(1000, 250, seed=1, chunk_size=64)
    blocks = list(stream.chunks())
    assert all(len(b) <= 64 for b in blocks)
    assert sum(len(b) for b in blocks) == 250
    assert np.concatenate(blocks).tolist() == stream.materialize()


def test_empty_stream_edge_cases():
    stream = KeyStream.uniform(10, 0, seed=0)
    assert stream.materialize() == []
    with pytest.raises(ValueError):
        stream.first()
    with pytest.raises(ValueError):
        KeyStream.uniform(0, 5)
    with pytest.raises(ValueError):
        KeyStream.zipf(10, 5, skew=-1.0)


def test_range_spans_matches_eager_range_queries():
    universe, count, span = 300, 120, 16
    starts = KeyStream.zipf(universe, count, skew=0.8, seed=4)
    got = list(range_spans(starts, span, universe))
    assert got == keygen.range_queries(universe, count, span, seed=4)


def test_scaled_helper():
    """One sizing rule everywhere: max(floor, int(count * scale))."""
    assert scaled(40_000, 1.0, 2_000) == 40_000
    assert scaled(40_000, 0.25, 2_000) == 10_000
    assert scaled(40_000, 0.001, 2_000) == 2_000  # floor wins
    assert scaled(40_000, 250.0, 2_000) == 10_000_000  # paper scale
    assert scaled(8_000, 0.0301, 500) == 500


def test_suite_requests_match_eager_generation_at_default_scale():
    """The streamed builders emit the exact walk keys the eager
    generators produced — the request-level face of the byte-identity
    gate (the committed RunResult baselines pin the run level)."""
    from repro.workloads.suite import build_workload

    workload = build_workload("scan", scale=0.1)
    num_records = scaled(40_000, 0.1, 2_000)
    num_walks = scaled(8_000, 0.1, 500)
    expect = keygen.zipf_stream(num_records, num_walks, skew=0.8, seed=0)
    assert [r.key for r in workload.requests] == expect


def test_workload_stats_counts_match_scaled_sizing():
    stats = workload_stats("scan", scale=0.25)
    assert stats["records"] == scaled(40_000, 0.25, 2_000)
    assert stats["walks"] == scaled(8_000, 0.25, 500)
    assert stats["est_soa_bytes"] < stats["est_object_bytes"]
    join = workload_stats("join", scale=1.0)
    assert join["records"] == 40_000 + 6_000  # inner + outer tables
    assert join["walks"] == 2 * 6_000  # probe + chase per outer row
    with pytest.raises(ValueError):
        workload_stats("nope")
