"""Tests for walk scheduling policies and IX-cache way partitioning."""

import pytest

from repro.bench.runner import build_memsys
from repro.core.ix_cache import IXCache
from repro.indexes.base import IndexNode
from repro.params import BLOCK_SIZE, NS_STRIDE, CacheParams
from repro.sim.metrics import WalkRequest, simulate
from repro.sim.scheduler import POLICIES, reorder_distance, schedule
from repro.workloads.suite import build_workload


class TestScheduler:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload("scan", scale=0.06)

    def test_fifo_is_identity(self, workload):
        assert schedule(workload.requests, "fifo") == list(workload.requests)

    def test_key_sorted_orders_globally(self, workload):
        ordered = schedule(workload.requests, "key_sorted")
        keys = [r.key for r in ordered]
        assert keys == sorted(keys)

    def test_batched_is_permutation(self, workload):
        out = schedule(workload.requests, "batched", batch=32)
        assert sorted(r.key for r in out) == sorted(r.key for r in workload.requests)
        # Within each batch, keys are sorted.
        for start in range(0, len(out), 32):
            chunk = [r.key for r in out[start : start + 32]]
            assert chunk == sorted(chunk)

    def test_unknown_policy(self, workload):
        with pytest.raises(ValueError):
            schedule(workload.requests, "random")

    def test_invalid_batch(self, workload):
        with pytest.raises(ValueError):
            schedule(workload.requests, "batched", batch=0)

    def test_reorder_distance(self, workload):
        fifo = schedule(workload.requests, "fifo")
        assert reorder_distance(workload.requests, fifo) == 0.0
        batched = schedule(workload.requests, "batched", batch=16)
        global_sort = schedule(workload.requests, "key_sorted")
        assert (reorder_distance(workload.requests, batched)
                <= reorder_distance(workload.requests, global_sort) + 1e-9)

    def test_key_sorting_improves_locality(self, workload):
        """Adjacent keys share paths: sorted issue raises reuse."""
        fifo_ms = build_memsys("metal_ix", workload)
        fifo = simulate(fifo_ms, schedule(workload.requests, "fifo"),
                        fifo_ms.sim, workload.total_index_blocks)
        sorted_ms = build_memsys("metal_ix", workload)
        batched = simulate(sorted_ms, schedule(workload.requests, "key_sorted"),
                           sorted_ms.sim, workload.total_index_blocks)
        assert batched.index_dram_accesses <= fifo.index_dram_accesses


def node(level, lo, hi, index_id=0):
    n = IndexNode(level, [lo, hi], values=[0, 0],
                  lo=index_id * NS_STRIDE + lo, hi=index_id * NS_STRIDE + hi)
    n.nbytes = n.byte_size()
    return n


class TestWayPartitioning:
    def cache(self, partition=None, ways=8):
        return IXCache(
            CacheParams(capacity_bytes=8 * BLOCK_SIZE, ways=ways),
            key_block_bits=60,  # everything lands in one set
            partition=partition,
            wide_fraction=0.01,
        )

    def test_quota_enforced(self):
        c = self.cache(partition={1: 2})
        for i in range(5):
            c.insert(node(3, i * 100, i * 100 + 5, index_id=1))
        owned = [e for e in c.entries() if e.tag.lo // NS_STRIDE == 1]
        assert len(owned) <= 2

    def test_other_index_unconstrained(self):
        c = self.cache(partition={1: 2})
        for i in range(5):
            c.insert(node(3, i * 100, i * 100 + 5, index_id=2))
        owned = [e for e in c.entries() if e.tag.lo // NS_STRIDE == 2]
        assert len(owned) == 5

    def test_quota_evicts_own_entries_only(self):
        c = self.cache(partition={1: 1, 2: 6})
        victim_node = node(3, 0, 5, index_id=2)
        c.insert(victim_node)
        for i in range(4):
            c.insert(node(3, i * 100, i * 100 + 5, index_id=1))
        # Index 2's entry survives index 1's churn.
        assert any(
            e.tag.lo // NS_STRIDE == 2 for e in c.entries()
        )

    def test_invalid_quota(self):
        with pytest.raises(ValueError):
            self.cache(partition={1: 0})

    def test_partitioned_join_still_works(self):
        wl = build_workload("join", scale=0.05)
        inner, outer = wl.indexes
        memsys = build_memsys(
            "metal_ix", wl,
            partition={inner.index_id: 12, outer.index_id: 4},
        )
        run = simulate(memsys, wl.requests, memsys.sim, wl.total_index_blocks)
        assert run.short_circuited > 0
