"""SLO evaluation: attainment, burn rate, and windowed error budget.

The SLO layer has two fidelities — exact per-request evaluation from a
span log and histogram-based evaluation from any ServeResult — and the
contract is that they agree wherever the histogram is exact (the whole
unit-bucket range). Burn-rate math follows the SRE-workbook definition,
so a few closed-form cases pin it.
"""

from __future__ import annotations

import pytest

from repro.obs.histogram import Histogram
from repro.serve import (
    ServeSpec,
    SLObjective,
    burn_rate,
    evaluate_histogram,
    evaluate_spans,
    simulate_serve,
    windowed_slo,
)

SMALL = 0.01


def _result(**overrides):
    kwargs = dict(scale=SMALL, users=4, tiles=2, duration_ms=1,
                  requests_per_min=6_000_000.0, trace=True)
    kwargs.update(overrides)
    return simulate_serve(ServeSpec.make("scan", **kwargs))


# --------------------------------------------------------------------- #
# Objective and burn math
# --------------------------------------------------------------------- #

def test_objective_validation_and_budget():
    obj = SLObjective(500_000, target=0.99)
    assert obj.budget == pytest.approx(0.01)
    assert obj.label() == "99% <= 500us"
    with pytest.raises(ValueError):
        SLObjective(0)
    with pytest.raises(ValueError):
        SLObjective(1000, target=1.0)
    with pytest.raises(ValueError):
        SLObjective(1000, target=0.0)


def test_burn_rate_closed_form():
    obj = SLObjective(1000, target=0.99)
    # Violating exactly the budgeted 1% burns at exactly 1.0.
    assert burn_rate(1, 100, obj) == pytest.approx(1.0)
    # Violating everything burns at 1/budget.
    assert burn_rate(100, 100, obj) == pytest.approx(100.0)
    assert burn_rate(0, 100, obj) == 0.0
    assert burn_rate(5, 0, obj) == 0.0


def test_report_properties():
    obj = SLObjective(1000, target=0.9)
    report = evaluate_spans(_slow_log(), obj)
    assert report.total == report.good + report.bad
    assert report.met == (report.attainment >= 0.9)
    d = report.to_dict()
    assert d["total"] == report.total and d["burn"] == report.burn


def _slow_log():
    return _result(load=1.5).spans


# --------------------------------------------------------------------- #
# Histogram vs exact span evaluation
# --------------------------------------------------------------------- #

def test_histogram_count_at_or_below_is_conservative():
    hist = Histogram()
    values = [10, 100, 1000, 50_000, 2_000_000]
    for v in values:
        hist.record(v)
    for cut in (5, 10, 99, 1000, 60_000, 3_000_000):
        exact = sum(1 for v in values if v <= cut)
        assert hist.count_at_or_below(cut) <= exact


def test_histogram_and_span_evaluation_agree_on_real_runs():
    """On real serving latencies the histogram's bucket bounds make
    attainment conservative, never optimistic — and picking the cut at
    a bucket bound makes the two fidelities agree exactly."""
    result = _result(load=1.2)
    for latency_ns in (result.latency.percentile(50),
                       result.latency.percentile(99)):
        obj = SLObjective(int(latency_ns), target=0.99)
        from_hist = evaluate_histogram(result.latency, obj)
        from_spans = evaluate_spans(result.spans, obj)
        assert from_hist.total == from_spans.total
        assert from_hist.good <= from_spans.good


def test_attainment_monotone_in_objective():
    result = _result()
    cuts = [10_000, 100_000, 1_000_000, 10_000_000]
    attained = [evaluate_spans(result.spans, SLObjective(c)).attainment
                for c in cuts]
    assert attained == sorted(attained)
    assert attained[-1] == 1.0


# --------------------------------------------------------------------- #
# Windowed burn
# --------------------------------------------------------------------- #

def test_windowed_slo_conserves_totals():
    log = _slow_log()
    obj = SLObjective(200_000, target=0.99)
    series = windowed_slo(log, obj, windows=8)
    assert series.columns == ["t_end", "requests", "good", "attainment",
                              "burn"]
    assert len(series) == 8
    assert sum(series.column("requests")) == len(log)
    overall = evaluate_spans(log, obj)
    assert sum(series.column("good")) == overall.good


def test_windowed_slo_burn_matches_window_population():
    log = _slow_log()
    obj = SLObjective(200_000, target=0.99)
    for row in windowed_slo(log, obj, windows=5).to_dicts():
        if row["requests"]:
            assert row["attainment"] == row["good"] / row["requests"]
            assert row["burn"] == pytest.approx(
                (1 - row["attainment"]) / obj.budget)
        else:
            assert row["attainment"] == 1.0 and row["burn"] == 0.0


def test_windowed_slo_empty_and_validation():
    from repro.obs.spans import SpanLog

    assert len(windowed_slo(SpanLog([]), SLObjective(1000))) == 0
    with pytest.raises(ValueError):
        windowed_slo(SpanLog([]), SLObjective(1000), windows=0)
