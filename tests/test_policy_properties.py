"""Property tests for the policy axis: multi-step LRU, the tuner, exec.

* Multi-step LRU degenerates to exact LRU whenever its step count covers
  the candidate list (steps >= associativity), and its victim always
  comes from the oldest recency class.
* ThresholdTuner proposals are monotone in the driving churn counter and
  always clamp into [min_threshold, max_threshold].
* Auto-tuned runs are fully deterministic through the exec pipeline:
  serial, jobs=4, and warm-cache paths hand back byte-identical payloads.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.policy import (
    MultiStepLRUPolicy,
    ThresholdTuner,
    TrueLRUPolicy,
)
from repro.exec.executor import Executor
from repro.exec.spec import RunSpec
from repro.exec.store import ResultStore


class FakeEntry:
    """Just the fields the LRU selectors read."""

    def __init__(self, stamp: int, seq: int) -> None:
        self.stamp = stamp
        self.seq = seq

    def __repr__(self) -> str:
        return f"FakeEntry(stamp={self.stamp}, seq={self.seq})"


def entries_strategy(max_size: int = 16):
    return st.lists(
        st.integers(min_value=0, max_value=1_000),  # stamps may collide
        min_size=1, max_size=max_size,
    ).map(lambda stamps: [FakeEntry(s, i) for i, s in enumerate(stamps)])


# --------------------------------------------------------------------- #
# Multi-step LRU vs exact LRU
# --------------------------------------------------------------------- #


@given(entries=entries_strategy(), extra=st.integers(min_value=0, max_value=8))
def test_multistep_equals_exact_lru_when_steps_cover_set(entries, extra):
    """steps >= associativity => every candidate is its own recency class."""
    steps = len(entries) + extra
    exact = TrueLRUPolicy().select_victim(list(entries))
    approx = MultiStepLRUPolicy(steps=steps).select_victim(list(entries))
    assert approx is exact


@given(entries=entries_strategy(), steps=st.integers(min_value=1, max_value=16))
def test_multistep_victim_in_oldest_class(entries, steps):
    policy = MultiStepLRUPolicy(steps=steps)
    victim = policy.select_victim(list(entries))
    assert victim in entries
    n = len(entries)
    ranked = sorted(entries, key=lambda e: (e.stamp, e.seq))
    class_size = max(1, -(-n // steps))  # ceil(n / steps)
    oldest_class = ranked[:class_size]
    assert victim in oldest_class


@given(entries=entries_strategy(), steps=st.integers(min_value=1, max_value=16))
def test_multistep_never_evicts_newest_when_distinguishable(entries, steps):
    """With >1 class available, the most recent entry survives."""
    if steps < 2 or len(entries) < 2:
        return
    # Make stamps unique so "newest" is well-defined.
    for i, entry in enumerate(sorted(entries, key=lambda e: (e.stamp, e.seq))):
        entry.stamp = i
    victim = MultiStepLRUPolicy(steps=steps).select_victim(list(entries))
    newest = max(entries, key=lambda e: e.stamp)
    assert victim is not newest


def test_multistep_tag_bits():
    assert MultiStepLRUPolicy(steps=1).tag_bits == 1
    assert MultiStepLRUPolicy(steps=2).tag_bits == 1
    assert MultiStepLRUPolicy(steps=4).tag_bits == 2
    assert MultiStepLRUPolicy(steps=8).tag_bits == 3
    assert TrueLRUPolicy.tag_bits == 32


# --------------------------------------------------------------------- #
# ThresholdTuner: monotone and clamped
# --------------------------------------------------------------------- #

tuner_strategy = st.builds(
    ThresholdTuner,
    low_churn=st.floats(min_value=0.0, max_value=0.5),
    high_churn=st.floats(min_value=0.5, max_value=2.0),
    min_threshold=st.integers(min_value=1, max_value=4),
    max_threshold=st.integers(min_value=4, max_value=16),
    step=st.integers(min_value=1, max_value=3),
)

churn_strategy = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@given(tuner=tuner_strategy, churn=churn_strategy,
       current=st.integers(min_value=-5, max_value=30))
def test_tuner_proposal_always_clamped(tuner, churn, current):
    proposed = tuner.propose(churn, current)
    assert tuner.min_threshold <= proposed <= tuner.max_threshold


@given(tuner=tuner_strategy, churn_a=churn_strategy, churn_b=churn_strategy,
       current=st.integers(min_value=1, max_value=16))
def test_tuner_monotone_in_churn(tuner, churn_a, churn_b, current):
    lo, hi = sorted((churn_a, churn_b))
    assert tuner.propose(lo, current) <= tuner.propose(hi, current)


@given(tuner=tuner_strategy, current=st.integers(min_value=1, max_value=16))
def test_tuner_holds_inside_band(tuner, current):
    mid = (tuner.low_churn + tuner.high_churn) / 2
    clamped = max(tuner.min_threshold, min(tuner.max_threshold, current))
    assert tuner.propose(mid, clamped) == clamped


def test_tuner_rejects_bad_config():
    import pytest

    with pytest.raises(ValueError):
        ThresholdTuner(low_churn=0.9, high_churn=0.1)
    with pytest.raises(ValueError):
        ThresholdTuner(min_threshold=0)
    with pytest.raises(ValueError):
        ThresholdTuner(min_threshold=9, max_threshold=8)
    with pytest.raises(ValueError):
        ThresholdTuner(step=0)


# --------------------------------------------------------------------- #
# Pareto front (pure function over the lab's cell metrics)
# --------------------------------------------------------------------- #


def test_pareto_front_identifies_dominated():
    from repro.bench.policy_lab import pareto_front

    cells = {
        "a": {"hit_rate": 0.90, "tag_energy_fj": 100.0},  # dominated by b
        "b": {"hit_rate": 0.90, "tag_energy_fj": 50.0},
        "c": {"hit_rate": 0.95, "tag_energy_fj": 200.0},  # best hit rate
        "d": {"hit_rate": 0.80, "tag_energy_fj": 300.0},  # dominated by all
    }
    assert pareto_front(cells) == ["b", "c"]


@given(st.dictionaries(
    st.text(min_size=1, max_size=4),
    st.fixed_dictionaries({
        "hit_rate": st.floats(min_value=0, max_value=1),
        "tag_energy_fj": st.floats(min_value=0, max_value=1e9),
    }),
    min_size=1, max_size=8,
))
def test_pareto_front_never_empty_and_contains_best(cells):
    from repro.bench.policy_lab import pareto_front

    front = pareto_front(cells)
    assert front
    best_hit = max(c["hit_rate"] for c in cells.values())
    cheapest_at_best = min(
        (label for label, c in cells.items() if c["hit_rate"] == best_hit),
        key=lambda label: (cells[label]["tag_energy_fj"], label),
    )
    assert any(cells[label]["hit_rate"] == best_hit for label in front), (
        f"front {front} lost the best-hit-rate cell {cheapest_at_best}"
    )


# --------------------------------------------------------------------- #
# Tuned runs through exec: serial == pooled == warm-cache
# --------------------------------------------------------------------- #

TUNED_SPEC_KW = dict(
    scale=0.01, seed=0,
    tuner={"low_churn": 0.25, "high_churn": 0.75, "step": 1},
    collect=("controller_history",),
)


def _canonical(outcome):
    return json.dumps(outcome.check().payload, sort_keys=True)


def test_tuned_run_deterministic_through_exec(tmp_path):
    specs = [
        RunSpec.make("scan", "metal", **TUNED_SPEC_KW),
        RunSpec.make("scan", "metal", policy="multistep_lru", scale=0.01),
    ]
    with Executor(jobs=1) as serial:
        serial_payloads = [_canonical(o) for o in serial.run(specs)]
    with Executor(jobs=4) as pooled:
        pooled_payloads = [_canonical(o) for o in pooled.run(specs)]
    assert serial_payloads == pooled_payloads

    store = ResultStore(root=tmp_path)
    with Executor(jobs=1, store=store) as cold:
        cold_payloads = [_canonical(o) for o in cold.run(specs)]
    with Executor(jobs=1, store=ResultStore(root=tmp_path)) as warm:
        warm_outcomes = warm.run(specs)
        warm_payloads = [_canonical(o) for o in warm_outcomes]
    assert all(o.cached for o in warm_outcomes)
    assert cold_payloads == warm_payloads == serial_payloads


def test_tuned_spec_hashes_differently_from_untuned():
    tuned = RunSpec.make("scan", "metal", **TUNED_SPEC_KW)
    untuned = RunSpec.make(
        "scan", "metal", scale=0.01, seed=0, collect=("controller_history",)
    )
    assert tuned.digest() != untuned.digest()
    # And the tuner config is canonically ordered: dict order irrelevant.
    reordered = RunSpec.make(
        "scan", "metal", scale=0.01, seed=0,
        tuner={"step": 1, "high_churn": 0.75, "low_churn": 0.25},
        collect=("controller_history",),
    )
    assert reordered.digest() == tuned.digest()


def test_tuned_history_records_tuner_state():
    with Executor(jobs=1) as ex:
        tuned, untuned = ex.run([
            RunSpec.make("scan", "metal", **TUNED_SPEC_KW),
            RunSpec.make("scan", "metal", scale=0.01, seed=0,
                         collect=("controller_history",)),
        ])
    tuned_history = tuned.check().extras["controller_history"]
    untuned_history = untuned.check().extras["controller_history"]
    assert tuned_history and all("tuner" in h for h in tuned_history)
    for h in tuned_history:
        assert h["tuner"]["churn"] >= 0.0
        assert all(t >= 1 for t in h["tuner"]["thresholds"])
    # No tuner configured => history stays in its pre-policy-PR shape.
    assert untuned_history and all("tuner" not in h for h in untuned_history)
