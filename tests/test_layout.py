"""Tests for the DRAM layout and allocator."""

import pytest

from repro.mem.layout import Allocator, Region, align_up
from repro.params import BLOCK_SIZE


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(65, 64) == 128

    def test_zero(self):
        assert align_up(0, 64) == 0

    def test_alignment_one(self):
        assert align_up(13, 1) == 13

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)


class TestRegion:
    def test_alloc_returns_aligned(self):
        region = Region("r", 0x1000, 1 << 20)
        addr = region.alloc(100)
        assert addr % BLOCK_SIZE == 0
        assert addr >= 0x1000

    def test_allocations_do_not_overlap(self):
        region = Region("r", 0, 1 << 20)
        a = region.alloc(100)
        b = region.alloc(100)
        assert b >= a + 100

    def test_used_tracks_cursor(self):
        region = Region("r", 0, 1 << 20)
        region.alloc(64)
        region.alloc(64)
        assert region.used >= 128

    def test_exhaustion_raises(self):
        region = Region("r", 0, 128)
        region.alloc(64)
        with pytest.raises(MemoryError):
            region.alloc(128)

    def test_zero_size_rejected(self):
        region = Region("r", 0, 1024)
        with pytest.raises(ValueError):
            region.alloc(0)


class TestAllocator:
    def test_regions_disjoint(self):
        alloc = Allocator()
        index = alloc.alloc_index(64)
        data = alloc.alloc_data(64)
        assert index < Allocator.DATA_BASE <= data

    def test_block_of(self):
        assert Allocator.block_of(0) == 0
        assert Allocator.block_of(BLOCK_SIZE) == 1
        assert Allocator.block_of(BLOCK_SIZE - 1) == 0

    def test_blocks_spanned_single(self):
        spanned = Allocator.blocks_spanned(0, 10)
        assert list(spanned) == [0]

    def test_blocks_spanned_multi(self):
        spanned = Allocator.blocks_spanned(0, BLOCK_SIZE * 2 + 1)
        assert list(spanned) == [0, 1, 2]

    def test_blocks_spanned_unaligned(self):
        spanned = Allocator.blocks_spanned(BLOCK_SIZE - 1, 2)
        assert list(spanned) == [0, 1]
