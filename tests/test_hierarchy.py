"""Tests for the two-level address hierarchy baseline."""

import pytest

from repro.mem.hierarchy import CacheHierarchy, HierarchyParams
from repro.params import BLOCK_SIZE, CacheParams
from repro.sim.memsys import HierarchyMemSys, make_memsys
from repro.workloads.suite import build_workload
from repro.bench.runner import run_workload


class TestCacheHierarchy:
    def test_miss_then_l1_hit(self):
        h = CacheHierarchy()
        assert h.lookup(0) == 0
        h.insert(0)
        assert h.lookup(0) == 1

    def test_l2_hit_fills_l1(self):
        h = CacheHierarchy(HierarchyParams(
            l1=CacheParams(capacity_bytes=2 * BLOCK_SIZE, ways=2, t_hit=2),
            l2=CacheParams(capacity_bytes=64 * BLOCK_SIZE, ways=16, t_hit=14),
        ))
        h.insert(0)
        # Evict 0 from the tiny L1 by filling it with other blocks.
        h.insert(BLOCK_SIZE * 100)
        h.insert(BLOCK_SIZE * 200)
        h.insert(BLOCK_SIZE * 300)
        level = h.lookup(0)
        assert level in (1, 2)
        if level == 2:
            assert h.lookup(0) == 1  # now filled up into L1

    def test_latencies_ordered(self):
        h = CacheHierarchy()
        assert h.latency_of(1) < h.latency_of(2) <= h.miss_latency_cycles

    def test_latency_of_invalid(self):
        with pytest.raises(ValueError):
            CacheHierarchy().latency_of(3)

    def test_capacity(self):
        h = CacheHierarchy()
        assert h.total_capacity_bytes() == (
            h.params.l1.capacity_bytes + h.params.l2.capacity_bytes
        )


class TestHierarchyMemSys:
    def test_factory(self):
        assert make_memsys("address_l2").name == "address_l2"

    def test_repeat_walk_cheaper(self):
        from repro.indexes.bplustree import BPlusTree

        tree = BPlusTree.bulk_load([(k, k) for k in range(1_000)], fanout=4)
        ms = HierarchyMemSys(cache_params=CacheParams(capacity_bytes=16 * 1024))
        first = ms.process_walk(tree, 500)
        second = ms.process_walk(tree, 500)
        dram = lambda t: sum(1 for a in t.accesses if a.kind == "dram")  # noqa: E731
        assert dram(second) < dram(first)

    def test_l1_hits_bypass_crossbar(self):
        from repro.indexes.bplustree import BPlusTree

        tree = BPlusTree.bulk_load([(k, k) for k in range(1_000)], fanout=4)
        ms = HierarchyMemSys(cache_params=CacheParams(capacity_bytes=16 * 1024))
        ms.process_walk(tree, 500)
        warm = ms.process_walk(tree, 500)
        l1_hits = [a for a in warm.accesses
                   if a.kind == "sram" and a.port < 0]
        assert l1_hits  # some probes served locally, no crossbar port

    def test_hierarchy_beats_flat_address_on_hot_set(self):
        wl = build_workload("scan", scale=0.06)
        flat = run_workload(wl, "address")
        l2 = run_workload(wl, "address_l2")
        # Same capacity budget; the hierarchy's L1 filter should not lose
        # badly (it can win or tie depending on the hot-set size).
        assert l2.makespan < flat.makespan * 1.3

    def test_metal_still_beats_hierarchy(self):
        wl = build_workload("scan", scale=0.06)
        l2 = run_workload(wl, "address_l2")
        metal = run_workload(wl, "metal")
        assert metal.makespan < l2.makespan
