"""Serving specs through the exec pipeline: hashing, dedup, pool, store.

ServeSpec is a second spec type flowing through the same executor that
runs RunSpec — these tests pin the contract that makes that safe: stable
content hashes that discriminate every field, byte-identical payloads
across serial / process-pool / warm-cache execution, and clean
coexistence with plain simulation specs in one batch.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import Executor, ResultStore
from repro.exec.spec import RunSpec
from repro.exec.worker import clear_workload_memo
from repro.serve import ServeResult, ServeSpec, execute_serve, simulate_serve
from repro.sim.tile_backend import clear_model_memo

SMALL = 0.01


def _spec(**overrides) -> ServeSpec:
    # ~1e5 requests/s per user over a 1 ms horizon: a few hundred
    # arrivals — enough traffic to exercise every station, fast to run.
    kwargs = dict(scale=SMALL, users=4, tiles=2, duration_ms=1,
                  requests_per_min=6_000_000.0, timeline_windows=8)
    kwargs.update(overrides)
    return ServeSpec.make("scan", **kwargs)


# --------------------------------------------------------------------- #
# ServeSpec hashing
# --------------------------------------------------------------------- #

def test_serve_spec_digest_is_stable_and_hex():
    spec = _spec()
    digest = spec.digest()
    assert len(digest) == 64
    int(digest, 16)
    assert _spec().digest() == digest


def test_serve_spec_digest_distinguishes_every_knob():
    base = _spec()
    variants = [
        _spec(seed=1), _spec(load=1.5), _spec(users=5), _spec(tiles=3),
        _spec(balancer="least_loaded"), _spec(population="fixed"),
        _spec(duration_ms=2), _spec(requests_per_min=6_000_001.0),
        _spec(tile_speedups=(1.0, 0.5)), _spec(lb_service_ns=20),
        _spec(backend="fixed", service_ns=500), _spec(timeline_windows=0),
        _spec(trace=True),
    ]
    digests = {base.digest()} | {v.digest() for v in variants}
    assert len(digests) == len(variants) + 1


def test_serve_spec_never_collides_with_run_spec():
    serve = _spec()
    run = RunSpec.make("scan", "metal", scale=SMALL)
    assert serve.digest() != run.digest()
    assert serve.canonical_dict()["op"] == "serve"


def test_serve_spec_is_frozen_and_hashable():
    spec = _spec()
    assert spec in {spec}
    with pytest.raises(AttributeError):
        spec.load = 2.0


def test_serve_spec_normalizes_speedups():
    a = _spec(tile_speedups=[1, 2])
    b = _spec(tile_speedups=(1.0, 2.0))
    assert a == b and a.digest() == b.digest()


def test_serve_spec_validation():
    with pytest.raises(ValueError):
        _spec(balancer="random")
    with pytest.raises(ValueError):
        _spec(tiles=0)
    with pytest.raises(ValueError):
        _spec(load=0.0)
    with pytest.raises(ValueError):
        _spec(backend="fixed")  # needs service_ns >= 1
    with pytest.raises(ValueError):
        _spec(tile_speedups=(1.0,))  # wrong arity for 2 tiles
    with pytest.raises(ValueError):
        _spec(client_lb_ns=-1)


# --------------------------------------------------------------------- #
# ServeResult round-trip
# --------------------------------------------------------------------- #

def test_serve_result_roundtrip_byte_identical():
    result = simulate_serve(_spec())
    first = result.to_dict()
    wire = json.loads(json.dumps(first))
    second = ServeResult.from_dict(wire).to_dict()
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)


def test_serve_result_roundtrip_preserves_histograms_and_timeline():
    result = simulate_serve(_spec())
    restored = ServeResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored.latency.count == result.latency.count
    assert restored.latency.percentile(99) == result.latency.percentile(99)
    assert restored.tile_wait.total == result.tile_wait.total
    assert restored.timeline is not None
    assert restored.timeline.rows == result.timeline.rows


# --------------------------------------------------------------------- #
# Executor equivalence: serial == pool == warm cache, byte for byte
# --------------------------------------------------------------------- #

def _sweep_specs() -> list[ServeSpec]:
    # >= 2 distinct specs so the executor actually exercises the pool
    # (single-pending batches run inline regardless of jobs).
    return [_spec(load=load) for load in (0.5, 1.0, 1.5)]


def test_serve_serial_pool_and_cache_byte_identical(tmp_path):
    specs = _sweep_specs()
    store = ResultStore(root=tmp_path)
    with Executor(jobs=1, store=store) as serial:
        serial_payloads = [o.check().payload for o in serial.run(specs)]
        assert serial.stats.computed == len(specs)

    clear_workload_memo()
    clear_model_memo()
    with Executor(jobs=4) as pool:
        pool_payloads = [o.check().payload for o in pool.run(specs)]

    with Executor(jobs=1, store=ResultStore(root=tmp_path)) as warm:
        outcomes = warm.run(specs)
        assert warm.stats.computed == 0
        assert warm.stats.cache_hits == len(specs)
        cached_payloads = [o.check().payload for o in outcomes]
        assert all(o.cached for o in outcomes)

    canon = lambda p: json.dumps(p, sort_keys=True)
    assert canon(serial_payloads) == canon(pool_payloads)
    assert canon(serial_payloads) == canon(cached_payloads)


def test_serve_executor_dedups_identical_specs():
    spec = _spec()
    with Executor(jobs=1) as ex:
        first, second = ex.run([spec, _spec()])
        assert ex.stats.requested == 2
        assert ex.stats.computed == 1
        assert ex.stats.deduped == 1
    assert first.payload == second.payload


def test_mixed_run_and_serve_batch():
    """One batch can carry both spec types; each dispatches to its op."""
    serve = _spec()
    run = RunSpec.make("scan", "stream", scale=SMALL)
    with Executor(jobs=1) as ex:
        serve_out, run_out = ex.run([serve, run])
    assert serve_out.check().payload["op"] == "serve"
    assert run_out.check().payload["op"] == "run"
    restored = ServeResult.from_dict(serve_out.data)
    assert restored.completed == restored.offered > 0


def test_execute_serve_payload_shape():
    payload = execute_serve(_spec())
    assert payload["op"] == "serve"
    assert payload["extras"] == {}
    data = payload["data"]
    assert data["completed"] == data["offered"] > 0
    assert {"latency_ns", "tile_wait_ns", "tiles", "timeline"} <= set(data)
    # Payload is JSON-pure: a dump/load cycle is the identity.
    assert json.loads(json.dumps(payload)) == payload


def test_serve_store_rejects_spec_mismatch(tmp_path):
    """A store entry is keyed by digest *and* verified against the
    spec's canonical form — a stale entry under the right path but the
    wrong spec reads as a miss."""
    spec = _spec()
    store = ResultStore(root=tmp_path)
    with Executor(jobs=1, store=store) as ex:
        ex.run([spec])
    assert store.get(spec) is not None
    path = store.path_for(spec)
    entry = json.loads(path.read_text())
    entry["spec"]["seed"] = 999
    path.write_text(json.dumps(entry))
    assert ResultStore(root=tmp_path).get(spec) is None
