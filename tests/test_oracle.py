"""Oracle equivalence: an unlimited IX-cache must match a naive model.

The reference model keeps every inserted (range, level, node) in a flat
list and answers probes by linear scan for the deepest covering range.
A fully-associative IX-cache with ample capacity must agree with it on
every probe — this pins down the hit-path semantics (range match + level
priority) independent of geometry and replacement.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.ix_cache import IXCache
from repro.indexes.base import IndexNode
from repro.params import BLOCK_SIZE, CacheParams


class OracleRangeCache:
    """Naive reference semantics for the IX-cache hit path."""

    def __init__(self) -> None:
        self.entries: list[tuple[int, int, int, IndexNode]] = []

    def insert(self, node: IndexNode) -> None:
        if node.lo is None or node.hi is None:
            return
        if node.lo == float("-inf") or node.hi == float("inf"):
            return
        self.entries.append((node.lo, node.hi, node.level, node))

    def probe(self, key: int) -> IndexNode | None:
        best = None
        for lo, hi, level, node in self.entries:
            if lo <= key <= hi and (best is None or level > best[0]):
                best = (level, node)
        return best[1] if best else None


def make_node(level, lo, hi):
    node = IndexNode(level, [lo, hi], values=[0, 0], lo=lo, hi=hi)
    node.nbytes = node.byte_size()
    return node


def big_fa_cache() -> IXCache:
    return IXCache(
        CacheParams(capacity_bytes=4096 * BLOCK_SIZE, ways=16),
        associative=False,
        coalesce=False,
    )


@settings(max_examples=60, deadline=None)
@given(
    inserts=st.lists(
        st.tuples(st.integers(1, 8), st.integers(0, 5_000), st.integers(0, 200)),
        min_size=1, max_size=60,
    ),
    probes=st.lists(st.integers(0, 5_500), min_size=1, max_size=40),
)
def test_property_unbounded_ix_matches_oracle(inserts, probes):
    cache = big_fa_cache()
    oracle = OracleRangeCache()
    for level, lo, width in inserts:
        node = make_node(level, lo, lo + width)
        cache.insert(node)
        oracle.insert(node)
    for key in probes:
        expected = oracle.probe(key)
        got = cache.peek(key)
        if expected is None:
            assert got is None
        else:
            # Levels must agree; identity may differ only when two entries
            # tie at the same level over the key.
            assert got is not None
            assert got.level == expected.level
            assert got.lo <= key <= got.hi


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_randomized_agreement(seed):
    rng = random.Random(seed)
    cache = big_fa_cache()
    oracle = OracleRangeCache()
    for _ in range(120):
        if rng.random() < 0.6:
            level = rng.randint(1, 9)
            lo = rng.randrange(10_000)
            node = make_node(level, lo, lo + rng.randrange(100))
            cache.insert(node)
            oracle.insert(node)
        else:
            key = rng.randrange(10_500)
            expected = oracle.probe(key)
            got = cache.peek(key)
            assert (got is None) == (expected is None)
            if got is not None:
                assert got.level == expected.level
