"""Bench regression baselines: extraction, comparison, and exit codes.

The contract CI leans on: self-comparison passes (deterministic
simulation => identical metrics), perturbation beyond tolerance exits
nonzero, a missing baseline file is its own distinct failure, and scale
mismatches are refused rather than silently compared.
"""

import json

import pytest

from repro.bench.report import (
    BASELINE_DEFAULT_RTOL,
    EXIT_BASELINE_MISSING,
    EXIT_REGRESSION,
    compare_baseline,
    extract_key_metrics,
    generate_report,
    write_baseline,
)
from repro.bench.report import main as report_main

SCALE = 0.02


@pytest.fixture(scope="module")
def payload():
    collected: dict = {}
    generate_report(scale=SCALE, fast=True, collect_json=collected)
    return collected


class TestExtraction:
    def test_covers_every_figure_group(self, payload):
        metrics = extract_key_metrics(payload)
        groups = {name.split(".")[0] for name in metrics}
        assert groups == {"fig18", "headline", "table3"}
        # Fig. 18 contributes speedup/miss/working-set per (workload,
        # system); the streaming baseline itself has speedup 1.0.
        stream_speedups = [v for k, v in metrics.items()
                          if k.startswith("fig18") and
                          k.endswith("stream.speedup")]
        assert stream_speedups and all(v == 1.0 for v in stream_speedups)

    def test_values_are_finite_floats(self, payload):
        for name, value in extract_key_metrics(payload).items():
            assert isinstance(value, float) or isinstance(value, int), name
            assert value == value and abs(value) != float("inf"), name

    def test_empty_payload_gives_empty_metrics(self):
        assert extract_key_metrics({}) == {}


class TestCompare:
    def test_self_compare_clean(self, payload, tmp_path):
        path = tmp_path / "b.json"
        baseline = write_baseline(str(path), payload, BASELINE_DEFAULT_RTOL)
        assert json.loads(path.read_text()) == baseline
        regressions, notes = compare_baseline(baseline, payload)
        assert regressions == []
        assert notes == []

    def test_perturbation_beyond_tolerance_regresses(self, payload):
        baseline = {
            "schema": 1, "scale": payload["scale"], "rtol": 0.05,
            "metrics": dict(extract_key_metrics(payload)),
        }
        name = next(iter(baseline["metrics"]))
        baseline["metrics"][name] *= 1.10  # 10% > 5% tolerance
        regressions, _ = compare_baseline(baseline, payload)
        assert len(regressions) == 1
        assert name in regressions[0]

    def test_perturbation_within_tolerance_passes(self, payload):
        baseline = {
            "schema": 1, "scale": payload["scale"], "rtol": 0.05,
            "metrics": dict(extract_key_metrics(payload)),
        }
        name = next(iter(baseline["metrics"]))
        baseline["metrics"][name] *= 1.02  # 2% < 5% tolerance
        regressions, _ = compare_baseline(baseline, payload)
        assert regressions == []

    def test_rtol_override_beats_stored_tolerance(self, payload):
        baseline = {
            "schema": 1, "scale": payload["scale"], "rtol": 0.5,
            "metrics": dict(extract_key_metrics(payload)),
        }
        name = next(iter(baseline["metrics"]))
        baseline["metrics"][name] *= 1.10
        assert compare_baseline(baseline, payload)[0] == []
        assert len(compare_baseline(baseline, payload, rtol=0.01)[0]) == 1

    def test_missing_metric_is_a_regression(self, payload):
        baseline = {
            "schema": 1, "scale": payload["scale"], "rtol": 0.05,
            "metrics": {"fig18.gone.metal.speedup": 2.0,
                        **extract_key_metrics(payload)},
        }
        regressions, _ = compare_baseline(baseline, payload)
        assert any("missing from run" in r for r in regressions)

    def test_new_metric_is_a_note_not_a_regression(self, payload):
        metrics = dict(extract_key_metrics(payload))
        dropped = next(iter(metrics))
        del metrics[dropped]
        baseline = {"schema": 1, "scale": payload["scale"], "rtol": 0.05,
                    "metrics": metrics}
        regressions, notes = compare_baseline(baseline, payload)
        assert regressions == []
        assert any(dropped in note for note in notes)

    def test_scale_mismatch_refused(self, payload):
        baseline = {"schema": 1, "scale": 0.5, "rtol": 0.05,
                    "metrics": extract_key_metrics(payload)}
        regressions, _ = compare_baseline(baseline, payload)
        assert len(regressions) == 1
        assert "scale mismatch" in regressions[0]


class TestMainExitCodes:
    def test_round_trip_write_then_pass(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        assert report_main(["--scale", str(SCALE), "--fast",
                            "--baseline", str(path),
                            "--write-baseline"]) == 0
        assert report_main(["--scale", str(SCALE), "--fast",
                            "--baseline", str(path)]) == 0
        assert "baseline check passed" in capsys.readouterr().out

    def test_missing_baseline_file_exit(self, tmp_path, capsys):
        rc = report_main(["--scale", str(SCALE), "--fast",
                          "--baseline", str(tmp_path / "nope.json")])
        assert rc == EXIT_BASELINE_MISSING
        assert "not found" in capsys.readouterr().err

    def test_perturbed_baseline_exit(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        report_main(["--scale", str(SCALE), "--fast",
                     "--baseline", str(path), "--write-baseline"])
        capsys.readouterr()
        stored = json.loads(path.read_text())
        name = next(k for k in stored["metrics"]
                    if k.startswith("headline."))
        stored["metrics"][name] *= 1.5
        path.write_text(json.dumps(stored))
        rc = report_main(["--scale", str(SCALE), "--fast",
                          "--baseline", str(path)])
        assert rc == EXIT_REGRESSION
        err = capsys.readouterr().err
        assert "regressed" in err and name in err

    def test_write_baseline_requires_baseline_path(self):
        with pytest.raises(SystemExit):
            report_main(["--scale", str(SCALE), "--fast",
                         "--write-baseline"])

    def test_committed_baseline_matches_repo(self):
        # The file CI gates on must self-compare cleanly at its scale.
        with open("BENCH_baseline.json") as f:
            baseline = json.load(f)
        assert baseline["schema"] == 1
        assert baseline["scale"] == 0.01
        assert len(baseline["metrics"]) > 100
