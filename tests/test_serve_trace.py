"""Zero-overhead contract for serve-side request tracing.

``ServeSpec.trace`` must be observationally free: the spans-off payload
is byte-identical to what the engine produced before spans existed (the
committed golden ``BENCH_serve_result.json`` pins that forever), and a
traced run differs from an untraced one by exactly its ``spans`` key.
These tests mirror the sim engine's trace-overhead gate and back the CI
``serve-trace-overhead`` job.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.serve import GOLDEN_PATH, trace_overhead_check
from repro.exec import Executor
from repro.serve import ServeResult, ServeSpec, simulate_serve

SMALL = 0.01

REPO_ROOT = Path(__file__).resolve().parent.parent


def _spec(**overrides) -> ServeSpec:
    kwargs = dict(scale=SMALL, users=4, tiles=2, duration_ms=1,
                  requests_per_min=6_000_000.0)
    kwargs.update(overrides)
    return ServeSpec.make("scan", **kwargs)


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


GRID = [
    dict(),
    dict(load=1.5),
    dict(balancer="least_loaded"),
    dict(backend="fixed", service_ns=500),
    dict(tiles=3, tile_speedups=(1.0, 0.5, 2.0), seed=7),
]


@pytest.mark.parametrize("overrides", GRID,
                         ids=["base", "hot", "least_loaded", "fixed",
                              "skewed"])
def test_traced_payload_is_untraced_plus_spans(overrides):
    off = simulate_serve(_spec(**overrides)).to_dict()
    on = simulate_serve(_spec(trace=True, **overrides)).to_dict()
    assert "spans" not in off
    spans = on.pop("spans")
    assert spans is not None and len(spans["requests"]) == on["offered"]
    assert _canon(on) == _canon(off)


def test_trace_overhead_check_passes_against_committed_golden():
    text, problems = trace_overhead_check(str(REPO_ROOT / GOLDEN_PATH))
    assert problems == []
    assert "byte-identical" in text


def test_trace_overhead_check_reports_unreadable_golden(tmp_path):
    _, problems = trace_overhead_check(str(tmp_path / "missing.json"))
    assert problems and "unreadable" in problems[0]


def test_trace_overhead_check_detects_drift(tmp_path):
    golden = json.loads((REPO_ROOT / GOLDEN_PATH).read_text())
    golden["result"]["offered"] += 1
    drifted = tmp_path / "drifted.json"
    drifted.write_text(json.dumps(golden))
    _, problems = trace_overhead_check(str(drifted))
    assert any("drifted" in p for p in problems)


def test_serve_result_roundtrip_with_spans_byte_identical():
    result = simulate_serve(_spec(trace=True))
    first = result.to_dict()
    restored = ServeResult.from_dict(json.loads(json.dumps(first)))
    assert restored.spans is not None
    assert restored.spans.requests == result.spans.requests
    assert _canon(restored.to_dict()) == _canon(first)


def test_trace_knob_changes_digest_only():
    """Tracing is part of the spec identity (a traced cell is a
    different cache entry) but never part of the serving numbers."""
    off, on = _spec(), _spec(trace=True)
    assert off.digest() != on.digest()
    assert on.canonical_dict()["trace"] is True


def test_traced_spec_through_exec_pipeline():
    """Spans survive the exec layer's JSON normalization and store."""
    with Executor(jobs=1) as ex:
        outcome, = ex.run([_spec(trace=True)])
    data = outcome.check().data
    restored = ServeResult.from_dict(data)
    assert restored.spans is not None
    assert len(restored.spans) == restored.offered
    untraced = dict(data)
    untraced.pop("spans")
    assert _canon(untraced) == _canon(simulate_serve(_spec()).to_dict())
