"""Property suite for the fault-injection layer's determinism contract.

Three guarantees, exercised with Hypothesis-driven plans on a small
fixed-seed workload:

* same seed + same ``FaultPlan`` => byte-identical faulted ``RunResult``
  (the schedule is a pure function of the plan);
* a plan whose every rate is zero is indistinguishable from no plan at
  all, whatever its penalty magnitudes;
* no request is ever lost: every injected fault is either retried to
  success or the walk completes through a degraded fallback and is
  counted (``walks_completed + walks_degraded == walks_total``).
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.runner import build_memsys
from repro.faults import FaultInjector, FaultPlan
from repro.faults.inject import SITE_STORM, _mix
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload

SCALE = 0.01
WORKLOAD = "scan"

_WORKLOAD_CACHE = {}


def get_workload():
    if WORKLOAD not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[WORKLOAD] = build_workload(WORKLOAD, scale=SCALE)
    return _WORKLOAD_CACHE[WORKLOAD]


def run(plan, system: str = "metal"):
    workload = get_workload()
    sim = replace(workload.config.sim_params(), faults=plan)
    memsys = build_memsys(system, workload, sim=sim)
    return simulate(memsys, workload.requests, sim, workload.total_index_blocks)


RATES = st.sampled_from((0.005, 0.01, 0.03, 0.08, 0.15, 0.3))
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestMixer:
    """The counted-stream PRNG is a pure function into [0, 1)."""

    @settings(max_examples=300, deadline=None)
    @given(seed=SEEDS, site=st.integers(1, SITE_STORM),
           n=st.integers(0, 2**20))
    def test_pure_and_in_unit_interval(self, seed, site, n):
        value = _mix(seed, site, n)
        assert value == _mix(seed, site, n)
        assert 0.0 <= value < 1.0

    @settings(max_examples=100, deadline=None)
    @given(seed=SEEDS, n=st.integers(0, 2**16))
    def test_sites_are_independent_streams(self, seed, n):
        draws = {_mix(seed, site, n) for site in range(1, SITE_STORM + 1)}
        assert len(draws) == SITE_STORM  # collisions are measure-zero


class TestDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(rate=RATES, plan_seed=SEEDS)
    def test_same_plan_same_result(self, rate, plan_seed):
        plan = FaultPlan.uniform(rate, seed=plan_seed)
        first = json.dumps(run(plan).to_dict(), sort_keys=True)
        second = json.dumps(run(plan).to_dict(), sort_keys=True)
        assert first == second

    def test_different_plan_seeds_differ(self):
        a = run(FaultPlan.uniform(0.1, seed=0)).to_dict()
        b = run(FaultPlan.uniform(0.1, seed=1)).to_dict()
        assert a["faults"] != b["faults"]

    @settings(max_examples=5, deadline=None)
    @given(
        spike=st.integers(0, 5000), stall=st.integers(0, 5000),
        burst=st.integers(0, 500), backoff=st.integers(0, 100),
        span=st.integers(0, 64), plan_seed=SEEDS,
    )
    def test_zero_rate_plan_equals_no_plan(
        self, spike, stall, burst, backoff, span, plan_seed
    ):
        plan = FaultPlan(
            seed=plan_seed, dram_spike_cycles=spike, bank_stall_cycles=stall,
            noc_burst_cycles=burst, walker_backoff_cycles=backoff,
            storm_span_blocks=span,
        )
        assert plan.is_empty
        with_plan = json.dumps(run(plan).to_dict(), sort_keys=True)
        without = json.dumps(run(None).to_dict(), sort_keys=True)
        assert with_plan == without


class TestNoLostRequests:
    @settings(max_examples=6, deadline=None)
    @given(
        rate=RATES,
        plan_seed=st.integers(0, 1000),
        retry_limit=st.integers(0, 3),
    )
    def test_every_walk_accounted(self, rate, plan_seed, retry_limit):
        plan = FaultPlan.uniform(
            rate, seed=plan_seed, walker_retry_limit=retry_limit
        )
        result = run(plan)
        ledger = result.faults
        assert ledger is not None
        assert (
            ledger["walks_completed"] + ledger["walks_degraded"]
            == ledger["walks_total"]
            == result.num_walks
        )
        # Degraded walks exist exactly when some step exhausted its budget,
        # and each exhausted step belongs to some (single) degraded walk.
        assert (ledger["walks_degraded"] > 0) == (ledger["retries_exhausted"] > 0)
        assert ledger["walks_degraded"] <= ledger["retries_exhausted"]
        # Every detected corruption was recovered by an invalidate+refetch.
        assert ledger["tag_refetches"] == ledger["tag_corruptions_injected"]

    def test_exhausted_retries_force_degraded_completion(self):
        """A hostile plan (retry budget 0, high fail rate) still finishes
        every walk — through the degraded fallback, visibly accounted."""
        plan = FaultPlan(seed=3, walker_fail_rate=0.5, walker_retry_limit=0)
        result = run(plan)
        ledger = result.faults
        assert ledger["retries_exhausted"] > 0
        assert ledger["walks_degraded"] > 0
        assert ledger["retries"] == 0  # budget was zero: no clean retries
        assert (
            ledger["walks_completed"] + ledger["walks_degraded"]
            == result.num_walks
        )


class TestPlanValidation:
    @settings(max_examples=50, deadline=None)
    @given(rate=st.floats(min_value=1.0001, max_value=100.0))
    def test_rates_above_one_rejected(self, rate):
        with pytest.raises(ValueError):
            FaultPlan(dram_spike_rate=rate)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(walker_fail_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(dram_spike_cycles=-1)

    @settings(max_examples=30, deadline=None)
    @given(rate=RATES, plan_seed=SEEDS)
    def test_items_roundtrip_preserves_digest(self, rate, plan_seed):
        plan = FaultPlan.uniform(rate, seed=plan_seed)
        assert FaultPlan(**dict(plan.items())).digest() == plan.digest()


class TestInjectorAccounting:
    @settings(max_examples=50, deadline=None)
    @given(rate=st.floats(0.0, 1.0), plan_seed=SEEDS,
           draws=st.integers(1, 200))
    def test_injected_cycles_match_counts(self, rate, plan_seed, draws):
        plan = FaultPlan(seed=plan_seed, dram_spike_rate=rate,
                         bank_stall_rate=rate)
        injector = FaultInjector(plan)
        for _ in range(draws):
            injector.dram_spike()
            injector.bank_stall()
        stats = injector.stats
        assert stats.injected_stall_cycles == (
            stats.dram_spikes_injected * plan.dram_spike_cycles
            + stats.bank_stalls_injected * plan.bank_stall_cycles
        )
        assert stats.faults_injected == (
            stats.dram_spikes_injected + stats.bank_stalls_injected
        )

    def test_walker_failures_bounded_by_retry_budget(self):
        plan = FaultPlan(seed=0, walker_fail_rate=1.0, walker_retry_limit=2)
        injector = FaultInjector(plan)
        # rate 1.0: every draw fails, so the count must stop at limit + 1.
        assert injector.walker_failures() == plan.walker_retry_limit + 1


class TestWalkerFSM:
    def test_retry_steps_reissue_the_fetch(self):
        from repro.dsa.walker import Walker, WalkerState

        workload = get_workload()
        index = workload.indexes[0]
        key = workload.requests[0].key
        plan = FaultPlan(seed=1, walker_fail_rate=0.9, walker_retry_limit=2)
        walker = Walker(injector=FaultInjector(plan))
        steps = list(walker.run(index, key))
        retries = [s for s in steps if s.state is WalkerState.RETRY]
        assert retries, "a 90% fail rate produced no RETRY steps"
        # Every RETRY is followed by a WAIT re-fetch of the same node.
        for i, step in enumerate(steps[:-1]):
            if step.state is WalkerState.RETRY:
                follow = steps[i + 1]
                assert follow.state is WalkerState.WAIT
                assert follow.node is step.node
                assert follow.access.kind == "dram"
                assert follow.access.address == step.node.address
        assert walker.injector.stats.retries > 0

    def test_fault_free_walker_trace_unchanged(self):
        from repro.dsa.walker import Walker

        workload = get_workload()
        index = workload.indexes[0]
        key = workload.requests[0].key
        plain = Walker().trace(index, key)
        wired = Walker(injector=None).trace(index, key)
        assert [
            (a.kind, a.address, a.cycles) for a in plain
        ] == [(a.kind, a.address, a.cycles) for a in wired]
