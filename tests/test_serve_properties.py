"""Hypothesis property tests for the serving layer's arrival generator.

The arrival generator is the serving simulator's randomness boundary:
everything downstream is deterministic bookkeeping, so these properties
— determinism per seed, exponential inter-arrival statistics, rate
scaling, and order-consistent population merging — are what make the
M/D/1 oracle tests (tests/test_serve_oracle.py) meaningful.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.arrivals import (
    AGGREGATE_LIMIT,
    exponential_gaps,
    merged_arrivals,
    population_size,
    uniform,
    user_arrivals,
)

SEEDS = st.integers(min_value=0, max_value=2**63 - 1)

#: A per-ns rate giving mean gaps of 100..10000 ns — the serving regime.
RATES = st.floats(min_value=1e-4, max_value=1e-2,
                  allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #

@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, user=st.integers(0, 1000), rate=RATES)
def test_same_seed_same_stream(seed, user, rate):
    """Same (seed, user, rate) => byte-identical arrival stream."""
    first = user_arrivals(seed, user, rate, 200_000)
    second = user_arrivals(seed, user, rate, 200_000)
    assert first == second


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, stream=st.integers(0, 2**32), n=st.integers(0, 2**32))
def test_uniform_is_a_pure_function_in_unit_interval(seed, stream, n):
    u = uniform(seed, stream, n)
    assert 0.0 <= u < 1.0
    assert uniform(seed, stream, n) == u


def test_different_seeds_differ():
    a = user_arrivals(0, 0, 1e-3, 1_000_000)
    b = user_arrivals(1, 0, 1e-3, 1_000_000)
    assert a != b
    # Streams of different users under one seed are independent draws too.
    assert user_arrivals(0, 1, 1e-3, 1_000_000) != a


# --------------------------------------------------------------------- #
# Rate scaling: doubling the rate halves the mean inter-arrival time
# --------------------------------------------------------------------- #

@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, user=st.integers(0, 100), rate=st.floats(5e-4, 5e-3))
def test_doubling_rate_halves_mean_interarrival(seed, user, rate):
    slow = user_arrivals(seed, user, rate, 2_000_000)
    fast = user_arrivals(seed, user, 2 * rate, 2_000_000)
    assert len(slow) >= 100  # enough mass for a stable mean
    mean_slow = slow[-1] / len(slow)
    mean_fast = fast[-1] / len(fast)
    # Same uniforms drive both streams, so the ratio is tight: only the
    # horizon cut and integer quantization perturb it.
    assert math.isclose(mean_slow / mean_fast, 2.0, rel_tol=0.1)
    # The fast stream carries roughly twice the requests.
    assert math.isclose(len(fast) / len(slow), 2.0, rel_tol=0.1)


# --------------------------------------------------------------------- #
# Exponential inter-arrival statistics
# --------------------------------------------------------------------- #

@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, stream=st.integers(0, 2**32), rate=RATES)
def test_gaps_match_exponential_mean_and_variance(seed, stream, rate):
    """Sample mean ~= 1/rate (5%) and variance ~= 1/rate^2 (15%).

    n=20000 puts the mean estimator's standard error at ~0.7% and the
    variance estimator's at ~2% (exponential excess kurtosis 6), so the
    tolerances sit at >5 sigma — failures mean a broken generator, not
    an unlucky seed.
    """
    n = 20_000
    gaps = exponential_gaps(seed, stream, rate, n)
    assert all(g >= 0.0 for g in gaps)
    mean = sum(gaps) / n
    var = sum((g - mean) ** 2 for g in gaps) / (n - 1)
    assert math.isclose(mean, 1.0 / rate, rel_tol=0.05)
    assert math.isclose(var, 1.0 / rate**2, rel_tol=0.15)


# --------------------------------------------------------------------- #
# Population merge
# --------------------------------------------------------------------- #

@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, users=st.integers(1, 8), rate=st.floats(5e-4, 5e-3))
def test_merged_streams_are_order_consistent(seed, users, rate):
    """The merged stream is sorted, complete, and preserves each user's
    own generation order."""
    duration = 300_000
    merged = merged_arrivals(seed, users, rate, duration)
    assert merged == sorted(merged)
    per_user = {u: user_arrivals(seed, u, rate, duration)
                for u in range(users)}
    assert len(merged) == sum(len(s) for s in per_user.values())
    for u, stream in per_user.items():
        assert [t for t, who in merged if who == u] == stream


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_aggregate_mode_is_sorted_and_labelled(seed):
    """Past AGGREGATE_LIMIT users the superposed sampler takes over:
    still sorted, user ids still in range, rate still ~users * rate."""
    users = AGGREGATE_LIMIT + 100
    rate = 1e-9  # per user, so aggregate ~4.1e-6/ns
    duration = 3_000_000_000
    merged = merged_arrivals(seed, users, rate, duration)
    assert merged == sorted(merged)
    assert all(0 <= who < users for _, who in merged)
    expected = users * rate * duration
    assert math.isclose(len(merged), expected, rel_tol=0.15)


# --------------------------------------------------------------------- #
# Population size
# --------------------------------------------------------------------- #

@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, mean=st.integers(1, 500))
def test_population_draw_is_deterministic_and_positive(seed, mean):
    drawn = population_size(mean, seed)
    assert drawn >= 1
    assert population_size(mean, seed) == drawn
    assert population_size(mean, seed, "fixed") == mean


def test_population_poisson_mean_tracks_parameter():
    """Averaged over seeds, the Poisson draw sits near its mean — both
    the exact-inversion and normal-approximation branches."""
    for mean in (40, 2_000):
        draws = [population_size(mean, seed) for seed in range(300)]
        sample_mean = sum(draws) / len(draws)
        # Standard error sqrt(mean/300): ~0.37 at 40, ~2.6 at 2000.
        assert abs(sample_mean - mean) < 5 * math.sqrt(mean / 300) + 1
