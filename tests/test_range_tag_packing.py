"""Tests for range tags and node-to-block packing (Fig. 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packing import (
    blocks_needed,
    can_coalesce,
    coalesced_tag,
    pack_node,
)
from repro.core.range_tag import RangeTag
from repro.indexes.base import IndexNode
from repro.params import BLOCK_SIZE


IDENT = lambda k: k  # noqa: E731


class TestRangeTag:
    def test_matches_inclusive(self):
        tag = RangeTag(10, 20, 3)
        assert tag.matches(10) and tag.matches(20) and tag.matches(15)
        assert not tag.matches(9) and not tag.matches(21)

    def test_width(self):
        assert RangeTag(5, 5, 0).width() == 1
        assert RangeTag(0, 9, 0).width() == 10

    def test_overlaps(self):
        assert RangeTag(0, 10, 0).overlaps(RangeTag(10, 20, 0))
        assert not RangeTag(0, 9, 0).overlaps(RangeTag(10, 20, 0))

    def test_clip(self):
        tag = RangeTag(0, 100, 2)
        clipped = tag.clip(40, 60)
        assert clipped == RangeTag(40, 60, 2)

    def test_clip_disjoint_rejected(self):
        with pytest.raises(ValueError):
            RangeTag(0, 10, 0).clip(20, 30)

    @settings(max_examples=50, deadline=None)
    @given(lo=st.integers(0, 1000), width=st.integers(0, 1000),
           key=st.integers(0, 2000))
    def test_property_match_iff_in_range(self, lo, width, key):
        tag = RangeTag(lo, lo + width, 0)
        assert tag.matches(key) == (lo <= key <= lo + width)


class TestPackNode:
    def test_case1_small_node_single_entry(self):
        node = IndexNode(2, [5, 7], values=[1, 2])
        entries = pack_node(node, IDENT)
        assert len(entries) == 1
        tag, packed = entries[0]
        assert tag == RangeTag(5, 7, 2)
        assert packed is node

    def test_case2_wide_node_split(self):
        children = [IndexNode(3, [i], values=[i], lo=i * 10, hi=i * 10 + 9)
                    for i in range(20)]
        node = IndexNode(
            2, [c.lo for c in children[1:]], children=children,
            lo=0, hi=199,
        )
        entries = pack_node(node, IDENT)
        assert len(entries) == blocks_needed(node)
        assert len(entries) > 1
        # Sub-ranges tile the node's range in order.
        assert entries[0][0].lo == 0
        assert entries[-1][0].hi == 199
        for (a, _), (b, _) in zip(entries, entries[1:]):
            assert a.hi <= b.lo

    def test_oversized_leaf_split(self):
        keys = list(range(0, 300, 3))
        node = IndexNode(5, keys, values=keys)
        entries = pack_node(node, IDENT)
        assert len(entries) > 1
        assert entries[0][0].lo == 0
        assert entries[-1][0].hi == keys[-1]

    def test_sentinel_rejected(self):
        node = IndexNode(0, [1], values=[1], lo=float("-inf"), hi=10)
        assert pack_node(node, IDENT) == []

    def test_empty_node_rejected(self):
        node = IndexNode(0, [], values=[])
        assert pack_node(node, IDENT) == []

    def test_namespacing_applied(self):
        node = IndexNode(1, [5, 9], values=[0, 0])
        entries = pack_node(node, lambda k: k + 1000)
        assert entries[0][0] == RangeTag(1005, 1009, 1)


class TestCoalescing:
    def test_legal_coalesce(self):
        a, b = RangeTag(0, 5, 2), RangeTag(6, 9, 2)
        assert can_coalesce(a, b, 24, 24)
        assert coalesced_tag(a, b) == RangeTag(0, 9, 2)

    def test_level_mismatch(self):
        assert not can_coalesce(RangeTag(0, 5, 1), RangeTag(6, 9, 2), 16, 16)

    def test_size_overflow(self):
        assert not can_coalesce(
            RangeTag(0, 5, 2), RangeTag(6, 9, 2), 40, 40, BLOCK_SIZE
        )

    def test_overlap_rejected(self):
        assert not can_coalesce(RangeTag(0, 6, 2), RangeTag(6, 9, 2), 8, 8)


class TestBlocksNeeded:
    def test_small_node_one_block(self):
        assert blocks_needed(IndexNode(0, [1, 2], values=[1, 2])) == 1

    def test_large_node_many_blocks(self):
        node = IndexNode(0, list(range(100)), values=list(range(100)))
        assert blocks_needed(node) == -(-node.byte_size() // BLOCK_SIZE)
