"""Tests for the extensions: ablations, prefetcher, trace I/O, CLI."""

import pytest

from repro.bench.ablation import (
    run_geometry_sweep,
    run_mechanism_toggles,
    run_shared_vs_private,
)
from repro.bench.runner import run_workload
from repro.cli import main as cli_main
from repro.workloads.suite import build_workload
from repro.workloads.trace_io import load_trace, save_trace, workload_index_names


SCALE = 0.06


@pytest.fixture(scope="module")
def scan_workload():
    return build_workload("scan", scale=SCALE)


class TestGeometryAblation:
    def test_more_ways_not_worse(self, scan_workload):
        results = run_geometry_sweep(scan_workload, ways_options=(1, 16))
        assert results[16].makespan <= results[1].makespan * 1.05

    def test_all_ways_run(self, scan_workload):
        results = run_geometry_sweep(scan_workload, ways_options=(4, 8))
        assert set(results) == {4, 8}


class TestSharedVsPrivate:
    def test_shared_has_better_hit_rate(self, scan_workload):
        result = run_shared_vs_private(scan_workload, partitions=4)
        shared_hit = result.shared.cache_stats.hit_rate
        assert shared_hit >= result.private_hit_rate


class TestMechanismToggles:
    def test_all_configs_run(self, scan_workload):
        results = run_mechanism_toggles(scan_workload)
        labels = {r.label for r in results}
        assert "metal (default)" in labels
        assert "address + prefetch" in labels
        assert all(r.run.makespan > 0 for r in results)


class TestPrefetcher:
    def test_prefetch_increases_traffic(self, scan_workload):
        plain = run_workload(scan_workload, "address")
        pf = run_workload(scan_workload, "address_pf")
        # Next-line prefetching on pointer chases wastes bandwidth.
        assert pf.dram.accesses > plain.dram.accesses

    def test_prefetch_name(self, scan_workload):
        assert run_workload(scan_workload, "address_pf").name == "address_pf"


class TestTraceIO:
    def test_roundtrip(self, scan_workload, tmp_path):
        path = tmp_path / "trace.jsonl"
        names = workload_index_names(scan_workload)
        wrote = save_trace(path, scan_workload.requests, names)
        assert wrote == len(scan_workload.requests)

        table = scan_workload.indexes[0]
        loaded = load_trace(path, {"index0": table})
        assert len(loaded) == len(scan_workload.requests)
        assert [r.key for r in loaded] == [r.key for r in scan_workload.requests]
        assert loaded[0].index is table

    def test_loaded_trace_simulates(self, scan_workload, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, scan_workload.requests, workload_index_names(scan_workload))
        loaded = load_trace(path, {"index0": scan_workload.indexes[0]})
        run = run_workload(scan_workload, "metal")
        from repro.bench.runner import build_memsys
        from repro.sim.metrics import simulate

        memsys = build_memsys("metal", scan_workload)
        replay = simulate(memsys, loaded, memsys.sim, scan_workload.total_index_blocks)
        assert replay.num_walks == run.num_walks

    def test_unknown_index_name_rejected(self, scan_workload, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, scan_workload.requests, workload_index_names(scan_workload))
        with pytest.raises(KeyError):
            load_trace(path, {})

    def test_unnamed_index_rejected(self, scan_workload, tmp_path):
        with pytest.raises(KeyError):
            save_trace(tmp_path / "t.jsonl", scan_workload.requests, {})

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ValueError):
            load_trace(path, {})

    def test_multi_index_workload(self, tmp_path):
        wl = build_workload("join", scale=SCALE)
        names = workload_index_names(wl)
        path = tmp_path / "join.jsonl"
        save_trace(path, wl.requests, names)
        by_name = {name: None for name in names.values()}
        lookup = {id(i): i for i in wl.indexes}
        for oid, name in names.items():
            by_name[name] = lookup.get(oid)
        loaded = load_trace(path, {k: v for k, v in by_name.items() if v})
        assert len(loaded) == len(wl.requests)


class TestCLI:
    def test_workloads_listing(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "scan" in out and "pagerank" in out

    def test_compare(self, capsys):
        rc = cli_main([
            "compare", "scan", "--scale", "0.05",
            "--systems", "stream,metal",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metal" in out and "speedup" in out

    def test_compare_unknown_system(self, capsys):
        rc = cli_main(["compare", "scan", "--systems", "l2"])
        assert rc == 2

    def test_compare_cache_size(self, capsys):
        rc = cli_main([
            "compare", "scan", "--scale", "0.05",
            "--systems", "metal", "--cache-kb", "4",
        ])
        assert rc == 0


class TestDynamicMixModule:
    def test_run_dynamic_mix_coherent(self):
        from repro.bench.dynamic import format_dynamic_mix, run_dynamic_mix

        results = run_dynamic_mix(
            num_records=800, num_ops=400,
            kinds=("stream", "metal_ix"),
        )
        assert all(r.invalidations_survived for r in results)
        by_name = {r.system: r for r in results}
        assert by_name["metal_ix"].makespan < by_name["stream"].makespan
        out = format_dynamic_mix(results)
        assert "coherent" in out

    def test_read_fraction_validated(self):
        import pytest

        from repro.bench.dynamic import run_dynamic_mix

        with pytest.raises(ValueError):
            run_dynamic_mix(read_fraction=1.5)
