"""Tests for Redis-style sorted sets over bucketed skip lists."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.sorted_set import SortedSet, implicit_score


class TestBucketing:
    def test_bucket_ranges_partition_space(self):
        sset = SortedSet(score_space=1000, num_buckets=7)
        covered = []
        for b in range(7):
            lo, hi = sset.bucket_range(b)
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(1000))

    def test_bucket_of_matches_range(self):
        sset = SortedSet(score_space=1000, num_buckets=7)
        for score in [0, 1, 142, 143, 500, 999]:
            b = sset.bucket_of(score)
            lo, hi = sset.bucket_range(b)
            assert lo <= score <= hi

    def test_out_of_range_rejected(self):
        sset = SortedSet(score_space=100)
        with pytest.raises(ValueError):
            sset.bucket_of(100)
        with pytest.raises(ValueError):
            sset.bucket_of(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SortedSet(score_space=0)
        with pytest.raises(ValueError):
            SortedSet(score_space=10, num_buckets=0)


class TestAddLookup:
    def test_explicit_score(self):
        sset = SortedSet(score_space=1 << 16, num_buckets=4)
        sset.add("alice", 100)
        assert sset.lookup("alice", 100)
        assert not sset.lookup("bob", 100)

    def test_implicit_score_deterministic(self):
        s1 = implicit_score("user:42", 1 << 20)
        s2 = implicit_score("user:42", 1 << 20)
        assert s1 == s2

    def test_implicit_score_used_for_lookup(self):
        sset = SortedSet(score_space=1 << 16, num_buckets=8)
        score = sset.add("charlie")
        assert sset.lookup("charlie")
        assert sset.members_at(score) == ["charlie"]

    def test_same_score_multiple_members(self):
        sset = SortedSet(score_space=1000, num_buckets=2)
        sset.add("b", 5)
        sset.add("a", 5)
        assert sset.members_at(5) == ["a", "b"]  # lexicographic

    def test_len(self):
        sset = SortedSet(score_space=1000)
        sset.add("x", 1)
        sset.add("y", 2)
        assert len(sset) == 2


class TestWalks:
    def test_walk_starts_at_directory(self):
        sset = SortedSet(score_space=1000, num_buckets=4)
        sset.add("m", 500)
        path = sset.walk(500)
        assert path[0].level == 0
        lo, hi = sset.bucket_range(sset.bucket_of(500))
        assert path[0].lo == lo and path[0].hi == hi

    def test_walk_ends_at_score(self):
        sset = SortedSet(score_space=1000, num_buckets=4)
        for s in range(0, 1000, 50):
            sset.add(f"m{s}", s)
        assert sset.walk(500)[-1].keys == [500]

    def test_walk_from_directory_node(self):
        sset = SortedSet(score_space=1000, num_buckets=4)
        sset.add("m", 600)
        dir_node = sset.walk(600)[0]
        path = sset.walk_from(dir_node, 600)
        assert path[0] is dir_node
        assert path[-1].keys == [600]

    def test_walk_from_skip_node(self):
        sset = SortedSet(score_space=1 << 12, num_buckets=2, seed=3)
        for s in range(0, 4096, 16):
            sset.add(f"m{s}", s)
        full = sset.walk(2000)
        mid = full[len(full) // 2]
        partial = sset.walk_from(mid, 2000)
        assert partial[-1].keys == full[-1].keys


class TestRangeScan:
    def test_scan_within_bucket(self):
        sset = SortedSet(score_space=1000, num_buckets=1)
        for s in [5, 10, 15, 20]:
            sset.add(f"m{s}", s)
        assert [s for s, _ in sset.range_scan(8, 17)] == [10, 15]

    def test_scan_across_buckets(self):
        sset = SortedSet(score_space=100, num_buckets=10)
        for s in range(100):
            sset.add(f"m{s}", s)
        got = [s for s, _ in sset.range_scan(25, 47)]
        assert got == list(range(25, 48))

    def test_empty_scan(self):
        sset = SortedSet(score_space=100)
        assert list(sset.range_scan(50, 40)) == []


class TestNodes:
    def test_nodes_include_directory(self):
        sset = SortedSet(score_space=100, num_buckets=5)
        levels = {n.level for n in sset.nodes()}
        assert 0 in levels

    def test_height_counts_directory(self):
        sset = SortedSet(score_space=100, num_buckets=2, max_height=6)
        assert sset.height == 1 + 6


@settings(max_examples=25, deadline=None)
@given(scores=st.sets(st.integers(0, 9_999), min_size=1, max_size=150))
def test_property_scan_matches_sorted_filter(scores):
    sset = SortedSet(score_space=10_000, num_buckets=8, seed=2)
    for s in scores:
        sset.add(f"m{s}", s)
    got = [s for s, _ in sset.range_scan(1_000, 8_000)]
    assert got == sorted(s for s in scores if 1_000 <= s <= 8_000)


@settings(max_examples=25, deadline=None)
@given(scores=st.sets(st.integers(0, 999), min_size=1, max_size=80))
def test_property_walk_reaches_every_score(scores):
    sset = SortedSet(score_space=1_000, num_buckets=4, seed=5)
    for s in scores:
        sset.add(f"m{s}", s)
    for s in scores:
        assert sset.walk(s)[-1].keys == [s]
