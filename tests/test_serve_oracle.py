"""Analytical oracle tests: the serving simulator vs queueing theory.

With a single tile stubbed to a deterministic service time and every
network/balancer cost zeroed, the serving topology *is* an M/D/1 queue:
Poisson arrivals (superposed user streams) at rate ``lambda``, constant
service ``D``, one FIFO server. Closed form (Pollaczek-Khinchine):

    rho = lambda * D
    Wq  = rho * D / (2 * (1 - rho))

No unit test of the simulator's internals can provide this guarantee:
matching the closed form within 5% simultaneously validates the
exponential arrival generator, the FIFO queue discipline, the busy-time
accounting, and the histogram mean — any systematic bias in any of them
shows up as a Wq error. The knee test pins the qualitative regime
change: past saturation (rho > 1) the backlog grows linearly with the
horizon and p99 blows up, which is exactly what the saturation sweep's
knee detector looks for.
"""

from __future__ import annotations

import math

import pytest

from repro.serve import ServeSpec, simulate_serve

#: Deterministic service time (ns) of the stubbed tile.
D = 2_000
#: Closed-form tolerance required by the acceptance bar.
TOLERANCE = 0.05


def _mdone_spec(rho: float, duration_ms: int, seed: int = 0,
                **overrides) -> ServeSpec:
    """Single deterministic tile, zero network: a pure M/D/1 queue.

    The aggregate arrival rate is rho/D, split evenly over 8 fixed
    users — the superposition of their exponential streams is exactly
    Poisson at the aggregate rate.
    """
    users = 8
    lam = rho / D  # requests per ns
    kwargs = dict(
        backend="fixed", service_ns=D, tiles=1, users=users,
        population="fixed", requests_per_min=lam * 60e9 / users,
        duration_ms=duration_ms, seed=seed,
        client_lb_ns=0, lb_service_ns=0, lb_tile_ns=0, tile_client_ns=0,
    )
    kwargs.update(overrides)
    return ServeSpec.make("scan", **kwargs)


@pytest.mark.parametrize("rho,duration_ms", [
    (0.2, 1_200),   # ~120k requests
    (0.5, 800),     # ~200k requests
    (0.8, 1_200),   # ~480k requests (high-rho variance needs the mass)
])
def test_mdone_mean_wait_and_utilization_match_closed_form(rho, duration_ms):
    result = simulate_serve(_mdone_spec(rho, duration_ms))
    assert result.offered == result.completed > 10_000

    wq_theory = rho * D / (2 * (1 - rho))
    wq_measured = result.tile_wait.mean  # histogram mean is an exact sum
    assert math.isclose(wq_measured, wq_theory, rel_tol=TOLERANCE), (
        f"rho={rho}: simulated mean wait {wq_measured:.1f}ns vs M/D/1 "
        f"closed form {wq_theory:.1f}ns"
    )
    assert math.isclose(result.utilization, rho, rel_tol=TOLERANCE), (
        f"rho={rho}: utilization {result.utilization:.4f} vs rho {rho}"
    )


def test_mdone_latency_decomposes_exactly():
    """With zero network, e2e = tile wait + service for every request,
    so the histogram totals decompose exactly (means follow)."""
    result = simulate_serve(_mdone_spec(0.5, 200))
    assert result.latency.total == result.tile_wait.total + result.service.total
    assert result.latency.count == result.tile_wait.count == result.service.count
    # Deterministic service: the service histogram is a spike at D.
    assert result.service.min == result.service.max == D


def test_mdone_waits_grow_with_rho():
    """Monotone sanity between the oracle points: heavier load, longer
    queues — and p50 wait stays below the mean (waits are right-skewed)."""
    waits = [simulate_serve(_mdone_spec(rho, 400)).tile_wait
             for rho in (0.2, 0.5, 0.8)]
    means = [w.mean for w in waits]
    assert means == sorted(means)
    for hist in waits:
        assert hist.percentile(50) <= hist.mean + 1


def test_p99_blows_up_past_the_knee():
    """Past saturation (rho > 1) the queue diverges: p99 end-to-end
    latency explodes relative to any sub-critical operating point, and
    throughput pins at the service ceiling."""
    below = simulate_serve(_mdone_spec(0.5, 150))
    past = simulate_serve(_mdone_spec(1.3, 150))
    assert past.latency.percentile(99) > 10 * below.latency.percentile(99)
    # Over-offered load cannot push throughput past 1/D.
    capacity_rps = 1e9 / D
    assert past.throughput_rps <= capacity_rps * 1.01
    assert past.throughput_rps > capacity_rps * 0.95
    # Sub-critical throughput tracks the offered rate instead.
    assert math.isclose(
        below.throughput_rps, 0.5 * capacity_rps, rel_tol=0.05)


def test_oracle_is_seed_stable_but_seed_sensitive():
    """The oracle numbers are properties of the distribution, not of one
    lucky stream: a different seed moves individual samples but stays
    within tolerance of the closed form."""
    a = simulate_serve(_mdone_spec(0.5, 800, seed=0))
    b = simulate_serve(_mdone_spec(0.5, 800, seed=1))
    assert a.tile_wait.total != b.tile_wait.total  # different streams...
    wq_theory = 0.5 * D / (2 * 0.5)
    for result in (a, b):  # ...same physics
        assert math.isclose(result.tile_wait.mean, wq_theory,
                            rel_tol=TOLERANCE)
