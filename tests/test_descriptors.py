"""Tests for reuse descriptors (Node / Level / Branch / Composite)."""

import pytest

from repro.core.descriptors import (
    BatchFeedback,
    BranchDescriptor,
    CompositeDescriptor,
    LevelDescriptor,
    NodeDescriptor,
    TouchFilter,
    WalkContext,
)
from repro.indexes.base import IndexNode


def node(level, lo=0, hi=10, nvalues=3):
    return IndexNode(level, list(range(lo, lo + nvalues)),
                     values=[0] * nvalues, lo=lo, hi=hi)


HEIGHT = 8


class TestTouchFilter:
    def test_first_touch_blocked(self):
        f = TouchFilter(min_touches=2)
        assert not f.admit(1)
        assert f.admit(1)

    def test_min_touches_one_always_admits(self):
        f = TouchFilter(min_touches=1)
        assert f.admit(99)

    def test_capacity_forgets_old(self):
        f = TouchFilter(capacity=2, min_touches=2)
        f.admit(1)
        f.admit(2)
        f.admit(3)  # evicts 1
        assert not f.admit(1)  # counted as first touch again

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TouchFilter(capacity=0)
        with pytest.raises(ValueError):
            TouchFilter(min_touches=0)


class TestNodeDescriptor:
    def test_leaf_target(self):
        d = NodeDescriptor("leaf", life=5)
        assert d.decide(node(HEIGHT - 1), HEIGHT).insert
        assert not d.decide(node(HEIGHT - 2), HEIGHT).insert

    def test_integer_target(self):
        d = NodeDescriptor(3, life=1)
        assert d.decide(node(3), HEIGHT).insert
        assert not d.decide(node(4), HEIGHT).insert

    def test_fixed_life(self):
        d = NodeDescriptor("leaf", life=7)
        assert d.decide(node(HEIGHT - 1), HEIGHT).life == 7

    def test_default_life_counts_payload(self):
        d = NodeDescriptor("leaf")
        decision = d.decide(node(HEIGHT - 1, nvalues=4), HEIGHT)
        assert decision.insert and decision.life == 4

    def test_life_and_life_fn_exclusive(self):
        with pytest.raises(ValueError):
            NodeDescriptor("leaf", life_fn=lambda n: 1, life=2)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            NodeDescriptor("root")

    def test_touch_filter(self):
        d = NodeDescriptor("leaf", life=1, min_touches=2)
        n = node(HEIGHT - 1)
        assert not d.decide(n, HEIGHT).insert
        assert d.decide(n, HEIGHT).insert


def feedback(hits=None, inserted=None, hit_rate=0.5, occupancy=0.5):
    return BatchFeedback(hits or {}, inserted or {}, hit_rate, occupancy)


class TestLevelDescriptor:
    def test_band_membership(self):
        d = LevelDescriptor(2, 5, min_touches=1)
        assert d.decide(node(2), HEIGHT).insert
        assert d.decide(node(5), HEIGHT).insert
        assert not d.decide(node(1), HEIGHT).insert
        assert not d.decide(node(6), HEIGHT).insert

    def test_band_clamped_to_height(self):
        d = LevelDescriptor(2, 20, min_touches=1)
        assert not d.decide(node(9), HEIGHT).insert  # beyond height-1

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            LevelDescriptor(5, 2)

    def test_deep_levels_filtered(self):
        d = LevelDescriptor(1, 7, min_touches=2)
        deep = node(7)
        assert not d.decide(deep, HEIGHT).insert  # first touch
        assert d.decide(deep, HEIGHT).insert

    def test_shallow_levels_unfiltered(self):
        d = LevelDescriptor(1, 7, min_touches=2)
        assert d.decide(node(1), HEIGHT).insert

    def test_frontier_growth_position_zero_only(self):
        d = LevelDescriptor(1, 7, min_touches=1)
        n = node(5)
        ctx0 = WalkContext(short_circuited=True, position=0)
        ctx1 = WalkContext(short_circuited=True, position=1)
        assert d.decide(n, HEIGHT, ctx0).insert
        assert not d.decide(node(6), HEIGHT, ctx1).insert

    def test_non_frontier_ignores_ctx(self):
        d = LevelDescriptor(1, 7, min_touches=1, frontier=False)
        ctx1 = WalkContext(short_circuited=True, position=3)
        assert d.decide(node(6), HEIGHT, ctx1).insert

    def test_tune_low_utility_shifts_up(self):
        d = LevelDescriptor(3, 6, low_utility=1.0, high_utility=4.0)
        fb = feedback(hits={4: 1}, inserted={4: 100})
        d.tune(fb)  # first low batch: hysteresis holds
        assert (d.start, d.end) == (3, 6)
        d.tune(fb)
        assert (d.start, d.end) == (2, 5)

    def test_tune_high_utility_extends_end(self):
        d = LevelDescriptor(3, 5, high_utility=2.0, max_level=HEIGHT - 1)
        fb = feedback(hits={4: 100}, inserted={4: 10})
        d.tune(fb)
        assert d.end == 6

    def test_tune_end_clamped_to_max(self):
        d = LevelDescriptor(3, HEIGHT - 1, high_utility=2.0, max_level=HEIGHT - 1)
        d.tune(feedback(hits={4: 100}, inserted={4: 10}))
        assert d.end == HEIGHT - 1

    def test_tune_no_insertions_counts_as_high(self):
        d = LevelDescriptor(3, 5, max_level=HEIGHT - 1)
        d.tune(feedback(hits={4: 10}, inserted={}))
        assert d.end == 6

    def test_describe(self):
        d = LevelDescriptor(2, 4)
        assert d.describe() == {"pattern": "level", "start": 2, "end": 4}


class TestBranchDescriptor:
    def test_depth_limits_levels(self):
        d = BranchDescriptor(depth=2)
        assert not d.decide(node(HEIGHT - 3), HEIGHT).insert
        assert d.decide(node(HEIGHT - 1), HEIGHT).insert

    def test_no_pivot_inserts_all_in_depth(self):
        d = BranchDescriptor(depth=3)
        assert d.decide(node(HEIGHT - 1), HEIGHT).insert

    def test_pivot_tracks_median(self):
        d = BranchDescriptor(depth=3, window=32)
        for k in range(100, 200):
            d.observe_key(k)
        assert d.pivot is not None
        assert 150 <= d.pivot <= 200

    def test_far_nodes_bypassed_with_halfwidth(self):
        d = BranchDescriptor(depth=3, halfwidth=10, window=8)
        for k in [100] * 10:
            d.observe_key(k)
        near = node(HEIGHT - 1, lo=95, hi=105)
        far = node(HEIGHT - 1, lo=500, hi=510)
        assert d.decide(near, HEIGHT).insert
        assert not d.decide(far, HEIGHT).insert

    def test_tune_grows_depth_on_hits(self):
        d = BranchDescriptor(depth=2, grow_hit_rate=0.4)
        d.tune(feedback(hit_rate=0.8, occupancy=0.5))
        assert d.depth == 3

    def test_tune_widens_on_misses(self):
        d = BranchDescriptor(depth=3, halfwidth=10)
        d.tune(feedback(hit_rate=0.05, occupancy=1.0))
        assert d.halfwidth == 20

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            BranchDescriptor(depth=0)


class TestComposite:
    def test_any_mode_union(self):
        d = CompositeDescriptor(
            [NodeDescriptor("leaf", life=3), LevelDescriptor(1, 2, min_touches=1)]
        )
        assert d.decide(node(HEIGHT - 1), HEIGHT).insert  # node member
        assert d.decide(node(2), HEIGHT).insert  # level member
        assert not d.decide(node(4), HEIGHT).insert

    def test_any_mode_takes_max_life(self):
        d = CompositeDescriptor(
            [NodeDescriptor("leaf", life=9),
             LevelDescriptor(0, HEIGHT - 1, min_level=0, min_touches=1)]
        )
        assert d.decide(node(HEIGHT - 1), HEIGHT).life == 9

    def test_all_mode_intersection(self):
        d = CompositeDescriptor(
            [NodeDescriptor(5, life=1), LevelDescriptor(4, 6, min_touches=1)],
            mode="all",
        )
        assert d.decide(node(5), HEIGHT).insert
        assert not d.decide(node(4), HEIGHT).insert  # node member says no

    def test_observe_and_tune_propagate(self):
        branch = BranchDescriptor(depth=2, grow_hit_rate=0.4)
        d = CompositeDescriptor([branch])
        for k in range(50):
            d.observe_key(k)
        assert branch.pivot is not None
        d.tune(feedback(hit_rate=0.9, occupancy=0.2))
        assert branch.depth == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeDescriptor([])

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            CompositeDescriptor([NodeDescriptor("leaf", life=1)], mode="xor")
