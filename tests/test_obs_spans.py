"""Request span trees: construction, reconciliation, tail attribution.

The span log is only trustworthy if it is *exactly* consistent with the
numbers the serving engine reports through other channels: per-request
hop sums vs the independently recorded end-to-end latency, aggregate
sums vs the result histograms' exact totals, per-tile counts vs the tile
accounting. These tests pin that reconciliation across a grid of specs
(both balancers, both backends, skewed tiles) and the analyses built on
the log (tail attribution, Chrome export, dict round-trip).
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import serve_trace_to_chrome
from repro.obs.spans import (
    HOPS,
    LB_QUEUE,
    SERVICE,
    TILE_QUEUE,
    RequestSpan,
    SpanLog,
    format_tail_attribution,
    reconcile_spans,
    tail_attribution,
)
from repro.serve import ServeSpec, simulate_serve

SMALL = 0.01


def _spec(**overrides) -> ServeSpec:
    kwargs = dict(scale=SMALL, users=4, tiles=2, duration_ms=1,
                  requests_per_min=6_000_000.0, trace=True)
    kwargs.update(overrides)
    return ServeSpec.make("scan", **kwargs)


def _span(rid=0, latency=70, hops=(10, 10, 10, 10, 10, 10, 10), **kw):
    kwargs = dict(rid=rid, user=0, tile=0, walk=-1, start=0,
                  latency=latency, hops=tuple(hops))
    kwargs.update(kw)
    return RequestSpan(**kwargs)


# --------------------------------------------------------------------- #
# RequestSpan primitives
# --------------------------------------------------------------------- #

def test_span_hop_geometry_is_contiguous():
    span = _span(start=100, hops=(1, 2, 3, 4, 5, 6, 7), latency=28)
    children = list(span.spans())
    assert [name for name, _, _ in children] == list(HOPS)
    assert children[0][1] == 100
    for (_, _, prev_end), (_, start, _) in zip(children, children[1:]):
        assert start == prev_end
    assert children[-1][2] == span.end == 128
    for i in range(len(HOPS)):
        assert span.hop_interval(i) == (children[i][1], children[i][2])


def test_span_attribution_accounting():
    span = _span(latency=70)
    assert span.attributed == 70
    assert span.unattributed == 0
    assert _span(latency=75).unattributed == 5


def test_span_row_roundtrip():
    span = _span(rid=3, user=1, tile=7, walk=42, start=9, latency=70)
    assert RequestSpan.from_row(span.to_row()) == span


# --------------------------------------------------------------------- #
# SpanLog validation and serialization
# --------------------------------------------------------------------- #

def test_validate_catches_unattributed_time_and_rid_order():
    ok = SpanLog([_span(rid=0), _span(rid=1, start=100)])
    assert ok.validate() == []
    bad_sum = SpanLog([_span(rid=0, latency=99)])
    assert any("unattributed" in p for p in bad_sum.validate())
    bad_rid = SpanLog([_span(rid=1)])
    assert any("out of order" in p for p in bad_rid.validate())
    bad_arity = SpanLog([_span(rid=0, hops=(70,), latency=70)])
    assert any("hops" in p for p in bad_arity.validate())


def test_spanlog_dict_roundtrip_and_schema_check():
    log = simulate_serve(_spec()).spans
    assert log is not None and len(log) > 0
    wire = json.loads(json.dumps(log.to_dict()))
    restored = SpanLog.from_dict(wire)
    assert restored.requests == log.requests
    wire["hops"] = ["bogus"]
    with pytest.raises(ValueError):
        SpanLog.from_dict(wire)


def test_completions_are_sorted_and_makespan_matches():
    log = simulate_serve(_spec()).spans
    completions = log.completions()
    assert completions == sorted(completions)
    assert len(completions) == len(log)
    assert completions[-1][0] == log.makespan()


# --------------------------------------------------------------------- #
# Reconciliation against ServeResult (the tentpole invariant)
# --------------------------------------------------------------------- #

GRID = [
    dict(),
    dict(balancer="least_loaded"),
    dict(tiles=3, tile_speedups=(1.0, 0.5, 2.0)),
    dict(backend="fixed", service_ns=500),
    dict(users=1, load=2.0),
]


@pytest.mark.parametrize("overrides", GRID,
                         ids=["base", "least_loaded", "skewed", "fixed",
                              "single_user"])
def test_span_trees_reconcile_exactly(overrides):
    result = simulate_serve(_spec(**overrides))
    log = result.spans
    assert log is not None and len(log) == result.offered > 0
    assert reconcile_spans(log, result) == []
    # Reconciliation is a real cross-check: perturb one hop and the
    # per-request and aggregate invariants both fire.
    broken = SpanLog([_span(rid=s.rid, user=s.user, tile=s.tile,
                            walk=s.walk, start=s.start, latency=s.latency,
                            hops=s.hops) for s in log])
    first = broken.requests[0]
    hops = list(first.hops)
    hops[TILE_QUEUE] += 1
    first.hops = tuple(hops)
    problems = reconcile_spans(broken, result)
    assert any("unattributed" in p for p in problems)
    assert any("tile_wait" in p for p in problems)


def test_walk_linkage_matches_backend():
    sim_log = simulate_serve(_spec()).spans
    assert all(span.walk >= 0 for span in sim_log)
    fixed_log = simulate_serve(_spec(backend="fixed", service_ns=500)).spans
    assert all(span.walk == -1 for span in fixed_log)
    assert all(span.hops[SERVICE] == 500 for span in fixed_log)


def test_reconcile_flags_missing_requests():
    result = simulate_serve(_spec())
    truncated = SpanLog(result.spans.requests[:-1])
    assert any("offered" in p for p in reconcile_spans(truncated, result))


# --------------------------------------------------------------------- #
# Tail attribution
# --------------------------------------------------------------------- #

def test_tail_attribution_reconciles_with_slow_set():
    log = simulate_serve(_spec(load=1.5)).spans
    tail = tail_attribution(log, 99.0)
    assert tail.count > 0
    assert tail.unattributed == 0
    slow = [s for s in log if s.latency >= tail.threshold_ns]
    assert tail.count == len(slow)
    assert tail.total_ns == sum(s.latency for s in slow)
    for i, name in enumerate(HOPS):
        assert tail.totals[name] == sum(s.hops[i] for s in slow)
    shares = tail.shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-9


def test_tail_percentile_zero_covers_everything():
    log = simulate_serve(_spec()).spans
    tail = tail_attribution(log, 0.0)
    assert tail.count == len(log)
    assert tail.total_ns == sum(s.latency for s in log)


def test_tail_attribution_edge_cases():
    empty = tail_attribution(SpanLog([]))
    assert empty.count == 0 and empty.total_ns == 0
    with pytest.raises(ValueError):
        tail_attribution(SpanLog([]), percentile=101)
    # Fractional percentiles must not fall to float off-by-one (99.9
    # of 1000 -> rank 999, not 998).
    log = SpanLog([_span(rid=i, latency=70 + i,
                         hops=(10, 10, 10, 10, 10, 10, 10 + i))
                   for i in range(1000)])
    assert tail_attribution(log, 99.9).threshold_ns == 70 + 998


def test_format_tail_attribution_renders_all_hops():
    text = format_tail_attribution(
        tail_attribution(simulate_serve(_spec()).spans, 90.0))
    assert "tile queueing" in text
    assert "total" in text
    assert "100.0%" in text


# --------------------------------------------------------------------- #
# Chrome export
# --------------------------------------------------------------------- #

def test_serve_trace_chrome_structure():
    result = simulate_serve(_spec())
    log = result.spans
    payload = serve_trace_to_chrome(log, meta={"load": 1.0})
    assert payload["otherData"]["requests"] == len(log)
    assert payload["otherData"]["load"] == 1.0
    events = payload["traceEvents"]
    by_name = {}
    for record in events:
        by_name.setdefault(record["name"], []).append(record)
    assert len(by_name["process_name"]) == 3
    assert len(by_name["request"]) == len(log)
    assert len(by_name["service"]) == len(log)
    # Root slices carry the full hop decomposition; durations match.
    for record, span in zip(by_name["request"], log):
        assert record["ph"] == "X"
        assert record["ts"] == span.start and record["dur"] == span.latency
        assert [record["args"][h] for h in HOPS] == list(span.hops)
    # FIFO stations: per-tile service slices never overlap.
    per_tile: dict[int, list[tuple[int, int]]] = {}
    for record in by_name["service"]:
        per_tile.setdefault(record["tid"], []).append(
            (record["ts"], record["ts"] + record["dur"]))
    for intervals in per_tile.values():
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert start >= end
    # The whole payload is JSON-pure (what write_serve_trace persists).
    assert json.loads(json.dumps(payload)) == payload


def test_serve_trace_chrome_skips_zero_width_dispatch():
    log = simulate_serve(_spec(lb_service_ns=0)).spans
    payload = serve_trace_to_chrome(log)
    assert not any(r["name"] == "dispatch" for r in payload["traceEvents"])
