"""Tests for the microcoded walker FSM (Fig. 9)."""

from repro.dsa.walker import MicrocodeTable, Walker, WalkerState
from repro.indexes.bplustree import BPlusTree
from repro.sim.memsys import StreamingMemSys


def tree():
    return BPlusTree.bulk_load([(k, k) for k in range(500)], fanout=4)


class TestMicrocode:
    def test_cycle_of_states(self):
        table = MicrocodeTable()
        assert table.successor(WalkerState.FETCH) is WalkerState.WAIT
        assert table.successor(WalkerState.WAIT) is WalkerState.SEARCH
        assert table.successor(WalkerState.SEARCH) is WalkerState.NEXT
        assert table.successor(WalkerState.NEXT) is WalkerState.FETCH

    def test_done_has_no_successor(self):
        import pytest

        with pytest.raises(KeyError):
            MicrocodeTable().successor(WalkerState.DONE)


class TestWalker:
    def test_visits_every_level(self):
        t = tree()
        walker = Walker()
        states = [s.state for s in walker.run(t, 123)]
        assert states.count(WalkerState.FETCH) == t.height
        assert states.count(WalkerState.WAIT) == t.height
        assert states[-1] is WalkerState.DONE

    def test_leaf_result_matches_tree(self):
        t = tree()
        walker = Walker()
        leaf = walker.leaf(t, 321)
        assert leaf is t.walk(321)[-1]

    def test_yield_points_carry_accesses(self):
        t = tree()
        for step in Walker().run(t, 50):
            if step.state is WalkerState.WAIT:
                assert step.access is not None and step.access.kind == "dram"
            if step.state is WalkerState.SEARCH:
                assert step.access is not None and step.access.kind == "compute"

    def test_trace_dram_count_matches_streaming_memsys(self):
        """The FSM and the streaming memory system agree on work done."""
        t = tree()
        walker_dram = sum(
            1 for a in Walker().trace(t, 222) if a.kind == "dram"
        )
        stream_trace = StreamingMemSys().process_walk(t, 222)
        stream_dram = sum(1 for a in stream_trace.accesses if a.kind == "dram")
        # The walker issues one fetch per node; streaming expands to the
        # binary-search footprint — node counts must agree.
        assert walker_dram == t.height
        assert stream_trace.nodes_visited == t.height
        assert stream_dram >= walker_dram

    def test_start_from_cached_node(self):
        t = tree()
        mid = t.walk(100)[1]
        steps = list(Walker().run(t, 100, start=mid))
        fetches = [s for s in steps if s.state is WalkerState.FETCH]
        assert len(fetches) == t.height - 2  # skips root and the cached node


class TestWalkProgram:
    def test_compile_distributes_ops(self):
        from repro.dsa.walker import WalkProgram

        program = WalkProgram.compile(ops_per_walk=80, height=10, ops_per_cycle=4)
        assert program.fetch_cycles >= 1
        assert program.search_cycles >= program.next_cycles
        assert program.cycles_per_level >= 3

    def test_compile_validation(self):
        import pytest

        from repro.dsa.walker import WalkProgram

        with pytest.raises(ValueError):
            WalkProgram.compile(10, 0)
        with pytest.raises(ValueError):
            WalkProgram.compile(10, 5, ops_per_cycle=0)

    def test_programmed_walker_charges_state_costs(self):
        from repro.dsa.walker import Walker, WalkProgram, WalkerState

        t = tree()
        program = WalkProgram.compile(80, t.height)
        walker = Walker(program=program)
        for step in walker.run(t, 99):
            if step.state is WalkerState.SEARCH:
                assert step.access.cycles == program.search_cycles
            if step.state is WalkerState.NEXT and step.access is not None:
                assert step.access.cycles == program.next_cycles

    def test_heavier_program_costs_more(self):
        from repro.dsa.walker import Walker, WalkProgram

        t = tree()
        light = Walker(program=WalkProgram.compile(20, t.height))
        heavy = Walker(program=WalkProgram.compile(400, t.height))
        cost = lambda w: sum(  # noqa: E731
            a.cycles for a in w.trace(t, 50) if a.kind == "compute"
        )
        assert cost(heavy) > cost(light)
