"""Differential no-fault equivalence gate for the fault-injection layer.

The PR-level acceptance bar is byte-identity of the full bench matrix with
faults unset; these tests pin the same contract in-repo, in the idiom of
``test_perf_equivalence.py``: with ``faults=None``, with an *empty*
``FaultPlan`` (the default — every rate zero), and with an explicit
rate-0 plan carrying non-default penalty magnitudes, ``RunResult.to_dict``
is byte-identical across the shared-system matrix. The no-fault tree must
not even carry a ``faults`` key, so pre-fault-layer serializations replay
unchanged through caches and baselines.
"""

import json
from dataclasses import replace

import pytest

from repro.bench.runner import SYSTEMS, build_memsys
from repro.faults import FaultPlan
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload

SCALE = 0.01
WORKLOADS = ("scan", "sets")

#: The three spellings of "no faults" that must be indistinguishable.
NO_FAULT_MODES = {
    "none": None,
    "empty_plan": FaultPlan(),
    "zero_rates": FaultPlan(
        seed=99, dram_spike_cycles=1234, bank_stall_cycles=777,
        noc_burst_cycles=55, walker_backoff_cycles=3, storm_span_blocks=9,
    ),
}


@pytest.fixture(scope="module")
def workloads():
    return {name: build_workload(name, scale=SCALE) for name in WORKLOADS}


def run_dict(workload, system: str, faults) -> dict:
    sim = replace(workload.config.sim_params(), faults=faults)
    memsys = build_memsys(system, workload, sim=sim)
    result = simulate(
        memsys, workload.requests, sim, workload.total_index_blocks,
        record_latencies=True,
    )
    return result.to_dict()


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_no_fault_matrix_byte_identical(workloads, workload_name, system):
    workload = workloads[workload_name]
    reference = json.dumps(run_dict(workload, system, None), sort_keys=True)
    assert '"faults"' not in reference
    for mode, plan in NO_FAULT_MODES.items():
        if plan is None:
            continue
        assert plan.is_empty
        got = json.dumps(run_dict(workload, system, plan), sort_keys=True)
        assert got == reference, (
            f"{workload_name}/{system}: {mode} diverged from faults=None"
        )


def test_untraced_fast_path_taken_when_fault_free(workloads, monkeypatch):
    """faults=None must still dispatch to the lean untraced engine loop."""
    from repro.sim import engine as engine_mod

    calls = []
    original = engine_mod.Engine._run_untraced

    def spy(self, *args, **kwargs):
        calls.append(True)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(engine_mod.Engine, "_run_untraced", spy)
    workload = workloads["scan"]
    run_dict(workload, "metal", None)
    assert calls, "fault-free untraced run bypassed the lean loop"
    # ... and a faulted run must NOT take it (one canonical site order).
    calls.clear()
    run_dict(workload, "metal", FaultPlan.uniform(0.05))
    assert not calls, "faulted run took the lean loop (schedule would fork)"


def test_faulted_run_differs_and_carries_ledger(workloads):
    """Sanity: nonzero plans actually perturb the run and are accounted."""
    workload = workloads["scan"]
    clean = run_dict(workload, "metal", None)
    faulted = run_dict(workload, "metal", FaultPlan.uniform(0.05, seed=1))
    assert faulted["makespan"] > clean["makespan"]
    ledger = faulted["faults"]
    assert ledger["faults_injected"] > 0
    assert (
        ledger["walks_completed"] + ledger["walks_degraded"]
        == ledger["walks_total"]
        == faulted["num_walks"]
    )
