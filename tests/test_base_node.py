"""Tests for the shared IndexNode abstraction and base helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.base import (
    IndexNode,
    _branch_index,
    assign_addresses,
    count_blocks,
    next_index_id,
)
from repro.mem.layout import Allocator
from repro.params import BLOCK_SIZE, KEY_BYTES, PTR_BYTES


class TestIndexNode:
    def test_leaf_detection(self):
        leaf = IndexNode(0, [1], values=[10])
        inner = IndexNode(0, [1], children=[leaf, leaf])
        assert leaf.is_leaf
        assert not inner.is_leaf

    def test_default_bounds_from_keys(self):
        node = IndexNode(0, [3, 7, 9], values=[0, 0, 0])
        assert node.lo == 3 and node.hi == 9

    def test_explicit_bounds_override(self):
        node = IndexNode(0, [5], values=[0], lo=0, hi=100)
        assert node.lo == 0 and node.hi == 100

    def test_covers(self):
        node = IndexNode(0, [5], values=[0], lo=10, hi=20)
        assert node.covers(10) and node.covers(20) and node.covers(15)
        assert not node.covers(9) and not node.covers(21)

    def test_covers_with_no_bounds(self):
        node = IndexNode(0, [], values=[])
        assert not node.covers(5)

    def test_byte_size_counts_keys_and_pointers(self):
        leaf = IndexNode(0, [1, 2, 3], values=[0, 0, 0])
        assert leaf.byte_size() == 3 * KEY_BYTES + 3 * PTR_BYTES

    def test_child_for_on_leaf_rejected(self):
        leaf = IndexNode(0, [1], values=[0])
        with pytest.raises(TypeError):
            leaf.child_for(1)

    def test_child_for_separator_semantics(self):
        kids = [IndexNode(1, [i], values=[i]) for i in range(3)]
        inner = IndexNode(0, [10, 20], children=kids)
        assert inner.child_for(5) is kids[0]
        assert inner.child_for(10) is kids[1]   # key == separator goes right
        assert inner.child_for(15) is kids[1]
        assert inner.child_for(25) is kids[2]

    def test_node_ids_unique(self):
        a = IndexNode(0, [1], values=[0])
        b = IndexNode(0, [1], values=[0])
        assert a.node_id != b.node_id

    def test_index_ids_unique(self):
        assert next_index_id() != next_index_id()


class TestBranchIndex:
    @settings(max_examples=50, deadline=None)
    @given(
        separators=st.lists(st.integers(0, 1000), min_size=1, max_size=20,
                            unique=True).map(sorted),
        key=st.integers(-10, 1010),
    )
    def test_property_matches_bisect_right(self, separators, key):
        import bisect

        assert _branch_index(separators, key) == bisect.bisect_right(separators, key)


class TestAddressAssignment:
    def test_assign_addresses_aligned_and_distinct(self):
        nodes = [IndexNode(0, [i], values=[i]) for i in range(10)]
        alloc = Allocator()
        total = assign_addresses(iter(nodes), alloc)
        addrs = [n.address for n in nodes]
        assert len(set(addrs)) == 10
        assert all(a % BLOCK_SIZE == 0 for a in addrs)
        assert total == sum(n.nbytes for n in nodes)

    def test_count_blocks(self):
        nodes = [IndexNode(0, list(range(20)), values=list(range(20)))
                 for _ in range(4)]
        alloc = Allocator()
        assign_addresses(iter(nodes), alloc)
        blocks = count_blocks(iter(nodes))
        expected = sum(
            len(list(Allocator.blocks_spanned(n.address, n.nbytes)))
            for n in nodes
        )
        assert blocks == expected
