"""Tests for the scratchpad and DMA/stream-buffer substrates."""

import pytest

from repro.mem.dma import DMAEngine, StreamBuffer
from repro.mem.dram import DRAM
from repro.mem.scratchpad import Scratchpad
from repro.params import BLOCK_SIZE


class TestScratchpad:
    def test_stage_and_read(self):
        sp = Scratchpad(1024)
        sp.stage("obj", 256)
        assert sp.read("obj")
        assert not sp.read("other")

    def test_capacity_enforced(self):
        sp = Scratchpad(256)
        with pytest.raises(ValueError):
            sp.stage("big", 512)

    def test_fifo_spill(self):
        sp = Scratchpad(256)
        sp.stage("a", 128)
        sp.stage("b", 128)
        sp.stage("c", 128)  # spills a
        assert "a" not in sp
        assert "b" in sp and "c" in sp
        assert sp.spills == 1

    def test_dirty_spill_reported(self):
        sp = Scratchpad(256)
        sp.stage("a", 128, dirty=True)
        sp.stage("b", 128)
        spilled = sp.stage("c", 128)
        assert spilled == ["a"]

    def test_restage_updates_size(self):
        sp = Scratchpad(256)
        sp.stage("a", 100)
        sp.stage("a", 200)
        assert sp.used_bytes == 200
        assert len(sp) == 1

    def test_mark_dirty_and_drain(self):
        sp = Scratchpad(256)
        sp.stage("a", 64)
        sp.mark_dirty("a")
        assert sp.drain_dirty() == ["a"]
        assert sp.drain_dirty() == []

    def test_mark_dirty_missing(self):
        sp = Scratchpad(256)
        with pytest.raises(KeyError):
            sp.mark_dirty("ghost")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Scratchpad(0)


class TestDMA:
    def test_fetch_transfers_blocks(self):
        dram = DRAM()
        dma = DMAEngine(dram)
        dma.fetch(0, BLOCK_SIZE * 3, 0)
        assert dram.stats.reads == 3
        assert dma.transfers == 1

    def test_store_writes(self):
        dram = DRAM()
        dma = DMAEngine(dram)
        dma.store(0, BLOCK_SIZE, 0)
        assert dram.stats.writes == 1

    def test_completion_time_advances(self):
        dram = DRAM()
        dma = DMAEngine(dram)
        done = dma.fetch(0, BLOCK_SIZE, 100)
        assert done > 100


class TestStreamBuffer:
    def test_sequential_stream_prefetches(self):
        dram = DRAM()
        sb = StreamBuffer(dram, depth_blocks=4)
        sb.read(0, 0)  # demand
        sb.read(BLOCK_SIZE, 0)  # in window
        sb.read(BLOCK_SIZE * 2, 0)
        assert sb.demand_fetches == 1
        assert sb.prefetch_hits == 2

    def test_random_jump_is_demand(self):
        dram = DRAM()
        sb = StreamBuffer(dram, depth_blocks=2)
        sb.read(0, 0)
        sb.read(BLOCK_SIZE * 100, 0)
        assert sb.demand_fetches == 2

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            StreamBuffer(DRAM(), depth_blocks=0)
