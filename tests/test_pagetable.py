"""Tests for the radix page table and its IX-cache integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.pagetable import RadixPageTable
from repro.params import BLOCK_SIZE, CacheParams
from repro.sim.memsys import make_memsys


def small_pt(**kw):
    defaults = dict(levels=3, bits_per_level=4, page_bits=12)
    defaults.update(kw)
    return RadixPageTable(**defaults)


class TestMapping:
    def test_map_and_translate(self):
        pt = small_pt()
        pfn = pt.map_page(0x1000)
        pa = pt.translate(0x1234)
        assert pa == (pfn << 12) | 0x234

    def test_unmapped_returns_none(self):
        assert small_pt().translate(0x5000) is None

    def test_explicit_pfn(self):
        pt = small_pt()
        pt.map_page(0x2000, pfn=42)
        assert pt.translate(0x2000) == 42 << 12

    def test_remap_overwrites(self):
        pt = small_pt()
        pt.map_page(0x1000, pfn=1)
        pt.map_page(0x1000, pfn=2)
        assert pt.translate(0x1000) == 2 << 12
        assert pt.mapped_pages == 1

    def test_unmap(self):
        pt = small_pt()
        pt.map_page(0x3000)
        assert pt.unmap_page(0x3000)
        assert pt.translate(0x3000) is None
        assert not pt.unmap_page(0x3000)

    def test_out_of_range_rejected(self):
        pt = small_pt()
        with pytest.raises(ValueError):
            pt.map_page(1 << pt.va_bits)

    def test_geometry(self):
        pt = RadixPageTable(levels=4, bits_per_level=9, page_bits=12)
        assert pt.va_bits == 48
        assert pt.height == 4


class TestWalks:
    def test_walk_depth_after_mapping(self):
        pt = small_pt()
        pt.map_page(0x4000)
        path = pt.walk(0x4000)
        assert len(path) == pt.levels
        assert path[0] is pt.root

    def test_walk_unmapped_stops_early(self):
        pt = small_pt()
        pt.map_page(0x0)
        far = 1 << (pt.va_bits - 1)
        assert len(pt.walk(far)) < pt.levels

    def test_node_ranges_nest(self):
        pt = small_pt()
        pt.map_page(0xABC000 % (1 << pt.va_bits))
        path = pt.walk(0xABC000 % (1 << pt.va_bits))
        for parent, child in zip(path, path[1:]):
            assert parent.lo <= child.lo and child.hi <= parent.hi

    def test_walk_from_skips_levels(self):
        pt = small_pt()
        pt.map_page(0x7000)
        full = pt.walk(0x7000)
        partial = pt.walk_from(full[1], 0x7000)
        assert partial == full[1:]

    def test_walk_from_noncovering_rejected(self):
        pt = small_pt()
        pt.map_page(0x0)
        leafish = pt.walk(0x0)[-1]
        far = 1 << (pt.va_bits - 1)
        pt.map_page(far)
        with pytest.raises(ValueError):
            pt.walk_from(leafish, far)


class TestIXCacheIntegration:
    def test_page_walk_short_circuits(self):
        """The IX-cache acts as a page-walk/translation cache."""
        pt = small_pt()
        for page in range(0, 64 * 4096, 4096):
            pt.map_page(page)
        ms = make_memsys(
            "metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        cold = ms.process_walk(pt, 0x8000)
        warm = ms.process_walk(pt, 0x8000)
        assert not cold.short_circuited
        assert warm.short_circuited
        assert warm.nodes_visited < cold.nodes_visited

    def test_neighbor_pages_share_table_nodes(self):
        pt = small_pt()
        for page in range(0, 16 * 4096, 4096):
            pt.map_page(page)
        ms = make_memsys(
            "metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        ms.process_walk(pt, 0x0)
        # A neighbouring page under the same table node short-circuits too.
        trace = ms.process_walk(pt, 0x1000)
        assert trace.short_circuited

    def test_unmap_invalidates_cached_walk(self):
        pt = small_pt()
        pt.map_page(0x5000)
        ms = make_memsys(
            "metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        ms.process_walk(pt, 0x5000)
        pt.unmap_page(0x5000)  # fires the shootdown hook
        trace = ms.process_walk(pt, 0x5000)
        assert trace is not None
        assert pt.translate(0x5000) is None


@settings(max_examples=25, deadline=None)
@given(pages=st.sets(st.integers(0, 1 << 10), min_size=1, max_size=64))
def test_property_translate_roundtrip(pages):
    pt = RadixPageTable(levels=3, bits_per_level=5, page_bits=12)
    mapping = {}
    for vpn in pages:
        vaddr = vpn << 12
        mapping[vaddr] = pt.map_page(vaddr)
    for vaddr, pfn in mapping.items():
        assert pt.translate(vaddr + 7) == (pfn << 12) | 7
    assert pt.mapped_pages == len(pages)
