"""Tests for the IX-cache: range match, level priority, sets, eviction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ix_cache import IXCache, block_bits_for
from repro.indexes.base import IndexNode
from repro.params import BLOCK_SIZE, CacheParams


def node(level, lo, hi, keys=None):
    keys = keys if keys is not None else [lo, hi]
    n = IndexNode(level, keys, values=[0] * len(keys), lo=lo, hi=hi)
    n.nbytes = n.byte_size()
    return n


def cache(entries=32, ways=4, **kw) -> IXCache:
    return IXCache(
        CacheParams(capacity_bytes=entries * BLOCK_SIZE, ways=ways), **kw
    )


class TestHitPath:
    def test_miss_on_empty(self):
        assert cache().probe(5) is None

    def test_range_match(self):
        c = cache()
        n = node(2, 10, 20)
        c.insert(n)
        assert c.probe(15) is n
        assert c.probe(10) is n
        assert c.probe(20) is n
        assert c.probe(21) is None

    def test_level_priority_prefers_deeper(self):
        c = cache()
        upper = node(1, 0, 100)
        lower = node(3, 40, 60)
        c.insert(upper)
        c.insert(lower)
        assert c.probe(50) is lower
        assert c.probe(10) is upper

    def test_probe_counts_stats(self):
        c = cache()
        c.insert(node(1, 0, 10))
        c.probe(5)
        c.probe(50)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_hit_levels_recorded(self):
        c = cache()
        c.insert(node(4, 0, 10))
        c.probe(5)
        assert c.hit_levels[4] == 1

    def test_peek_does_not_count(self):
        c = cache()
        c.insert(node(1, 0, 10))
        c.peek(5)
        assert c.stats.accesses == 0


class TestSetMapping:
    def test_same_key_block_same_set(self):
        c = cache(key_block_bits=4)
        assert c.set_of(0) == c.set_of(15)

    def test_adjacent_blocks_spread(self):
        c = cache(key_block_bits=4)
        if c.num_sets > 1:
            assert c.set_of(0) != c.set_of(16)

    def test_spanning_node_replicated(self):
        c = cache(key_block_bits=4, replication_limit=4)
        n = node(2, 0, 47)  # spans 3 key blocks
        c.insert(n)
        # Probes across the span should all hit.
        for key in (0, 20, 47):
            assert c.probe(key) is n

    def test_very_wide_node_goes_wide(self):
        c = cache(key_block_bits=4, replication_limit=2)
        n = node(0, 0, 10_000)
        c.insert(n)
        assert len(c._wide) == 1
        assert c.probe(9_999) is n

    def test_fully_associative_mode(self):
        c = cache(associative=False)
        assert c.num_sets == 1
        n = node(1, 0, 1_000_000)
        c.insert(n)
        assert c.probe(500) is n

    def test_block_bits_for_scales(self):
        params = CacheParams(capacity_bytes=8 * 1024)
        small = block_bits_for(1_000, params)
        large = block_bits_for(1_000_000, params)
        assert large > small >= 4


class TestInsertBypass:
    def test_key_focused_insert_keeps_covering_subrange(self):
        c = cache()
        children = [node(3, i * 10, i * 10 + 9) for i in range(30)]
        wide = IndexNode(2, [ch.lo for ch in children[1:]],
                         children=children, lo=0, hi=299)
        wide.nbytes = wide.byte_size()
        c.insert(wide, key=155)
        assert c.peek(155) is wide
        # Sub-ranges the walker never searched are not cached.
        assert c.peek(5) is None

    def test_duplicate_insert_bumps_utility(self):
        c = cache()
        n = node(1, 0, 10)
        c.insert(n)
        before = c.stats.insertions
        c.insert(n)
        assert c.stats.insertions == before  # no new entry

    def test_note_bypass(self):
        c = cache()
        c.note_bypass()
        assert c.stats.bypasses == 1

    def test_sentinel_insert_rejected(self):
        c = cache()
        n = node(1, 0, 10)
        n.lo = float("-inf")
        assert not c.insert(n)


class TestEviction:
    def test_capacity_bounded(self):
        c = cache(entries=8, ways=2)
        for i in range(100):
            c.insert(node(3, i * 100, i * 100 + 5))
        assert len(c) <= 8

    def test_utility_protects_hot(self):
        c = IXCache(
            CacheParams(capacity_bytes=4 * BLOCK_SIZE, ways=2),
            key_block_bits=30,  # everything in one set
            wide_fraction=0.3,
        )
        hot = node(2, 0, 5)
        c.insert(hot)
        for _ in range(20):
            assert c.probe(3) is hot  # saturate utility
        for i in range(1, 6):
            c.insert(node(2, i * 50, i * 50 + 5))
        assert c.peek(3) is hot

    def test_pinned_entries_survive_pressure(self):
        c = IXCache(
            CacheParams(capacity_bytes=4 * BLOCK_SIZE, ways=2),
            key_block_bits=30,
        )
        pinned = node(3, 0, 5)
        c.insert(pinned, life=50)
        for i in range(1, 10):
            c.insert(node(3, i * 50, i * 50 + 5))
        assert c.peek(3) is pinned

    def test_life_decays_under_pressure(self):
        c = IXCache(
            CacheParams(capacity_bytes=4 * BLOCK_SIZE, ways=2),
            key_block_bits=30,
        )
        c.insert(node(3, 0, 5), life=2)
        entry = c.entries()[0]
        start_life = entry.life
        for i in range(1, 12):
            c.insert(node(3, i * 50, i * 50 + 5))
        assert entry.life < start_life or entry not in c.entries()

    def test_fully_pinned_set_still_evicts(self):
        c = IXCache(
            CacheParams(capacity_bytes=2 * BLOCK_SIZE, ways=2),
            key_block_bits=30, wide_fraction=0.4,
        )
        c.insert(node(3, 0, 5), life=100)
        c.insert(node(3, 50, 55), life=100)
        inserted = c.insert(node(3, 100, 105), life=100)
        assert inserted
        assert len(c) <= 2


class TestCoalescingInCache:
    def test_adjacent_small_entries_merge(self):
        c = cache()
        a = node(4, 0, 2, keys=[0, 2])
        b = node(4, 3, 5, keys=[3, 5])
        c.insert(a)
        c.insert(b)
        # Both reachable regardless of whether they merged.
        assert c.probe(1) is a
        assert c.probe(4) is b


class TestIntrospection:
    def test_occupancy_by_level(self):
        c = cache()
        c.insert(node(1, 0, 10))
        c.insert(node(2, 100, 110))
        occ = c.occupancy_by_level()
        assert occ.get(1) == 1 and occ.get(2) == 1

    def test_clear(self):
        c = cache()
        c.insert(node(1, 0, 10))
        c.clear()
        assert len(c) == 0


@settings(max_examples=30, deadline=None)
@given(
    ranges=st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(0, 50), st.integers(1, 6)),
        min_size=1, max_size=40,
    ),
    probes=st.lists(st.integers(0, 11_000), min_size=1, max_size=40),
)
def test_property_probe_result_always_covers_key(ranges, probes):
    c = cache(entries=16, ways=4)
    for lo, width, level in ranges:
        c.insert(node(level, lo, lo + width))
    for key in probes:
        got = c.probe(key)
        if got is not None:
            assert got.lo <= key <= got.hi


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_capacity_never_exceeded(seed):
    import random

    rng = random.Random(seed)
    c = cache(entries=12, ways=3)
    for _ in range(200):
        lo = rng.randrange(100_000)
        c.insert(node(rng.randrange(1, 8), lo, lo + rng.randrange(60)))
        assert len(c) <= 12
