"""Tests for the set-associative LRU address cache."""

from repro.mem.address_cache import AddressCache
from repro.params import BLOCK_SIZE, CacheParams


def small_cache(entries=8, ways=2) -> AddressCache:
    return AddressCache(CacheParams(capacity_bytes=entries * BLOCK_SIZE, ways=ways))


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0)
        cache.insert(0)
        assert cache.lookup(0)

    def test_same_block_aliases(self):
        cache = small_cache()
        cache.insert(0)
        assert cache.lookup(BLOCK_SIZE - 1)  # same 64B block

    def test_different_blocks_distinct(self):
        cache = small_cache()
        cache.insert(0)
        assert not cache.lookup(BLOCK_SIZE)

    def test_len_counts_blocks(self):
        cache = small_cache()
        cache.insert(0)
        cache.insert(BLOCK_SIZE)
        cache.insert(0)  # duplicate
        assert len(cache) == 2


class TestLRU:
    def test_evicts_least_recent(self):
        cache = small_cache(entries=4, ways=2)  # 2 sets x 2 ways
        sets = cache.params.sets
        # Fill one set with two blocks, then add a third: first goes.
        a, b, c = 0, sets * BLOCK_SIZE, 2 * sets * BLOCK_SIZE
        cache.insert(a)
        cache.insert(b)
        cache.insert(c)
        assert not cache.contains(a)
        assert cache.contains(b)
        assert cache.contains(c)

    def test_lookup_refreshes_recency(self):
        cache = small_cache(entries=4, ways=2)
        sets = cache.params.sets
        a, b, c = 0, sets * BLOCK_SIZE, 2 * sets * BLOCK_SIZE
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a)  # refresh a
        cache.insert(c)  # evicts b now
        assert cache.contains(a)
        assert not cache.contains(b)

    def test_eviction_counted(self):
        cache = small_cache(entries=2, ways=1)
        sets = cache.params.sets
        cache.insert(0)
        cache.insert(sets * BLOCK_SIZE)
        assert cache.stats.evictions == 1


class TestStats:
    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(0)
        cache.insert(0)
        cache.lookup(0)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert abs(cache.stats.miss_rate - 0.5) < 1e-12

    def test_access_multi_block_object(self):
        cache = small_cache(entries=8, ways=8)
        hit = cache.access(0, nbytes=BLOCK_SIZE * 3)
        assert not hit
        assert cache.access(0, nbytes=BLOCK_SIZE * 3)  # now resident

    def test_contains_does_not_count(self):
        cache = small_cache()
        cache.contains(0)
        assert cache.stats.accesses == 0
