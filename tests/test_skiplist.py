"""Tests for the skip list, including segment-partition properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.skiplist import SkipList


def build(scores, **kw):
    sl = SkipList(seed=1, **kw)
    for s in scores:
        sl.insert(s, f"m{s}")
    sl.finalize()
    return sl


class TestInsertGet:
    def test_get_present(self):
        sl = build([5, 1, 9])
        assert sl.get(5) == ["m5"]

    def test_get_absent(self):
        sl = build([5])
        assert sl.get(6) is None

    def test_same_score_coalesces(self):
        sl = SkipList(seed=1)
        sl.insert(7, "a")
        sl.insert(7, "b")
        sl.insert(7, "a")  # duplicate member ignored
        assert sl.get(7) == ["a", "b"]
        assert len(sl) == 2

    def test_items_sorted(self):
        sl = build([9, 3, 7, 1])
        assert [s for s, _ in sl.items()] == [1, 3, 7, 9]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SkipList(p=1.5)
        with pytest.raises(ValueError):
            SkipList(max_height=0)


class TestWalk:
    def test_walk_starts_at_head(self):
        sl = build(range(0, 100, 3))
        path = sl.walk(50)
        assert path[0].lo == float("-inf")

    def test_walk_finds_predecessor(self):
        sl = build([10, 20, 30])
        path = sl.walk(25)
        assert path[-1].keys == [20]

    def test_walk_exact(self):
        sl = build([10, 20, 30])
        assert sl.walk(20)[-1].keys == [20]

    def test_walk_below_min(self):
        sl = build([10, 20])
        path = sl.walk(5)
        assert path[-1].lo == float("-inf")  # stays at head

    def test_walk_from_matches_suffix_destination(self):
        sl = build(range(0, 300, 7), max_height=8)
        full = sl.walk(150)
        mid = full[len(full) // 2]
        partial = sl.walk_from(mid, 150)
        assert partial[-1].keys == full[-1].keys

    def test_walk_from_is_shorter(self):
        sl = build(range(0, 500, 3), max_height=8)
        full = sl.walk(400)
        mid = full[len(full) // 2]
        assert len(sl.walk_from(mid, 400)) <= len(full)

    def test_walk_from_foreign_node_rejected(self):
        sl = build([1, 2, 3])
        other = build([1, 2, 3])
        foreign = other.walk(2)[-1]
        with pytest.raises(KeyError):
            sl.walk_from(foreign, 2)


class TestNodes:
    def test_levels_within_bounds(self):
        sl = build(range(100), max_height=6, level_offset=2)
        for node in sl.nodes():
            assert 2 <= node.level <= 2 + 5

    def test_segment_ranges_cover_scores(self):
        sl = build(range(0, 50, 5))
        # Every bottom-level node's [lo, hi] contains exactly the scores
        # between it and its successor.
        bottoms = [n for n in sl.nodes() if n.level == sl.max_height - 1 and n.lo != float("-inf")]
        for node in bottoms:
            assert node.lo <= node.hi

    def test_addresses_unique(self):
        sl = build(range(200))
        addrs = [n.address for n in sl.nodes()]
        assert len(addrs) == len(set(addrs))

    def test_invariants(self):
        sl = build(range(0, 1000, 3), max_height=10)
        sl.check_invariants()


@settings(max_examples=40, deadline=None)
@given(scores=st.sets(st.integers(0, 5_000), min_size=1, max_size=200))
def test_property_order_and_membership(scores):
    sl = build(scores)
    assert [s for s, _ in sl.items()] == sorted(scores)
    for s in scores:
        assert sl.get(s) == [f"m{s}"]
    sl.check_invariants()


@settings(max_examples=30, deadline=None)
@given(scores=st.sets(st.integers(0, 2_000), min_size=2, max_size=150),
       probe=st.integers(0, 2_000))
def test_property_walk_finds_greatest_leq(scores, probe):
    sl = build(scores)
    path = sl.walk(probe)
    expected = max((s for s in scores if s <= probe), default=None)
    if expected is None:
        assert path[-1].lo == float("-inf")
    else:
        assert path[-1].keys == [expected]


@settings(max_examples=25, deadline=None)
@given(scores=st.sets(st.integers(0, 1_000), min_size=3, max_size=100))
def test_property_segments_partition_per_level(scores):
    """At each level, segment ranges of non-head nodes are disjoint."""
    sl = build(scores, max_height=6)
    by_level: dict[int, list] = {}
    for node in sl.nodes():
        if node.lo == float("-inf"):
            continue
        by_level.setdefault(node.level, []).append((node.lo, node.hi))
    for ranges in by_level.values():
        ranges.sort()
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi1 < lo2
