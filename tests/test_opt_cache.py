"""Tests for Belady-OPT replacement, including optimality properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.opt_cache import BeladyCache, belady_hit_flags
from repro.params import BLOCK_SIZE, CacheParams


def lru_hits(trace, capacity):
    """Reference LRU hit count for comparison."""
    from collections import OrderedDict

    resident: OrderedDict[int, None] = OrderedDict()
    hits = 0
    for block in trace:
        if block in resident:
            hits += 1
            resident.move_to_end(block)
        else:
            if len(resident) >= capacity:
                resident.popitem(last=False)
            resident[block] = None
    return hits


class TestBeladyFlags:
    def test_empty_trace(self):
        assert belady_hit_flags([], 4) == []

    def test_no_capacity(self):
        assert belady_hit_flags([1, 1, 1], 0) == [False, False, False]

    def test_repeat_hits(self):
        assert belady_hit_flags([1, 1, 1], 1) == [False, True, True]

    def test_classic_example(self):
        # Capacity 2, trace where OPT keeps the sooner-reused block.
        trace = [1, 2, 3, 1, 2]
        flags = belady_hit_flags(trace, 2)
        # 1, 2 miss; 3 misses and evicts 2 (used later than 1)... OPT
        # evicts the block with the farthest next use: 2 used at 4, 1 at 3,
        # so evict 2 -> 1 hits, 2 misses.
        assert flags[:3] == [False, False, False]
        assert flags[3] is True
        assert flags[4] is False

    def test_fits_entirely(self):
        trace = [1, 2, 3, 1, 2, 3]
        flags = belady_hit_flags(trace, 3)
        assert flags == [False, False, False, True, True, True]

    @settings(max_examples=60, deadline=None)
    @given(
        trace=st.lists(st.integers(0, 15), min_size=1, max_size=120),
        capacity=st.integers(1, 8),
    )
    def test_opt_never_worse_than_lru(self, trace, capacity):
        opt = sum(belady_hit_flags(trace, capacity))
        lru = lru_hits(trace, capacity)
        assert opt >= lru

    @settings(max_examples=40, deadline=None)
    @given(
        trace=st.lists(st.integers(0, 10), min_size=1, max_size=80),
        capacity=st.integers(1, 6),
    )
    def test_monotone_in_capacity(self, trace, capacity):
        smaller = sum(belady_hit_flags(trace, capacity))
        larger = sum(belady_hit_flags(trace, capacity + 2))
        assert larger >= smaller

    @settings(max_examples=40, deadline=None)
    @given(trace=st.lists(st.integers(0, 20), max_size=100))
    def test_first_touch_always_misses(self, trace):
        flags = belady_hit_flags(trace, 4)
        seen = set()
        for block, flag in zip(trace, flags):
            if block not in seen:
                assert flag is False
                seen.add(block)


class TestBeladyCache:
    def params(self, entries):
        return CacheParams(capacity_bytes=entries * BLOCK_SIZE)

    def test_replay_matches_flags(self):
        trace = [1, 2, 1, 3, 2, 1]
        cache = BeladyCache(trace, self.params(2))
        flags = belady_hit_flags(trace, 2)
        assert [cache.lookup(b) for b in trace] == flags

    def test_divergent_replay_rejected(self):
        cache = BeladyCache([1, 2], self.params(2))
        cache.lookup(1)
        with pytest.raises(ValueError):
            cache.lookup(99)

    def test_overrun_rejected(self):
        cache = BeladyCache([1], self.params(2))
        cache.lookup(1)
        with pytest.raises(IndexError):
            cache.lookup(1)

    def test_stats_recorded(self):
        trace = [5, 5, 5]
        cache = BeladyCache(trace, self.params(4))
        for b in trace:
            cache.lookup(b)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 2

    def test_random_trace_consistency(self):
        rng = random.Random(7)
        trace = [rng.randrange(30) for _ in range(300)]
        cache = BeladyCache(trace, self.params(8))
        hits = sum(cache.lookup(b) for b in trace)
        assert hits == sum(belady_hit_flags(trace, 8))
