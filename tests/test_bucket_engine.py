"""Bucket-queue calendar engine vs the heap engine: exact equivalence.

The bucket engine (``SimParams.engine="bucket"``) drains contexts from
per-cycle calendar buckets in ascending context order — exactly the
(cycle, ctx) order the heap pops. These properties hammer tie-heavy
schedules (many contexts due at the same cycle, zero-latency compute
steps, bank conflicts) where any ordering divergence would surface as a
different row-hit sequence or makespan.
"""

from hypothesis import given, settings, strategies as st

from repro.mem.dram import DRAM
from repro.params import DRAMParams, SimParams, TileParams
from repro.sim.engine import Access, Engine, WalkTrace


def _walks(spec):
    """spec: list of lists of (kind, magnitude) -> WalkTraces.

    kind 0 -> DRAM (few distinct banks: heavy conflicts), kind 1 ->
    compute (including zero-ish latencies: tie-heavy), kind 2 -> SRAM on
    a shared port (crossbar arbitration ties).
    """
    traces = []
    for i, accesses in enumerate(spec):
        steps = []
        for kind, magnitude in accesses:
            if kind == 0:
                # Confine addresses to a handful of blocks so several
                # contexts hit the same bank in the same cycle.
                steps.append(Access("dram", address=(magnitude % 8) * 64))
            elif kind == 1:
                steps.append(Access("compute", cycles=magnitude % 3))
            else:
                steps.append(Access("sram", cycles=magnitude % 4 + 1,
                                    port=magnitude % 2))
        traces.append(WalkTrace(i, steps))
    return traces


def _engine(kind, contexts):
    return Engine(SimParams(
        engine=kind,
        dram=DRAMParams(),
        tile=TileParams(walker_contexts=contexts),
        tiles=1,
    ), DRAM())


TIE_HEAVY_SPEC = st.lists(
    st.lists(st.tuples(st.integers(0, 2), st.integers(0, 100)),
             min_size=1, max_size=6),
    min_size=1, max_size=24,
)


@settings(max_examples=60, deadline=None)
@given(spec=TIE_HEAVY_SPEC, contexts=st.sampled_from([1, 3, 8]))
def test_property_bucket_matches_heap_exactly(spec, contexts):
    """Same walks, same contexts: every result and stat is identical."""
    traces = _walks(spec)
    heap_eng = _engine("heap", contexts)
    heap_res = heap_eng.run(traces, record_latencies=True)
    bucket_eng = _engine("bucket", contexts)
    bucket_res = bucket_eng.run(traces, record_latencies=True)

    assert bucket_res.makespan == heap_res.makespan
    assert bucket_res.total_walk_cycles == heap_res.total_walk_cycles
    # Latencies must match per-walk, not merely in aggregate: the bucket
    # engine pops contexts in exactly heap order.
    assert bucket_res.walk_latencies == heap_res.walk_latencies

    hs, bs = heap_eng.dram.stats, bucket_eng.dram.stats
    assert (bs.row_hits, bs.row_misses) == (hs.row_hits, hs.row_misses)
    assert bs.energy_fj == hs.energy_fj
    assert (bs.reads, bs.writes) == (hs.reads, hs.writes)
    assert bs.touched_blocks == hs.touched_blocks
    assert bucket_eng.xbar.total_wait == heap_eng.xbar.total_wait


@settings(max_examples=25, deadline=None)
@given(spec=TIE_HEAVY_SPEC)
def test_property_all_ties_single_cycle_compute(spec):
    """Degenerate calendar: every context lands in the same few buckets."""
    # Strip to compute-only single-cycle steps: maximal bucket sharing.
    traces = [
        WalkTrace(i, [Access("compute", cycles=1) for _ in accesses])
        for i, accesses in enumerate(spec)
    ]
    heap_res = _engine("heap", 4).run(traces, record_latencies=True)
    bucket_res = _engine("bucket", 4).run(traces, record_latencies=True)
    assert bucket_res.walk_latencies == heap_res.walk_latencies
    assert bucket_res.makespan == heap_res.makespan


def test_unknown_engine_rejected():
    eng = Engine(SimParams(engine="wheel"))
    try:
        eng.run([WalkTrace(0, [Access("compute", cycles=1)])])
    except ValueError as exc:
        assert "wheel" in str(exc)
    else:
        raise AssertionError("expected ValueError for unknown engine")
