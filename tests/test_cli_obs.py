"""CLI observability paths: profile subcommand, dropped-event warning,
shared system validation, and percentile columns in compare."""

import json

import pytest

from repro.cli import main, unknown_systems
from repro.obs.tracer import Tracer


class TestSystemValidation:
    def test_known_systems_accepted(self):
        assert unknown_systems(["stream", "metal"]) == []
        # The variant systems must be accepted everywhere (this used to
        # drift: compare accepted address_pf but rejected address_l2).
        assert unknown_systems(["address_pf", "address_l2"]) == []

    def test_unknown_systems_reported_sorted(self):
        assert unknown_systems(["zcache", "metal", "acache"]) == [
            "acache", "zcache"]

    @pytest.mark.parametrize("argv", [
        ["compare", "scan", "--scale", "0.02", "--systems", "bogus"],
        ["trace", "scan", "--system", "bogus", "--scale", "0.02"],
        ["profile", "scan", "--system", "bogus", "--scale", "0.02"],
    ])
    def test_subcommands_share_validation(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "choose from" in err

    def test_compare_accepts_address_l2(self, capsys):
        rc = main(["compare", "scan", "--scale", "0.02",
                   "--systems", "stream,address_l2"])
        assert rc == 0
        assert "address_l2" in capsys.readouterr().out


class TestDroppedWarning:
    def test_trace_warns_with_buffer_suggestion(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        rc = main(["trace", "scan", "--system", "metal", "--scale", "0.02",
                   "--buffer", "256", "--out", str(out)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "dropped" in err
        # The suggested capacity is a power of two that would have held
        # every emitted event.
        match = [w for w in err.split() if w.isdigit()]
        suggested = int(match[-1])
        assert suggested & (suggested - 1) == 0
        tracer_events = json.loads(out.read_text())
        assert suggested >= 256
        assert tracer_events["otherData"]["dropped_events"] > 0

    def test_no_warning_when_nothing_dropped(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        rc = main(["trace", "scan", "--system", "metal", "--scale", "0.02",
                   "--out", str(out)])
        assert rc == 0
        assert "dropped 0" not in capsys.readouterr().err
        assert "warning" not in capsys.readouterr().err

    def test_warn_dropped_unit(self, capsys):
        from repro.cli import _warn_dropped

        tracer = Tracer(capacity=4)
        for i in range(11):
            tracer.emit("x", ts=i)
        _warn_dropped(tracer)
        err = capsys.readouterr().err
        assert "dropped 7 of 11" in err
        assert "--buffer 16" in err  # next pow2 >= 11

    def test_warn_dropped_silent_when_complete(self, capsys):
        from repro.cli import _warn_dropped

        tracer = Tracer(capacity=16)
        tracer.emit("x", ts=0)
        _warn_dropped(tracer)
        assert capsys.readouterr().err == ""


class TestProfileSubcommand:
    def test_profile_end_to_end(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["profile", "scan", "--system", "metal",
                   "--scale", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Cycle attribution" in out
        assert "p99" in out
        assert "reconciliation: attribution sums match" in out
        gen = (tmp_path / "profile_scan_metal_gen.csv").read_text()
        assert gen.startswith("walk,ix_resident")
        engine = (tmp_path / "profile_scan_metal_engine.csv").read_text()
        assert engine.startswith("cycle,dram_accesses")
        om = (tmp_path / "profile_scan_metal.om").read_text()
        assert om.endswith("# EOF\n")
        assert "repro_walk_latency_cycles_count" in om

    def test_profile_out_prefix(self, capsys, tmp_path):
        prefix = str(tmp_path / "p")
        rc = main(["profile", "scan", "--system", "stream",
                   "--scale", "0.02", "--out-prefix", prefix])
        assert rc == 0
        assert (tmp_path / "p_gen.csv").exists()
        assert (tmp_path / "p_engine.csv").exists()
        assert (tmp_path / "p.om").exists()


class TestComparePercentiles:
    def test_compare_prints_percentile_columns(self, capsys):
        rc = main(["compare", "scan", "--scale", "0.02",
                   "--systems", "stream,metal"])
        assert rc == 0
        out = capsys.readouterr().out
        header = next(line for line in out.splitlines()
                      if line.startswith("system"))
        assert "p50" in header and "p99" in header
        # Percentiles are real numbers, not the '-' placeholder.
        metal_row = next(line for line in out.splitlines()
                         if line.startswith("metal"))
        assert "-" not in metal_row.split("|")[3].strip()


class TestReportDelegation:
    def test_report_forwards_baseline_flags(self, capsys, tmp_path):
        baseline = tmp_path / "b.json"
        rc = main(["report", "--scale", "0.02", "--fast",
                   "--baseline", str(baseline), "--write-baseline"])
        assert rc == 0
        stored = json.loads(baseline.read_text())
        assert stored["schema"] == 1
        assert stored["metrics"]
        rc = main(["report", "--scale", "0.02", "--fast",
                   "--baseline", str(baseline)])
        assert rc == 0
        assert "baseline check passed" in capsys.readouterr().out
