"""Tests for IX-cache coherence with dynamically mutating indexes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ix_cache import IXCache
from repro.core.range_tag import RangeTag
from repro.indexes.base import IndexNode
from repro.indexes.bplustree import BPlusTree
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.params import BLOCK_SIZE, CacheParams
from repro.sim.memsys import make_memsys


def node(level, lo, hi):
    n = IndexNode(level, [lo, hi], values=[0, 0], lo=lo, hi=hi)
    n.nbytes = n.byte_size()
    return n


class TestInvalidateRange:
    def cache(self):
        return IXCache(CacheParams(capacity_bytes=32 * BLOCK_SIZE, ways=4))

    def test_overlapping_entries_dropped(self):
        c = self.cache()
        c.insert(node(2, 0, 10))
        c.insert(node(2, 100, 110))
        removed = c.invalidate_range(5, 50)
        assert removed == 1
        assert c.peek(5) is None
        assert c.peek(105) is not None

    def test_exact_boundary_overlap(self):
        c = self.cache()
        c.insert(node(2, 0, 10))
        assert c.invalidate_range(10, 20) == 1

    def test_disjoint_range_keeps_all(self):
        c = self.cache()
        c.insert(node(2, 0, 10))
        assert c.invalidate_range(50, 60) == 0
        assert c.peek(5) is not None

    def test_wide_entries_invalidated(self):
        c = IXCache(
            CacheParams(capacity_bytes=32 * BLOCK_SIZE, ways=4),
            key_block_bits=4, replication_limit=1,
        )
        c.insert(node(0, 0, 100_000))  # lands in the wide array
        assert c.invalidate_range(500, 501) == 1
        assert c.peek(500) is None

    def test_bad_range(self):
        with pytest.raises(ValueError):
            self.cache().invalidate_range(10, 5)


class TestBPlusTreeHooks:
    def test_split_fires_callback(self):
        tree = BPlusTree(fanout=3)
        fired: list[tuple] = []
        tree.on_structural_change.append(lambda lo, hi: fired.append((lo, hi)))
        for k in range(10):
            tree.insert(k, k)
        assert fired  # splits must have occurred at fanout 3
        lo, hi = fired[-1]
        assert lo <= hi

    def test_no_callback_without_split(self):
        tree = BPlusTree(fanout=100)
        fired: list[tuple] = []
        tree.on_structural_change.append(lambda lo, hi: fired.append((lo, hi)))
        tree.insert(1, "a")
        tree.insert(2, "b")
        assert fired == []

    def test_tensor_forwards_hooks(self):
        tensor = DynamicSparseTensor((100, 100), fanout=3)
        fired = []
        tensor.on_structural_change.append(lambda lo, hi: fired.append((lo, hi)))
        for c in range(20):
            tensor.set(0, c, 1.0)
        assert fired


class TestEndToEndCoherence:
    def test_interleaved_inserts_and_walks(self):
        """Probes must never return wrong leaves while the tree mutates."""
        rng = random.Random(3)
        tree = BPlusTree(fanout=3)
        for k in range(0, 400, 2):
            tree.insert(k, k * 10)
        ms = make_memsys(
            "metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        present = list(range(0, 400, 2))
        pending = list(range(1, 400, 2))
        rng.shuffle(pending)
        for step in range(300):
            if pending and step % 3 == 0:
                k = pending.pop()
                tree.insert(k, k * 10)
                present.append(k)
            key = rng.choice(present)
            trace = ms.process_walk(tree, key)
            assert trace.nodes_visited >= 0
            # Functional correctness: the tree still resolves the key.
            assert tree.get(key) == key * 10
        tree.check_invariants()

    def test_walks_after_mutation_reach_correct_leaf(self):
        tree = BPlusTree(fanout=3)
        for k in range(0, 300, 3):
            tree.insert(k, k)
        ms = make_memsys(
            "metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        # Warm the cache.
        for k in range(0, 300, 3):
            ms.process_walk(tree, k)
        # Mutate heavily (forces splits across the key space).
        for k in range(1, 300, 3):
            tree.insert(k, -k)
        # Every subsequent walk must land on a leaf containing the key.
        for k in range(1, 300, 3):
            ms.process_walk(tree, k)
            leaf = tree.walk(k)[-1]
            assert k in leaf.keys

    def test_stale_hit_without_hooks_falls_back(self):
        """Even with hooks stripped, walks degrade to full walks safely."""
        tree = BPlusTree(fanout=3)
        for k in range(0, 200, 2):
            tree.insert(k, k)
        ms = make_memsys(
            "metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        for k in range(0, 200, 2):
            ms.process_walk(tree, k)
        tree.on_structural_change.clear()  # sever the invalidation path
        for k in range(1, 200, 2):
            tree.insert(k, k)
        for k in range(1, 200, 2):
            trace = ms.process_walk(tree, k)
            assert trace is not None
            assert tree.get(k) == k


@settings(max_examples=20, deadline=None)
@given(
    build=st.sets(st.integers(0, 500), min_size=5, max_size=60),
    extra=st.lists(st.integers(0, 500), min_size=1, max_size=40),
    seed=st.integers(0, 1000),
)
def test_property_probe_never_misroutes(build, extra, seed):
    """Under arbitrary interleavings, cached starts stay on correct paths."""
    rng = random.Random(seed)
    tree = BPlusTree(fanout=3)
    for k in build:
        tree.insert(k, k)
    ms = make_memsys(
        "metal_ix", cache_params=CacheParams(capacity_bytes=32 * BLOCK_SIZE)
    )
    keys = sorted(build)
    for k in extra:
        ms.process_walk(tree, rng.choice(keys))
        tree.insert(k, k)
        keys = sorted(set(keys) | {k})
        probe_key = rng.choice(keys)
        ms.process_walk(tree, probe_key)
        leaf = tree.walk(probe_key)[-1]
        assert probe_key in leaf.keys
