"""Smoke tests for the repro.perf microbenchmark harness."""

import json

import pytest

from repro.perf import (
    KERNELS,
    PerfReport,
    compare_reports,
    format_comparison,
    format_report,
    kernel_names,
    run_suite,
)
from repro.perf.harness import (
    EXIT_BASELINE_MISSING,
    EXIT_CHECKSUM_MISMATCH,
    PERF_SCHEMA,
)


@pytest.fixture(scope="module")
def tiny_report() -> PerfReport:
    """One cheap suite run shared by the module (kernels are deterministic)."""
    return run_suite(scale=0.01, repeat=2, warmup=0)


class TestRunSuite:
    def test_covers_every_kernel(self, tiny_report):
        assert set(tiny_report.kernels) == set(KERNELS)
        assert kernel_names() == tuple(KERNELS)

    def test_samples_and_checksums(self, tiny_report):
        for kernel in tiny_report.kernels.values():
            assert len(kernel.runs_s) == 2
            assert all(s > 0 for s in kernel.runs_s)
            assert kernel.checksum
            assert kernel.median_s >= kernel.min_s > 0

    def test_checksums_reproducible_across_suites(self, tiny_report):
        again = run_suite(
            names=("ix_probe_fill", "walk_gen"), scale=0.01, repeat=1, warmup=0
        )
        for name, kernel in again.kernels.items():
            assert kernel.checksum == tiny_report.kernels[name].checksum

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_suite(names=("no_such_kernel",), scale=0.01, repeat=1)

    def test_report_serializes(self, tiny_report, tmp_path):
        path = tmp_path / "perf.json"
        tiny_report.write(str(path))
        data = json.loads(path.read_text())
        assert data["schema"] == PERF_SCHEMA
        assert data["scale"] == 0.01
        assert set(data["kernels"]) == set(KERNELS)
        table = format_report(tiny_report)
        for name in KERNELS:
            assert name in table


class TestCompareReports:
    def test_self_comparison_is_clean(self, tiny_report):
        speedups, mismatches = compare_reports(
            tiny_report.to_dict(), tiny_report
        )
        assert not mismatches
        assert set(speedups) == set(KERNELS)
        assert all(ratio == pytest.approx(1.0) for ratio in speedups.values())
        assert "checksums match" in format_comparison(speedups, [])

    def test_checksum_drift_is_a_hard_failure(self, tiny_report):
        baseline = tiny_report.to_dict()
        baseline["kernels"]["walk_gen"]["checksum"] = "bogus"
        _, mismatches = compare_reports(baseline, tiny_report)
        assert any("walk_gen" in m and "checksum" in m for m in mismatches)

    def test_scale_mismatch_voids_comparison(self, tiny_report):
        baseline = tiny_report.to_dict()
        baseline["scale"] = 0.5
        speedups, mismatches = compare_reports(baseline, tiny_report)
        assert not speedups
        assert any("scale mismatch" in m for m in mismatches)

    def test_missing_kernel_reported(self, tiny_report):
        baseline = tiny_report.to_dict()
        sliced = run_suite(names=("ix_probe_fill",), scale=0.01, repeat=1)
        _, mismatches = compare_reports(baseline, sliced)
        assert any("missing from this run" in m for m in mismatches)


class TestCLI:
    def test_perf_subcommand_roundtrip(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "run.json"
        baseline = tmp_path / "BENCH_perf.json"
        args = ["perf", "--scale", "0.01", "--repeat", "1", "--warmup", "0",
                "--kernels", "ix_probe_fill", "--quiet"]
        assert main(args + ["--write-baseline", "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main(args + ["--out", str(out), "--baseline", str(baseline)]) == 0
        assert json.loads(out.read_text())["kernels"]["ix_probe_fill"]["checksum"]

    def test_missing_baseline_exit_code(self, tmp_path):
        from repro.cli import main

        code = main([
            "perf", "--scale", "0.01", "--repeat", "1", "--warmup", "0",
            "--kernels", "ix_probe_fill", "--quiet",
            "--baseline", str(tmp_path / "absent.json"),
        ])
        assert code == EXIT_BASELINE_MISSING

    def test_tampered_baseline_exit_code(self, tmp_path):
        from repro.cli import main

        baseline = tmp_path / "BENCH_perf.json"
        args = ["perf", "--scale", "0.01", "--repeat", "1", "--warmup", "0",
                "--kernels", "ix_probe_fill", "--quiet"]
        assert main(args + ["--write-baseline", "--baseline", str(baseline)]) == 0
        data = json.loads(baseline.read_text())
        data["kernels"]["ix_probe_fill"]["checksum"] = "tampered"
        baseline.write_text(json.dumps(data))
        assert main(args + ["--baseline", str(baseline)]) == EXIT_CHECKSUM_MISMATCH
