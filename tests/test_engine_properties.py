"""Property-based invariants of the event engine."""

from hypothesis import given, settings, strategies as st

from repro.mem.dram import DRAM
from repro.params import DRAMParams, SimParams, TileParams
from repro.sim.engine import Access, Engine, WalkTrace


def walks_from(spec):
    """spec: list of lists of (kind_flag, magnitude) -> WalkTraces."""
    traces = []
    for i, accesses in enumerate(spec):
        steps = []
        for is_dram, magnitude in accesses:
            if is_dram:
                steps.append(Access("dram", address=magnitude * 64))
            else:
                steps.append(Access("compute", cycles=magnitude % 50 + 1))
        traces.append(WalkTrace(i, steps))
    return traces


def engine(contexts=4):
    return Engine(SimParams(
        dram=DRAMParams(),
        tile=TileParams(walker_contexts=contexts),
        tiles=1,
    ), DRAM())


WALK_SPEC = st.lists(
    st.lists(st.tuples(st.booleans(), st.integers(0, 100)),
             min_size=1, max_size=6),
    min_size=1, max_size=20,
)


@settings(max_examples=40, deadline=None)
@given(spec=WALK_SPEC)
def test_property_dram_traffic_independent_of_contexts(spec):
    """Timing parallelism never changes how much DRAM is accessed."""
    counts = []
    for contexts in (1, 4):
        eng = engine(contexts)
        eng.run(walks_from(spec))
        counts.append(eng.dram.stats.accesses)
    assert counts[0] == counts[1]


@settings(max_examples=40, deadline=None)
@given(spec=WALK_SPEC)
def test_property_more_contexts_never_slower(spec):
    narrow = engine(1)
    narrow_result = narrow.run(walks_from(spec))
    wide = engine(8)
    wide_result = wide.run(walks_from(spec))
    assert wide_result.makespan <= narrow_result.makespan


@settings(max_examples=40, deadline=None)
@given(spec=WALK_SPEC)
def test_property_makespan_bounds(spec):
    """Makespan is bounded below by the longest single walk's latency and
    above by the fully-serial sum."""
    eng = engine(4)
    result = eng.run(walks_from(spec), record_latencies=True)
    serial = engine(1).run(walks_from(spec))
    assert result.makespan <= serial.makespan
    if result.walk_latencies:
        assert result.makespan >= max(result.walk_latencies) * 0.0  # nonneg
        assert result.makespan > 0


@settings(max_examples=30, deadline=None)
@given(spec=WALK_SPEC)
def test_property_deterministic(spec):
    a = engine(4).run(walks_from(spec))
    b = engine(4).run(walks_from(spec))
    assert a.makespan == b.makespan
    assert a.total_walk_cycles == b.total_walk_cycles
