"""Byte-identity of the vectorized batch core across every system.

The equivalence gate in one test module: for each memory system and a
small workload, the bucket engine, the batched walk pipeline, and their
combination must produce a ``RunResult`` whose canonical JSON equals the
scalar path byte for byte. This is the tier-1 anchor of the CI
``vectorized-equivalence`` job (which re-runs the sweep at larger scale
via ``repro.bench.vector_check``).
"""

import json
from dataclasses import replace

import pytest

from repro.bench.runner import SYSTEMS, run_workload
from repro.bench.vector_check import VARIANTS, check_cell, run_matrix
from repro.workloads.suite import build_workload

SCALE = 0.01


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("backend", ("soa", "object"))
def test_vectorized_byte_identical_scan(system, backend):
    workload = build_workload("scan", scale=SCALE, backend=backend)
    base_sim = workload.config.sim_params()
    reference = _canon(run_workload(workload, system, sim=base_sim))
    for label, overrides in VARIANTS:
        got = _canon(run_workload(
            workload, system, sim=replace(base_sim, **overrides)
        ))
        assert got == reference, (
            f"{system}/{backend}/{label} diverged from scalar"
        )


@pytest.mark.parametrize("system", ("metal", "metal_ix"))
def test_vectorized_byte_identical_select(system):
    assert check_cell("select", "soa", system, SCALE) == []


def test_odd_chunk_sizes_byte_identical():
    """Chunk boundaries must not leak into results (last partial chunk)."""
    workload = build_workload("scan", scale=SCALE, backend="soa")
    base_sim = workload.config.sim_params()
    reference = _canon(run_workload(workload, "metal", sim=base_sim))
    for walk_batch in (1, 7, 64):
        got = _canon(run_workload(
            workload, "metal",
            sim=replace(base_sim, engine="bucket", walk_batch=walk_batch),
        ))
        assert got == reference, f"walk_batch={walk_batch} diverged"


def test_run_matrix_reports_clean():
    failures = run_matrix(
        scales=[SCALE], workloads=["scan"], systems=["xcache"],
        verbose=False,
    )
    assert failures == []
