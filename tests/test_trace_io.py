"""Trace format v2: chunked iteration, gzip, and truncation detection.

``tests/test_extensions.py`` covers the v1-era basics (save/load, name
re-binding, unknown-index errors); this file pins what format v2 added
for paper-scale replay: streaming iteration that never materializes the
list, transparent gzip by extension, the trailer-based truncation check,
and the replay run mode that rides on all three (``RunSpec.trace_path``
+ content digest).
"""

import gzip
import json

import pytest

from repro.exec import Executor, RunSpec
from repro.exec.spec import trace_digest
from repro.workloads.suite import build_workload
from repro.workloads.trace_io import (
    FORMAT_VERSION,
    TraceTruncated,
    iter_trace,
    load_trace,
    save_trace,
    workload_index_names,
)


@pytest.fixture(scope="module")
def workload():
    return build_workload("scan", scale=0.05)


def _roundtrip(workload, path):
    save_trace(path, workload.requests, workload_index_names(workload))
    loaded = load_trace(path, {"index0": workload.indexes[0]})
    assert len(loaded) == len(workload.requests)
    for got, want in zip(loaded, workload.requests):
        assert got.key == want.key
        assert got.index is want.index
        assert got.data_address == want.data_address
    return loaded


def test_roundtrip_plain_and_gzip(workload, tmp_path):
    _roundtrip(workload, tmp_path / "t.jsonl")
    _roundtrip(workload, tmp_path / "t.jsonl.gz")
    # The .gz file really is gzip (not accidentally plain text).
    with gzip.open(tmp_path / "t.jsonl.gz", "rt") as f:
        assert json.loads(f.readline())["kind"] == "repro-walk-trace"


def test_iter_trace_streams_without_materializing(workload, tmp_path):
    path = tmp_path / "t.jsonl"
    save_trace(path, workload.requests, workload_index_names(workload))
    it = iter_trace(path, {"index0": workload.indexes[0]})
    first = next(it)
    assert first.key == workload.requests[0].key
    assert sum(1 for _ in it) == len(workload.requests) - 1


@pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz"])
def test_truncated_trace_raises_clear_error(workload, tmp_path, suffix):
    """A killed capture must fail loudly, not silently replay short."""
    path = tmp_path / ("t" + suffix)
    save_trace(path, workload.requests, workload_index_names(workload))
    opener = gzip.open if suffix.endswith(".gz") else open
    with opener(path, "rt") as f:
        lines = f.readlines()
    assert json.loads(lines[-1])["trailer"] is True
    with opener(path, "wt") as f:
        f.writelines(lines[:-5])  # drop the trailer and a few records
    with pytest.raises(TraceTruncated, match="without the trailer"):
        load_trace(path, {"index0": workload.indexes[0]})


def test_corrupt_trailer_count_raises(workload, tmp_path):
    path = tmp_path / "t.jsonl"
    save_trace(path, workload.requests, workload_index_names(workload))
    lines = path.read_text().splitlines(keepends=True)
    bad = json.dumps({"trailer": True, "count": 1}) + "\n"
    path.write_text("".join(lines[:-1]) + bad)
    with pytest.raises(TraceTruncated, match="corrupt"):
        load_trace(path, {"index0": workload.indexes[0]})


def test_v1_trace_without_trailer_still_loads(workload, tmp_path):
    """Old captures have no trailer; they end at EOF, no error."""
    path = tmp_path / "t.jsonl"
    save_trace(path, workload.requests, workload_index_names(workload))
    lines = path.read_text().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["version"] = 1
    path.write_text(json.dumps(header) + "\n" + "".join(lines[1:-1]))
    loaded = load_trace(path, {"index0": workload.indexes[0]})
    assert len(loaded) == len(workload.requests)


def test_unsupported_version_rejected(workload, tmp_path):
    path = tmp_path / "t.jsonl"
    save_trace(path, workload.requests, workload_index_names(workload))
    lines = path.read_text().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["version"] = FORMAT_VERSION + 1
    path.write_text(json.dumps(header) + "\n" + "".join(lines[1:]))
    with pytest.raises(ValueError, match="unsupported trace version"):
        load_trace(path, {"index0": workload.indexes[0]})


class TestReplaySpec:
    def test_replayed_spec_matches_direct_run(self, workload, tmp_path):
        """Replaying a workload's own captured trace must reproduce the
        direct run byte for byte (the requests are identical)."""
        path = tmp_path / "t.jsonl.gz"
        save_trace(path, workload.requests, workload_index_names(workload))
        direct = RunSpec.make("scan", "metal", scale=0.05)
        replay = RunSpec.make(
            "scan", "metal", scale=0.05,
            trace_path=path, trace_sha256=trace_digest(path),
        )
        assert direct.digest() != replay.digest()
        with Executor(jobs=1, store=None) as executor:
            direct_out, replay_out = executor.run([direct, replay])
        assert direct_out.check().payload["result"] == \
               replay_out.check().payload["result"]

    def test_trace_path_requires_digest(self):
        with pytest.raises(ValueError, match="trace_sha256"):
            RunSpec.make("scan", "metal", trace_path="/tmp/x.jsonl")

    def test_digest_mismatch_fails_loudly(self, workload, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(path, workload.requests, workload_index_names(workload))
        spec = RunSpec.make(
            "scan", "metal", scale=0.05,
            trace_path=path, trace_sha256="0" * 64,
        )
        with Executor(jobs=1, store=None) as executor:
            outcome = executor.run([spec])[0]
        with pytest.raises(Exception, match="sha256|file changed"):
            outcome.check()


def test_cli_pipe_truncated_trace_exits_one(workload, tmp_path, capsys):
    """`repro run --pipe` on a truncated capture: exit 1 and the clear
    trace_io message, not a raw worker traceback."""
    from repro.cli import main

    path = tmp_path / "t.jsonl"
    save_trace(path, workload.requests, workload_index_names(workload))
    lines = path.read_text().splitlines(keepends=True)
    path.write_text("".join(lines[:-5]))  # kill the capture mid-write
    rc = main(["run", "scan", "--pipe", str(path), "--scale", "0.05"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "trace replay failed" in err
    assert "without the trailer" in err
    assert "Traceback" not in err
