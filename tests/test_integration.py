"""End-to-end integration tests: the paper's qualitative claims must hold.

These run tiny versions of the real experiments and assert the *shape* of
Section 5's results: ordering between organizations, short-circuiting
behaviour, and working-set reduction.
"""

import pytest

from repro.bench.runner import SYSTEMS, compare_systems, run_workload
from repro.workloads.suite import build_workload


SCALE = 0.15


@pytest.fixture(scope="module")
def scan_results():
    return compare_systems(build_workload("scan", scale=SCALE))


@pytest.fixture(scope="module")
def spmm_results():
    return compare_systems(build_workload("spmm", scale=SCALE))


class TestScanShape:
    def test_all_systems_ran(self, scan_results):
        assert set(scan_results) == set(SYSTEMS)
        assert all(r.num_walks > 0 for r in scan_results.values())

    def test_every_cache_beats_streaming(self, scan_results):
        stream = scan_results["stream"].makespan
        for kind in ("address", "fa_opt", "metal_ix", "metal"):
            assert scan_results[kind].makespan < stream

    def test_metal_beats_address_cache(self, scan_results):
        assert scan_results["metal"].makespan < scan_results["address"].makespan

    def test_metal_beats_xcache(self, scan_results):
        assert scan_results["metal"].makespan < scan_results["xcache"].makespan

    def test_xcache_high_miss_rate(self, scan_results):
        # Observation 3: leaves have minimal reuse in deep indexes.
        assert scan_results["xcache"].miss_rate > 0.6

    def test_working_set_ordering(self, scan_results):
        # Fig. 16: METAL < address < X-cache < stream.
        ws = {k: r.working_set_fraction for k, r in scan_results.items()}
        assert ws["metal"] < ws["xcache"]
        assert ws["address"] < ws["stream"] == pytest.approx(1.0)

    def test_metal_short_circuits(self, scan_results):
        metal = scan_results["metal"]
        assert metal.short_circuited > metal.num_walks * 0.5

    def test_fa_opt_low_miss_but_not_fastest(self, scan_results):
        # Observation 2: miss rates can be misleading.
        assert scan_results["fa_opt"].miss_rate < scan_results["xcache"].miss_rate


class TestSpMMShape:
    def test_metal_large_speedup_vs_stream(self, spmm_results):
        speedup = spmm_results["stream"].makespan / spmm_results["metal"].makespan
        assert speedup > 2.0

    def test_metal_beats_xcache(self, spmm_results):
        assert spmm_results["metal"].makespan < spmm_results["xcache"].makespan

    def test_dram_energy_reduced(self, spmm_results):
        assert (
            spmm_results["metal"].dram_energy_fj
            < spmm_results["stream"].dram_energy_fj
        )


class TestShallowVariants:
    def test_shallow_gains_are_modest(self):
        """Fig. 18: '-S' variants show much smaller METAL advantage."""
        deep = compare_systems(
            build_workload("sets", scale=SCALE), kinds=("stream", "metal")
        )
        shallow = compare_systems(
            build_workload("sets_s", scale=SCALE), kinds=("stream", "metal")
        )
        deep_gain = deep["stream"].makespan / deep["metal"].makespan
        shallow_gain = shallow["stream"].makespan / shallow["metal"].makespan
        assert deep_gain > shallow_gain


class TestPatternsVsHardwired:
    def test_metal_at_least_matches_metal_ix_on_level_workloads(self):
        wl = build_workload("join", scale=SCALE)
        metal = run_workload(wl, "metal")
        metal_ix = run_workload(wl, "metal_ix")
        assert metal.makespan <= metal_ix.makespan * 1.05


class TestCacheSizeScaling:
    def test_larger_cache_not_slower(self):
        wl = build_workload("scan", scale=SCALE)
        small = run_workload(wl, "metal", cache_bytes=2 * 1024)
        large = run_workload(wl, "metal", cache_bytes=32 * 1024)
        assert large.makespan <= small.makespan * 1.1

    def test_observation6_small_ix_close_to_big_address(self):
        """Observation 6: METAL shrinks the cache size requirement."""
        wl = build_workload("scan", scale=SCALE)
        small_metal = run_workload(wl, "metal", cache_bytes=4 * 1024)
        big_address = run_workload(wl, "address", cache_bytes=32 * 1024)
        assert small_metal.makespan < big_address.makespan * 1.6


class TestMultiIndexSharing:
    def test_join_touches_both_trees(self):
        wl = build_workload("join", scale=SCALE)
        assert len(wl.indexes) == 2
        run = run_workload(wl, "metal")
        assert run.short_circuited > 0
