"""Tests for the X-cache (key-tagged leaf cache)."""

import pytest

from repro.mem.xcache import XCache
from repro.params import BLOCK_SIZE, CacheParams


def small(entries=8, ways=2) -> XCache:
    return XCache(CacheParams(capacity_bytes=entries * BLOCK_SIZE, ways=ways))


class TestBasics:
    def test_miss_returns_none(self):
        assert small().lookup("k") is None

    def test_insert_then_hit(self):
        cache = small()
        cache.insert("k", "leaf")
        assert cache.lookup("k") == "leaf"

    def test_exact_key_match_only(self):
        cache = small()
        cache.insert(10, "leaf")
        assert cache.lookup(11) is None  # adjacent key in same leaf: miss

    def test_none_payload_rejected(self):
        with pytest.raises(ValueError):
            small().insert("k", None)

    def test_overwrite(self):
        cache = small()
        cache.insert("k", "a")
        cache.insert("k", "b")
        assert cache.lookup("k") == "b"
        assert len(cache) == 1

    def test_invalidate(self):
        cache = small()
        cache.insert("k", "v")
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        assert cache.lookup("k") is None


class TestReplacement:
    def test_lru_within_set(self):
        cache = XCache(CacheParams(capacity_bytes=2 * BLOCK_SIZE, ways=2))
        # Single set (2 entries): third insert evicts the LRU one.
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")
        cache.insert("c", 3)
        assert cache.lookup("a") == 1
        assert cache.lookup("b") is None

    def test_eviction_counted(self):
        cache = XCache(CacheParams(capacity_bytes=BLOCK_SIZE, ways=1))
        cache.insert("a", 1)
        cache.insert("b", 2)
        # Both may land in the one set; at least one eviction if so.
        assert len(cache) <= 1 or cache.stats.evictions == 0


class TestStats:
    def test_hit_miss_counting(self):
        cache = small()
        cache.lookup("x")
        cache.insert("x", 1)
        cache.lookup("x")
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
