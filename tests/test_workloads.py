"""Tests for the workload generators and the Table-2 suite."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.graphs import powerlaw_edges
from repro.workloads.keygen import (
    clustered_stream,
    range_queries,
    uniform_stream,
    zipf_stream,
)
from repro.workloads.matrices import banded_coo, inner_product_rows, powerlaw_coo
from repro.workloads.spatial import clustered_rects
from repro.workloads.suite import (
    PAPER_LABELS,
    WORKLOAD_BUILDERS,
    build_workload,
)


class TestKeygen:
    def test_uniform_in_range(self):
        keys = uniform_stream(100, 1_000, seed=1)
        assert len(keys) == 1_000
        assert all(0 <= k < 100 for k in keys)

    def test_zipf_skew_concentrates(self):
        from collections import Counter

        flat = Counter(zipf_stream(1_000, 5_000, skew=0.0, seed=1))
        skewed = Counter(zipf_stream(1_000, 5_000, skew=1.2, seed=1))
        assert skewed.most_common(1)[0][1] > flat.most_common(1)[0][1]

    def test_zipf_deterministic(self):
        assert zipf_stream(100, 50, seed=9) == zipf_stream(100, 50, seed=9)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_stream(0, 10)
        with pytest.raises(ValueError):
            zipf_stream(10, 10, skew=-1)

    def test_clustered_stays_near_centers(self):
        keys = clustered_stream(1 << 20, 2_000, num_clusters=4, seed=3)
        assert all(0 <= k < (1 << 20) for k in keys)
        # Consecutive keys are much closer than random ones would be.
        gaps = [abs(a - b) for a, b in zip(keys, keys[1:])]
        assert sorted(gaps)[len(gaps) // 2] < (1 << 20) // 16

    def test_range_queries_bounded(self):
        for lo, hi in range_queries(1_000, 100, span=10, seed=2):
            assert 0 <= lo <= hi < 1_000
            assert hi - lo <= 10


class TestMatrices:
    def test_powerlaw_coo_valid(self):
        triples = powerlaw_coo((50, 60), 500, seed=1)
        assert all(0 <= r < 50 and 0 <= c < 60 for r, c, _ in triples)
        coords = [(r, c) for r, c, _ in triples]
        assert len(coords) == len(set(coords))

    def test_banded_structure(self):
        triples = banded_coo((30, 30), bandwidth=2, density=1.0, seed=1)
        assert all(abs(r - c) <= 2 for r, c, _ in triples)

    def test_inner_rows_band_locality(self):
        rows = inner_product_rows(100, 8, 1_000, bandwidth=50, seed=1)
        # Consecutive rows must share columns (that is the reuse).
        shared = 0
        for a, b in zip(rows, rows[1:]):
            shared += len({c for c, _ in a} & {c for c, _ in b})
        assert shared > 0

    def test_inner_rows_shapes(self):
        rows = inner_product_rows(10, 5, 100, seed=2)
        assert len(rows) == 10
        for row in rows:
            assert all(0 <= c < 100 for c, _ in row)


class TestSpatialGraphs:
    def test_rects_unique_x_anchors(self):
        rects = clustered_rects(500, seed=4)
        xs = [r.x_lo for r in rects]
        assert len(xs) == len(set(xs))

    def test_rects_within_universe(self):
        rects = clustered_rects(200, universe=10_000, seed=4)
        for r in rects:
            assert 0 <= r.x_lo <= r.x_hi < 10_000
            assert 0 <= r.y_lo <= r.y_hi < 10_000

    def test_powerlaw_graph_hubby(self):
        from collections import Counter

        edges = powerlaw_edges(500, 5_000, skew=1.0, seed=5)
        indeg = Counter(d for _, d in edges)
        top = indeg.most_common(1)[0][1]
        assert top > 5_000 / 500 * 3  # far above the mean in-degree

    def test_no_self_loops(self):
        edges = powerlaw_edges(100, 1_000, seed=6)
        assert all(s != d for s, d in edges)


class TestSuite:
    def test_registry_complete(self):
        assert set(WORKLOAD_BUILDERS) == set(PAPER_LABELS)
        assert len(WORKLOAD_BUILDERS) == 10

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_workload("nope")

    @pytest.mark.parametrize("name", sorted(WORKLOAD_BUILDERS))
    def test_builds_and_walks(self, name):
        wl = build_workload(name, scale=0.05)
        assert wl.name == name
        assert len(wl.requests) > 0
        assert wl.total_index_blocks > 0
        # Every request's key must be walkable on its index.
        req = wl.requests[0]
        path = req.index.walk(req.key)
        assert len(path) >= 1

    def test_scale_grows_workload(self):
        small = build_workload("scan", scale=0.05)
        large = build_workload("scan", scale=0.2)
        assert len(large.requests) > len(small.requests)

    def test_descriptor_factory_returns_fresh(self):
        wl = build_workload("scan", scale=0.05)
        a, b = wl.descriptor_factory(), wl.descriptor_factory()
        assert a is not b

    def test_deep_vs_shallow_heights(self):
        deep = build_workload("spmm", scale=0.1)
        shallow = build_workload("spmm_s", scale=0.1)
        assert deep.indexes[0].height > shallow.indexes[0].height

    def test_faopt_pairs_align_with_requests(self):
        wl = build_workload("join", scale=0.05)
        pairs = wl.faopt_pairs()
        assert len(pairs) == len(wl.requests)
        assert pairs[0][1] == wl.requests[0].key

    def test_seed_determinism(self):
        a = build_workload("scan", scale=0.05, seed=3)
        b = build_workload("scan", scale=0.05, seed=3)
        assert [r.key for r in a.requests] == [r.key for r in b.requests]


@settings(max_examples=10, deadline=None)
@given(skew=st.floats(0.0, 1.5), seed=st.integers(0, 100))
def test_property_zipf_keys_in_universe(skew, seed):
    keys = zipf_stream(500, 200, skew=skew, seed=seed)
    assert all(0 <= k < 500 for k in keys)
