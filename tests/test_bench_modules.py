"""Smoke + shape tests for the benchmark harness modules at tiny scale."""

import pytest

from repro.bench import adaptivity, breakdown, occupancy, seeds, speedup, summary, trends
from repro.bench.runner import SYSTEMS, build_memsys, run_workload
from repro.workloads.suite import build_workload

SCALE = 0.05


@pytest.fixture(scope="module")
def tiny_workloads():
    return {name: build_workload(name, scale=SCALE) for name in ("scan", "spmm")}


class TestRunner:
    def test_systems_constant(self):
        assert SYSTEMS == ("stream", "address", "fa_opt", "xcache", "metal_ix", "metal")

    def test_build_each_system(self, tiny_workloads):
        wl = tiny_workloads["scan"]
        for kind in SYSTEMS:
            assert build_memsys(kind, wl).name == kind

    def test_run_workload_returns_result(self, tiny_workloads):
        run = run_workload(tiny_workloads["scan"], "metal")
        assert run.num_walks == len(tiny_workloads["scan"].requests)

    def test_cache_bytes_override(self, tiny_workloads):
        wl = tiny_workloads["scan"]
        small = run_workload(wl, "metal", cache_bytes=1024)
        big = run_workload(wl, "metal", cache_bytes=32 * 1024)
        assert big.makespan <= small.makespan * 1.05


class TestTrends:
    def test_run_and_format(self, tiny_workloads):
        results = trends.run_trends(("scan",), prebuilt=tiny_workloads)
        assert len(results) == 1
        for fmt in (trends.format_fig15, trends.format_fig16, trends.format_fig17):
            out = fmt(results)
            assert "Scan" in out


class TestSpeedup:
    def test_run_and_headline(self, tiny_workloads):
        results = speedup.run_speedups(("scan",), prebuilt=tiny_workloads)
        ratios = speedup.headline_ratios(results)
        assert set(ratios) == {"stream", "address", "xcache", "metal_ix"}
        assert all(v > 0 for v in ratios.values())
        assert "METAL speedup per workload" in speedup.format_fig18(results)


class TestBreakdownOccupancyAdaptivity:
    def test_breakdown(self, tiny_workloads):
        results = breakdown.run_breakdown(("scan",), prebuilt=tiny_workloads)
        assert results[0].ix > 0
        assert "IX only" in breakdown.format_fig20(results)

    def test_occupancy(self, tiny_workloads):
        results = occupancy.run_occupancy(("scan",), prebuilt=tiny_workloads)
        assert "metal" in results[0].by_level
        assert "L0" in occupancy.format_fig21(results)

    def test_adaptivity(self, tiny_workloads):
        result = adaptivity.run_adaptivity(prebuilt=tiny_workloads["scan"])
        assert result.windows
        assert "window" in adaptivity.format_fig22(result)


class TestSeeds:
    def test_seed_sweep(self):
        sweep = seeds.run_seed_sweep("scan", seeds=(0, 1), scale=SCALE)
        assert len(sweep.ratios["stream"]) == 2
        assert sweep.mean("stream") > 1.0
        assert "Robustness" in seeds.format_seed_sweep(sweep)

    def test_seed_variation_is_bounded(self):
        sweep = seeds.run_seed_sweep("scan", seeds=(0, 1, 2), scale=SCALE)
        mean = sweep.mean("stream")
        assert sweep.stdev("stream") < mean * 0.5


class TestSummary:
    def test_table3(self):
        result = summary.run_summary(scale=SCALE)
        out = summary.format_table3(result)
        assert "Question" in out
        assert result.ratios["stream"] > 1.0


class TestReport:
    def test_generate_report_fast(self):
        """Full report generation (fast mode) at tiny scale."""
        from repro.bench.report import generate_report

        report = generate_report(scale=0.03, fast=True)
        for marker in ("Fig. 7", "Table 2", "Fig. 15", "Fig. 18",
                       "Fig. 20", "Fig. 22", "Table 3"):
            assert marker in report

    def test_report_written_to_file(self, tmp_path):
        from repro.bench.report import main as report_main

        out = tmp_path / "report.txt"
        rc = report_main(["--scale", "0.03", "--fast", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "Table 3" in out.read_text()

    def test_report_json_export(self, tmp_path):
        import json

        from repro.bench.report import main as report_main

        out = tmp_path / "data.json"
        rc = report_main(["--scale", "0.03", "--fast", "--json", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "fig18" in payload and "table3" in payload
        assert payload["headline"]["stream"] > 1.0
        scan = payload["fig18"]["scan"]
        assert scan["metal"]["num_walks"] > 0
