"""Skip-list rank queries + cross-checks against scipy/networkx."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.adjacency import AdjacencyList
from repro.indexes.skiplist import SkipList
from repro.indexes.sorted_set import SortedSet
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.workloads.graphs import powerlaw_edges
from repro.workloads.matrices import powerlaw_coo


def skiplist_of(scores, **kw):
    sl = SkipList(seed=5, **kw)
    for s in scores:
        sl.insert(s, f"m{s}")
    return sl


class TestSkipListRank:
    def test_rank_of_min(self):
        sl = skiplist_of([10, 20, 30])
        assert sl.rank(10) == 0

    def test_rank_counts_strictly_below(self):
        sl = skiplist_of([10, 20, 30])
        assert sl.rank(20) == 1
        assert sl.rank(25) == 2
        assert sl.rank(999) == 3

    def test_rank_below_min(self):
        assert skiplist_of([10]).rank(5) == 0

    def test_by_rank_roundtrip(self):
        scores = [5, 15, 25, 35, 45]
        sl = skiplist_of(scores)
        for i, s in enumerate(scores):
            got = sl.by_rank(i)
            assert got is not None
            assert got[0] == s

    def test_by_rank_out_of_range(self):
        sl = skiplist_of([1, 2])
        assert sl.by_rank(2) is None
        assert sl.by_rank(-1) is None

    @settings(max_examples=30, deadline=None)
    @given(scores=st.sets(st.integers(0, 2_000), min_size=1, max_size=150),
           probe=st.integers(0, 2_000))
    def test_property_rank_matches_sorted_position(self, scores, probe):
        sl = skiplist_of(scores)
        expected = sum(1 for s in scores if s < probe)
        assert sl.rank(probe) == expected

    @settings(max_examples=25, deadline=None)
    @given(scores=st.sets(st.integers(0, 1_000), min_size=1, max_size=100))
    def test_property_by_rank_enumerates_in_order(self, scores):
        sl = skiplist_of(scores)
        got = [sl.by_rank(i)[0] for i in range(len(scores))]
        assert got == sorted(scores)


class TestSortedSetRank:
    def test_global_rank_across_buckets(self):
        sset = SortedSet(score_space=1_000, num_buckets=4, seed=2)
        scores = list(range(0, 1_000, 37))
        for s in scores:
            sset.add(f"m{s}", s)
        for i, s in enumerate(sorted(scores)):
            assert sset.rank(s) == i

    def test_by_rank_across_buckets(self):
        sset = SortedSet(score_space=1_000, num_buckets=8, seed=2)
        scores = sorted({(s * 131) % 1_000 for s in range(60)})
        for s in scores:
            sset.add(f"m{s}", s)
        for i, s in enumerate(scores):
            got = sset.by_rank(i)
            assert got is not None and got[0] == s
        assert sset.by_rank(len(scores)) is None


class TestScipyCrossCheck:
    """Our sparse substrate must agree with scipy's reference kernels."""

    def test_spmv_matches_scipy(self):
        from scipy.sparse import coo_matrix

        triples = powerlaw_coo((60, 60), 400, seed=9)
        tensor = DynamicSparseTensor.from_coo((60, 60), triples, fanout=3)
        rows = [r for r, _, _ in triples]
        cols = [c for _, c, _ in triples]
        vals = [v for _, _, v in triples]
        ref = coo_matrix((vals, (rows, cols)), shape=(60, 60)).tocsr()
        x = np.arange(60, dtype=float)
        ours = np.array(tensor.spmv(list(x)))
        np.testing.assert_allclose(ours, ref @ x, rtol=1e-10)

    def test_dense_roundtrip_matches_scipy(self):
        from scipy.sparse import coo_matrix

        triples = powerlaw_coo((25, 30), 120, seed=10)
        tensor = DynamicSparseTensor.from_coo((25, 30), triples, fanout=4)
        rows = [r for r, _, _ in triples]
        cols = [c for _, c, _ in triples]
        vals = [v for _, _, v in triples]
        ref = coo_matrix((vals, (rows, cols)), shape=(25, 30)).toarray()
        np.testing.assert_allclose(np.array(tensor.to_dense()), ref)


class TestNetworkxCrossCheck:
    def test_pagerank_matches_networkx(self):
        import networkx as nx

        edges = powerlaw_edges(80, 500, skew=0.8, seed=12)
        graph = AdjacencyList(edges, num_vertices=80)
        ours = graph.pagerank_push(damping=0.85, iterations=100)

        g = nx.DiGraph()
        g.add_nodes_from(range(80))
        g.add_edges_from(set(edges))
        # networkx collapses duplicate edges; mirror that in our input.
        dedup_graph = AdjacencyList(sorted(set(edges)), num_vertices=80)
        ours = dedup_graph.pagerank_push(damping=0.85, iterations=200)
        ref = nx.pagerank(g, alpha=0.85, max_iter=200, tol=1e-12)
        for v in range(80):
            assert ours[v] == pytest.approx(ref[v], abs=5e-4)
