"""Run modes (repro.modes): max-rate search, schedules, trace replay.

Two kinds of guarantees:

* **Oracle checks** — the bisection must behave like a bisection over
  the serving simulator's monotone utilization-vs-load curve: probes
  bracket the answer, the verdict is the highest sustainable probe, and
  tightening the bound can only lower the ceiling.
* **Determinism / cacheability** — a mode run is pure arithmetic over
  frozen spec payloads, so re-running with the same arguments must emit
  the same spec digests and be served entirely from the warm cache.
"""

import pytest

from repro.exec import Executor, ResultStore
from repro.modes import (
    find_max_rate,
    format_max_rate,
    format_schedule,
    parse_schedule,
    run_schedule,
)

#: One cheap serving configuration shared by every test; scale 0.02 keeps
#: the per-probe backend simulation small.
CONFIG = dict(workload="scan", system="metal", scale=0.02, seed=0,
              users=8, tiles=2, duration_ms=3)


@pytest.fixture(scope="module")
def max_rate_result():
    with Executor(jobs=1, store=None) as executor:
        return find_max_rate(iters=4, executor=executor, **CONFIG)


class TestMaxRate:
    def test_ceiling_is_bracketed_and_sustainable(self, max_rate_result):
        result = max_rate_result
        assert result.max_load is not None
        best = [p for p in result.probes if p.load == result.max_load][-1]
        assert best.sustainable
        assert best.utilization <= result.max_util
        # Every probe above the ceiling was rejected: the verdict really
        # is the highest sustainable load evaluated.
        for p in result.probes:
            if p.load > result.max_load:
                assert not p.sustainable
        assert result.max_rate_rps == pytest.approx(
            result.users * result.requests_per_min * result.max_load / 60.0,
            rel=1e-4,
        )

    def test_utilization_is_monotone_in_load(self, max_rate_result):
        """The oracle the bisection relies on: offered load up, mean
        utilization (weakly) up."""
        probes = sorted(max_rate_result.probes, key=lambda p: p.load)
        utils = [p.utilization for p in probes]
        assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:]))
        offered = [p.offered for p in probes]
        assert all(a < b for a, b in zip(offered, offered[1:]))

    def test_tighter_bound_lowers_ceiling(self, max_rate_result):
        with Executor(jobs=1, store=None) as executor:
            tight = find_max_rate(iters=4, max_util=0.5, executor=executor,
                                  **CONFIG)
        assert tight.max_load is not None
        assert tight.max_load <= max_rate_result.max_load

    def test_impossible_bracket_reports_none(self):
        with Executor(jobs=1, store=None) as executor:
            result = find_max_rate(iters=2, max_util=0.0001,
                                   executor=executor, **CONFIG)
        assert result.max_load is None
        assert result.max_rate_rps is None
        assert "no sustainable load" in format_max_rate(result)

    def test_rerun_is_fully_cache_served(self, tmp_path):
        store = ResultStore(root=tmp_path)
        with Executor(jobs=1, store=store) as cold:
            first = find_max_rate(iters=3, executor=cold, **CONFIG)
            assert cold.stats.cache_hits == 0
        with Executor(jobs=1, store=ResultStore(root=tmp_path)) as warm:
            second = find_max_rate(iters=3, executor=warm, **CONFIG)
            # Same arguments -> same quantized probe loads -> same spec
            # digests: every probe is a warm-cache hit.
            assert warm.stats.cache_hits == len(second.probes)
            assert warm.stats.computed == 0
        assert first.to_dict() == second.to_dict()


class TestSchedule:
    def test_parse_ramp_and_step(self):
        assert parse_schedule("ramp:0.2:1.0:5") == (0.2, 0.4, 0.6, 0.8, 1.0)
        assert parse_schedule("step:0.5,1.5,0.5") == (0.5, 1.5, 0.5)
        for bad in ("ramp:0.2:1.0", "ramp:a:b:3", "ramp:0:1:1", "wave:1",
                    "step:"):
            with pytest.raises(ValueError):
                parse_schedule(bad)

    def test_ramp_phases_follow_profile(self):
        with Executor(jobs=1, store=None) as executor:
            result = run_schedule(profile="ramp:0.3:0.9:3",
                                  executor=executor, **CONFIG)
        assert [p.load for p in result.phases] == [0.3, 0.6, 0.9]
        assert [p.phase for p in result.phases] == [0, 1, 2]
        # Offered work tracks the profile (same horizon, higher rate).
        offered = [p.offered for p in result.phases]
        assert offered[0] < offered[1] < offered[2]
        assert format_schedule(result)  # renders without error

    def test_step_revisit_draws_fresh_arrivals(self):
        """A step profile that returns to a load is a *different* phase:
        fresh arrival seed, so offered counts differ while the load and
        rate match."""
        with Executor(jobs=1, store=None) as executor:
            result = run_schedule(profile="step:0.5,1.2,0.5",
                                  executor=executor, **CONFIG)
        first, _, again = result.phases
        assert first.load == again.load == 0.5
        assert first.offered != again.offered

    def test_rerun_is_fully_cache_served(self, tmp_path):
        profile = "ramp:0.4:1.0:3"
        store = ResultStore(root=tmp_path)
        with Executor(jobs=1, store=store) as cold:
            first = run_schedule(profile=profile, executor=cold, **CONFIG)
        with Executor(jobs=1, store=ResultStore(root=tmp_path)) as warm:
            second = run_schedule(profile=profile, executor=warm, **CONFIG)
            assert warm.stats.cache_hits == len(second.phases)
            assert warm.stats.computed == 0
        assert first.to_dict() == second.to_dict()
