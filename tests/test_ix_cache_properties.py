"""Property-based tests (hypothesis) for IX-cache range-tag invariants.

The IX-cache's correctness rests on three structural properties that are
easy to break while optimizing packing/eviction and hard to pin down with
example-based tests:

* resident ranges at the same level never overlap (for distinct nodes),
* ``probe(key)`` always returns the deepest resident node covering ``key``,
* eviction/invalidation never leaves a dangling or malformed entry in the
  utility table (every entry keeps live parts, sane counters, and
  capacity bounds).

Nodes come from real bulk-loaded B+trees so the inserted ranges have the
disjointness structure the hardware would see.
"""

from hypothesis import given, settings, strategies as st

from repro.core.ix_cache import _UTILITY_MAX, IXCache
from repro.indexes.bplustree import BPlusTree
from repro.params import BLOCK_SIZE, CacheParams

#: Small geometry so hypothesis exercises eviction and the wide array.
TINY = CacheParams(capacity_bytes=16 * BLOCK_SIZE, ways=2)


def build_tree(keys: list[int], fanout: int) -> BPlusTree:
    return BPlusTree.bulk_load([(k, k) for k in keys], fanout=fanout)


def tree_and_cache(keys, fanout, key_block_bits=4):
    tree = build_tree(sorted(set(keys)), fanout)
    cache = IXCache(TINY, key_block_bits=key_block_bits)
    return tree, cache


def walk_and_insert(tree: BPlusTree, cache: IXCache, key: int) -> None:
    for node in tree.walk(key):
        cache.insert(node)


def all_parts(cache: IXCache):
    """(location, entry, part_tag, node) for every resident constituent."""
    for set_idx, ways in enumerate(cache._sets):
        for entry in ways:
            for tag, node in entry.parts:
                yield ("set", set_idx), entry, tag, node
    for entry in cache._wide:
        for tag, node in entry.parts:
            yield ("wide", 0), entry, tag, node


def check_structural_invariants(cache: IXCache, live_nodes: set[int]) -> None:
    """The 'no dangling pointers' contract after arbitrary churn."""
    for ways in cache._sets:
        assert len(ways) <= cache.ways
    assert len(cache._wide) <= max(cache.wide_capacity, 0)
    for _, entry, tag, node in all_parts(cache):
        assert entry.parts, "entry with no constituent nodes"
        assert 0 <= entry.utility <= _UTILITY_MAX
        assert entry.life >= 0
        # Entry tag must cover every part (coalescing widens, never shrinks).
        assert entry.tag.lo <= tag.lo <= tag.hi <= entry.tag.hi
        # Every cached node pointer must refer to a live index node.
        assert id(node) in live_nodes, "dangling node pointer after eviction"


keys_strategy = st.lists(
    st.integers(min_value=0, max_value=5000), min_size=8, max_size=120,
    unique=True,
)


class TestSameLevelDisjointness:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_strategy, fanout=st.integers(2, 8),
           probes=st.lists(st.integers(0, 5000), max_size=40))
    def test_resident_same_level_ranges_never_overlap(self, keys, fanout, probes):
        tree, cache = tree_and_cache(keys, fanout)
        for key in sorted(set(keys)) + probes:
            walk_and_insert(tree, cache, key)
        by_location: dict = {}
        for location, _, tag, node in all_parts(cache):
            by_location.setdefault(location, []).append((tag, node))
        for parts in by_location.values():
            for i, (tag_a, node_a) in enumerate(parts):
                for tag_b, node_b in parts[i + 1:]:
                    if node_a is node_b or tag_a.level != tag_b.level:
                        continue
                    assert not tag_a.overlaps(tag_b), (
                        f"distinct level-{tag_a.level} nodes overlap: "
                        f"{tag_a} vs {tag_b}"
                    )


class TestProbeDeepest:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_strategy, fanout=st.integers(2, 8),
           probes=st.lists(st.integers(0, 5000), min_size=1, max_size=40))
    def test_probe_returns_deepest_resident_covering_node(
        self, keys, fanout, probes
    ):
        tree, cache = tree_and_cache(keys, fanout)
        for key in sorted(set(keys)):
            walk_and_insert(tree, cache, key)
        for key in probes:
            # Brute-force reference over exactly the entries a probe can
            # see: the key's set plus the wide array.
            candidates = [
                (tag.level, node)
                for entry in cache._sets[cache.set_of(key)] + cache._wide
                for tag, node in entry.parts
                if tag.matches(key)
            ]
            result = cache.probe(key)
            if not candidates:
                assert result is None
                continue
            deepest = max(level for level, _ in candidates)
            assert result is not None
            deepest_nodes = {id(n) for lvl, n in candidates if lvl == deepest}
            assert id(result) in deepest_nodes, (
                f"probe({key}) returned a shallower node than resident"
            )
            assert result.covers(key)

    @settings(max_examples=25, deadline=None)
    @given(keys=keys_strategy, fanout=st.integers(2, 8),
           probes=st.lists(st.integers(0, 5000), min_size=1, max_size=20))
    def test_probe_agrees_with_peek(self, keys, fanout, probes):
        tree, cache = tree_and_cache(keys, fanout)
        for key in sorted(set(keys)):
            walk_and_insert(tree, cache, key)
        for key in probes:
            peeked = cache.peek(key)
            probed = cache.probe(key)
            if peeked is None:
                assert probed is None
            else:
                assert probed is not None
                assert probed.level == peeked.level


class TestEvictionIntegrity:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_strategy, fanout=st.integers(2, 8),
           churn=st.lists(st.integers(0, 5000), min_size=5, max_size=80),
           lives=st.lists(st.integers(0, 4), min_size=5, max_size=80))
    def test_no_dangling_entries_after_churn(self, keys, fanout, churn, lives):
        tree, cache = tree_and_cache(keys, fanout)
        live_nodes = {id(node) for node in tree.nodes()}
        for key, life in zip(churn, lives + [0] * len(churn)):
            path = tree.walk(key)
            for node in path:
                cache.insert(node, life=life)
            cache.probe(key)
            check_structural_invariants(cache, live_nodes)
        stats = cache.stats
        assert stats.accesses == stats.hits + stats.misses

    @settings(max_examples=30, deadline=None)
    @given(keys=keys_strategy, fanout=st.integers(2, 8),
           lo=st.integers(0, 5000), width=st.integers(0, 2500))
    def test_invalidate_range_removes_every_overlap(self, keys, fanout, lo, width):
        tree, cache = tree_and_cache(keys, fanout)
        for key in sorted(set(keys)):
            walk_and_insert(tree, cache, key)
        hi = lo + width
        before = len(cache)
        removed = cache.invalidate_range(lo, hi)
        assert removed == before - len(cache)
        for _, _, tag, _ in all_parts(cache):
            pass  # structure still iterable
        # No surviving *entry* may overlap the dirty interval.
        for ways in cache._sets:
            for entry in ways:
                assert entry.tag.hi < lo or entry.tag.lo > hi
        for entry in cache._wide:
            assert entry.tag.hi < lo or entry.tag.lo > hi
        live_nodes = {id(node) for node in tree.nodes()}
        check_structural_invariants(cache, live_nodes)
