"""Direct unit tests for the serving-layer time series.

``request_series`` bins (completion, latency) pairs into the classic
throughput/latency-over-time view; ``serve_windows`` folds a span log
into windowed percentiles, queue depths, and per-tile utilization.
Both are pure functions, so they get exact conservation tests: every
completion lands in exactly one window, window ends are monotone, and
CSV export round-trips the rows.
"""

from __future__ import annotations

import pytest

from repro.obs.series import request_series, serve_windows
from repro.serve import ServeSpec, simulate_serve

SMALL = 0.01


def _log(**overrides):
    kwargs = dict(scale=SMALL, users=4, tiles=2, duration_ms=1,
                  requests_per_min=6_000_000.0, trace=True)
    kwargs.update(overrides)
    return simulate_serve(ServeSpec.make("scan", **kwargs)).spans


# --------------------------------------------------------------------- #
# request_series
# --------------------------------------------------------------------- #

def test_request_series_shape_and_conservation():
    completions = _log().completions()
    series = request_series(completions, windows=10)
    assert series.columns == ["t_end", "completions", "mean_latency",
                              "max_latency"]
    assert len(series) == 10
    assert sum(series.column("completions")) == len(completions)


def test_request_series_window_ends_are_monotone_and_cover_horizon():
    completions = _log().completions()
    series = request_series(completions, windows=7)
    ends = series.column("t_end")
    assert ends == sorted(ends) and len(set(ends)) == len(ends)
    assert ends[-1] >= max(t for t, _ in completions)


def test_request_series_bins_by_completion_time():
    # Two requests completing at t=5 and t=95 with latencies 10 and 30:
    # with 10 windows over horizon 95 (width 10) they land in windows
    # 0 and 9.
    series = request_series([(5, 10), (95, 30)], windows=10)
    counts = series.column("completions")
    assert counts[0] == 1 and counts[-1] == 1 and sum(counts) == 2
    assert series.column("mean_latency")[0] == 10.0
    assert series.column("max_latency")[-1] == 30


def test_request_series_stats_match_window_population():
    # width is ceil(horizon / windows), so every completion fits below
    # the last window end and windows are exactly (t_end-width, t_end].
    log = _log()
    series = request_series(log.completions(), windows=5)
    width = series.column("t_end")[0]
    for row in series.to_dicts():
        window = [lat for t, lat in log.completions()
                  if row["t_end"] - width < t <= row["t_end"]]
        assert row["completions"] == len(window)
        if window:
            assert row["max_latency"] == max(window)
            assert row["mean_latency"] == pytest.approx(
                sum(window) / len(window))


def test_request_series_empty_and_validation():
    assert len(request_series([], windows=5)) == 0
    with pytest.raises(ValueError):
        request_series([(1, 1)], windows=0)


def test_request_series_csv_roundtrip(tmp_path):
    series = request_series(_log().completions(), windows=8)
    path = tmp_path / "series.csv"
    series.write_csv(str(path))
    lines = path.read_text().strip().split("\n")
    assert lines[0] == ",".join(series.columns)
    assert len(lines) == 1 + len(series)
    for line, row in zip(lines[1:], series.rows):
        cells = line.split(",")
        assert int(cells[0]) == row[0]
        assert int(cells[1]) == row[1]
        assert float(cells[2]) == pytest.approx(row[2], rel=1e-5)


# --------------------------------------------------------------------- #
# serve_windows
# --------------------------------------------------------------------- #

def test_serve_windows_shape_and_conservation():
    log = _log(tiles=3)
    series = serve_windows(log, windows=6, tiles=3)
    assert series.columns[:8] == ["t_end", "completions", "throughput_rps",
                                  "p50_ns", "p99_ns", "lb_queue_depth",
                                  "tile_queue_depth", "util"]
    assert series.columns[8:] == ["util_tile0", "util_tile1", "util_tile2"]
    assert len(series) == 6
    assert sum(series.column("completions")) == len(log)


def test_serve_windows_busy_time_conserved():
    """Summed per-window tile busy time equals the exact service total
    (interval overlap loses nothing)."""
    from repro.obs.spans import SERVICE

    log = _log()
    series = serve_windows(log, windows=9, tiles=2)
    width = series.column("t_end")[0]
    overlap_total = sum(
        row[series.columns.index("util")] * 2 * width
        for row in series.rows
    )
    exact_total = sum(span.hops[SERVICE] for span in log)
    assert overlap_total == pytest.approx(exact_total)


def test_serve_windows_percentiles_are_exact():
    log = _log()
    series = serve_windows(log, windows=1)
    lats = sorted(log.latencies())
    row = series.to_dicts()[0]
    assert row["completions"] == len(lats)
    assert row["p50_ns"] == lats[max(1, -(-len(lats) * 5000 // 10_000)) - 1]
    assert row["p99_ns"] == lats[max(1, -(-len(lats) * 9900 // 10_000)) - 1]


def test_serve_windows_empty_and_validation():
    from repro.obs.spans import SpanLog

    assert len(serve_windows(SpanLog([]), windows=4)) == 0
    with pytest.raises(ValueError):
        serve_windows(_log(), windows=0)
