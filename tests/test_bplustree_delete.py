"""Tests for B+tree deletion with rebalancing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.bplustree import BPlusTree
from repro.params import BLOCK_SIZE, CacheParams
from repro.sim.memsys import make_memsys


def tree_of(keys, fanout=4):
    return BPlusTree.bulk_load([(k, k * 10) for k in keys], fanout=fanout)


class TestDeleteBasics:
    def test_delete_present(self):
        t = tree_of(range(100))
        assert t.delete(42)
        assert t.get(42) is None
        assert len(t) == 99

    def test_delete_absent(self):
        t = tree_of(range(10))
        assert not t.delete(999)
        assert len(t) == 10

    def test_delete_all(self):
        t = tree_of(range(50), fanout=3)
        for k in range(50):
            assert t.delete(k)
        assert len(t) == 0
        assert list(t.items()) == []

    def test_delete_then_reinsert(self):
        t = tree_of(range(30), fanout=3)
        t.delete(15)
        t.insert(15, "back")
        assert t.get(15) == "back"
        t.check_invariants()

    def test_delete_from_singleton(self):
        t = tree_of([7])
        assert t.delete(7)
        assert len(t) == 0
        assert t.get(7) is None

    def test_height_shrinks(self):
        t = tree_of(range(200), fanout=3)
        tall = t.height
        for k in range(190):
            t.delete(k)
        assert t.height < tall
        t.check_invariants()


class TestRebalancing:
    def test_invariants_after_interleaved_ops(self):
        rng = random.Random(11)
        t = BPlusTree(fanout=3)
        reference: dict[int, int] = {}
        for _ in range(600):
            k = rng.randrange(200)
            if rng.random() < 0.55:
                t.insert(k, k)
                reference[k] = k
            else:
                assert t.delete(k) == (k in reference)
                reference.pop(k, None)
        t.check_invariants()
        assert dict(t.items()) == reference

    def test_leaf_chain_intact_after_merges(self):
        t = tree_of(range(0, 120, 2), fanout=3)
        for k in range(0, 120, 4):
            t.delete(k)
        keys = [k for k, _ in t.items()]
        assert keys == sorted(keys)
        assert keys == [k for k in range(0, 120, 2) if k % 4 != 0]

    def test_range_scan_after_deletes(self):
        t = tree_of(range(100), fanout=4)
        for k in range(0, 100, 3):
            t.delete(k)
        expected = [k for k in range(20, 60) if k % 3 != 0]
        assert [k for k, _ in t.range_scan(20, 59)] == expected

    def test_delete_fires_invalidation_on_merge(self):
        t = tree_of(range(100), fanout=3)
        fired = []
        t.on_structural_change.append(lambda lo, hi: fired.append((lo, hi)))
        for k in range(60):
            t.delete(k)
        assert fired  # merges must have occurred


class TestDeleteWithIXCache:
    def test_cached_walks_survive_deletes(self):
        t = tree_of(range(0, 400, 2), fanout=3)
        ms = make_memsys(
            "metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        for k in range(0, 400, 2):
            ms.process_walk(t, k)
        for k in range(0, 400, 8):
            t.delete(k)
        for k in range(2, 400, 8):
            ms.process_walk(t, k)
            leaf = t.walk(k)[-1]
            assert k in leaf.keys
        t.check_invariants()


@settings(max_examples=30, deadline=None)
@given(
    initial=st.sets(st.integers(0, 300), min_size=1, max_size=120),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 300)), max_size=120
    ),
    fanout=st.integers(3, 6),
)
def test_property_matches_dict_reference(initial, ops, fanout):
    t = BPlusTree.bulk_load([(k, k) for k in initial], fanout=fanout)
    reference = {k: k for k in initial}
    for is_insert, key in ops:
        if is_insert:
            t.insert(key, key)
            reference[key] = key
        else:
            assert t.delete(key) == (key in reference)
            reference.pop(key, None)
    assert dict(t.items()) == reference
    t.check_invariants()
