"""Tests for dynamic sparse tensors and shallow fibers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indexes.fiber import FiberMatrix
from repro.indexes.sparse_tensor import DynamicSparseTensor


TRIPLES = [(0, 0, 1.0), (1, 0, 2.0), (0, 3, 3.0), (2, 2, 4.0), (3, 3, 5.0)]


class TestDynamicSparseTensor:
    def test_from_coo_roundtrip(self):
        t = DynamicSparseTensor.from_coo((4, 4), TRIPLES)
        for r, c, v in TRIPLES:
            assert t.get(r, c) == v
        assert t.get(3, 0) == 0.0
        assert t.nnz == len(TRIPLES)

    def test_to_dense(self):
        t = DynamicSparseTensor.from_coo((2, 2), [(0, 1, 7.0)])
        assert t.to_dense() == [[0.0, 7.0], [0.0, 0.0]]

    def test_col_nonzeros_sorted_by_row(self):
        t = DynamicSparseTensor.from_coo((4, 4), TRIPLES)
        assert t.col_nonzeros(0) == [(0, 1.0), (1, 2.0)]

    def test_dynamic_set_new_column(self):
        t = DynamicSparseTensor.from_coo((4, 4), TRIPLES)
        t.set(1, 1, 9.0)
        assert t.get(1, 1) == 9.0
        assert t.nnz == len(TRIPLES) + 1

    def test_dynamic_set_overwrites(self):
        t = DynamicSparseTensor.from_coo((4, 4), TRIPLES)
        t.set(0, 0, -1.0)
        assert t.get(0, 0) == -1.0
        assert t.nnz == len(TRIPLES)

    def test_out_of_bounds(self):
        t = DynamicSparseTensor((4, 4))
        with pytest.raises(IndexError):
            t.set(4, 0, 1.0)
        with pytest.raises(ValueError):
            DynamicSparseTensor((0, 4))

    def test_walk_reaches_column_leaf(self):
        cols = [(r % 7, c, 1.0) for r, c in enumerate(range(0, 200, 2))]
        t = DynamicSparseTensor.from_coo((7, 200), cols, fanout=3)
        path = t.walk(100)
        assert path[-1].is_leaf
        assert 100 in path[-1].keys

    def test_depth_controlled_by_fanout(self):
        triples = [(0, c, 1.0) for c in range(500)]
        deep = DynamicSparseTensor.from_coo((1, 500), triples, fanout=3)
        shallow = DynamicSparseTensor.from_coo((1, 500), triples, fanout=30)
        assert deep.height > shallow.height

    def test_spmv_matches_dense(self):
        t = DynamicSparseTensor.from_coo((4, 4), TRIPLES)
        x = [1.0, 2.0, 3.0, 4.0]
        dense = t.to_dense()
        expected = [sum(dense[i][j] * x[j] for j in range(4)) for i in range(4)]
        assert t.spmv(x) == pytest.approx(expected)

    def test_spmv_dim_check(self):
        t = DynamicSparseTensor.from_coo((4, 4), TRIPLES)
        with pytest.raises(ValueError):
            t.spmv([1.0, 2.0])

    def test_col_address_in_data_region(self):
        from repro.mem.layout import Allocator

        t = DynamicSparseTensor.from_coo((4, 4), TRIPLES)
        assert t.col_address(0) >= Allocator.DATA_BASE
        assert t.col_address(1) is None


class TestFiberMatrix:
    def test_three_levels(self):
        f = FiberMatrix((10, 100), [(0, c, 1.0) for c in range(0, 100, 3)])
        assert f.height == 3
        levels = {n.level for n in f.nodes()}
        assert levels == {0, 1, 2}

    def test_walk_finds_column(self):
        f = FiberMatrix((10, 100), [(0, c, 1.0) for c in range(0, 100, 3)])
        path = f.walk(33)
        assert path[-1].lo == 33

    def test_walk_absent_column_stops_early(self):
        f = FiberMatrix((10, 100), [(0, c, 1.0) for c in range(0, 100, 3)])
        path = f.walk(34)
        assert len(path) <= 2 or path[-1].lo != 34

    def test_values_roundtrip(self):
        triples = [(r, c, float(r * 100 + c)) for r in range(3) for c in range(0, 30, 5)]
        f = FiberMatrix((3, 30), triples)
        for r, c, v in triples:
            assert f.get(r, c) == v

    def test_stored_columns(self):
        f = FiberMatrix((10, 100), [(0, 5, 1.0), (0, 2, 1.0)])
        assert f.stored_columns() == [2, 5]

    def test_bad_coords(self):
        with pytest.raises(IndexError):
            FiberMatrix((2, 2), [(5, 0, 1.0)])

    def test_walk_from_segment(self):
        f = FiberMatrix((10, 400), [(0, c, 1.0) for c in range(0, 400, 2)])
        full = f.walk(200)
        seg = full[1]
        partial = f.walk_from(seg, 200)
        assert partial[-1] is full[-1]


@settings(max_examples=25, deadline=None)
@given(
    coords=st.sets(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                   min_size=1, max_size=60)
)
def test_property_tensor_and_fiber_agree(coords):
    triples = [(r, c, float(r * 20 + c + 1)) for r, c in coords]
    tensor = DynamicSparseTensor.from_coo((20, 20), triples, fanout=3)
    fiber = FiberMatrix((20, 20), triples)
    for r in range(20):
        for c in range(20):
            assert tensor.get(r, c) == fiber.get(r, c)


@settings(max_examples=25, deadline=None)
@given(
    coords=st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                   min_size=1, max_size=30)
)
def test_property_dynamic_inserts_match_bulk(coords):
    triples = [(r, c, float(r + c)) for r, c in coords]
    bulk = DynamicSparseTensor.from_coo((10, 10), triples, fanout=3)
    dynamic = DynamicSparseTensor((10, 10), fanout=3)
    for r, c, v in triples:
        dynamic.set(r, c, v)
    assert bulk.to_dense() == dynamic.to_dense()
