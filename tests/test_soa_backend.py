"""SoA index backend vs the object backend: same answers, same bytes.

The SoA store (``repro.indexes.soa``) exists so a paper-scale tree fits
in RAM; it earns that only if it is *observationally identical* to the
object-graph B+tree — same node geometry, same addresses, same walk
paths, and, end to end, byte-identical ``RunResult.to_dict()`` payloads
under every memory system. Node and index ids come from module-level
counters in ``repro.indexes.base``, so every equivalence pair resets
them: ids feed the X-cache port hash, and a stale counter would change
port assignments rather than reveal a real divergence.
"""

import itertools

import numpy as np
import pytest

import repro.indexes.base as base
from repro.bench.runner import build_memsys
from repro.indexes import BPlusTree, SoABPlusTree, SoARecordTable
from repro.indexes.table import RecordTable
from repro.sim.metrics import simulate
from repro.workloads.suite import SOA_WORKLOADS, build_workload

SYSTEMS = ("stream", "address", "fa_opt", "xcache", "metal_ix", "metal")


def _reset_ids():
    """Fresh id counters so both variants see identical id sequences."""
    base._node_ids = itertools.count()
    base._index_ids = itertools.count()


def _build_pair(keys, fanout):
    from repro.mem.layout import Allocator

    _reset_ids()
    obj = BPlusTree.bulk_load(
        [(k, k) for k in keys], fanout=fanout, allocator=Allocator()
    )
    _reset_ids()
    soa = SoABPlusTree(
        np.asarray(keys, dtype=np.int64), fanout=fanout,
        allocator=Allocator(), values=lambda i: keys[i],
    )
    return obj, soa


@pytest.mark.parametrize("n,fanout", [(1, 9), (5, 2), (37, 3), (2000, 5)])
def test_layout_parity(n, fanout):
    keys = list(range(0, 2 * n, 2))[:n]
    obj, soa = _build_pair(keys, fanout)
    assert soa.height == obj.height
    obj_nodes = list(obj.nodes())
    soa_nodes = list(soa.nodes())
    assert len(soa_nodes) == len(obj_nodes)
    for a, b in zip(obj_nodes, soa_nodes):
        assert (a.level, a.lo, a.hi, a.address, a.byte_size()) == \
               (b.level, b.lo, b.hi, b.address, b.byte_size())
        assert a.is_leaf == b.is_leaf
        if a.is_leaf:
            assert list(a.keys) == list(b.keys)
    assert soa.total_blocks_fast() == base.count_blocks(obj.nodes())
    assert soa.total_blocks_fast() == base.count_blocks(soa.nodes())


@pytest.mark.parametrize("n,fanout", [(5, 2), (37, 3), (2000, 5)])
def test_walk_and_query_parity(n, fanout):
    keys = list(range(0, 2 * n, 2))[:n]
    obj, soa = _build_pair(keys, fanout)
    probe_keys = list(keys[:50]) + [k + 1 for k in keys[:20]] + [-5, 10**9]
    for key in probe_keys:
        obj_path = [(x.level, x.lo, x.hi) for x in obj.walk(key)]
        soa_path = [(x.level, x.lo, x.hi) for x in soa.walk(key)]
        assert obj_path == soa_path
        assert obj.get(key) == soa.get(key)
        assert (key in obj) == (key in soa)
    assert list(obj.range_scan(keys[0], keys[-1])) == \
           list(soa.range_scan(keys[0], keys[-1]))


def test_soa_node_views_are_identity_stable():
    """Descriptors and caches compare nodes by ``is``; the SoA view for a
    (level, pos) must be the same object every time."""
    _, soa = _build_pair(list(range(100)), 4)
    a = soa.root
    b = soa.root
    assert a is b
    for node in soa.walk(42):
        again = soa.walk(42)
        assert node in list(again)
    leaf = next(iter(soa.level_nodes(soa.height - 1)))
    assert leaf.next_leaf is not None
    assert soa.walk(int(leaf.lo))[-1] is leaf


def test_soa_is_static():
    _, soa = _build_pair(list(range(32)), 4)
    with pytest.raises(NotImplementedError):
        soa.insert(99, 99)
    with pytest.raises(NotImplementedError):
        soa.delete(4)


def test_record_table_parity():
    n = 500
    arrays = {
        "id": np.arange(n, dtype=np.int64),
        "value": (np.arange(n, dtype=np.int64) * 7) % 101,
    }
    _reset_ids()
    obj = RecordTable.from_records(
        ("id", "value"), "id",
        ({"id": int(i), "value": int((i * 7) % 101)} for i in range(n)),
        fanout=9,
    )
    _reset_ids()
    soa = SoARecordTable(
        columns=("id", "value"), key_column="id", arrays=arrays, fanout=9
    )
    for key in (0, 1, 250, n - 1, n + 5):
        assert obj.get(key) == soa.get(key)
        assert obj.record_address(key) == soa.record_address(key)
    assert list(obj.select_range(10, 40)) == list(soa.select_range(10, 40))
    wanted = lambda r: r["value"] == 3
    assert list(obj.where(wanted)) == list(soa.where(wanted))
    assert list(obj.scan()) == list(soa.scan())
    assert obj.height == soa.height


@pytest.mark.parametrize("workload_name", sorted(SOA_WORKLOADS))
def test_run_results_byte_identical_across_backends(workload_name):
    """The acceptance gate: every counter any system reports is identical
    whether the workload's indexes are object graphs or SoA arrays."""
    results = {}
    for backend in ("object", "soa"):
        _reset_ids()
        workload = build_workload(workload_name, scale=0.1, backend=backend)
        per_system = {}
        for kind in SYSTEMS:
            sim = workload.config.sim_params()
            memsys = build_memsys(
                kind, workload, workload.default_cache_bytes, sim
            )
            run = simulate(
                memsys, workload.requests, sim, workload.total_index_blocks
            )
            per_system[kind] = run.to_dict()
        results[backend] = per_system
    for kind in SYSTEMS:
        assert results["object"][kind] == results["soa"][kind], \
            f"{workload_name}/{kind}: backends disagree"


def test_soa_rejects_bad_keys():
    with pytest.raises(ValueError):
        SoABPlusTree(np.asarray([], dtype=np.int64))
    with pytest.raises(ValueError):
        SoABPlusTree(np.asarray([3, 1, 2], dtype=np.int64))
    with pytest.raises(ValueError):
        SoABPlusTree(np.asarray([1, 1, 2], dtype=np.int64))
