"""Widx — index-traversal walkers for in-memory databases (MICRO'13).

"Widx supports lookups and joins on relational data that perform nearest
neighbor scans. Widx predates DSAs and continues to rely on
address-caches." Widx is therefore the architecture behind the
``address``-cache baseline: its walkers traverse the index through a
conventional cache hierarchy.
"""

from __future__ import annotations

from repro.dsa.config import DSAConfig
from repro.dsa.grid import TileGrid
from repro.indexes.table import RecordTable
from repro.sim.memsys import AddressCacheMemSys
from repro.sim.metrics import WalkRequest
from repro.params import CacheParams, SimParams

WIDX_CONFIG = DSAConfig(
    "widx", parallelism="task", tiles=4, walker_contexts=4,
    ops_per_walk=128, ops_per_compute=48,
)


class Widx:
    """Walker-based lookup/join engine over an address cache."""

    def __init__(
        self,
        config: DSAConfig | None = None,
        cache_params: CacheParams | None = None,
        sim: SimParams | None = None,
    ) -> None:
        self.config = config or WIDX_CONFIG
        self.grid = TileGrid(self.config)
        self.memsys = AddressCacheMemSys(sim, cache_params)

    def lookup_requests(self, table: RecordTable, keys: list[int]) -> list[WalkRequest]:
        compute = self.config.compute_cycles_per_walk
        return [
            WalkRequest(
                table,
                key,
                compute_cycles=compute,
                data_address=table.record_address(key),
                data_bytes=table.record_bytes,
            )
            for key in keys
        ]

    def join_requests(
        self, outer: RecordTable, inner: RecordTable, column: str
    ) -> list[WalkRequest]:
        compute = self.config.compute_cycles_per_walk
        return [
            WalkRequest(inner, record[column], compute_cycles=compute)
            for record in outer.scan()
        ]
