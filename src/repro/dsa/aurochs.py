"""Aurochs — dataflow-threads DSA (Vilim et al., ISCA'21).

"Aurochs scans through the records in an unordered manner; METAL speeds up
these unordered scans." Aurochs runs the RTree spatial-analysis and
PageRank-push workloads (Table 2) with task-parallel tiles.
"""

from __future__ import annotations

from repro.dsa.config import DSAConfig
from repro.dsa.grid import TileGrid
from repro.indexes.adjacency import AdjacencyList
from repro.indexes.rtree import RTree2D
from repro.sim.metrics import WalkRequest

#: Table 2 intensities.
RTREE_CONFIG = DSAConfig(
    "aurochs", parallelism="task", ops_per_walk=130, ops_per_compute=206
)
PAGERANK_CONFIG = DSAConfig(
    "aurochs", parallelism="task", ops_per_walk=142, ops_per_compute=141
)


class Aurochs:
    """Dataflow-thread DSA: spatial and graph scans as walk requests."""

    def __init__(self, config: DSAConfig | None = None) -> None:
        self.config = config or RTREE_CONFIG
        self.grid = TileGrid(self.config)

    # ------------------------------------------------------------------ #
    # Spatial analysis (quadrilateral embedding, Section 4.3)
    # ------------------------------------------------------------------ #

    def rtree_requests(
        self, rtree: RTree2D, x_queries: list[int], y_per_x: int = 4
    ) -> list[WalkRequest]:
        """For each random x: walk the x-tree, then the correlated y keys.

        "Once we reach the leaf, we get the y-tree keys that correlate to
        these x keys to form quadrilaterals" — the y-tree scans cluster
        around the x hit, producing the branch-reuse pattern.
        """
        compute = self.config.compute_cycles_per_walk
        requests = []
        for x in x_queries:
            requests.append(WalkRequest(rtree.x_tree, x, compute_cycles=compute))
            y_keys = rtree.correlated_y_keys(x, window=2)[:y_per_x]
            for y in y_keys:
                requests.append(WalkRequest(rtree.y_tree, y, compute_cycles=compute))
        return requests

    # ------------------------------------------------------------------ #
    # PageRank-push
    # ------------------------------------------------------------------ #

    def pagerank_requests(
        self, graph: AdjacencyList, frontier: list[int]
    ) -> list[WalkRequest]:
        """One vertex-directory walk per pushed vertex.

        Pushing a vertex walks the adjacency index for its record, then
        streams its edge list (the data access).
        """
        compute = self.config.compute_cycles_per_walk
        requests = []
        for v in frontier:
            record = graph.record(v)
            requests.append(
                WalkRequest(
                    graph,
                    v,
                    compute_cycles=compute + (record.degree if record else 0),
                    data_address=record.address if record else None,
                    data_bytes=max(64, (record.degree if record else 0) * 8),
                )
            )
        return requests
