"""Gorgon — ML-from-relational-data DSA (Vilim et al., ISCA'20).

"Gorgon supports declarative patterns (e.g., map, filter) on relational
data that scan through ranges of records. The index is a table of records,
and the primary reuse is the mid-level roots." Gorgon runs the Scan, Sets,
and Analytics (SEL/WHERE/JOIN) workloads of Table 2 with vector-parallel
tiles.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.dsa.config import DSAConfig
from repro.dsa.grid import TileGrid
from repro.indexes.table import RecordTable
from repro.sim.metrics import WalkRequest

#: Table 2 intensities for the Gorgon workloads.
SCAN_CONFIG = DSAConfig(
    "gorgon", parallelism="vector", ops_per_walk=56, ops_per_compute=6
)
SETS_CONFIG = DSAConfig(
    "gorgon", parallelism="vector", ops_per_walk=128, ops_per_compute=48
)
ANALYTICS_CONFIG = DSAConfig(
    "gorgon", parallelism="vector", ops_per_walk=74, ops_per_compute=232
)


class Gorgon:
    """Relational DSA: declarative operators lowered to walk requests."""

    def __init__(self, config: DSAConfig | None = None) -> None:
        self.config = config or SCAN_CONFIG
        self.grid = TileGrid(self.config)

    # ------------------------------------------------------------------ #
    # Declarative operators -> walk requests
    # ------------------------------------------------------------------ #

    def scan_requests(self, table: RecordTable, keys: list[int]) -> list[WalkRequest]:
        """Point lookups (the paper's Scan uses random search keys)."""
        compute = self.config.compute_cycles_per_walk
        return [
            WalkRequest(
                table,
                key,
                compute_cycles=compute,
                data_address=table.record_address(key),
                data_bytes=table.record_bytes,
            )
            for key in keys
        ]

    def select_requests(
        self, table: RecordTable, ranges: list[tuple[int, int]]
    ) -> list[WalkRequest]:
        """SELECT ... WHERE key BETWEEN r1 AND r2: walk + leaf stream.

        The walk to the low edge is the cacheable portion; the leaf stream
        through the high edge is modeled by the memory system's range-scan
        path (``scan_hi``). Compute pipelines with the stream, so its cost
        grows sub-linearly with span (bounded at 8 records' worth).
        """
        compute = self.config.compute_cycles_per_walk
        return [
            WalkRequest(
                table,
                lo,
                compute_cycles=compute * min(8, max(1, hi - lo + 1)),
                scan_hi=hi,
            )
            for lo, hi in ranges
        ]

    def join_requests(
        self, outer: RecordTable, inner: RecordTable, column: str
    ) -> list[WalkRequest]:
        """Index nested-loop join: probe inner's index per outer record."""
        compute = self.config.compute_cycles_per_walk
        requests = []
        for record in outer.scan():
            probe_key = record[column]
            requests.append(
                WalkRequest(
                    inner,
                    probe_key,
                    compute_cycles=compute,
                    data_address=inner.record_address(probe_key),
                    data_bytes=inner.record_bytes,
                )
            )
        return requests

    # ------------------------------------------------------------------ #
    # Functional semantics (reference answers for the tests)
    # ------------------------------------------------------------------ #

    @staticmethod
    def select(table: RecordTable, lo: int, hi: int) -> list[dict[str, Any]]:
        return list(table.select_range(lo, hi))

    @staticmethod
    def where(
        table: RecordTable, predicate: Callable[[dict[str, Any]], bool]
    ) -> list[dict[str, Any]]:
        return list(table.where(predicate))

    @staticmethod
    def join(
        outer: RecordTable, inner: RecordTable, column: str
    ) -> list[tuple[dict[str, Any], dict[str, Any]]]:
        return list(outer.join(inner, column))
