"""Capstan — vector RDA for sparsity (Rucker et al., MICRO'21).

"Capstan targets sparse tensor algebra with matrices represented as
fibres... METAL enables Capstan to work with dynamic tensors and supports
leaf-level scans." The SpMM workload is an inner product: for each output
row, retrieve the columns of B whose coordinates match A's nonzeros.
"""

from __future__ import annotations

from repro.dsa.config import DSAConfig
from repro.dsa.grid import TileGrid
from repro.indexes.fiber import FiberMatrix
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.sim.metrics import WalkRequest

#: Table 2: SpMM is 116 walk ops / 111 compute ops per row.
SPMM_CONFIG = DSAConfig(
    "capstan", parallelism="vector", ops_per_walk=116, ops_per_compute=111
)


class Capstan:
    """Sparse-tensor DSA: SpMM lowered to coordinate walks over B."""

    def __init__(self, config: DSAConfig | None = None) -> None:
        self.config = config or SPMM_CONFIG
        self.grid = TileGrid(self.config)

    def spmm_requests(
        self,
        a_rows: list[list[tuple[int, float]]],
        b: DynamicSparseTensor | FiberMatrix,
    ) -> list[WalkRequest]:
        """One walk into B's column index per nonzero of A.

        ``a_rows[i]`` is row i of A as (col, value) pairs; the inner
        product probes B's index at each of A's nonzero coordinates. The
        repeated probing of the same B columns across A's rows is the
        leaf-level reuse the Node pattern captures (Fig. 10).
        """
        compute = self.config.compute_cycles_per_walk
        requests = []
        for row in a_rows:
            for col, _ in row:
                data_address = None
                if isinstance(b, DynamicSparseTensor):
                    data_address = b.col_address(col)
                requests.append(
                    WalkRequest(b, col, compute_cycles=compute, data_address=data_address)
                )
        return requests

    # ------------------------------------------------------------------ #
    # Functional semantics
    # ------------------------------------------------------------------ #

    @staticmethod
    def spmm(
        a_rows: list[list[tuple[int, float]]],
        b: DynamicSparseTensor | FiberMatrix,
        num_cols_out: int,
    ) -> list[dict[int, float]]:
        """C = A x B with B behind its coordinate index; C as dict rows.

        B's stored columns are keyed by B-column id; A's (col, val) hits
        B's *row* coordinate space: C[i][j] += A[i][k] * B[k][j].
        """
        out: list[dict[int, float]] = []
        for row in a_rows:
            acc: dict[int, float] = {}
            for k, a_val in row:
                for j in b_columns_of_row(b, k, num_cols_out):
                    b_val = b.get(k, j)
                    if b_val != 0.0:
                        acc[j] = acc.get(j, 0.0) + a_val * b_val
            out.append(acc)
        return out


def b_columns_of_row(
    b: DynamicSparseTensor | FiberMatrix, row: int, num_cols: int
) -> list[int]:
    """Columns j where B[row, j] != 0 (scan of stored columns)."""
    return [j for j in b.stored_columns() if j < num_cols and b.get(row, j) != 0.0]
