"""Grid of compute tiles sharing one IX-cache and pattern controller.

Physically the tiles sit on an interposer over HBM (Fig. 4); METAL adds an
IX-cache "shared by multiple compute tiles to maximize cooperative caching"
— the supplemental results note shared beats private because the cache is
only probed every 70-180 cycles.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.dsa.config import DSAConfig
from repro.dsa.tile import ComputeTile
from repro.params import TileParams


class TileGrid:
    """The spatial array: tiles + round-robin work distribution."""

    def __init__(self, config: DSAConfig) -> None:
        self.config = config
        tile_params = TileParams(
            ops_per_cycle=config.ops_per_cycle,
            walker_contexts=config.walker_contexts,
        )
        self.tiles = [ComputeTile(i, tile_params) for i in range(config.tiles)]

    def __len__(self) -> int:
        return len(self.tiles)

    def configure_all(self, function: Callable[..., Any]) -> None:
        for tile in self.tiles:
            tile.configure(function)

    def map_work(self, items: list[Any]) -> list[list[Any]]:
        """Round-robin distribution of work items across tiles."""
        buckets: list[list[Any]] = [[] for _ in self.tiles]
        for i, item in enumerate(items):
            buckets[i % len(self.tiles)].append(item)
        return buckets

    def execute_all(self, items: list[Any], ops_per_item: int = 1) -> list[Any]:
        """Run the configured function over items, tile by tile."""
        results = []
        for tile, bucket in zip(self.tiles, self.map_work(items)):
            for item in bucket:
                results.append(tile.execute(item, ops=ops_per_item))
        return results

    @property
    def total_contexts(self) -> int:
        return sum(t.params.walker_contexts for t in self.tiles)
