"""DSA configuration: parallelism style, tile grid geometry, intensities."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.params import SimParams, TileParams


@dataclass(frozen=True)
class DSAConfig:
    """Static description of one DSA (Table 1 / Table 2 attributes).

    ``ops_per_walk`` is the walker's per-walk operation count and
    ``ops_per_compute`` the application compute per walk; both come from
    Table 2 and convert to cycles via the tile's issue width.
    """

    name: str
    parallelism: str  # 'task' | 'vector' | 'loop'
    tiles: int = 16
    walker_contexts: int = 4
    ops_per_cycle: int = 4
    ops_per_walk: int = 64
    ops_per_compute: int = 32

    def walk_overhead_cycles(self, nodes_visited: int, height: int) -> int:
        """Walker ops attributable to the nodes actually visited."""
        if height <= 0:
            return 0
        per_node = self.ops_per_walk / height
        return int(per_node * nodes_visited / self.ops_per_cycle)

    @property
    def compute_cycles_per_walk(self) -> int:
        return max(1, self.ops_per_compute // self.ops_per_cycle)

    def sim_params(self, base: SimParams | None = None) -> SimParams:
        """Engine parameters matching this DSA's geometry."""
        base = base or SimParams()
        tile = TileParams(
            ops_per_cycle=self.ops_per_cycle,
            walker_contexts=self.walker_contexts,
            scratchpad_bytes=base.tile.scratchpad_bytes,
        )
        return replace(base, tiles=self.tiles, tile=tile)

    def scaled(self, tiles: int) -> "DSAConfig":
        """The same DSA with a different tile count (Fig. 24 sweep)."""
        return replace(self, tiles=tiles)
