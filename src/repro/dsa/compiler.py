"""Declarative front-end: dataflow programs lowered to walk requests.

The paper's toolflow (Fig. 14) lowers high-level programs through LLVM
onto the tile grid; this module is that layer's Pythonic equivalent. A
:class:`DataflowProgram` is a small DAG of declarative operators (lookup,
select, join, spmm, ...); :func:`lower` produces the walk-request stream,
a recommended reuse descriptor per index (the pattern the operator mix
implies), and a placement of operators onto compute tiles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.descriptors import (
    BranchDescriptor,
    CompositeDescriptor,
    LevelDescriptor,
    NodeDescriptor,
    ReuseDescriptor,
)
from repro.dsa.config import DSAConfig
from repro.dsa.grid import TileGrid
from repro.sim.metrics import WalkRequest

_op_ids = itertools.count()


@dataclass(frozen=True)
class Operator:
    """One declarative node of the dataflow DAG."""

    op_id: int
    kind: str            # 'lookup' | 'select' | 'where' | 'join' | 'spmm' | 'scan_graph'
    index: Any
    params: dict[str, Any] = field(default_factory=dict)
    inputs: tuple[int, ...] = ()

    #: Which reuse pattern each operator kind implies (Table 2's mapping).
    PATTERN_BY_KIND = {
        "lookup": "level",
        "select": "level",
        "where": "level",
        "join": "level",
        "spmm": "node",
        "scan_graph": "node+branch",
        "spatial": "level+branch",
    }


class DataflowProgram:
    """Builder for a DAG of declarative operators over indexes."""

    def __init__(self, config: DSAConfig) -> None:
        self.config = config
        self.operators: list[Operator] = []

    def _add(self, kind: str, index: Any, inputs: tuple[int, ...] = (), **params: Any) -> Operator:
        if kind not in Operator.PATTERN_BY_KIND:
            raise ValueError(f"unknown operator kind {kind!r}")
        op = Operator(next(_op_ids), kind, index, dict(params), inputs)
        self.operators.append(op)
        return op

    # ------------------------------------------------------------------ #
    # Declarative surface
    # ------------------------------------------------------------------ #

    def lookup(self, index: Any, keys: list[int]) -> Operator:
        """Point lookups (Gorgon's random search)."""
        return self._add("lookup", index, keys=list(keys))

    def select(self, index: Any, ranges: list[tuple[int, int]]) -> Operator:
        """SELECT ... BETWEEN range scans."""
        return self._add("select", index, ranges=list(ranges))

    def where(self, index: Any, keys: list[int]) -> Operator:
        """Data-dependent probes (nested WHERE clauses)."""
        return self._add("where", index, keys=list(keys))

    def join(self, outer: Any, inner: Any, fk_column: str) -> Operator:
        """Index nested-loop join of two record tables."""
        return self._add("join", inner, outer=outer, fk_column=fk_column)

    def spmm(self, b: Any, a_rows: list[list[tuple[int, float]]]) -> Operator:
        """Sparse inner product probing B's coordinate index."""
        return self._add("spmm", b, a_rows=a_rows)

    def scan_graph(self, graph: Any, frontier: list[int]) -> Operator:
        """Unordered graph scans (PageRank-push style)."""
        return self._add("scan_graph", graph, frontier=list(frontier))


@dataclass
class LoweredProgram:
    """Output of :func:`lower`: everything the simulator needs."""

    requests: list[WalkRequest]
    descriptors: dict[int, ReuseDescriptor]
    placement: dict[int, int]  # operator id -> tile id
    indexes: list[Any]

    @property
    def pattern_summary(self) -> dict[int, str]:
        return {
            index_id: type(descriptor).__name__
            for index_id, descriptor in self.descriptors.items()
        }


def _descriptor_for(kind: str, index: Any) -> ReuseDescriptor:
    """Table 2's operator-kind -> reuse-pattern mapping."""
    height = index.height
    level = LevelDescriptor(
        0, height - 1, min_level=0, max_level=height - 1, low_utility=0.5
    )
    if kind in ("lookup", "select", "where", "join"):
        return level
    if kind == "spmm":
        return CompositeDescriptor([
            NodeDescriptor(target="leaf", life=2),
            LevelDescriptor(0, height - 1, min_level=0, max_level=height - 1,
                            low_utility=0.5, min_touches=1, frontier=False),
        ])
    if kind in ("scan_graph", "spatial"):
        return CompositeDescriptor([
            NodeDescriptor(target="leaf", life=1),
            BranchDescriptor(depth=max(2, height - 1), window=512),
            LevelDescriptor(0, height - 1, min_level=0, max_level=height - 1,
                            low_utility=0.5, min_touches=1, frontier=False),
        ])
    raise ValueError(f"no pattern mapping for {kind!r}")


def _requests_for(op: Operator, config: DSAConfig) -> list[WalkRequest]:
    compute = config.compute_cycles_per_walk
    if op.kind in ("lookup", "where"):
        return [
            WalkRequest(op.index, key, compute_cycles=compute)
            for key in op.params["keys"]
        ]
    if op.kind == "select":
        return [
            WalkRequest(op.index, lo, compute_cycles=compute, scan_hi=hi)
            for lo, hi in op.params["ranges"]
        ]
    if op.kind == "join":
        outer = op.params["outer"]
        column = op.params["fk_column"]
        requests = []
        for record in outer.scan():
            requests.append(WalkRequest(outer, record[outer.key_column],
                                        compute_cycles=compute))
            requests.append(WalkRequest(op.index, record[column],
                                        compute_cycles=compute))
        return requests
    if op.kind == "spmm":
        return [
            WalkRequest(op.index, col, compute_cycles=compute)
            for row in op.params["a_rows"]
            for col, _ in row
        ]
    if op.kind == "scan_graph":
        return [
            WalkRequest(op.index, v, compute_cycles=compute)
            for v in op.params["frontier"]
        ]
    raise ValueError(f"cannot lower operator kind {op.kind!r}")


def lower(program: DataflowProgram) -> LoweredProgram:
    """Lower a dataflow program: requests + descriptors + placement.

    Placement is round-robin over the grid (the HLS place-and-route
    stand-in); descriptors merge per index when several operators share
    one (union semantics, like the composite patterns of Table 2).
    """
    if not program.operators:
        raise ValueError("empty dataflow program")
    grid = TileGrid(program.config)
    requests: list[WalkRequest] = []
    descriptors: dict[int, ReuseDescriptor] = {}
    placement: dict[int, int] = {}
    indexes: dict[int, Any] = {}

    for i, op in enumerate(program.operators):
        placement[op.op_id] = i % len(grid)
        requests.extend(_requests_for(op, program.config))
        involved = [op.index]
        if op.kind == "join":
            involved.append(op.params["outer"])
        for index in involved:
            index_id = index.index_id
            indexes[index_id] = index
            descriptor = _descriptor_for(op.kind, index)
            if index_id in descriptors:
                existing = descriptors[index_id]
                members = (
                    list(existing.members)
                    if isinstance(existing, CompositeDescriptor)
                    else [existing]
                )
                members.append(descriptor)
                descriptors[index_id] = CompositeDescriptor(members)
            else:
                descriptors[index_id] = descriptor

    return LoweredProgram(
        requests=requests,
        descriptors=descriptors,
        placement=placement,
        indexes=list(indexes.values()),
    )
