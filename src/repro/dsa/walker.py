"""Microcoded walker FSM (Fig. 9: index node, pseudo code, FSM, microcode).

Walkers are "state-machines that traverse the data-structure and chase
pointers". The walk is serial and data-dependent, but each walker refills
independently, so the FSM yields at the two long-latency states — WAIT
(cursor refill from DRAM) and SEARCH (in-node key search) — letting the
engine multiplex walks on one hardware thread.

The :class:`Walker` here is the *miss-path* engine: given an index and a
key it emits exactly the access stream a streaming walk performs, driven by
a microcode table rather than ad-hoc Python control flow. The memory-system
models consume the same node paths; tests assert the two agree.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.indexes.base import IndexNode
from repro.sim.engine import Access
from repro.params import SimParams


class WalkerState(Enum):
    """FSM states of the miss handler."""

    FETCH = "fetch"    # issue the cursor node's address to DRAM
    WAIT = "wait"      # yield: cursor refilling from DRAM
    RETRY = "retry"    # yield: refill failed, back off before re-issue
    SEARCH = "search"  # yield: find the next child pointer in the node
    NEXT = "next"      # advance the cursor to the chosen child
    DONE = "done"      # leaf reached


@dataclass(frozen=True)
class MicrocodeOp:
    """One microcode table row: state, action, and successor state."""

    state: WalkerState
    action: str
    next_state: WalkerState


class MicrocodeTable:
    """The compiled walk program (Fig. 9's table).

    The same table drives every index type — only the node-level 'search'
    action differs, and that is delegated to the index's child selection.
    """

    ROWS: tuple[MicrocodeOp, ...] = (
        MicrocodeOp(WalkerState.FETCH, "issue_read(cursor)", WalkerState.WAIT),
        MicrocodeOp(WalkerState.WAIT, "yield_until(refill)", WalkerState.SEARCH),
        MicrocodeOp(WalkerState.SEARCH, "child = search(node, key)", WalkerState.NEXT),
        MicrocodeOp(WalkerState.NEXT, "cursor = child | done", WalkerState.FETCH),
    )

    def successor(self, state: WalkerState) -> WalkerState:
        for row in self.ROWS:
            if row.state is state:
                return row.next_state
        raise KeyError(f"no microcode row for state {state}")


@dataclass(slots=True)
class WalkerStep:
    """One observable step: the FSM state, the node, the timed access."""

    state: WalkerState
    node: IndexNode | None
    access: Access | None


@dataclass(frozen=True)
class WalkProgram:
    """A DSA-specific compilation of the walk (Fig. 9: "the steps are
    compiled to a table and microcode").

    Distributes the DSA's per-walk operation budget (Table 2's Ops/Walk)
    over the FSM states of each level: address generation at FETCH, the
    in-node search at SEARCH, and cursor update at NEXT. Cycle costs follow
    from the tile's issue width.
    """

    fetch_cycles: int
    search_cycles: int
    next_cycles: int

    @classmethod
    def compile(cls, ops_per_walk: int, height: int, ops_per_cycle: int = 4) -> "WalkProgram":
        if height < 1:
            raise ValueError("height must be >= 1")
        if ops_per_cycle < 1:
            raise ValueError("ops_per_cycle must be >= 1")
        per_level = max(1, ops_per_walk // max(1, height))
        # Empirically (Fig. 9's pseudo code) the search dominates: two
        # ops of address generation, the rest split 3:1 search:next.
        fetch_ops = 2
        rest = max(2, per_level - fetch_ops)
        search_ops = max(1, (rest * 3) // 4)
        next_ops = max(1, rest - search_ops)
        to_cycles = lambda ops: max(1, -(-ops // ops_per_cycle))  # noqa: E731
        return cls(to_cycles(fetch_ops), to_cycles(search_ops), to_cycles(next_ops))

    @property
    def cycles_per_level(self) -> int:
        return self.fetch_cycles + self.search_cycles + self.next_cycles


class Walker:
    """Executes the microcode table over an index walk.

    ``run`` yields :class:`WalkerStep` events; ``trace`` collects just the
    timed accesses (what the engine consumes). An optional
    :class:`WalkProgram` replaces the generic per-state costs with the
    DSA-compiled ones.
    """

    def __init__(
        self,
        sim: SimParams | None = None,
        table: MicrocodeTable | None = None,
        program: WalkProgram | None = None,
        injector: Any = None,
    ):
        self.sim = sim or SimParams()
        self.table = table or MicrocodeTable()
        self.program = program
        #: Optional repro.faults.FaultInjector: transient refill failures
        #: surface as RETRY steps (backoff compute + WAIT re-fetch). This
        #: is the FSM-level view of the same resilience loop the engine
        #: replays for timed runs — wire an injector into exactly one of
        #: the two, never both, or failures would be drawn twice.
        self.injector = injector

    def _state_cost(self, state: WalkerState) -> int:
        if self.program is None:
            return self.sim.t_search if state is WalkerState.SEARCH else 0
        return {
            WalkerState.FETCH: self.program.fetch_cycles,
            WalkerState.SEARCH: self.program.search_cycles,
            WalkerState.NEXT: self.program.next_cycles,
        }.get(state, 0)

    def run(self, index: Any, key: int, start: IndexNode | None = None) -> Iterator[WalkerStep]:
        if start is None:
            path = index.walk(key)
        else:
            path = index.walk_from(start, key)[1:]  # cached node is on-chip
        state = WalkerState.FETCH
        for node in path:
            assert state is WalkerState.FETCH
            fetch_cost = self._state_cost(WalkerState.FETCH)
            yield WalkerStep(
                state, node,
                Access("compute", cycles=fetch_cost) if fetch_cost else None,
            )
            state = self.table.successor(state)  # WAIT
            yield WalkerStep(state, node, Access("dram", node.address, node.nbytes))
            if self.injector is not None:
                yield from self._retry_steps(node)
            state = self.table.successor(state)  # SEARCH
            yield WalkerStep(
                state, node,
                Access("compute", cycles=self._state_cost(WalkerState.SEARCH)),
            )
            state = self.table.successor(state)  # NEXT
            next_cost = self._state_cost(WalkerState.NEXT)
            yield WalkerStep(
                state, node,
                Access("compute", cycles=next_cost) if next_cost else None,
            )
            state = self.table.successor(state)  # FETCH
        yield WalkerStep(WalkerState.DONE, path[-1] if path else start, None)

    def _retry_steps(self, node: IndexNode) -> Iterator[WalkerStep]:
        """Bounded retry-with-backoff after a transiently failed refill.

        Each failed attempt yields a RETRY step (exponential-backoff
        compute) followed by a WAIT step that re-issues the node fetch —
        the FSM twin of ``Engine._retry_walker_step``. The ledger
        accounting (retries, backoff cycles, exhaustion) lives in the
        injector, identical to the engine path.
        """
        fails = self.injector.walker_failures()
        if not fails:
            return
        stats = self.injector.stats
        plan = self.injector.plan
        for attempt in range(fails):
            pause = plan.walker_backoff_cycles << attempt
            stats.retry_backoff_cycles += pause
            yield WalkerStep(
                WalkerState.RETRY, node,
                Access("compute", cycles=pause) if pause else None,
            )
            yield WalkerStep(
                WalkerState.WAIT, node, Access("dram", node.address, node.nbytes)
            )
        if fails > plan.walker_retry_limit:
            stats.retries += plan.walker_retry_limit
            stats.retries_exhausted += 1
        else:
            stats.retries += fails

    def trace(self, index: Any, key: int, start: IndexNode | None = None) -> list[Access]:
        return [step.access for step in self.run(index, key, start) if step.access is not None]

    def leaf(self, index: Any, key: int) -> IndexNode | None:
        last = None
        for step in self.run(index, key):
            if step.state is WalkerState.DONE:
                last = step.node
        return last
