"""Compute tile: a dataflow thread with local scratchpad and walkers.

"Each tile implements a dataflow thread; a vessel that encapsulates the
user-specified function along with register state sufficient to run the
thread" (Section 3). For the evaluation a tile contributes its issue width,
its walker contexts, and its scratchpad; the user function is a Python
callable standing in for the HLS-placed dataflow graph.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.mem.scratchpad import Scratchpad
from repro.params import TileParams


class ComputeTile:
    """One tile of the spatial grid."""

    def __init__(self, tile_id: int, params: TileParams | None = None) -> None:
        self.tile_id = tile_id
        self.params = params or TileParams()
        self.scratchpad = Scratchpad(self.params.scratchpad_bytes)
        self._function: Callable[..., Any] | None = None
        self.ops_executed = 0

    def configure(self, function: Callable[..., Any]) -> None:
        """Place a user function on the tile (stands in for HLS mapping)."""
        self._function = function

    def execute(self, *args: Any, ops: int = 1, **kwargs: Any) -> Any:
        """Run the placed function, charging ``ops`` operations."""
        if self._function is None:
            raise RuntimeError(f"tile {self.tile_id} has no function configured")
        self.ops_executed += ops
        return self._function(*args, **kwargs)

    def compute_cycles(self, ops: int) -> int:
        """Cycles to issue ``ops`` operations on this tile."""
        return max(1, -(-ops // self.params.ops_per_cycle))

    def stage_leaf(self, obj_id: Any, nbytes: int) -> None:
        """Stage a leaf data object into the local scratchpad."""
        self.scratchpad.stage(obj_id, nbytes)
