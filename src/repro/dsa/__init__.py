"""Domain-specific architecture models (Section 2.1, Fig. 2, Fig. 4).

The four DSAs METAL is incorporated into — Gorgon (relational), Capstan
(sparse tensor), Aurochs (dataflow threads), Widx (database walkers) — are
modeled as tile grids issuing index walks with the arithmetic intensities
of Table 2. The microcoded walker FSM of Fig. 9 is implemented in
:mod:`repro.dsa.walker`.
"""

from repro.dsa.aurochs import Aurochs
from repro.dsa.capstan import Capstan
from repro.dsa.config import DSAConfig
from repro.dsa.gorgon import Gorgon
from repro.dsa.grid import TileGrid
from repro.dsa.tile import ComputeTile
from repro.dsa.walker import MicrocodeTable, Walker, WalkerState, WalkProgram
from repro.dsa.widx import Widx

__all__ = [
    "Aurochs",
    "Capstan",
    "ComputeTile",
    "DSAConfig",
    "Gorgon",
    "MicrocodeTable",
    "TileGrid",
    "Walker",
    "WalkerState",
    "WalkProgram",
    "Widx",
]
