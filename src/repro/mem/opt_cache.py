"""Fully-associative cache with Belady's optimal (OPT) replacement.

The paper's Section 5.1 compares against "a fully-associative address cache
with OPT policy (FA-OPT)" to show that address caches are limited by working
set, not policy. OPT needs the future, so we provide:

* :func:`belady_hit_flags` — offline two-pass computation of the hit/miss
  flag per access of a block trace;
* :class:`BeladyCache` — an online-looking wrapper that replays those flags
  while keeping normal :class:`CacheStats`.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from collections.abc import Sequence

from repro.mem.stats import CacheStats
from repro.params import CacheParams


def belady_hit_flags(trace: Sequence[int], capacity_blocks: int) -> list[bool]:
    """Return per-access hit flags for OPT replacement on a block trace.

    Uses the classic next-use priority queue: on a fill conflict, evict the
    resident block whose next use is farthest in the future (or never).
    Runs in O(n log n).
    """
    if capacity_blocks <= 0:
        return [False] * len(trace)

    next_use: dict[int, list[int]] = defaultdict(list)
    for pos in reversed(range(len(trace))):
        next_use[trace[pos]].append(pos)

    resident: set[int] = set()
    # Max-heap of (-next_position, block); stale entries are skipped lazily.
    heap: list[tuple[int, int]] = []
    flags: list[bool] = []
    infinity = len(trace) + 1

    for pos, block in enumerate(trace):
        uses = next_use[block]
        uses.pop()  # drop the current position
        upcoming = uses[-1] if uses else infinity
        if block in resident:
            flags.append(True)
        else:
            flags.append(False)
            if len(resident) >= capacity_blocks:
                while heap:
                    neg_pos, victim = heapq.heappop(heap)
                    victim_uses = next_use[victim]
                    actual = victim_uses[-1] if victim_uses else infinity
                    if victim in resident and -neg_pos == actual:
                        resident.discard(victim)
                        break
            resident.add(block)
        heapq.heappush(heap, (-upcoming, block))
    return flags


class BeladyCache:
    """Replay wrapper exposing the same probe interface as AddressCache.

    Construct it from the *complete* block trace the workload will issue,
    then call :meth:`lookup` in exactly that order.
    """

    def __init__(self, trace: Sequence[int], params: CacheParams | None = None) -> None:
        self.params = params or CacheParams()
        self.stats = CacheStats()
        self._flags = belady_hit_flags(list(trace), self.params.entries)
        self._cursor = 0
        self._trace = list(trace)

    def lookup(self, block: int) -> bool:
        if self._cursor >= len(self._flags):
            raise IndexError("BeladyCache replayed past the recorded trace")
        expected = self._trace[self._cursor]
        if block != expected:
            raise ValueError(
                f"BeladyCache trace divergence at access {self._cursor}: "
                f"expected block {expected}, got {block}"
            )
        hit = self._flags[self._cursor]
        self._cursor += 1
        self.stats.record(hit)
        if not hit:
            self.stats.insertions += 1
        return hit
