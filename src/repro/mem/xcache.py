"""X-cache [Sedaghati et al., ISCA'22] — the state-of-the-art DSA cache.

X-cache tags cached data with the *application key* and stores the leaf
object pointer. A hit short-circuits the entire walk; a miss triggers a full
root-to-leaf walk and inserts the leaf. Per the paper's methodology we model
the ideal variant: hits return on a fast path with no handler cost, and the
miss handler is limited only by DRAM latency.

The organizational flaw METAL exploits (Observation 3, Section 5.1) falls
out naturally: only leaves are cached, leaves are the least-reused and most
numerous level, so deep indexes thrash it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.mem.stats import CacheStats
from repro.obs.tracer import NULL_TRACER
from repro.params import CacheParams


class XCache:
    """Set-associative key-tagged leaf cache with LRU replacement."""

    def __init__(self, params: CacheParams | None = None) -> None:
        self.params = params or CacheParams()
        self.stats = CacheStats()
        self.tracer = NULL_TRACER
        self._num_sets = self.params.sets
        self._sets: list[OrderedDict[Any, Any]] = [OrderedDict() for _ in range(self._num_sets)]

    def attach_obs(self, tracer, registry=None, prefix: str = "xcache") -> None:
        """Wire tracing and bind X-cache statistics into a registry."""
        self.tracer = tracer
        if registry is not None:
            registry.bind_stats(prefix, self.stats, (
                "accesses", "hits", "misses", "insertions", "evictions",
            ))

    def _set_index(self, key: Any) -> int:
        return hash(key) % self._num_sets

    def lookup(self, key: Any) -> Any | None:
        """Return the cached leaf payload for ``key``, or None on miss."""
        ways = self._sets[self._set_index(key)]
        payload = ways.get(key)
        hit = payload is not None
        if hit:
            ways.move_to_end(key)
        self.stats.record(hit)
        if self.tracer.enabled:
            self.tracer.emit("xcache_probe", key=key, hit=hit)
        return payload

    def insert(self, key: Any, payload: Any) -> None:
        if payload is None:
            raise ValueError("XCache payload must not be None (None means miss)")
        ways = self._sets[self._set_index(key)]
        if key in ways:
            ways[key] = payload
            ways.move_to_end(key)
            return
        if len(ways) >= self.params.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
            if self.tracer.enabled:
                self.tracer.emit("xcache_evict")
        ways[key] = payload
        self.stats.insertions += 1
        if self.tracer.enabled:
            self.tracer.emit("xcache_insert", key=key)

    def invalidate(self, key: Any) -> bool:
        ways = self._sets[self._set_index(key)]
        return ways.pop(key, None) is not None

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)
