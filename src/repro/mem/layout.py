"""Synthetic DRAM layout: regions and a bump allocator.

Index nodes live in an *index region* and leaf data objects in a *data
region*, matching the paper's split ("The data object itself is allocated in
a separate region in the DRAM ... our cache only targets the index traversal
itself"). Every allocation gets a unique, block-aligned address so that
address-tagged caches, bank interleaving, and working-set accounting are all
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.params import BLOCK_SIZE


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


@dataclass
class Region:
    """A contiguous address range with a bump pointer."""

    name: str
    base: int
    size: int
    _cursor: int = field(init=False)

    def __post_init__(self) -> None:
        self._cursor = self.base

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def used(self) -> int:
        return self._cursor - self.base

    def alloc(self, nbytes: int, alignment: int = BLOCK_SIZE) -> int:
        """Return the address of a fresh, aligned allocation."""
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        addr = align_up(self._cursor, alignment)
        if addr + nbytes > self.end:
            raise MemoryError(
                f"region {self.name!r} exhausted: need {nbytes} bytes at {addr:#x}, "
                f"region ends at {self.end:#x}"
            )
        self._cursor = addr + nbytes
        return addr


class Allocator:
    """Two-region allocator: index metadata and leaf data objects."""

    INDEX_BASE = 0x1000_0000
    DATA_BASE = 0x8000_0000
    DEFAULT_REGION_SIZE = 1 << 30

    def __init__(self, region_size: int = DEFAULT_REGION_SIZE) -> None:
        self.index_region = Region("index", self.INDEX_BASE, region_size)
        self.data_region = Region("data", self.DATA_BASE, region_size)

    def alloc_index(self, nbytes: int) -> int:
        return self.index_region.alloc(nbytes)

    def alloc_data(self, nbytes: int) -> int:
        return self.data_region.alloc(nbytes)

    @staticmethod
    def block_of(address: int) -> int:
        return address // BLOCK_SIZE

    @staticmethod
    def blocks_spanned(address: int, nbytes: int) -> range:
        """All 64B block ids overlapped by [address, address + nbytes)."""
        first = address // BLOCK_SIZE
        last = (address + max(nbytes, 1) - 1) // BLOCK_SIZE
        return range(first, last + 1)
