"""DMA engine and stream buffers — the streaming-DSA baseline path.

Streaming DSAs (Aurochs, SJoin in Table 1) fetch everything through
FIFO-ordered DMA with no index reuse: every node touch is a DRAM access.
The DMA engine here just turns object fetches into timed DRAM block
transfers; the stream buffer gives sequential prefetch so that *dense*
streaming is not unfairly penalized (its benefit disappears on pointer
chases, which is exactly the paper's point).
"""

from __future__ import annotations

from repro.mem.dram import DRAM
from repro.params import BLOCK_SIZE


class DMAEngine:
    """Shuttles objects between DRAM and on-chip storage in 64B blocks."""

    def __init__(self, dram: DRAM) -> None:
        self.dram = dram
        self.transfers = 0

    def fetch(self, address: int, nbytes: int, now: int) -> int:
        """Fetch ``nbytes`` at ``address``; return the completion cycle."""
        done = now
        for offset in range(0, max(nbytes, 1), BLOCK_SIZE):
            done = self.dram.access(address + offset, now)
        self.transfers += 1
        return done

    def store(self, address: int, nbytes: int, now: int) -> int:
        done = now
        for offset in range(0, max(nbytes, 1), BLOCK_SIZE):
            done = self.dram.access(address + offset, now, write=True)
        self.transfers += 1
        return done


class StreamBuffer:
    """Next-block prefetcher over a sequential address stream.

    A read that falls inside the prefetched window is free (already in
    flight); anything else pays a DRAM access and re-arms the window.
    """

    def __init__(self, dram: DRAM, depth_blocks: int = 4) -> None:
        if depth_blocks <= 0:
            raise ValueError("stream buffer depth must be positive")
        self.dram = dram
        self.depth_blocks = depth_blocks
        self._window_start: int | None = None
        self.prefetch_hits = 0
        self.demand_fetches = 0

    def read(self, address: int, now: int) -> int:
        block = address // BLOCK_SIZE
        if (
            self._window_start is not None
            and self._window_start <= block < self._window_start + self.depth_blocks
        ):
            self.prefetch_hits += 1
            self._window_start = block + 1
            return now  # already streamed in
        self.demand_fetches += 1
        done = self.dram.access(address, now)
        self._window_start = block + 1
        return done
