"""Memory-system substrates: DRAM model, allocator, and baseline caches.

These are the pieces METAL is evaluated against (Section 5): an HBM-like
DRAM, a set-associative address cache (Widx-style), a fully-associative
Belady-OPT address cache, the X-cache leaf cache [50], and the scratchpad +
DMA streaming path.
"""

from repro.mem.address_cache import AddressCache
from repro.mem.dma import DMAEngine, StreamBuffer
from repro.mem.dram import DRAM
from repro.mem.layout import Allocator, Region
from repro.mem.opt_cache import BeladyCache, belady_hit_flags
from repro.mem.scratchpad import Scratchpad
from repro.mem.stats import CacheStats, DRAMStats
from repro.mem.xcache import XCache

__all__ = [
    "AddressCache",
    "Allocator",
    "BeladyCache",
    "CacheStats",
    "DMAEngine",
    "DRAM",
    "DRAMStats",
    "Region",
    "Scratchpad",
    "StreamBuffer",
    "XCache",
    "belady_hit_flags",
]
