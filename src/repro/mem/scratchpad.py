"""Per-tile scratchpad for staging leaf data objects.

Each compute tile "includes a local scratchpad for staging the leaf data
objects and capturing immediate reuse of fields within the object; it also
acts as a defacto write buffer" (Section 3). The scratchpad is software
managed — no tags — so it models explicit staging, not caching.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any


class Scratchpad:
    """Explicitly-managed staging buffer with FIFO spill.

    ``stage`` copies an object in (evicting the oldest entries if full) and
    ``read`` hits only if the object is currently staged. Dirty entries are
    tracked so the write-buffer role is observable.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("scratchpad capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._entries: OrderedDict[Any, tuple[int, bool]] = OrderedDict()
        self.spills = 0
        self.stages = 0
        self.reads = 0
        self.read_hits = 0

    def stage(self, obj_id: Any, nbytes: int, *, dirty: bool = False) -> list[Any]:
        """Stage an object; return the list of spilled (evicted) dirty ids."""
        if nbytes > self.capacity_bytes:
            raise ValueError(
                f"object of {nbytes} bytes exceeds scratchpad capacity {self.capacity_bytes}"
            )
        spilled_dirty: list[Any] = []
        if obj_id in self._entries:
            old_bytes, old_dirty = self._entries.pop(obj_id)
            self.used_bytes -= old_bytes
            dirty = dirty or old_dirty
        while self.used_bytes + nbytes > self.capacity_bytes:
            victim, (victim_bytes, victim_dirty) = self._entries.popitem(last=False)
            self.used_bytes -= victim_bytes
            self.spills += 1
            if victim_dirty:
                spilled_dirty.append(victim)
        self._entries[obj_id] = (nbytes, dirty)
        self.used_bytes += nbytes
        self.stages += 1
        return spilled_dirty

    def read(self, obj_id: Any) -> bool:
        self.reads += 1
        hit = obj_id in self._entries
        if hit:
            self.read_hits += 1
        return hit

    def mark_dirty(self, obj_id: Any) -> None:
        if obj_id not in self._entries:
            raise KeyError(f"object {obj_id!r} not staged")
        nbytes, _ = self._entries[obj_id]
        self._entries[obj_id] = (nbytes, True)

    def drain_dirty(self) -> list[Any]:
        """Return and clean all dirty ids (the write-buffer flush)."""
        dirty = [k for k, (_, d) in self._entries.items() if d]
        for k in dirty:
            nbytes, _ = self._entries[k]
            self._entries[k] = (nbytes, False)
        return dirty

    def __contains__(self, obj_id: Any) -> bool:
        return obj_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)
