"""Banked, row-buffer-aware HBM-like DRAM model.

The model is deliberately first-order: per-bank busy-until times give
throughput limits, open-row tracking gives the hit/miss latency and energy
split, and a set of distinct touched blocks gives the working-set metric of
Fig. 16. This substitutes for the paper's Gem5 + HBM setup (see DESIGN.md).
"""

from __future__ import annotations

from repro.mem.stats import DRAMStats
from repro.obs.tracer import NULL_TRACER
from repro.params import BLOCK_SIZE, DRAMParams


def _shift_for(value: int) -> int | None:
    """log2(value) when value is a positive power of two, else None."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


class DRAM:
    """Timing + energy model for the DRAM behind the DSA.

    ``access`` is the only timed entry point: it returns the completion
    cycle of a 64B read/write issued at ``now`` and advances bank state.
    """

    def __init__(self, params: DRAMParams | None = None) -> None:
        self.params = params or DRAMParams()
        self.stats = DRAMStats()
        self.tracer = NULL_TRACER
        #: Optional FaultInjector (repro.faults). None on every fault-free
        #: run: the timed path then pays exactly one predictable branch.
        self.faults = None
        self._bank_free = [0] * self.params.banks
        self._open_row: list[int | None] = [None] * self.params.banks
        p = self.params
        # Power-of-two geometry (the default: 64B blocks, 16 banks, 2KiB
        # rows) decomposes addresses with shifts and masks instead of
        # divmod. Non-power-of-two parameters keep the exact arithmetic.
        self._block_shift = _shift_for(BLOCK_SIZE)
        self._bank_mask = p.banks - 1 if _shift_for(p.banks) is not None else None
        self._row_shift = _shift_for(p.row_bytes)
        self._fast_decomp = (
            self._block_shift is not None
            and self._bank_mask is not None
            and self._row_shift is not None
        )
        # Hot per-access constants, hoisted out of the frozen params.
        self._t_access = p.t_access
        self._t_row_hit = p.t_row_hit
        self._t_occupancy = p.t_occupancy
        self._e_access = p.e_access
        self._e_row_hit = p.e_row_hit

    def attach_obs(self, tracer, registry=None, prefix: str = "dram") -> None:
        """Wire tracing and bind DRAM statistics into a registry."""
        self.tracer = tracer
        if registry is not None:
            registry.bind_stats(prefix, self.stats, (
                "reads", "writes", "row_hits", "row_misses",
                "energy_fj", "bytes_moved",
            ))
            registry.bind(f"{prefix}.accesses", lambda: self.stats.accesses)
            registry.bind(
                f"{prefix}.touched_blocks",
                lambda: len(self.stats.touched_blocks),
            )

    def bank_of(self, address: int) -> int:
        """Banks are interleaved at block granularity (common for HBM)."""
        if self._fast_decomp:
            return (address >> self._block_shift) & self._bank_mask
        return (address // BLOCK_SIZE) % self.params.banks

    def row_of(self, address: int) -> int:
        if self._row_shift is not None:
            return address >> self._row_shift
        return address // self.params.row_bytes

    def decompose(self, addresses):
        """Vectorized block -> (bank, row) decomposition.

        ``addresses`` is a numpy int64 array; returns ``(banks, rows)``
        arrays with exactly the per-address arithmetic of :meth:`access`
        (shift/mask for power-of-two geometry, divmod otherwise). The
        batch engine precomputes these per trace instead of re-deriving
        bank and row inside the event loop.
        """
        if self._fast_decomp:
            banks = (addresses >> self._block_shift) & self._bank_mask
            rows = addresses >> self._row_shift
        else:
            banks = (addresses // BLOCK_SIZE) % self.params.banks
            rows = addresses // self.params.row_bytes
        return banks, rows

    def access(self, address: int, now: int, *, write: bool = False, nbytes: int = BLOCK_SIZE) -> int:
        """Issue an access at cycle ``now``; return its completion cycle."""
        if self._fast_decomp:
            first_block = address >> self._block_shift
            bank = first_block & self._bank_mask
            row = address >> self._row_shift
        else:
            first_block = address // BLOCK_SIZE
            bank = first_block % self.params.banks
            row = address // self.params.row_bytes
        bank_free = self._bank_free
        start = bank_free[bank]
        if start < now:
            start = now
        stats = self.stats
        open_row = self._open_row
        if open_row[bank] == row:
            latency = self._t_row_hit
            stats.energy_fj += self._e_row_hit
            stats.row_hits += 1
            row_hit = True
        else:
            latency = self._t_access
            stats.energy_fj += self._e_access
            stats.row_misses += 1
            open_row[bank] = row
            row_hit = False
        occupancy = self._t_occupancy
        if self.faults is not None:
            # Latency spikes lengthen this access's service time (and are
            # attributed as dram_hit/dram_miss service cycles); bank stalls
            # keep the bank busy longer, surfacing as dram_queue wait in
            # whichever accesses pile up behind it.
            latency += self.faults.dram_spike()
            occupancy += self.faults.bank_stall()
        bank_free[bank] = start + occupancy
        if self.tracer.enabled:
            # ``wait`` is the bank-queueing delay (cycles the request sat
            # behind a busy bank before starting) — the profiler's
            # ``dram_queue`` attribution component.
            self.tracer.emit(
                "dram_access", ts=start, phase="engine", bank=bank,
                address=address, row_hit=row_hit, write=write,
                latency=latency, wait=start - now,
            )
        if write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.bytes_moved += nbytes
        if nbytes <= BLOCK_SIZE:
            stats.touched_blocks.add(first_block)
        else:
            last_block = (address + nbytes - 1) // BLOCK_SIZE
            stats.touched_blocks.update(range(first_block, last_block + 1))
        return start + latency

    def untimed_access(self, address: int, *, write: bool = False, nbytes: int = BLOCK_SIZE) -> int:
        """Access without bank timing; returns the nominal latency.

        Used by the functional (non-event-driven) simulation passes, which
        only need traffic/energy/working-set accounting.
        """
        done = self.access(address, 0, write=write, nbytes=nbytes)
        return done

    def bandwidth_utilization(self, total_cycles: int) -> float:
        """Fraction of peak bandwidth consumed over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        peak = self.params.peak_bytes_per_cycle * total_cycles
        return self.stats.bytes_moved / peak

    def reset_timing(self) -> None:
        """Clear bank state but keep cumulative statistics."""
        self._bank_free = [0] * self.params.banks
        self._open_row = [None] * self.params.banks
