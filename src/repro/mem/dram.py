"""Banked, row-buffer-aware HBM-like DRAM model.

The model is deliberately first-order: per-bank busy-until times give
throughput limits, open-row tracking gives the hit/miss latency and energy
split, and a set of distinct touched blocks gives the working-set metric of
Fig. 16. This substitutes for the paper's Gem5 + HBM setup (see DESIGN.md).
"""

from __future__ import annotations

from repro.mem.stats import DRAMStats
from repro.obs.tracer import NULL_TRACER
from repro.params import BLOCK_SIZE, DRAMParams


class DRAM:
    """Timing + energy model for the DRAM behind the DSA.

    ``access`` is the only timed entry point: it returns the completion
    cycle of a 64B read/write issued at ``now`` and advances bank state.
    """

    def __init__(self, params: DRAMParams | None = None) -> None:
        self.params = params or DRAMParams()
        self.stats = DRAMStats()
        self.tracer = NULL_TRACER
        self._bank_free = [0] * self.params.banks
        self._open_row: list[int | None] = [None] * self.params.banks

    def attach_obs(self, tracer, registry=None, prefix: str = "dram") -> None:
        """Wire tracing and bind DRAM statistics into a registry."""
        self.tracer = tracer
        if registry is not None:
            registry.bind_stats(prefix, self.stats, (
                "reads", "writes", "row_hits", "row_misses",
                "energy_fj", "bytes_moved",
            ))
            registry.bind(f"{prefix}.accesses", lambda: self.stats.accesses)
            registry.bind(
                f"{prefix}.touched_blocks",
                lambda: len(self.stats.touched_blocks),
            )

    def bank_of(self, address: int) -> int:
        """Banks are interleaved at block granularity (common for HBM)."""
        return (address // BLOCK_SIZE) % self.params.banks

    def row_of(self, address: int) -> int:
        return address // self.params.row_bytes

    def access(self, address: int, now: int, *, write: bool = False, nbytes: int = BLOCK_SIZE) -> int:
        """Issue an access at cycle ``now``; return its completion cycle."""
        p = self.params
        bank = self.bank_of(address)
        row = self.row_of(address)
        start = max(now, self._bank_free[bank])
        if self._open_row[bank] == row:
            latency, energy = p.t_row_hit, p.e_row_hit
            self.stats.row_hits += 1
            row_hit = True
        else:
            latency, energy = p.t_access, p.e_access
            self.stats.row_misses += 1
            self._open_row[bank] = row
            row_hit = False
        self._bank_free[bank] = start + p.t_occupancy
        if self.tracer.enabled:
            # ``wait`` is the bank-queueing delay (cycles the request sat
            # behind a busy bank before starting) — the profiler's
            # ``dram_queue`` attribution component.
            self.tracer.emit(
                "dram_access", ts=start, phase="engine", bank=bank,
                address=address, row_hit=row_hit, write=write,
                latency=latency, wait=start - now,
            )
        if write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.stats.energy_fj += energy
        self.stats.bytes_moved += nbytes
        first_block = address // BLOCK_SIZE
        last_block = (address + max(nbytes, 1) - 1) // BLOCK_SIZE
        for block in range(first_block, last_block + 1):
            self.stats.touched_blocks.add(block)
        return start + latency

    def untimed_access(self, address: int, *, write: bool = False, nbytes: int = BLOCK_SIZE) -> int:
        """Access without bank timing; returns the nominal latency.

        Used by the functional (non-event-driven) simulation passes, which
        only need traffic/energy/working-set accounting.
        """
        done = self.access(address, 0, write=write, nbytes=nbytes)
        return done

    def bandwidth_utilization(self, total_cycles: int) -> float:
        """Fraction of peak bandwidth consumed over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        peak = self.params.peak_bytes_per_cycle * total_cycles
        return self.stats.bytes_moved / peak

    def reset_timing(self) -> None:
        """Clear bank state but keep cumulative statistics."""
        self._bank_free = [0] * self.params.banks
        self._open_row = [None] * self.params.banks
