"""Counters shared by every cache and DRAM model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/insert accounting for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bypasses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses over accesses; 0.0 when the cache was never probed."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def record(self, hit: bool) -> None:
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            bypasses=self.bypasses + other.bypasses,
        )


@dataclass(slots=True)
class DRAMStats:
    """Traffic, energy, and working-set accounting for the DRAM model.

    ``touched_blocks`` tracks *distinct* 64B blocks read, which is the
    numerator of the paper's working-set metric (Fig. 16: "the fraction of
    the index touched in the DRAM").
    """

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    energy_fj: float = 0.0
    bytes_moved: int = 0
    touched_blocks: set[int] = field(default_factory=set)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def working_set_fraction(self, total_blocks: int) -> float:
        """Distinct blocks touched over the blocks of the whole structure."""
        if total_blocks == 0:
            return 0.0
        return min(1.0, len(self.touched_blocks) / total_blocks)
