"""Two-level address-cache hierarchy — a stronger conventional baseline.

The paper's address-cache baseline is a single shared cache; real CPUs
(Widx's host) would give walkers a small private L1 backed by a larger
shared L2. This module provides that stronger strawman so METAL's
advantage is not an artifact of a weak conventional hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.address_cache import AddressCache
from repro.params import CacheParams


@dataclass(frozen=True)
class HierarchyParams:
    """Geometry and per-level hit latencies of the two-level hierarchy."""

    l1: CacheParams = CacheParams(capacity_bytes=2 * 1024, ways=4, t_hit=2)
    l2: CacheParams = CacheParams(capacity_bytes=16 * 1024, ways=16, t_hit=14)


class CacheHierarchy:
    """Inclusive L1 + L2 address hierarchy.

    ``lookup`` returns the level that hit (1, 2) or 0 for a miss; fills
    propagate to both levels (inclusive).
    """

    def __init__(self, params: HierarchyParams | None = None) -> None:
        self.params = params or HierarchyParams()
        self.l1 = AddressCache(self.params.l1)
        self.l2 = AddressCache(self.params.l2)

    def lookup(self, address: int) -> int:
        if self.l1.lookup(address):
            return 1
        if self.l2.lookup(address):
            self.l1.insert(address)  # fill up on L2 hit
            return 2
        return 0

    def insert(self, address: int) -> None:
        self.l2.insert(address)
        self.l1.insert(address)

    def latency_of(self, level: int) -> int:
        """Cycles to serve a hit at ``level`` (cumulative lookup chain)."""
        if level == 1:
            return self.params.l1.t_hit
        if level == 2:
            return self.params.l1.t_hit + self.params.l2.t_hit
        raise ValueError(f"no hit latency for level {level}")

    @property
    def miss_latency_cycles(self) -> int:
        """On-chip cycles burned before a miss goes to DRAM."""
        return self.params.l1.t_hit + self.params.l2.t_hit

    def total_capacity_bytes(self) -> int:
        return self.params.l1.capacity_bytes + self.params.l2.capacity_bytes

    def __len__(self) -> int:
        return len(self.l2)  # inclusive: L2 holds everything cached
