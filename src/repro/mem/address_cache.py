"""Set-associative address-tagged cache with LRU replacement.

This is the conventional idiom the paper's Challenge 1-3 critique: tags are
block addresses, so a walk must still traverse root-to-leaf (each node's
address is only known from its parent), and every touched node competes for
capacity.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mem.stats import CacheStats
from repro.obs.tracer import NULL_TRACER
from repro.params import CacheParams


class AddressCache:
    """LRU set-associative cache keyed by 64B block address."""

    def __init__(self, params: CacheParams | None = None) -> None:
        self.params = params or CacheParams()
        self.stats = CacheStats()
        self.tracer = NULL_TRACER
        if self.params.ways <= 0:
            raise ValueError("ways must be positive")
        self._num_sets = self.params.sets
        # One ordered dict per set: key = block id, LRU order = insertion order.
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self._num_sets)]

    def attach_obs(self, tracer, registry=None, prefix: str = "addr") -> None:
        """Wire tracing and bind address-cache statistics into a registry."""
        self.tracer = tracer
        if registry is not None:
            registry.bind_stats(prefix, self.stats, (
                "accesses", "hits", "misses", "insertions", "evictions",
            ))

    def _set_index(self, block: int) -> int:
        return block % self._num_sets

    def lookup(self, address: int) -> bool:
        """Probe the cache; updates LRU order and statistics."""
        block = address // self.params.block_bytes
        ways = self._sets[self._set_index(block)]
        hit = block in ways
        if hit:
            ways.move_to_end(block)
        self.stats.record(hit)
        if self.tracer.enabled:
            self.tracer.emit("addr_probe", block=block, hit=hit)
        return hit

    def contains(self, address: int) -> bool:
        """Stat-free presence check (no LRU update)."""
        block = address // self.params.block_bytes
        return block in self._sets[self._set_index(block)]

    def insert(self, address: int) -> None:
        block = address // self.params.block_bytes
        ways = self._sets[self._set_index(block)]
        if block in ways:
            ways.move_to_end(block)
            return
        if len(ways) >= self.params.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        ways[block] = None
        self.stats.insertions += 1

    def access(self, address: int, nbytes: int = 0) -> bool:
        """Lookup and fill-on-miss for every block an object spans.

        Returns True only if *all* spanned blocks hit (a multi-block index
        node is only short-circuited past DRAM if it is fully resident).
        """
        span = max(1, -(-max(nbytes, 1) // self.params.block_bytes))
        all_hit = True
        for i in range(span):
            addr = address + i * self.params.block_bytes
            if not self.lookup(addr):
                all_hit = False
                self.insert(addr)
        return all_hit

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)
