"""Global simulation parameters.

All timing is in DSA clock cycles and all energy in femtojoules (fJ) so the
numbers compose with the paper's published per-access figures (Fig. 7 and
Section 5.7: 9000 fJ per IX-cache access vs. 7000 fJ per address/X-cache
access).

The defaults model the paper's setup (Fig. 14): a grid of compute tiles over
2.5D HBM, 64-byte cache blocks everywhere, a 64 kB 16-way 16-banked cache as
the baseline geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> params)
    from repro.faults.plan import FaultPlan

#: Cache block size used by every cache organization (paper: "All cache
#: blocks are set to 64 bytes to ensure a fair comparison").
BLOCK_SIZE = 64

#: Bytes per key and per pointer inside an index node.
KEY_BYTES = 8
PTR_BYTES = 8

#: Stride separating per-index key namespaces in shared caches (wide
#: enough for 48-bit virtual-address key spaces).
NS_STRIDE = 1 << 52


@dataclass(frozen=True)
class DRAMParams:
    """HBM-like DRAM timing and energy.

    Energy constants are in the ballpark of HBM2 (~4 pJ/bit moved); what
    matters for the reproduction is the ratio between a DRAM access and an
    on-chip SRAM access (~100-300x), which these defaults preserve.
    """

    banks: int = 16
    #: Cycles for a row-buffer miss (activate + read + transfer).
    t_access: int = 100
    #: Cycles for a row-buffer hit.
    t_row_hit: int = 40
    #: Cycles a bank stays busy per request (occupancy, limits throughput).
    t_occupancy: int = 20
    #: Bytes in an open row.
    row_bytes: int = 2048
    #: Dynamic energy per 64B access, row miss (fJ).
    e_access: float = 2_000_000.0
    #: Dynamic energy per 64B access, row hit (fJ).
    e_row_hit: float = 1_200_000.0
    #: Peak bandwidth in bytes per DSA cycle (HBM-class; used to classify
    #: bandwidth-limited regions in the Fig. 24 sweep).
    peak_bytes_per_cycle: int = 256


@dataclass(frozen=True)
class CacheParams:
    """Geometry + per-access cost of an on-chip cache."""

    capacity_bytes: int = 64 * 1024
    block_bytes: int = BLOCK_SIZE
    ways: int = 16
    banks: int = 16
    #: Lookup latency in cycles.
    t_hit: int = 2
    #: Per-access dynamic energy (fJ). Paper Section 5.7: 7000 fJ for
    #: address/X-cache, 9000 fJ for IX-cache (range match costs more).
    e_access: float = 7_000.0

    @property
    def entries(self) -> int:
        return self.capacity_bytes // self.block_bytes

    @property
    def sets(self) -> int:
        return max(1, self.entries // self.ways)


#: Paper Section 5.7 per-access energies.
ADDRESS_CACHE_ENERGY_FJ = 7_000.0
XCACHE_ENERGY_FJ = 7_000.0
IXCACHE_ENERGY_FJ = 9_000.0


@dataclass(frozen=True)
class CrossbarParams:
    """Non-coherent crossbar between tiles and the shared cache (Fig. 4).

    Each SRAM probe occupies one crossbar port for ``t_occupancy`` cycles;
    organizations that probe per level (the address cache) load the ports
    ``height``x more than METAL's one probe per walk.
    """

    ports: int = 16
    t_occupancy: int = 2


@dataclass(frozen=True)
class TileParams:
    """A compute tile: issue width for compute ops and walker multiplexing.

    The paper's walkers "multiplex multiple walks on a single thread" and
    yield at long-latency states to harvest memory-level parallelism; the
    walker_contexts knob is that multiplexing degree.
    """

    ops_per_cycle: int = 4
    walker_contexts: int = 4
    #: Local scratchpad for staging leaf data objects (bytes).
    scratchpad_bytes: int = 16 * 1024


@dataclass(frozen=True)
class SimParams:
    """Top-level bundle handed to the simulation engine."""

    dram: DRAMParams = field(default_factory=DRAMParams)
    tile: TileParams = field(default_factory=TileParams)
    xbar: CrossbarParams = field(default_factory=CrossbarParams)
    tiles: int = 16
    #: Cycles for the in-node binary search per visited node.
    t_search: int = 4
    #: Cycles for one IX-cache probe (range-tag match over the shared,
    #: banked SRAM via the crossbar; Fig. 7 reports ~1 ns for the match
    #: logic itself). Probed once per walk.
    t_ix_probe: int = 6
    #: Cycles for one address/X-cache probe through the shared cache +
    #: crossbar. The address cache pays this per *level* of the walk (each
    #: node's address is only available from its parent — Challenge 1), so
    #: even a fully-hit walk serializes height x t_addr_probe cycles.
    t_addr_probe: int = 12
    #: Cycles for a fully-associative probe (CAM match across every entry;
    #: costs roughly double a set-indexed lookup at these entry counts).
    t_fa_probe: int = 24
    #: Enable the observability layer (repro.obs): structured event tracing
    #: plus counter snapshots in RunResult. Off by default; the untraced
    #: path stays allocation-free.
    trace: bool = False
    #: Ring-buffer capacity of the tracer (events beyond this are dropped
    #: oldest-first; per-kind counts stay exact).
    trace_buffer: int = 1 << 20
    #: Deterministic fault-injection schedule (repro.faults.FaultPlan).
    #: None — and, contractually, any plan whose rates are all zero —
    #: leaves every hot path byte-identical to the fault-free simulator.
    faults: "FaultPlan | None" = None
    #: Event-queue implementation: ``"heap"`` is the classic binary-heap
    #: loop; ``"bucket"`` drains a cycle-indexed calendar queue, visiting
    #: every context due at the same cycle in one pass. Contractually
    #: byte-identical results (the bucket drain reproduces the heap's
    #: (cycle, context) tie-break order exactly); traced and faulted runs
    #: always take the general heap loop regardless of this setting.
    engine: str = "heap"
    #: Walk-generation chunk size for the vectorized batch pipeline: >0
    #: routes timed, untraced, fault-free runs through
    #: ``repro.sim.batch`` — numpy ``searchsorted`` path resolution over
    #: SoA index levels plus a columnar access stream — in chunks of this
    #: many requests. 0 (the default) keeps the scalar per-walk path.
    #: Results are contractually byte-identical either way.
    walk_batch: int = 0


DEFAULT_SIM = SimParams()
