"""METAL: Caching Multi-level Indexes in Domain-Specific Architectures.

Reproduction of the ASPLOS'24 paper. The package layers:

* :mod:`repro.indexes` — the index data structures DSAs walk (B+tree, skip
  lists/sorted sets, R-tree, sparse tensors/fibers, adjacency lists,
  record tables).
* :mod:`repro.mem` — DRAM model and baseline caches (address, Belady
  FA-OPT, X-cache, scratchpad + DMA streaming).
* :mod:`repro.core` — the contribution: range-tagged IX-cache, reuse
  descriptors (Node / Level / Branch), pattern controller, and the
  ``Metal`` / ``MetalIX`` configurations.
* :mod:`repro.dsa` — the four target DSA models with Table-2 intensities
  and the microcoded walker FSM.
* :mod:`repro.sim` — cycle-approximate event engine and memory-system
  organizations under comparison.
* :mod:`repro.workloads` — the eight Table-2 applications as synthetic,
  seed-deterministic workloads.
* :mod:`repro.bench` — harness regenerating every evaluation table/figure.

Quickstart::

    from repro import build_workload, compare_systems

    workload = build_workload("scan", scale=0.25)
    results = compare_systems(workload)
    base = results["stream"].makespan
    for name, run in results.items():
        print(name, base / run.makespan)
"""

from repro.bench.runner import SYSTEMS, build_memsys, compare_systems, run_workload
from repro.core.descriptors import (
    BranchDescriptor,
    CompositeDescriptor,
    LevelDescriptor,
    NodeDescriptor,
)
from repro.core.ix_cache import IXCache
from repro.core.metal import Metal, MetalIX
from repro.indexes.bplustree import BPlusTree
from repro.params import CacheParams, DRAMParams, SimParams
from repro.sim.metrics import RunResult, WalkRequest, simulate
from repro.workloads.suite import Workload, build_workload

__version__ = "1.0.0"

__all__ = [
    "BPlusTree",
    "BranchDescriptor",
    "build_memsys",
    "build_workload",
    "CacheParams",
    "compare_systems",
    "CompositeDescriptor",
    "DRAMParams",
    "IXCache",
    "LevelDescriptor",
    "Metal",
    "MetalIX",
    "NodeDescriptor",
    "RunResult",
    "run_workload",
    "SimParams",
    "simulate",
    "SYSTEMS",
    "WalkRequest",
    "Workload",
    "__version__",
]
