"""dbworkload-style run modes over the exec + serve layers.

Three drivers, mirroring the run modes of cockroachdb/dbworkload (the
exemplar CLI for paper-style load studies):

* :func:`find_max_rate` (``--max-rate``) — binary-search the offered-load
  multiplier for the highest rate the fleet sustains (utilization and
  optional p99-SLO bounds), one :class:`~repro.serve.spec.ServeSpec`
  probe per step.
* :func:`run_schedule` (``--schedule``) — ramp/step offered-load
  profiles, one serve cell per phase.
* :func:`replay_trace` (``pipe``) — replay a captured walk trace
  (``trace_io`` JSONL, gzip ok) through any memory system via a
  :class:`~repro.exec.spec.RunSpec`.

Every probe/phase is an ordinary frozen spec submitted through the
:class:`~repro.exec.executor.Executor`, so results dedup, parallelize,
and land in the content-addressed store like any bench cell. The drivers
themselves are deterministic arithmetic over spec payloads — re-running
a mode with the same arguments emits the same spec digests and is served
entirely from the warm cache (``tests/test_modes.py`` pins this).

Probe loads are quantized to 6 significant digits before entering a
spec: the digest must not depend on float noise in the bisection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exec import Executor, default_executor
from repro.exec.spec import RunSpec, trace_digest
from repro.serve.spec import ServeSpec

#: Bisection steps after the initial bracket probes; 7 steps resolve the
#: load multiplier to under 1% of the bracket width.
DEFAULT_ITERS = 7
#: A probe is "sustainable" when mean tile utilization stays below this.
DEFAULT_MAX_UTIL = 0.9


def _q6(value: float) -> float:
    """Quantize to 6 significant digits (stable spec-digest floats)."""
    return float(f"{value:.6g}")


def _serve_spec(
    workload: str,
    system: str,
    load: float,
    scale: float,
    seed: int,
    users: int,
    tiles: int,
    requests_per_min: float,
    duration_ms: int,
    balancer: str,
) -> ServeSpec:
    return ServeSpec.make(
        workload, system=system, scale=scale, seed=seed, users=users,
        requests_per_min=requests_per_min, load=load,
        duration_ms=duration_ms, tiles=tiles, balancer=balancer,
    )


@dataclass
class ProbePoint:
    """One evaluated offered-load multiplier."""

    load: float
    offered: int
    throughput_rps: float
    p99_ns: int
    utilization: float
    sustainable: bool

    @classmethod
    def from_payload(
        cls, load: float, data: dict[str, Any],
        max_util: float, slo_p99_ns: int | None,
    ) -> "ProbePoint":
        p99 = int(data["latency_ns"]["p99"])
        util = float(data["utilization"])
        ok = util <= max_util and (slo_p99_ns is None or p99 <= slo_p99_ns)
        return cls(
            load=load,
            offered=int(data["offered"]),
            throughput_rps=float(data["throughput_rps"]),
            p99_ns=p99,
            utilization=util,
            sustainable=ok,
        )

    def to_dict(self) -> dict[str, Any]:
        return dict(vars(self))


@dataclass
class MaxRateResult:
    """Outcome of a ``--max-rate`` search."""

    workload: str
    system: str
    scale: float
    seed: int
    users: int
    tiles: int
    requests_per_min: float
    max_util: float
    slo_p99_ns: int | None
    #: Highest sustainable load multiplier found (None: even the lower
    #: bracket violated the bounds).
    max_load: float | None
    #: Aggregate sustained request rate at ``max_load`` (requests/sec,
    #: offered: users x rpm x load / 60).
    max_rate_rps: float | None
    #: Measured throughput at ``max_load``.
    throughput_rps: float | None
    probes: list[ProbePoint] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        data = {k: v for k, v in vars(self).items() if k != "probes"}
        data["probes"] = [p.to_dict() for p in self.probes]
        return data


def find_max_rate(
    workload: str = "scan",
    system: str = "metal",
    scale: float = 0.05,
    seed: int = 0,
    users: int = 32,
    tiles: int = 4,
    requests_per_min: float | None = None,
    duration_ms: int = 5,
    balancer: str = "round_robin",
    lo: float = 0.1,
    hi: float = 2.0,
    iters: int = DEFAULT_ITERS,
    max_util: float = DEFAULT_MAX_UTIL,
    slo_p99_ns: int | None = None,
    executor: Executor | None = None,
) -> MaxRateResult:
    """Binary-search the throughput ceiling of a serving topology.

    Brackets ``[lo, hi]`` in offered-load multipliers, probes both ends,
    then bisects ``iters`` times toward the highest load whose mean tile
    utilization stays within ``max_util`` (and p99 within ``slo_p99_ns``
    when given). With the default calibrated rate, ``load=1.0`` is the
    queueing-theory capacity, so the ceiling lands just below it.
    """
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    executor = executor or default_executor()
    if requests_per_min is None:
        from repro.bench.serve import calibrated_rpm

        requests_per_min = calibrated_rpm(
            workload, system, scale, seed, users, tiles)

    probes: list[ProbePoint] = []

    def probe(load: float) -> ProbePoint:
        load = _q6(load)
        spec = _serve_spec(
            workload, system, load, scale, seed, users, tiles,
            requests_per_min, duration_ms, balancer,
        )
        data = executor.run([spec])[0].check().data
        point = ProbePoint.from_payload(load, data, max_util, slo_p99_ns)
        probes.append(point)
        return point

    lo_point = probe(lo)
    hi_point = probe(hi)
    if not lo_point.sustainable:
        best = None
    elif hi_point.sustainable:
        best = hi_point
    else:
        best = lo_point
        left, right = lo_point.load, hi_point.load
        for _ in range(iters):
            mid = _q6((left + right) / 2)
            if mid in (left, right):
                break
            point = probe(mid)
            if point.sustainable:
                best, left = point, mid
            else:
                right = mid
    return MaxRateResult(
        workload=workload, system=system, scale=scale, seed=seed,
        users=users, tiles=tiles, requests_per_min=requests_per_min,
        max_util=max_util, slo_p99_ns=slo_p99_ns,
        max_load=best.load if best else None,
        max_rate_rps=(
            _q6(users * requests_per_min * best.load / 60.0) if best else None
        ),
        throughput_rps=best.throughput_rps if best else None,
        probes=probes,
    )


# --------------------------------------------------------------------- #
# Schedules
# --------------------------------------------------------------------- #

def parse_schedule(profile: str) -> tuple[float, ...]:
    """Offered-load phases from a profile string.

    ``ramp:<lo>:<hi>:<n>`` — n loads evenly spaced from lo to hi;
    ``step:<l1>,<l2>,...`` — the listed loads in order.
    """
    kind, _, rest = profile.partition(":")
    try:
        if kind == "ramp":
            lo_s, hi_s, n_s = rest.split(":")
            lo, hi, n = float(lo_s), float(hi_s), int(n_s)
            if n < 2:
                raise ValueError("ramp needs n >= 2")
            return tuple(
                _q6(lo + (hi - lo) * i / (n - 1)) for i in range(n)
            )
        if kind == "step":
            loads = tuple(_q6(float(x)) for x in rest.split(","))
            if not loads:
                raise ValueError("step needs at least one load")
            return loads
    except ValueError as err:
        raise ValueError(f"bad schedule profile {profile!r}: {err}") from None
    raise ValueError(
        f"bad schedule profile {profile!r}: expected 'ramp:lo:hi:n' or "
        "'step:l1,l2,...'"
    )


@dataclass
class SchedulePhase:
    """One phase of an offered-load schedule."""

    phase: int
    load: float
    offered: int
    completed: int
    throughput_rps: float
    p50_ns: int
    p99_ns: int
    utilization: float

    @classmethod
    def from_payload(cls, phase: int, load: float, data: dict[str, Any]) -> "SchedulePhase":
        lat = data["latency_ns"]
        return cls(
            phase=phase, load=load,
            offered=int(data["offered"]), completed=int(data["completed"]),
            throughput_rps=float(data["throughput_rps"]),
            p50_ns=int(lat["p50"]), p99_ns=int(lat["p99"]),
            utilization=float(data["utilization"]),
        )

    def to_dict(self) -> dict[str, Any]:
        return dict(vars(self))


@dataclass
class ScheduleResult:
    """Phase-by-phase outcome of a ``--schedule`` run."""

    workload: str
    system: str
    scale: float
    seed: int
    users: int
    tiles: int
    requests_per_min: float
    profile: str
    phases: list[SchedulePhase] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        data = {k: v for k, v in vars(self).items() if k != "phases"}
        data["phases"] = [p.to_dict() for p in self.phases]
        return data


def run_schedule(
    workload: str = "scan",
    system: str = "metal",
    profile: str = "ramp:0.2:1.2:6",
    scale: float = 0.05,
    seed: int = 0,
    users: int = 32,
    tiles: int = 4,
    requests_per_min: float | None = None,
    duration_ms: int = 5,
    balancer: str = "round_robin",
    executor: Executor | None = None,
) -> ScheduleResult:
    """Run an offered-load profile phase by phase.

    Each phase draws fresh arrivals (``seed + phase``), so a step profile
    that revisits a load still models a distinct interval of traffic;
    identical (load, phase) pairs across reruns hit the warm cache.
    """
    executor = executor or default_executor()
    if requests_per_min is None:
        from repro.bench.serve import calibrated_rpm

        requests_per_min = calibrated_rpm(
            workload, system, scale, seed, users, tiles)
    loads = parse_schedule(profile)
    specs = [
        _serve_spec(
            workload, system, load, scale, seed + phase, users, tiles,
            requests_per_min, duration_ms, balancer,
        )
        for phase, load in enumerate(loads)
    ]
    outcomes = executor.run(specs)
    result = ScheduleResult(
        workload=workload, system=system, scale=scale, seed=seed,
        users=users, tiles=tiles, requests_per_min=requests_per_min,
        profile=profile,
    )
    result.phases = [
        SchedulePhase.from_payload(phase, load, outcome.check().data)
        for phase, (load, outcome) in enumerate(zip(loads, outcomes))
    ]
    return result


# --------------------------------------------------------------------- #
# Trace pipe replay
# --------------------------------------------------------------------- #

def replay_trace(
    workload: str,
    trace_path: str | Path,
    system: str = "metal",
    scale: float = 0.25,
    seed: int = 0,
    executor: Executor | None = None,
    **spec_kwargs: Any,
) -> dict[str, Any]:
    """Replay a captured walk trace through one memory system.

    Builds the named workload for its index substrate, re-binds the
    trace's ``index0, index1, ...`` names to it, and simulates the
    trace's request sequence instead of the workload's own. Returns the
    run payload (``{"op": "run", "result": ..., "extras": ...}``). The
    spec carries the trace's content hash, so cached results are keyed
    by trace bytes.
    """
    executor = executor or default_executor()
    spec = RunSpec.make(
        workload, system, scale=scale, seed=seed,
        trace_path=str(trace_path), trace_sha256=trace_digest(trace_path),
        **spec_kwargs,
    )
    return executor.run([spec])[0].check().payload


# --------------------------------------------------------------------- #
# Formatting
# --------------------------------------------------------------------- #

def format_max_rate(result: MaxRateResult) -> str:
    """Probe table + verdict, ready to print."""
    from repro.bench.format import render_table

    rows = [
        [
            f"{p.load:g}", p.offered, f"{p.throughput_rps / 1e6:.3f}M",
            round(p.p99_ns / 1e3, 1), f"{p.utilization * 100:.1f}%",
            "yes" if p.sustainable else "no",
        ]
        for p in sorted(result.probes, key=lambda p: p.load)
    ]
    table = render_table(
        ["load", "offered", "thr rps", "p99 us", "util", "sustainable"], rows
    )
    if result.max_load is None:
        verdict = (
            f"no sustainable load in bracket (util bound "
            f"{result.max_util:.0%} violated at the lower edge)"
        )
    else:
        verdict = (
            f"max sustainable load {result.max_load:g} "
            f"(~{result.max_rate_rps:,.0f} req/s offered, "
            f"{result.throughput_rps / 1e6:.3f}M rps completed)"
        )
    return f"{table}\n{verdict}"


def format_schedule(result: ScheduleResult) -> str:
    """Phase table for a schedule run, ready to print."""
    from repro.bench.format import render_table

    rows = [
        [
            p.phase, f"{p.load:g}", p.offered, p.completed,
            f"{p.throughput_rps / 1e6:.3f}M",
            round(p.p50_ns / 1e3, 1), round(p.p99_ns / 1e3, 1),
            f"{p.utilization * 100:.1f}%",
        ]
        for p in result.phases
    ]
    return render_table(
        ["phase", "load", "offered", "done", "thr rps", "p50 us", "p99 us", "util"],
        rows,
    )


__all__ = [
    "DEFAULT_ITERS",
    "DEFAULT_MAX_UTIL",
    "MaxRateResult",
    "ProbePoint",
    "SchedulePhase",
    "ScheduleResult",
    "find_max_rate",
    "format_max_rate",
    "format_schedule",
    "parse_schedule",
    "replay_trace",
    "run_schedule",
]
