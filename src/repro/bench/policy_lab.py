"""Policy lab — replacement policies x workloads, hit-rate vs tag-energy.

The IX-cache's utility-RRIP policy is one point in a design space; this
lab sweeps every registered :mod:`repro.core.policy` implementation (plus
an auto-tuned variant of the default) across METAL workloads and reports
the two axes the tag-store design trades off:

* **hit rate** — what the policy buys;
* **tag energy** — what its metadata costs. Each policy declares its
  per-entry tag width (4-bit utility counters vs 32-bit LRU timestamps
  vs 2-bit multi-step classes), and every probe reads ``ways`` tags
  while every hit/insert writes one back.

Cells run through the exec pipeline (``RunSpec.policy`` /
``RunSpec.tuner``), so they dedup, parallelize, and cache exactly like
report cells. The per-workload Pareto front answers the design question
directly: a policy off the front is dominated — some other policy hits
at least as often for no more tag energy.

``BENCH_policy.json`` stores the sweep's key metrics with a relative
tolerance, same discipline as the other BENCH gates; ``--check`` exits
2 when the baseline is missing and 3 on regression.
"""

from __future__ import annotations

import argparse
import json
from typing import Any

from repro.bench.format import render_table
from repro.bench.runner import cache_params_for
from repro.core.policy import POLICIES, make_policy, tag_energy_fj
from repro.exec.executor import Executor
from repro.exec.spec import RunSpec

BASELINE_SCHEMA = "policy-lab/1"
BASELINE_DEFAULT_RTOL = 0.05
BASELINE_DEFAULT_PATH = "BENCH_policy.json"
EXIT_BASELINE_MISSING = 2
EXIT_REGRESSION = 3

#: The tuned variant's cell label: default policy + online threshold tuner.
TUNED_LABEL = "utility_rrip+tuned"

#: Deterministic tuner config for the lab's tuned cells.
TUNER_CONFIG = {"low_churn": 0.25, "high_churn": 0.75, "step": 1}

DEFAULT_WORKLOADS = ("scan", "select", "sets_s", "rtree")
DEFAULT_SYSTEM = "metal"


def _cell_metrics(result_dict: dict[str, Any], tag_bits: int, ways: int) -> dict:
    cache = result_dict["cache"]
    accesses = cache["accesses"]
    hits = cache["hits"]
    return {
        "hit_rate": (hits / accesses) if accesses else 0.0,
        "tag_energy_fj": tag_energy_fj(
            tag_bits, accesses, hits, cache["insertions"], ways=ways
        ),
        "tag_bits": tag_bits,
        "evictions": cache["evictions"],
        "insertions": cache["insertions"],
        "miss_rate": result_dict["miss_rate"],
        "makespan": result_dict["makespan"],
    }


def pareto_front(cells: dict[str, dict]) -> list[str]:
    """Labels on the (hit_rate up, tag_energy_fj down) Pareto front.

    A cell is dominated when another hits at least as often for no more
    tag energy, strictly better on at least one axis.
    """
    front = []
    for label, cell in cells.items():
        dominated = any(
            other["hit_rate"] >= cell["hit_rate"]
            and other["tag_energy_fj"] <= cell["tag_energy_fj"]
            and (
                other["hit_rate"] > cell["hit_rate"]
                or other["tag_energy_fj"] < cell["tag_energy_fj"]
            )
            for other_label, other in cells.items()
            if other_label != label
        )
        if not dominated:
            front.append(label)
    return sorted(front)


def sweep(
    policies: tuple[str, ...] = (),
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.01,
    seed: int = 0,
    jobs: int | str = 1,
    system: str = DEFAULT_SYSTEM,
    tuned: bool = True,
) -> dict[str, Any]:
    """Run the policies x workloads grid; returns the payload dict."""
    policies = tuple(policies) or tuple(sorted(POLICIES))
    cells: list[tuple[str, str, int]] = []  # (workload, label, tag_bits)
    specs: list[RunSpec] = []
    for workload in workloads:
        for name in policies:
            specs.append(RunSpec.make(
                workload, system, scale=scale, seed=seed, policy=name,
            ))
            cells.append((workload, name, make_policy(name).tag_bits))
        if tuned:
            specs.append(RunSpec.make(
                workload, system, scale=scale, seed=seed, tuner=TUNER_CONFIG,
            ))
            cells.append((workload, TUNED_LABEL, make_policy(None).tag_bits))

    executor = Executor(jobs=jobs)
    outcomes = executor.run(specs)
    ways = cache_params_for(system, 1).ways

    by_workload: dict[str, dict[str, dict]] = {w: {} for w in workloads}
    for (workload, label, tag_bits), outcome in zip(cells, outcomes):
        payload = outcome.check().payload
        by_workload[workload][label] = _cell_metrics(
            payload["result"], tag_bits, ways
        )

    pareto = {w: pareto_front(c) for w, c in by_workload.items()}
    default_dominated = sorted(
        w for w, front in pareto.items() if "utility_rrip" not in front
    )
    return {
        "schema": BASELINE_SCHEMA,
        "scale": scale,
        "seed": seed,
        "system": system,
        "policies": list(policies) + ([TUNED_LABEL] if tuned else []),
        "workloads": list(workloads),
        "cells": by_workload,
        "pareto": pareto,
        "default_dominated_on": default_dominated,
    }


def render(payload: dict[str, Any]) -> str:
    lines = []
    for workload in payload["workloads"]:
        cells = payload["cells"][workload]
        front = set(payload["pareto"][workload])
        rows = [
            [
                label,
                cell["tag_bits"],
                cell["hit_rate"],
                cell["tag_energy_fj"] / 1e6,  # -> nJ, readable magnitudes
                cell["evictions"],
                "*" if label in front else "",
            ]
            for label, cell in sorted(
                cells.items(), key=lambda kv: -kv[1]["hit_rate"]
            )
        ]
        lines.append(render_table(
            ["policy", "tag_bits", "hit_rate", "tag_energy_nJ",
             "evictions", "pareto"],
            rows,
            title=f"{workload} @ scale {payload['scale']:g} ({payload['system']})",
        ))
        lines.append("")
    if payload["default_dominated_on"]:
        lines.append(
            "utility_rrip off the Pareto front on: "
            + ", ".join(payload["default_dominated_on"])
        )
    else:
        lines.append("utility_rrip on the Pareto front for every workload")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Baseline gate (same write/compare discipline as bench.report)
# --------------------------------------------------------------------- #


def extract_key_metrics(payload: dict[str, Any]) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for workload, cells in sorted(payload["cells"].items()):
        for label, cell in sorted(cells.items()):
            prefix = f"policy.{workload}.{label}"
            metrics[f"{prefix}.hit_rate"] = cell["hit_rate"]
            metrics[f"{prefix}.tag_energy_fj"] = cell["tag_energy_fj"]
    return metrics


def write_baseline(path: str, payload: dict[str, Any], rtol: float) -> dict:
    baseline = {
        "schema": BASELINE_SCHEMA,
        "scale": payload["scale"],
        "system": payload["system"],
        "rtol": rtol,
        "metrics": extract_key_metrics(payload),
    }
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    return baseline


def compare_baseline(
    baseline: dict, payload: dict[str, Any], rtol: float | None = None
) -> tuple[list[str], list[str]]:
    """(regressions, notes) — same contract as bench.report's gate."""
    tol = rtol if rtol is not None else baseline.get("rtol", BASELINE_DEFAULT_RTOL)
    expected: dict[str, float] = baseline.get("metrics", {})
    actual = extract_key_metrics(payload)
    regressions: list[str] = []
    notes: list[str] = []
    if baseline.get("scale") != payload.get("scale"):
        regressions.append(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"run {payload.get('scale')}"
        )
        return regressions, notes
    covered_workloads = set(payload.get("workloads", ()))
    covered_policies = set(payload.get("policies", ()))
    for name, want in sorted(expected.items()):
        if name not in actual:
            # A subset sweep (CI smoke) only answers for the cells it ran:
            # baseline cells outside the run's grid are not regressions.
            _, workload, label, _ = name.split(".", 3)
            if workload not in covered_workloads or label not in covered_policies:
                continue
            regressions.append(f"{name}: missing from run (baseline {want:.6g})")
            continue
        got = actual[name]
        rel = abs(got - want) / max(abs(want), 1e-12)
        if rel > tol:
            regressions.append(
                f"{name}: {got:.6g} vs baseline {want:.6g} "
                f"({rel * 100:+.1f}% > {tol * 100:.1f}% tolerance)"
            )
    for name in sorted(set(actual) - set(expected)):
        notes.append(f"{name}: new metric {actual[name]:.6g} (not in baseline)")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro policy",
        description="Sweep IX-cache replacement policies (hit-rate vs tag-energy)",
    )
    parser.add_argument("--policies", default="",
                        help="comma list; default = every registered policy")
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS))
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", default="1")
    parser.add_argument("--system", default=DEFAULT_SYSTEM,
                        choices=("metal", "metal_ix"))
    parser.add_argument("--no-tuned", action="store_true",
                        help="skip the auto-tuned default-policy cells")
    parser.add_argument("--json", action="store_true",
                        help="emit the payload as JSON instead of tables")
    parser.add_argument("--baseline", default=BASELINE_DEFAULT_PATH)
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument("--check", action="store_true",
                        help="compare against --baseline; exit 2 missing, 3 regressed")
    parser.add_argument("--baseline-rtol", type=float, default=None)
    args = parser.parse_args(argv)

    policies = tuple(p for p in args.policies.split(",") if p)
    workloads = tuple(w for w in args.workloads.split(",") if w)
    payload = sweep(
        policies=policies,
        workloads=workloads,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        system=args.system,
        tuned=not args.no_tuned,
    )

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render(payload))

    if args.write_baseline:
        rtol = args.baseline_rtol if args.baseline_rtol is not None \
            else BASELINE_DEFAULT_RTOL
        write_baseline(args.baseline, payload, rtol)
        print(f"baseline written to {args.baseline} (rtol {rtol})")
        return 0
    if args.check:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            print(f"baseline {args.baseline} missing; run --write-baseline first")
            return EXIT_BASELINE_MISSING
        regressions, notes = compare_baseline(
            baseline, payload, rtol=args.baseline_rtol
        )
        for note in notes:
            print(f"note: {note}")
        if regressions:
            print(f"{len(regressions)} policy metric(s) regressed:")
            for regression in regressions:
                print(f"  {regression}")
            return EXIT_REGRESSION
        compared = len(
            set(baseline.get("metrics", {})) & set(extract_key_metrics(payload))
        )
        print(f"policy gate ok: {compared} metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
