"""Byte-identity gate for the vectorized batch core.

The vectorized backends — the bucket-queue calendar engine
(``SimParams.engine="bucket"``), batched walk generation
(``SimParams.walk_batch > 0``), and the array DRAM decomposition they
ride on — are pure performance substitutions: every ``RunResult`` they
produce must serialize byte-for-byte identically to the scalar
heap-engine, walk-at-a-time path. This module sweeps that claim across
every memory system and a set of workloads and exits non-zero on the
first divergence, so CI can hold the gate.

Run as a module::

    python -m repro.bench.vector_check --scale 0.01 --workloads scan,select

Exit codes follow ``repro.perf.harness``: 0 all identical, 3 on any
mismatch (the checksum-mismatch code — a byte divergence is a behaviour
change, never a timing artifact).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import replace
from typing import Any, Iterable

from repro.bench.runner import SYSTEMS, run_workload
from repro.workloads.suite import build_workload

#: Exit code on divergence (mirrors harness.EXIT_CHECKSUM_MISMATCH).
EXIT_MISMATCH = 3

#: The vectorized configurations checked against the scalar reference.
#: Each is a dict of SimParams overrides applied via dataclasses.replace.
VARIANTS: tuple[tuple[str, dict[str, Any]], ...] = (
    ("bucket", {"engine": "bucket"}),
    ("batch", {"walk_batch": 256}),
    ("both", {"engine": "bucket", "walk_batch": 256}),
)

#: Index storage backends the sweep covers. The SoA backend is where the
#: batched walk path engages; the object backend must stay identical too
#: (it falls back to scalar walks under walk_batch).
BACKENDS: tuple[str, ...] = ("soa", "object")


def canonical(result: Any) -> str:
    """The byte string compared: canonical JSON of RunResult.to_dict()."""
    return json.dumps(result.to_dict(), sort_keys=True)


def check_cell(
    workload_name: str, backend: str, system: str, scale: float,
) -> list[str]:
    """Compare every vectorized variant of one (workload, system) cell.

    Returns a list of mismatch descriptions (empty = identical).
    """
    workload = build_workload(workload_name, scale=scale, backend=backend)
    base_sim = workload.config.sim_params()
    reference = canonical(run_workload(workload, system, sim=base_sim))
    mismatches = []
    for label, overrides in VARIANTS:
        got = canonical(
            run_workload(workload, system, sim=replace(base_sim, **overrides))
        )
        if got != reference:
            detail = diff_keys(reference, got)
            mismatches.append(
                f"{workload_name}/{backend}/{system}/{label}: {detail}"
            )
    return mismatches


def diff_keys(ref_js: str, got_js: str) -> str:
    """Name the top-level RunResult fields that diverged."""
    ref = json.loads(ref_js)
    got = json.loads(got_js)
    keys = [k for k in ref if ref[k] != got.get(k)]
    keys += [k for k in got if k not in ref]
    return "diverged fields: " + ", ".join(sorted(set(keys)))


def run_matrix(
    scales: Iterable[float],
    workloads: Iterable[str],
    systems: Iterable[str] = SYSTEMS,
    verbose: bool = True,
) -> list[str]:
    """Sweep the full matrix; returns all mismatch descriptions."""
    failures: list[str] = []
    for scale in scales:
        for workload_name in workloads:
            for backend in BACKENDS:
                for system in systems:
                    bad = check_cell(workload_name, backend, system, scale)
                    failures.extend(
                        f"scale={scale} {line}" for line in bad
                    )
                    if verbose:
                        status = "MISMATCH" if bad else "ok"
                        print(f"{status} scale={scale} {workload_name}/"
                              f"{backend}/{system}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar vs vectorized byte-identity matrix",
    )
    parser.add_argument("--scales", default="0.01",
                        help="comma-separated workload scales")
    parser.add_argument("--workloads", default="scan,select",
                        help="comma-separated workload names")
    parser.add_argument("--systems", default=",".join(SYSTEMS),
                        help="comma-separated memory systems")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the verdict")
    args = parser.parse_args(argv)
    failures = run_matrix(
        scales=[float(s) for s in args.scales.split(",") if s],
        workloads=[w for w in args.workloads.split(",") if w],
        systems=[s for s in args.systems.split(",") if s],
        verbose=not args.quiet,
    )
    if failures:
        print(f"FAIL: {len(failures)} vectorized cells diverged")
        for line in failures:
            print(f"  {line}")
        return EXIT_MISMATCH
    print("ALL OK: vectorized backends byte-identical to scalar")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
