"""Saturation curves: SLO latency vs offered load for the serving layer.

Sweeps the :class:`~repro.serve.spec.ServeSpec` ``load`` multiplier over
one client -> balancer -> N-tile topology and reports the open-loop
serving metrics — offered/completed requests, throughput, p50/p90/p99
end-to-end latency, mean tile utilization — plus the **saturation knee**:
the first swept load whose p99 exceeds :data:`KNEE_FACTOR` times the p99
at the lightest load. Below the knee the service is latency-flat; past
it, queueing dominates and the tail blows up (the M/D/1 oracle tests pin
this behaviour against closed form).

By default the sweep is *calibrated*: ``load=1.0`` is sized to the
fleet's measured capacity (``tiles / mean service time``), so the knee
lands in the same place regardless of workload, scale, or tile count.

Serve cells are ordinary spec submissions, so they flow through the exec
layer's dedup, process pool, and content-addressed cache unchanged. The
curve also serializes to a committed baseline (``BENCH_serve.json``)
that CI gates on, mirroring the perf-suite checksum gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field, replace
from typing import Any

from repro.bench.format import render_table
from repro.exec import Executor, default_executor
from repro.serve.spec import ServeSpec

#: The swept offered-load multipliers (1.0 = calibrated fleet capacity).
DEFAULT_LOADS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.3)

#: A load is past the knee when its p99 exceeds this factor times the
#: p99 at the lightest swept load.
KNEE_FACTOR = 3.0

#: Baseline-gate exit codes (mirror repro.perf.harness).
EXIT_BASELINE_MISSING = 2
EXIT_REGRESSED = 3

#: Relative tolerance for baseline float/percentile comparison. The
#: simulation is deterministic, but percentiles quantize (2^-7 buckets)
#: and throughput divides by the makespan, so a loose-but-meaningful
#: band beats bitwise fragility across platforms.
BASELINE_RTOL = 0.05


@dataclass
class ServePoint:
    """One swept load: SLO metrics distilled from a ServeResult payload."""

    load: float
    users: int
    offered: int
    completed: int
    throughput_rps: float
    mean_ns: float
    p50: int
    p90: int
    p99: int
    tile_wait_p99: int
    utilization: float

    @classmethod
    def from_payload(cls, load: float, data: dict[str, Any]) -> "ServePoint":
        lat = data["latency_ns"]
        return cls(
            load=load,
            users=data["users"],
            offered=data["offered"],
            completed=data["completed"],
            throughput_rps=data["throughput_rps"],
            mean_ns=lat["mean"],
            p50=lat["p50"],
            p90=lat["p90"],
            p99=lat["p99"],
            tile_wait_p99=data["tile_wait_ns"]["p99"],
            utilization=data["utilization"],
        )


@dataclass
class ServeCurve:
    """A full load sweep for one serving topology."""

    workload: str
    system: str
    scale: float
    seed: int
    users: int
    tiles: int
    balancer: str
    requests_per_min: float
    duration_ms: int
    points: list[ServePoint] = field(default_factory=list)
    #: Raw ServeResult payload dicts per point (``keep_results=True``) —
    #: the SLO evaluator and span analyses read these; the committed
    #: baseline never includes them.
    results: list[dict[str, Any]] | None = None

    def knee(self, factor: float = KNEE_FACTOR) -> float | None:
        """First swept load past the knee, or None if the sweep never
        saturates."""
        if not self.points:
            return None
        base = max(1, self.points[0].p99)
        for point in self.points[1:]:
            if point.p99 > factor * base:
                return point.load
        return None


def serve_spec(
    workload: str,
    system: str,
    load: float,
    scale: float,
    seed: int = 0,
    users: int = 32,
    tiles: int = 4,
    balancer: str = "round_robin",
    requests_per_min: float = 60.0,
    duration_ms: int = 5,
    tile_speedups: tuple[float, ...] = (),
    trace: bool = False,
) -> ServeSpec:
    """The ServeSpec for one swept point."""
    return ServeSpec.make(
        workload, system=system, scale=scale, seed=seed, users=users,
        requests_per_min=requests_per_min, load=load, duration_ms=duration_ms,
        tiles=tiles, balancer=balancer, tile_speedups=tile_speedups,
        trace=trace,
    )


def calibrated_rpm(
    workload: str,
    system: str,
    scale: float,
    seed: int,
    users: int,
    tiles: int,
) -> float:
    """Per-user requests/min at which ``load=1.0`` saturates the fleet.

    ``tiles / mean_service`` is the aggregate service capacity; divided
    across the mean population it gives the per-user rate. Rounded to 6
    significant digits so the value embeds stably in spec digests.
    """
    from repro.sim.tile_backend import build_service_model

    model = build_service_model(workload, system, scale, seed, tiles)
    rpm = tiles * 60e9 / (model.mean_ns * users)
    return float(f"{rpm:.6g}")


def run_serve_sweep(
    workload: str = "scan",
    system: str = "metal",
    loads: tuple[float, ...] = DEFAULT_LOADS,
    scale: float = 0.05,
    seed: int = 0,
    users: int = 32,
    tiles: int = 4,
    balancer: str = "round_robin",
    duration_ms: int = 5,
    requests_per_min: float | None = None,
    tile_speedups: tuple[float, ...] = (),
    executor: Executor | None = None,
    trace: bool = False,
    keep_results: bool = False,
) -> ServeCurve:
    """Sweep offered load and collect one saturation curve.

    ``requests_per_min=None`` calibrates the rate to the fleet capacity
    (see :func:`calibrated_rpm`). ``trace=True`` records request span
    trees at every point; ``keep_results=True`` (implied by ``trace``)
    keeps the raw payload dicts on ``curve.results`` for the SLO and
    span analyses.
    """
    executor = executor or default_executor()
    if requests_per_min is None:
        requests_per_min = calibrated_rpm(
            workload, system, scale, seed, users, tiles)
    specs = [
        serve_spec(workload, system, load, scale, seed=seed, users=users,
                   tiles=tiles, balancer=balancer,
                   requests_per_min=requests_per_min,
                   duration_ms=duration_ms, tile_speedups=tile_speedups,
                   trace=trace)
        for load in loads
    ]
    outcomes = executor.run(specs)
    curve = ServeCurve(
        workload=workload, system=system, scale=scale, seed=seed,
        users=users, tiles=tiles, balancer=balancer,
        requests_per_min=requests_per_min, duration_ms=duration_ms,
    )
    data = [outcome.check().data for outcome in outcomes]
    curve.points = [
        ServePoint.from_payload(load, payload)
        for load, payload in zip(loads, data)
    ]
    if keep_results or trace:
        curve.results = data
    return curve


def format_serve(curve: ServeCurve) -> str:
    """Saturation-curve table, ready to print."""
    knee = curve.knee()
    rows = []
    for point in curve.points:
        rows.append([
            point.load,
            point.offered,
            f"{point.throughput_rps / 1e6:.3f}M",
            round(point.mean_ns / 1e3, 1),
            round(point.p50 / 1e3, 1),
            round(point.p90 / 1e3, 1),
            round(point.p99 / 1e3, 1),
            round(point.tile_wait_p99 / 1e3, 1),
            f"{point.utilization * 100:.1f}%",
            "<-- knee" if knee is not None and point.load == knee else "",
        ])
    title = (
        f"Saturation curve ({curve.workload}/{curve.system}@{curve.scale:g}, "
        f"{curve.users} users x {curve.requests_per_min:.4g} req/min, "
        f"{curve.tiles} tiles, {curve.balancer}) — knee at "
        f"{'load ' + format(knee, 'g') if knee is not None else 'none found'}"
    )
    return render_table(
        ["load", "offered", "rps", "mean us", "p50 us", "p90 us",
         "p99 us", "tile wait p99 us", "util", ""],
        rows, title,
    )


# --------------------------------------------------------------------- #
# SLO attainment over a sweep (python -m repro serve --slo)
# --------------------------------------------------------------------- #

def slo_curve(curve: ServeCurve, objective) -> list:
    """Per-load :class:`~repro.serve.slo.SLOReport` from the sweep's
    latency histograms (needs ``keep_results=True``)."""
    from repro.obs.histogram import Histogram
    from repro.serve.slo import evaluate_histogram

    if curve.results is None:
        raise ValueError("slo_curve needs a sweep run with keep_results=True")
    return [
        evaluate_histogram(
            Histogram.from_state(data["latency_ns"]["state"]), objective)
        for data in curve.results
    ]


def format_slo(curve: ServeCurve, objective) -> str:
    """SLO attainment + error-budget burn table across the sweep."""
    reports = slo_curve(curve, objective)
    rows = []
    for point, report in zip(curve.points, reports):
        rows.append([
            point.load,
            report.total,
            report.bad,
            f"{report.attainment * 100:.3f}%",
            round(report.burn, 2),
            round(point.p99 / 1e3, 1),
            "" if report.met else "SLO MISS",
        ])
    return render_table(
        ["load", "requests", "violations", "attainment", "burn", "p99 us",
         ""],
        rows,
        f"SLO attainment ({objective.label()}) — burn 1.0 spends the error "
        f"budget exactly on schedule",
    )


# --------------------------------------------------------------------- #
# Span-overhead gate (CI serve-trace-overhead job)
# --------------------------------------------------------------------- #

#: Committed golden ServeResult payload (spans off, scale 0.01).
GOLDEN_PATH = "BENCH_serve_result.json"


def _golden_spec(golden: dict[str, Any]) -> ServeSpec:
    """Rebuild the golden's exact ServeSpec from its canonical form.

    Ignores canonical fields the current ServeSpec no longer has and
    lets new fields default, so goldens written before a spec gained a
    field (e.g. ``trace``) keep verifying.
    """
    from dataclasses import fields as dc_fields

    known = {f.name for f in dc_fields(ServeSpec)}
    kwargs = {k: v for k, v in golden["spec"].items()
              if k in known and k != "workload"}
    return ServeSpec.make(golden["spec"]["workload"], **kwargs)


def trace_overhead_check(
    golden_path: str = GOLDEN_PATH, scale: float | None = None,
) -> tuple[str, list[str]]:
    """Run the golden spec with spans off and on; report any drift.

    Three invariants, mirroring the sim engine's trace-overhead gate:

    1. the spans-off payload is byte-identical to the committed golden
       (observability changes may not move a single serving number),
    2. the traced payload minus its ``spans`` key is byte-identical to
       the spans-off payload (recording spans perturbs nothing), and
    3. the span log reconciles exactly — per-request hop sums equal
       end-to-end latencies and aggregate sums match the histograms.
    """
    from repro.obs.spans import reconcile_spans
    from repro.serve.engine import simulate_serve

    problems: list[str] = []
    lines: list[str] = []
    try:
        with open(golden_path) as f:
            golden = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return "", [f"golden {golden_path} unreadable: {exc}"]
    spec = _golden_spec(golden)
    if scale is not None and spec.scale != scale:
        problems.append(
            f"golden was written at scale {spec.scale:g}, not {scale:g}")
    off = simulate_serve(spec).to_dict()
    canon = lambda d: json.dumps(d, sort_keys=True)
    if canon(off) != canon(golden["result"]):
        problems.append(
            "spans-off ServeResult drifted from the committed golden "
            f"({golden_path}); if the serving engine changed on purpose, "
            "regenerate with python -m repro.bench.serve --write-golden")
    traced = simulate_serve(replace(spec, trace=True))
    on = traced.to_dict()
    spans = on.pop("spans", None)
    if spans is None:
        problems.append("traced run carried no span log")
    if canon(on) != canon(off):
        problems.append(
            "recording spans perturbed the ServeResult payload "
            "(traced-minus-spans != untraced)")
    if traced.spans is not None:
        problems.extend(reconcile_spans(traced.spans, traced))
    lines.append(
        f"{spec.label()}: {off['offered']} requests, spans "
        f"{'recorded' if spans else 'missing'} "
        f"({len(spans['requests']) if spans else 0} span trees)")
    if not problems:
        lines.append(
            "span overhead check: spans-off payload byte-identical to the "
            "committed golden; traced payload identical minus 'spans'; "
            "every span tree reconciles with its end-to-end latency")
    return "\n".join(lines), problems


def write_golden(golden_path: str = GOLDEN_PATH, scale: float = 0.01) -> None:
    """(Re)write the committed spans-off golden payload."""
    from repro.serve.engine import simulate_serve

    rpm = calibrated_rpm("scan", "metal", scale, 0, 32, 4)
    spec = ServeSpec.make(
        "scan", system="metal", scale=scale, seed=0, users=32,
        requests_per_min=rpm, load=1.0, duration_ms=3, tiles=4,
        balancer="round_robin",
    )
    golden = {"spec": spec.canonical_dict(),
              "result": simulate_serve(spec).to_dict()}
    with open(golden_path, "w") as f:
        json.dump(golden, f, indent=2, sort_keys=True)
        f.write("\n")


# --------------------------------------------------------------------- #
# Committed baseline (CI serve-smoke gate)
# --------------------------------------------------------------------- #

def curve_to_baseline(curve: ServeCurve) -> dict[str, Any]:
    """The JSON shape committed as ``BENCH_serve.json``."""
    return {
        "workload": curve.workload,
        "system": curve.system,
        "scale": curve.scale,
        "seed": curve.seed,
        "users": curve.users,
        "tiles": curve.tiles,
        "balancer": curve.balancer,
        "requests_per_min": curve.requests_per_min,
        "duration_ms": curve.duration_ms,
        "knee": curve.knee(),
        "rtol": BASELINE_RTOL,
        "points": [
            {
                "load": p.load,
                "offered": p.offered,
                "throughput_rps": p.throughput_rps,
                "p50": p.p50,
                "p90": p.p90,
                "p99": p.p99,
                "utilization": p.utilization,
            }
            for p in curve.points
        ],
    }


def _close(measured: float, expected: float, rtol: float) -> bool:
    return abs(measured - expected) <= rtol * max(abs(expected), 1e-12)


def check_serve_baseline(
    curve: ServeCurve, baseline: dict[str, Any],
    rtol: float | None = None,
) -> list[str]:
    """Compare a fresh sweep against a committed baseline.

    Returns human-readable problems; empty means every swept point's
    latency percentiles, throughput, and utilization sit within ``rtol``
    of the baseline and the knee landed on the same load.
    """
    problems: list[str] = []
    rtol = baseline.get("rtol", BASELINE_RTOL) if rtol is None else rtol
    for key in ("workload", "system", "scale", "seed", "users", "tiles",
                "balancer", "duration_ms"):
        mine = getattr(curve, key)
        theirs = baseline.get(key)
        if mine != theirs:
            problems.append(
                f"config mismatch: {key} is {mine!r}, baseline has {theirs!r}")
    if problems:
        return problems
    base_points = baseline.get("points", [])
    if len(base_points) != len(curve.points):
        return [f"baseline has {len(base_points)} points, "
                f"sweep has {len(curve.points)}"]
    for mine, theirs in zip(curve.points, base_points):
        if mine.load != theirs["load"]:
            problems.append(
                f"load grid drifted: {mine.load:g} vs {theirs['load']:g}")
            continue
        if mine.offered != theirs["offered"]:
            problems.append(
                f"load {mine.load:g}: offered {mine.offered} != "
                f"baseline {theirs['offered']} (arrival stream changed)")
        for key in ("p50", "p90", "p99", "throughput_rps", "utilization"):
            measured = getattr(mine, key)
            expected = theirs[key]
            if not _close(measured, expected, rtol):
                problems.append(
                    f"load {mine.load:g}: {key} {measured:g} outside "
                    f"{rtol:.0%} of baseline {expected:g}")
    knee = curve.knee()
    if knee != baseline.get("knee"):
        problems.append(
            f"saturation knee moved: {knee!r} vs baseline "
            f"{baseline.get('knee')!r}")
    return problems


def load_baseline(path: str) -> dict[str, Any] | None:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def write_baseline(curve: ServeCurve, path: str) -> None:
    with open(path, "w") as f:
        json.dump(curve_to_baseline(curve), f, indent=2, sort_keys=True)
        f.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--verify-trace-overhead", action="store_true",
                        help="only check the serving observability layer: "
                             "spans-off payload byte-identical to the "
                             "committed golden, traced payload identical "
                             "minus spans, span trees reconcile")
    parser.add_argument("--write-golden", action="store_true",
                        help="(re)write the committed spans-off golden "
                             "payload from the current engine")
    parser.add_argument("--golden", type=str, default=GOLDEN_PATH,
                        help=f"golden payload path (default {GOLDEN_PATH})")
    parser.add_argument("--scale", type=float, default=None,
                        help="expected golden scale (sanity check for "
                             "--verify-trace-overhead; the golden file "
                             "pins the actual spec)")
    args = parser.parse_args(argv)
    if args.write_golden:
        write_golden(args.golden, args.scale if args.scale else 0.01)
        print(f"serve golden written to {args.golden}")
        return 0
    if args.verify_trace_overhead:
        text, problems = trace_overhead_check(args.golden, args.scale)
        print(text)
        if problems:
            print("\nSPAN OVERHEAD CHECK FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        return 0
    for balancer in ("round_robin", "least_loaded"):
        print(format_serve(run_serve_sweep(balancer=balancer)))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
