"""Saturation curves: SLO latency vs offered load for the serving layer.

Sweeps the :class:`~repro.serve.spec.ServeSpec` ``load`` multiplier over
one client -> balancer -> N-tile topology and reports the open-loop
serving metrics — offered/completed requests, throughput, p50/p90/p99
end-to-end latency, mean tile utilization — plus the **saturation knee**:
the first swept load whose p99 exceeds :data:`KNEE_FACTOR` times the p99
at the lightest load. Below the knee the service is latency-flat; past
it, queueing dominates and the tail blows up (the M/D/1 oracle tests pin
this behaviour against closed form).

By default the sweep is *calibrated*: ``load=1.0`` is sized to the
fleet's measured capacity (``tiles / mean service time``), so the knee
lands in the same place regardless of workload, scale, or tile count.

Serve cells are ordinary spec submissions, so they flow through the exec
layer's dedup, process pool, and content-addressed cache unchanged. The
curve also serializes to a committed baseline (``BENCH_serve.json``)
that CI gates on, mirroring the perf-suite checksum gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.bench.format import render_table
from repro.exec import Executor, default_executor
from repro.serve.spec import ServeSpec

#: The swept offered-load multipliers (1.0 = calibrated fleet capacity).
DEFAULT_LOADS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.3)

#: A load is past the knee when its p99 exceeds this factor times the
#: p99 at the lightest swept load.
KNEE_FACTOR = 3.0

#: Baseline-gate exit codes (mirror repro.perf.harness).
EXIT_BASELINE_MISSING = 2
EXIT_REGRESSED = 3

#: Relative tolerance for baseline float/percentile comparison. The
#: simulation is deterministic, but percentiles quantize (2^-7 buckets)
#: and throughput divides by the makespan, so a loose-but-meaningful
#: band beats bitwise fragility across platforms.
BASELINE_RTOL = 0.05


@dataclass
class ServePoint:
    """One swept load: SLO metrics distilled from a ServeResult payload."""

    load: float
    users: int
    offered: int
    completed: int
    throughput_rps: float
    mean_ns: float
    p50: int
    p90: int
    p99: int
    tile_wait_p99: int
    utilization: float

    @classmethod
    def from_payload(cls, load: float, data: dict[str, Any]) -> "ServePoint":
        lat = data["latency_ns"]
        return cls(
            load=load,
            users=data["users"],
            offered=data["offered"],
            completed=data["completed"],
            throughput_rps=data["throughput_rps"],
            mean_ns=lat["mean"],
            p50=lat["p50"],
            p90=lat["p90"],
            p99=lat["p99"],
            tile_wait_p99=data["tile_wait_ns"]["p99"],
            utilization=data["utilization"],
        )


@dataclass
class ServeCurve:
    """A full load sweep for one serving topology."""

    workload: str
    system: str
    scale: float
    seed: int
    users: int
    tiles: int
    balancer: str
    requests_per_min: float
    duration_ms: int
    points: list[ServePoint] = field(default_factory=list)

    def knee(self, factor: float = KNEE_FACTOR) -> float | None:
        """First swept load past the knee, or None if the sweep never
        saturates."""
        if not self.points:
            return None
        base = max(1, self.points[0].p99)
        for point in self.points[1:]:
            if point.p99 > factor * base:
                return point.load
        return None


def serve_spec(
    workload: str,
    system: str,
    load: float,
    scale: float,
    seed: int = 0,
    users: int = 32,
    tiles: int = 4,
    balancer: str = "round_robin",
    requests_per_min: float = 60.0,
    duration_ms: int = 5,
    tile_speedups: tuple[float, ...] = (),
) -> ServeSpec:
    """The ServeSpec for one swept point."""
    return ServeSpec.make(
        workload, system=system, scale=scale, seed=seed, users=users,
        requests_per_min=requests_per_min, load=load, duration_ms=duration_ms,
        tiles=tiles, balancer=balancer, tile_speedups=tile_speedups,
    )


def calibrated_rpm(
    workload: str,
    system: str,
    scale: float,
    seed: int,
    users: int,
    tiles: int,
) -> float:
    """Per-user requests/min at which ``load=1.0`` saturates the fleet.

    ``tiles / mean_service`` is the aggregate service capacity; divided
    across the mean population it gives the per-user rate. Rounded to 6
    significant digits so the value embeds stably in spec digests.
    """
    from repro.sim.tile_backend import build_service_model

    model = build_service_model(workload, system, scale, seed, tiles)
    rpm = tiles * 60e9 / (model.mean_ns * users)
    return float(f"{rpm:.6g}")


def run_serve_sweep(
    workload: str = "scan",
    system: str = "metal",
    loads: tuple[float, ...] = DEFAULT_LOADS,
    scale: float = 0.05,
    seed: int = 0,
    users: int = 32,
    tiles: int = 4,
    balancer: str = "round_robin",
    duration_ms: int = 5,
    requests_per_min: float | None = None,
    tile_speedups: tuple[float, ...] = (),
    executor: Executor | None = None,
) -> ServeCurve:
    """Sweep offered load and collect one saturation curve.

    ``requests_per_min=None`` calibrates the rate to the fleet capacity
    (see :func:`calibrated_rpm`).
    """
    executor = executor or default_executor()
    if requests_per_min is None:
        requests_per_min = calibrated_rpm(
            workload, system, scale, seed, users, tiles)
    specs = [
        serve_spec(workload, system, load, scale, seed=seed, users=users,
                   tiles=tiles, balancer=balancer,
                   requests_per_min=requests_per_min,
                   duration_ms=duration_ms, tile_speedups=tile_speedups)
        for load in loads
    ]
    outcomes = executor.run(specs)
    curve = ServeCurve(
        workload=workload, system=system, scale=scale, seed=seed,
        users=users, tiles=tiles, balancer=balancer,
        requests_per_min=requests_per_min, duration_ms=duration_ms,
    )
    curve.points = [
        ServePoint.from_payload(load, outcome.check().data)
        for load, outcome in zip(loads, outcomes)
    ]
    return curve


def format_serve(curve: ServeCurve) -> str:
    """Saturation-curve table, ready to print."""
    knee = curve.knee()
    rows = []
    for point in curve.points:
        rows.append([
            point.load,
            point.offered,
            f"{point.throughput_rps / 1e6:.3f}M",
            round(point.mean_ns / 1e3, 1),
            round(point.p50 / 1e3, 1),
            round(point.p90 / 1e3, 1),
            round(point.p99 / 1e3, 1),
            round(point.tile_wait_p99 / 1e3, 1),
            f"{point.utilization * 100:.1f}%",
            "<-- knee" if knee is not None and point.load == knee else "",
        ])
    title = (
        f"Saturation curve ({curve.workload}/{curve.system}@{curve.scale:g}, "
        f"{curve.users} users x {curve.requests_per_min:.4g} req/min, "
        f"{curve.tiles} tiles, {curve.balancer}) — knee at "
        f"{'load ' + format(knee, 'g') if knee is not None else 'none found'}"
    )
    return render_table(
        ["load", "offered", "rps", "mean us", "p50 us", "p90 us",
         "p99 us", "tile wait p99 us", "util", ""],
        rows, title,
    )


# --------------------------------------------------------------------- #
# Committed baseline (CI serve-smoke gate)
# --------------------------------------------------------------------- #

def curve_to_baseline(curve: ServeCurve) -> dict[str, Any]:
    """The JSON shape committed as ``BENCH_serve.json``."""
    return {
        "workload": curve.workload,
        "system": curve.system,
        "scale": curve.scale,
        "seed": curve.seed,
        "users": curve.users,
        "tiles": curve.tiles,
        "balancer": curve.balancer,
        "requests_per_min": curve.requests_per_min,
        "duration_ms": curve.duration_ms,
        "knee": curve.knee(),
        "rtol": BASELINE_RTOL,
        "points": [
            {
                "load": p.load,
                "offered": p.offered,
                "throughput_rps": p.throughput_rps,
                "p50": p.p50,
                "p90": p.p90,
                "p99": p.p99,
                "utilization": p.utilization,
            }
            for p in curve.points
        ],
    }


def _close(measured: float, expected: float, rtol: float) -> bool:
    return abs(measured - expected) <= rtol * max(abs(expected), 1e-12)


def check_serve_baseline(
    curve: ServeCurve, baseline: dict[str, Any],
    rtol: float | None = None,
) -> list[str]:
    """Compare a fresh sweep against a committed baseline.

    Returns human-readable problems; empty means every swept point's
    latency percentiles, throughput, and utilization sit within ``rtol``
    of the baseline and the knee landed on the same load.
    """
    problems: list[str] = []
    rtol = baseline.get("rtol", BASELINE_RTOL) if rtol is None else rtol
    for key in ("workload", "system", "scale", "seed", "users", "tiles",
                "balancer", "duration_ms"):
        mine = getattr(curve, key)
        theirs = baseline.get(key)
        if mine != theirs:
            problems.append(
                f"config mismatch: {key} is {mine!r}, baseline has {theirs!r}")
    if problems:
        return problems
    base_points = baseline.get("points", [])
    if len(base_points) != len(curve.points):
        return [f"baseline has {len(base_points)} points, "
                f"sweep has {len(curve.points)}"]
    for mine, theirs in zip(curve.points, base_points):
        if mine.load != theirs["load"]:
            problems.append(
                f"load grid drifted: {mine.load:g} vs {theirs['load']:g}")
            continue
        if mine.offered != theirs["offered"]:
            problems.append(
                f"load {mine.load:g}: offered {mine.offered} != "
                f"baseline {theirs['offered']} (arrival stream changed)")
        for key in ("p50", "p90", "p99", "throughput_rps", "utilization"):
            measured = getattr(mine, key)
            expected = theirs[key]
            if not _close(measured, expected, rtol):
                problems.append(
                    f"load {mine.load:g}: {key} {measured:g} outside "
                    f"{rtol:.0%} of baseline {expected:g}")
    knee = curve.knee()
    if knee != baseline.get("knee"):
        problems.append(
            f"saturation knee moved: {knee!r} vs baseline "
            f"{baseline.get('knee')!r}")
    return problems


def load_baseline(path: str) -> dict[str, Any] | None:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def write_baseline(curve: ServeCurve, path: str) -> None:
    with open(path, "w") as f:
        json.dump(curve_to_baseline(curve), f, indent=2, sort_keys=True)
        f.write("\n")


def main() -> None:  # pragma: no cover
    for balancer in ("round_robin", "least_loaded"):
        print(format_serve(run_serve_sweep(balancer=balancer)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
