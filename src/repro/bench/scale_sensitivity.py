"""Scale sensitivity: do the paper's orderings hold as workloads grow?

The reproduction runs ~100x below paper scale; this experiment sweeps the
scale factor and tracks the headline orderings (METAL vs X-cache vs
address vs streaming). If an ordering flipped with scale, the reduced-
scale results would not be trustworthy — this is the evidence they are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.sim.metrics import RunResult

DEFAULT_SCALES = (0.1, 0.25, 0.5)
TRACKED = ("stream", "address", "xcache", "metal")


@dataclass
class ScalePoint:
    scale: float
    num_walks: int
    index_blocks: int
    speedups: dict[str, float] = field(default_factory=dict)
    metal_vs_xcache: float = 0.0

    @classmethod
    def from_runs(cls, scale: float, runs: dict[str, RunResult]) -> "ScalePoint":
        base = runs["stream"].makespan
        point = cls(
            scale=scale,
            num_walks=runs["stream"].num_walks,
            index_blocks=runs["stream"].total_index_blocks,
            speedups={k: base / max(1, r.makespan) for k, r in runs.items()},
        )
        point.metal_vs_xcache = (
            runs["xcache"].makespan / max(1, runs["metal"].makespan)
        )
        return point


def run_scale_sensitivity(
    workload_name: str = "scan",
    scales: tuple[float, ...] = DEFAULT_SCALES,
    executor: Executor | None = None,
) -> list[ScalePoint]:
    executor = executor or default_executor()
    specs = [
        RunSpec(workload=workload_name, system=kind, scale=scale)
        for scale in scales
        for kind in TRACKED
    ]
    folded = executor.run_results(specs)
    points = []
    for i, scale in enumerate(scales):
        runs = dict(zip(TRACKED, folded[i * len(TRACKED):(i + 1) * len(TRACKED)]))
        points.append(ScalePoint.from_runs(scale, runs))
    return points


def orderings_stable(points: list[ScalePoint]) -> bool:
    """True if METAL > X-cache > streaming holds at every scale."""
    for point in points:
        s = point.speedups
        if not (s["metal"] > s["xcache"] >= s["stream"]):
            return False
    return True


def format_scale_sensitivity(points: list[ScalePoint], workload: str) -> str:
    headers = ["scale", "walks", "index blocks", *TRACKED, "METAL/X-cache"]
    rows = [
        [p.scale, p.num_walks, p.index_blocks]
        + [p.speedups[k] for k in TRACKED]
        + [p.metal_vs_xcache]
        for p in points
    ]
    stable = "stable" if orderings_stable(points) else "UNSTABLE"
    return render_table(
        headers, rows,
        f"Scale sensitivity ({workload}) — orderings {stable} across scales",
    )


def main() -> None:  # pragma: no cover
    for name in ("scan", "join"):
        points = run_scale_sensitivity(name)
        print(format_scale_sensitivity(points, name))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
