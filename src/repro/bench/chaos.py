"""Resilience curves: performance vs injected fault rate (repro.faults).

Sweeps a uniform :class:`FaultPlan` rate over one (workload, system) cell
and reports how throughput and tail latency degrade as the whole fault
taxonomy — DRAM spikes and bank stalls, NoC bursts, transient walker
failures, tag corruption and invalidation storms — ramps up together.
The acceptance bar is *graceful degradation*: makespan grows monotonically
(within a small tolerance) with the fault rate and stays within a bounded
factor of the fault-free run at a 10% rate, while the resilience ledger
proves no request was lost (``walks_completed + walks_degraded ==
walks_total`` at every point).

Faulted cells are ordinary :class:`RunSpec` runs, so they flow through the
exec layer's dedup, process pool, and content-addressed cache unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.faults import FaultPlan
from repro.sim.metrics import RunResult

#: The swept per-opportunity fault rates (0.0 anchors the no-fault point).
DEFAULT_RATES = (0.0, 0.01, 0.02, 0.05, 0.1)

#: Tolerated non-monotonicity between adjacent points: retried injections
#: re-shuffle bank/row state, so schedules are not strictly nested across
#: rates and tiny makespan dips are physical, not regressions.
MONOTONE_TOLERANCE = 0.02

#: "Degrades, not collapses": makespan at the highest swept rate must stay
#: within this factor of the fault-free makespan.
COLLAPSE_FACTOR = 10.0


@dataclass
class ChaosPoint:
    """One swept fault rate: timing plus the resilience ledger."""

    rate: float
    makespan: int
    avg_walk_latency: float
    p99: int | None
    num_walks: int
    faults: dict[str, int] | None

    @classmethod
    def from_run(cls, rate: float, run: RunResult) -> "ChaosPoint":
        pct = run.latency_percentiles() or {}
        return cls(
            rate=rate,
            makespan=run.makespan,
            avg_walk_latency=run.avg_walk_latency,
            p99=pct.get("p99"),
            num_walks=run.num_walks,
            faults=run.faults,
        )

    @property
    def degraded_fraction(self) -> float:
        if not self.faults or not self.faults.get("walks_total"):
            return 0.0
        return self.faults["walks_degraded"] / self.faults["walks_total"]


@dataclass
class ChaosCurve:
    """A full rate sweep for one (workload, system) cell."""

    workload: str
    system: str
    scale: float
    seed: int
    plan_seed: int
    points: list[ChaosPoint] = field(default_factory=list)

    def slowdown(self, point: ChaosPoint) -> float:
        base = self.points[0].makespan if self.points else 0
        return point.makespan / base if base else 0.0


def chaos_spec(
    workload: str,
    system: str,
    rate: float,
    scale: float,
    seed: int = 0,
    plan_seed: int = 0,
) -> RunSpec:
    """The RunSpec for one swept point (fault-free when ``rate`` is 0)."""
    plan = FaultPlan.uniform(rate, seed=plan_seed)
    return RunSpec.make(
        workload, system, scale=scale, seed=seed, record_latencies=True,
        faults=() if plan.is_empty else plan,
    )


def run_chaos(
    workload: str = "scan",
    system: str = "metal",
    rates: tuple[float, ...] = DEFAULT_RATES,
    scale: float = 0.1,
    seed: int = 0,
    plan_seed: int = 0,
    executor: Executor | None = None,
) -> ChaosCurve:
    """Sweep the fault rate and collect one resilience curve."""
    executor = executor or default_executor()
    specs = [
        chaos_spec(workload, system, rate, scale, seed, plan_seed)
        for rate in rates
    ]
    runs = executor.run_results(specs)
    curve = ChaosCurve(workload, system, scale, seed, plan_seed)
    curve.points = [
        ChaosPoint.from_run(rate, run) for rate, run in zip(rates, runs)
    ]
    return curve


def check_graceful(
    curve: ChaosCurve,
    monotone_tolerance: float = MONOTONE_TOLERANCE,
    collapse_factor: float = COLLAPSE_FACTOR,
) -> list[str]:
    """Graceful-degradation and no-lost-request checks.

    Returns human-readable problems; empty means the curve degrades
    monotonically (within tolerance), never collapses, and accounts for
    every walk at every fault rate.
    """
    problems: list[str] = []
    if not curve.points:
        return ["empty curve"]
    for point in curve.points:
        if point.rate == 0.0:
            if point.faults is not None:
                problems.append(
                    "rate-0 point carries a fault ledger (should be the "
                    "byte-identical no-fault run)"
                )
            continue
        ledger = point.faults
        if ledger is None:
            problems.append(f"rate {point.rate:g}: no fault ledger")
            continue
        completed = ledger["walks_completed"] + ledger["walks_degraded"]
        if completed != ledger["walks_total"] or completed != point.num_walks:
            problems.append(
                f"rate {point.rate:g}: lost requests — completed "
                f"{ledger['walks_completed']} + degraded "
                f"{ledger['walks_degraded']} != issued {point.num_walks}"
            )
    previous = curve.points[0]
    for point in curve.points[1:]:
        if point.makespan < previous.makespan * (1.0 - monotone_tolerance):
            problems.append(
                f"non-monotone degradation: rate {point.rate:g} makespan "
                f"{point.makespan} < rate {previous.rate:g} makespan "
                f"{previous.makespan} (beyond {monotone_tolerance:.0%} "
                f"tolerance)"
            )
        previous = point
    base = curve.points[0].makespan
    worst = curve.points[-1].makespan
    if base and worst > base * collapse_factor:
        problems.append(
            f"collapse: makespan at rate {curve.points[-1].rate:g} is "
            f"{worst / base:.1f}x the fault-free run "
            f"(limit {collapse_factor:g}x)"
        )
    return problems


def format_chaos(curve: ChaosCurve) -> str:
    """Resilience-curve table, ready to print."""
    rows = []
    for point in curve.points:
        ledger = point.faults or {}
        rows.append([
            point.rate,
            point.makespan,
            f"{curve.slowdown(point):.2f}x",
            round(point.avg_walk_latency, 1),
            point.p99 if point.p99 is not None else "-",
            ledger.get("faults_injected", 0),
            ledger.get("retries", 0),
            ledger.get("tag_refetches", 0),
            ledger.get("storm_evictions", 0),
            f"{point.degraded_fraction * 100:.2f}%",
        ])
    verdict = "graceful" if not check_graceful(curve) else "NOT GRACEFUL"
    return render_table(
        ["fault rate", "makespan", "slowdown", "walk lat", "p99",
         "injected", "retries", "refetches", "storm evicts", "degraded"],
        rows,
        f"Resilience curve ({curve.workload}/{curve.system}@"
        f"{curve.scale:g}, plan seed {curve.plan_seed}) — {verdict}",
    )


def main() -> None:  # pragma: no cover
    for system in ("metal", "xcache"):
        curve = run_chaos(system=system)
        print(format_chaos(curve))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
