"""Table 3 — evaluation summary: the paper's headline questions answered
from a full run of the harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.format import geomean, render_table
from repro.bench.speedup import SpeedupResult, headline_ratios, run_speedups
from repro.exec import Executor


@dataclass
class SummaryResult:
    speedups: list[SpeedupResult]
    ratios: dict[str, float]
    energy_ratios: dict[str, float]
    ix_only_ratios: dict[str, float]
    pattern_gain: tuple[float, float]


def run_summary(
    scale: float = 0.25, executor: Executor | None = None
) -> SummaryResult:
    speedups = run_speedups(scale=scale, executor=executor)
    ratios = headline_ratios(speedups)

    energy: dict[str, list[float]] = {"stream": [], "address": [], "xcache": []}
    ix_only: dict[str, list[float]] = {"stream": [], "address": [], "xcache": []}
    pattern_gains = []
    for result in speedups:
        metal_e = result.runs["metal"].dram_energy_fj or 1.0
        ix_span = result.runs["metal_ix"].makespan
        metal_span = result.runs["metal"].makespan
        pattern_gains.append(ix_span / max(1, metal_span))
        for base in energy:
            energy[base].append(result.runs[base].dram_energy_fj / metal_e)
            ix_only[base].append(
                result.runs[base].makespan / max(1, ix_span)
            )
    return SummaryResult(
        speedups=speedups,
        ratios=ratios,
        energy_ratios={k: geomean(v) for k, v in energy.items()},
        ix_only_ratios={k: geomean(v) for k, v in ix_only.items()},
        pattern_gain=(min(pattern_gains), max(pattern_gains)),
    )


def format_table3(summary: SummaryResult) -> str:
    r, e, ix = summary.ratios, summary.energy_ratios, summary.ix_only_ratios
    lo, hi = summary.pattern_gain
    rows = [
        ["How much can METAL improve performance?",
         f"{r['stream']:.1f}x vs stream, {r['address']:.1f}x vs addr, "
         f"{r['xcache']:.1f}x vs X-cache"],
        ["How much DRAM energy can METAL save?",
         f"{e['stream']:.1f}x vs stream, {e['address']:.1f}x vs addr, "
         f"{e['xcache']:.1f}x vs X-cache"],
        ["How much perf. attributed to IX-cache alone?",
         f"{ix['stream']:.1f}x vs stream, {ix['address']:.1f}x vs addr, "
         f"{ix['xcache']:.1f}x vs X-cache"],
        ["How much improvement due to patterns?",
         f"{lo:.2f}x - {hi:.2f}x over METAL-IX"],
    ]
    return render_table(["Question", "Answer"], rows, "Table 3 — Evaluation summary")


def main() -> None:  # pragma: no cover
    print(format_table3(run_summary()))


if __name__ == "__main__":  # pragma: no cover
    main()
