"""Extension experiment: METAL on a *mutating* index (YCSB-style mix).

The paper's workloads query built indexes; dynamic tensors are the one
mutating substrate it names. This experiment stresses the invalidation
path end-to-end: a B+tree serving a read/insert mix while every memory
system keeps answering point lookups. Correctness (walks always land on
the right leaf) is asserted by the tests; the bench reports how much of
METAL's advantage survives the churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.indexes.bplustree import BPlusTree
from repro.params import CacheParams, IXCACHE_ENERGY_FJ, SimParams
from repro.sim.engine import Engine, WalkTrace
from repro.sim.memsys import make_memsys
from repro.mem.dram import DRAM
from repro.workloads.keygen import zipf_stream


@dataclass
class DynamicMixResult:
    system: str
    makespan: int
    avg_walk_latency: float
    dram_accesses: int
    invalidations_survived: bool


def mix_cell(
    kind: str,
    num_records: int,
    num_ops: int,
    read_fraction: float,
    cache_bytes: int,
    seed: int,
) -> dict[str, Any]:
    """One (system, mix) cell: build a live B+tree, interleave, measure.

    Runs worker-side (``repro.exec.worker`` dispatches ``op="dynamic_mix"``
    here); returns a JSON-safe dict so the payload can be cached.
    """
    rng = random.Random(seed)
    tree = BPlusTree.bulk_load(
        [(k, k) for k in range(0, num_records * 2, 2)],
        fanout=BPlusTree.fanout_for_depth(num_records, 9),
    )
    present = list(range(0, num_records * 2, 2))
    pending = list(range(1, num_records * 2, 2))
    rng.shuffle(pending)
    lookup_keys = zipf_stream(len(present), num_ops, skew=0.8, seed=seed)

    params = CacheParams(
        capacity_bytes=cache_bytes,
        e_access=IXCACHE_ENERGY_FJ if kind.startswith("metal") else 7_000.0,
    )
    memsys = make_memsys(kind, cache_params=params)
    traces: list[WalkTrace] = []
    ok = True
    for i in range(num_ops):
        if pending and rng.random() > read_fraction:
            key = pending.pop()
            tree.insert(key, key)
            present.append(key)
        key = present[lookup_keys[i % len(lookup_keys)] % len(present)]
        traces.append(memsys.process_walk(tree, key))
        if tree.get(key) != key:
            ok = False
    sim = SimParams()
    engine = Engine(sim, DRAM(sim.dram))
    timing = engine.run(traces)
    return {
        "makespan": timing.makespan,
        "avg_walk_latency": timing.avg_walk_latency,
        "dram_accesses": engine.dram.stats.accesses,
        "invalidations_survived": ok,
    }


def run_dynamic_mix(
    num_records: int = 8_000,
    num_ops: int = 6_000,
    read_fraction: float = 0.8,
    cache_bytes: int = 8 * 1024,
    seed: int = 0,
    kinds: tuple[str, ...] = ("stream", "address", "metal_ix"),
    executor: Executor | None = None,
) -> list[DynamicMixResult]:
    """Interleave zipf lookups with inserts on a live B+tree."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    executor = executor or default_executor()
    specs = [
        RunSpec.make(
            "bptree_rw_mix", kind, scale=1.0, seed=seed, op="dynamic_mix",
            cache_bytes=cache_bytes,
            workload_kwargs={
                "num_records": num_records,
                "num_ops": num_ops,
                "read_fraction": read_fraction,
            },
        )
        for kind in kinds
    ]
    results = []
    for kind, outcome in zip(kinds, executor.run(specs)):
        data = outcome.check().data
        results.append(
            DynamicMixResult(
                system=kind,
                makespan=data["makespan"],
                avg_walk_latency=data["avg_walk_latency"],
                dram_accesses=data["dram_accesses"],
                invalidations_survived=data["invalidations_survived"],
            )
        )
    return results


def format_dynamic_mix(results: list[DynamicMixResult]) -> str:
    base = results[0].makespan if results else 1
    headers = ["system", "speedup", "avg walk latency", "DRAM", "coherent"]
    rows = [
        [r.system, base / max(1, r.makespan), r.avg_walk_latency,
         r.dram_accesses, r.invalidations_survived]
        for r in results
    ]
    return render_table(
        headers, rows,
        "Extension — read/insert mix on a live B+tree (base: first row)",
    )


def main() -> None:  # pragma: no cover
    print(format_dynamic_mix(run_dynamic_mix()))


if __name__ == "__main__":  # pragma: no cover
    main()
