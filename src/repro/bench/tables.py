"""Table 2 — workload setup, regenerated from the live suite."""

from __future__ import annotations

from repro.bench.format import render_table
from repro.workloads.suite import PAPER_LABELS, WORKLOAD_BUILDERS, Workload, build_workload


def run_table2(scale: float = 0.1) -> list[Workload]:
    return [build_workload(name, scale=scale) for name in WORKLOAD_BUILDERS]


def format_table2(workloads: list[Workload]) -> str:
    headers = [
        "workload", "DSA", "pattern", "walks", "ops/walk", "ops/compute",
        "index blocks", "notes",
    ]
    rows = []
    for wl in workloads:
        rows.append([
            PAPER_LABELS.get(wl.name, wl.name),
            wl.dsa,
            wl.pattern,
            len(wl.requests),
            wl.config.ops_per_walk,
            wl.config.ops_per_compute,
            wl.total_index_blocks,
            wl.notes,
        ])
    return render_table(headers, rows, "Table 2 — Workload setup")


def main() -> None:  # pragma: no cover
    print(format_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
