"""Fig. 21 — what lives in the IX-cache, by index level.

Compares METAL-IX's greedy occupancy against pattern-managed METAL for the
workloads the paper plots (Scan, SpMM, Sets, SpMM-S). Sorted-set skip
lists can be arbitrarily deep, so — like the paper — levels are reported
as-is (level 1 = head of the structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.workloads.suite import PAPER_LABELS, Workload

DEFAULT_WORKLOADS = ("scan", "spmm", "sets", "spmm_s")


@dataclass
class OccupancyResult:
    workload: str
    height: int
    by_level: dict[str, dict[int, int]] = field(default_factory=dict)


def run_occupancy(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
    executor: Executor | None = None,
) -> list[OccupancyResult]:
    executor = executor or default_executor()
    executor.seed_workloads(prebuilt)
    kinds = ("metal_ix", "metal")
    specs: list[RunSpec] = []
    for name in workloads:
        workload = (prebuilt or {}).get(name)
        cell_scale = workload.scale if workload is not None else scale
        seed = workload.seed if workload is not None else 0
        for kind in kinds:
            specs.append(RunSpec.make(
                name, kind, scale=cell_scale, seed=seed,
                collect=("occupancy_by_level", "index_heights"),
            ))
    outcomes = executor.run(specs)
    results = []
    for i, name in enumerate(workloads):
        cell = outcomes[i * len(kinds):(i + 1) * len(kinds)]
        for outcome in cell:
            outcome.require()
        entry = OccupancyResult(name, max(cell[0].extras["index_heights"]))
        for kind, outcome in zip(kinds, cell):
            occupancy = outcome.extras["occupancy_by_level"]
            entry.by_level[kind] = dict(
                sorted((int(level), n) for level, n in occupancy.items())
            )
        results.append(entry)
    return results


def format_fig21(results: list[OccupancyResult]) -> str:
    max_level = max(
        (lvl for r in results for occ in r.by_level.values() for lvl in occ),
        default=0,
    )
    headers = ["workload", "system", *[f"L{l}" for l in range(max_level + 1)]]
    rows = []
    for result in results:
        for kind, occupancy in result.by_level.items():
            label = "MTL" if kind == "metal" else "IX"
            rows.append(
                [PAPER_LABELS.get(result.workload, result.workload), label]
                + [occupancy.get(l, 0) for l in range(max_level + 1)]
            )
    return render_table(
        headers, rows, "Fig. 21 — IX-cache entries per index level"
    )


def main() -> None:  # pragma: no cover
    print(format_fig21(run_occupancy()))


if __name__ == "__main__":  # pragma: no cover
    main()
