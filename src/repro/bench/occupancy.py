"""Fig. 21 — what lives in the IX-cache, by index level.

Compares METAL-IX's greedy occupancy against pattern-managed METAL for the
workloads the paper plots (Scan, SpMM, Sets, SpMM-S). Sorted-set skip
lists can be arbitrarily deep, so — like the paper — levels are reported
as-is (level 1 = head of the structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.bench.runner import build_memsys
from repro.sim.metrics import simulate
from repro.workloads.suite import PAPER_LABELS, Workload, build_workload

DEFAULT_WORKLOADS = ("scan", "spmm", "sets", "spmm_s")


@dataclass
class OccupancyResult:
    workload: str
    height: int
    by_level: dict[str, dict[int, int]] = field(default_factory=dict)


def run_occupancy(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
) -> list[OccupancyResult]:
    results = []
    for name in workloads:
        workload = (prebuilt or {}).get(name) or build_workload(name, scale=scale)
        entry = OccupancyResult(name, max(i.height for i in workload.indexes))
        for kind in ("metal_ix", "metal"):
            memsys = build_memsys(kind, workload)
            simulate(memsys, workload.requests, memsys.sim, workload.total_index_blocks)
            entry.by_level[kind] = dict(
                sorted(memsys.policy.cache.occupancy_by_level().items())
            )
        results.append(entry)
    return results


def format_fig21(results: list[OccupancyResult]) -> str:
    max_level = max(
        (lvl for r in results for occ in r.by_level.values() for lvl in occ),
        default=0,
    )
    headers = ["workload", "system", *[f"L{l}" for l in range(max_level + 1)]]
    rows = []
    for result in results:
        for kind, occupancy in result.by_level.items():
            label = "MTL" if kind == "metal" else "IX"
            rows.append(
                [PAPER_LABELS.get(result.workload, result.workload), label]
                + [occupancy.get(l, 0) for l in range(max_level + 1)]
            )
    return render_table(
        headers, rows, "Fig. 21 — IX-cache entries per index level"
    )


def main() -> None:  # pragma: no cover
    print(format_fig21(run_occupancy()))


if __name__ == "__main__":  # pragma: no cover
    main()
