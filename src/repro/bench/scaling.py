"""Fig. 23 — METAL vs index size (record count and depth sweeps).

(a) JOIN with a growing record count across IX-cache sizes: patterns let
METAL absorb larger databases without a larger cache.
(b) JOIN with index depth swept upward: METAL-IX degrades faster than
METAL because it captures the reuse region less efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.bench.runner import run_workload
from repro.workloads.suite import build_analytics_join


@dataclass
class ScalingResult:
    """Average walk latency per (config, system) cell."""

    records_sweep: dict[tuple[float, int], dict[str, float]] = field(default_factory=dict)
    depth_sweep: dict[int, dict[str, float]] = field(default_factory=dict)


def run_records_sweep(
    scales: tuple[float, ...] = (0.125, 0.25, 0.5),
    cache_sizes: tuple[int, ...] = (4 * 1024, 8 * 1024, 16 * 1024),
) -> dict[tuple[float, int], dict[str, float]]:
    """Fig. 23a: record count x cache size -> walk latency per system."""
    cells: dict[tuple[float, int], dict[str, float]] = {}
    for scale in scales:
        workload = build_analytics_join(scale=scale)
        for cache_bytes in cache_sizes:
            cell = {}
            for kind in ("metal_ix", "metal"):
                run = run_workload(workload, kind, cache_bytes=cache_bytes)
                cell[kind] = run.avg_walk_latency
            cells[(scale, cache_bytes)] = cell
    return cells


def run_depth_sweep(
    depths: tuple[int, ...] = (6, 9, 12, 15),
    scale: float = 0.25,
    cache_bytes: int = 8 * 1024,
) -> dict[int, dict[str, float]]:
    """Fig. 23b: index depth -> walk latency per system.

    Cells are keyed by the *built* inner-tree height (the depth target
    quantizes through the integer fan-out at reduced scale).
    """
    cells: dict[int, dict[str, float]] = {}
    for depth in depths:
        workload = build_analytics_join(scale=scale, depth=depth)
        height = workload.indexes[0].height
        if height in cells:
            continue
        cell = {}
        for kind in ("metal_ix", "metal"):
            run = run_workload(workload, kind, cache_bytes=cache_bytes)
            cell[kind] = run.avg_walk_latency
        cells[height] = cell
    return cells


def run_scaling(**kw) -> ScalingResult:
    return ScalingResult(
        records_sweep=run_records_sweep(),
        depth_sweep=run_depth_sweep(),
    )


def format_fig23a(cells: dict[tuple[float, int], dict[str, float]]) -> str:
    headers = ["scale", "cache", "METAL-IX lat", "METAL lat"]
    rows = [
        [scale, f"{cache // 1024}KB", cell["metal_ix"], cell["metal"]]
        for (scale, cache), cell in sorted(cells.items())
    ]
    return render_table(
        headers, rows, "Fig. 23a — Walk latency vs record count x cache size (JOIN)"
    )


def format_fig23b(cells: dict[int, dict[str, float]]) -> str:
    headers = ["height", "METAL-IX lat", "METAL lat", "IX/MTL"]
    rows = [
        [depth, cell["metal_ix"], cell["metal"],
         cell["metal_ix"] / max(1e-9, cell["metal"])]
        for depth, cell in sorted(cells.items())
    ]
    return render_table(
        headers, rows, "Fig. 23b — Walk latency vs index depth (JOIN)"
    )


def main() -> None:  # pragma: no cover
    result = run_scaling()
    print(format_fig23a(result.records_sweep))
    print()
    print(format_fig23b(result.depth_sweep))


if __name__ == "__main__":  # pragma: no cover
    main()
