"""Fig. 23 — METAL vs index size (record count and depth sweeps).

(a) JOIN with a growing record count across IX-cache sizes: patterns let
METAL absorb larger databases without a larger cache.
(b) JOIN with index depth swept upward: METAL-IX degrades faster than
METAL because it captures the reuse region less efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor

SCALING_SYSTEMS = ("metal_ix", "metal")


@dataclass
class ScalingResult:
    """Average walk latency per (config, system) cell."""

    records_sweep: dict[tuple[float, int], dict[str, float]] = field(default_factory=dict)
    depth_sweep: dict[int, dict[str, float]] = field(default_factory=dict)


def run_records_sweep(
    scales: tuple[float, ...] = (0.125, 0.25, 0.5),
    cache_sizes: tuple[int, ...] = (4 * 1024, 8 * 1024, 16 * 1024),
    executor: Executor | None = None,
) -> dict[tuple[float, int], dict[str, float]]:
    """Fig. 23a: record count x cache size -> walk latency per system."""
    executor = executor or default_executor()
    specs = [
        RunSpec(workload="join", system=kind, scale=scale, cache_bytes=cache_bytes)
        for scale in scales
        for cache_bytes in cache_sizes
        for kind in SCALING_SYSTEMS
    ]
    folded = iter(executor.run_results(specs))
    cells: dict[tuple[float, int], dict[str, float]] = {}
    for scale in scales:
        for cache_bytes in cache_sizes:
            cells[(scale, cache_bytes)] = {
                kind: next(folded).avg_walk_latency for kind in SCALING_SYSTEMS
            }
    return cells


def run_depth_sweep(
    depths: tuple[int, ...] = (6, 9, 12, 15),
    scale: float = 0.25,
    cache_bytes: int = 8 * 1024,
    executor: Executor | None = None,
) -> dict[int, dict[str, float]]:
    """Fig. 23b: index depth -> walk latency per system.

    Cells are keyed by the *built* inner-tree height (the depth target
    quantizes through the integer fan-out at reduced scale).
    """
    executor = executor or default_executor()
    specs = [
        RunSpec.make(
            "join", kind, scale=scale, cache_bytes=cache_bytes,
            workload_kwargs={"depth": depth},
            collect=("index_heights",),
        )
        for depth in depths
        for kind in SCALING_SYSTEMS
    ]
    outcomes = iter(executor.run(specs))
    cells: dict[int, dict[str, float]] = {}
    for _depth in depths:
        cell_outcomes = [next(outcomes) for _ in SCALING_SYSTEMS]
        cell_outcomes[0].require()
        # The inner tree is the first index; key by its built height.
        height = cell_outcomes[0].extras["index_heights"][0]
        if height in cells:
            continue
        cells[height] = {
            kind: outcome.require().avg_walk_latency
            for kind, outcome in zip(SCALING_SYSTEMS, cell_outcomes)
        }
    return cells


def run_scaling(executor: Executor | None = None, **kw) -> ScalingResult:
    return ScalingResult(
        records_sweep=run_records_sweep(executor=executor),
        depth_sweep=run_depth_sweep(executor=executor),
    )


def format_fig23a(cells: dict[tuple[float, int], dict[str, float]]) -> str:
    headers = ["scale", "cache", "METAL-IX lat", "METAL lat"]
    rows = [
        [scale, f"{cache // 1024}KB", cell["metal_ix"], cell["metal"]]
        for (scale, cache), cell in sorted(cells.items())
    ]
    return render_table(
        headers, rows, "Fig. 23a — Walk latency vs record count x cache size (JOIN)"
    )


def format_fig23b(cells: dict[int, dict[str, float]]) -> str:
    headers = ["height", "METAL-IX lat", "METAL lat", "IX/MTL"]
    rows = [
        [depth, cell["metal_ix"], cell["metal"],
         cell["metal_ix"] / max(1e-9, cell["metal"])]
        for depth, cell in sorted(cells.items())
    ]
    return render_table(
        headers, rows, "Fig. 23b — Walk latency vs index depth (JOIN)"
    )


def main() -> None:  # pragma: no cover
    result = run_scaling()
    print(format_fig23a(result.records_sweep))
    print()
    print(format_fig23b(result.depth_sweep))


if __name__ == "__main__":  # pragma: no cover
    main()
