"""Fig. 19 (DRAM energy), Fig. 25 (cache energy + on-chip breakdown).

Energy = per-access cost x #accesses (Section 5.7). METAL's range match
costs more per access (9000 fJ vs 7000 fJ) but short-circuiting removes
whole accesses, so totals drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.bench.runner import SYSTEMS
from repro.core.energy_model import (
    CacheEnergyModel,
    COMPUTE_OP_ENERGY_FJ,
    WALKER_STEP_ENERGY_FJ,
)
from repro.exec import Executor, RunSpec, default_executor
from repro.sim.metrics import RunResult
from repro.workloads.suite import PAPER_LABELS, WORKLOAD_CONFIGS, Workload

DEFAULT_WORKLOADS = (
    "scan", "sets", "sets_s", "spmm", "spmm_s", "select", "where", "join",
    "rtree", "pagerank",
)


@dataclass
class EnergyResult:
    workload: str
    runs: dict[str, RunResult] = field(default_factory=dict)
    compute_ops: int = 0

    def dram_normalized(self) -> dict[str, float]:
        """Fig. 19: DRAM dynamic energy normalized to streaming."""
        base = self.runs["stream"].dram_energy_fj or 1.0
        return {k: r.dram_energy_fj / base for k, r in self.runs.items()}

    def cache_energy_fj(self) -> dict[str, float]:
        """Fig. 25 top: per-organization cache energy."""
        model = CacheEnergyModel()
        return {
            k: model.cache_energy(k, r.cache_stats.accesses if r.cache_stats else 0)
            for k, r in self.runs.items()
        }

    def onchip_breakdown(self, kind: str = "metal") -> dict[str, float]:
        """Fig. 25 bottom: tile vs IX-cache vs walker+controller energy."""
        run = self.runs[kind]
        cache = self.cache_energy_fj()[kind]
        walker = run.nodes_visited * WALKER_STEP_ENERGY_FJ
        compute = self.compute_ops * COMPUTE_OP_ENERGY_FJ
        total = cache + walker + compute
        if total == 0:
            return {"tile": 0.0, "ix_cache": 0.0, "walker": 0.0}
        return {
            "tile": compute / total,
            "ix_cache": cache / total,
            "walker": walker / total,
        }


def run_energy(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
    executor: Executor | None = None,
) -> list[EnergyResult]:
    executor = executor or default_executor()
    executor.seed_workloads(prebuilt)
    specs: list[RunSpec] = []
    for name in workloads:
        workload = (prebuilt or {}).get(name)
        cell_scale = workload.scale if workload is not None else scale
        seed = workload.seed if workload is not None else 0
        specs.extend(
            RunSpec(workload=name, system=kind, scale=cell_scale, seed=seed)
            for kind in SYSTEMS
        )
    folded = executor.run_results(specs)
    results = []
    for i, name in enumerate(workloads):
        workload = (prebuilt or {}).get(name)
        config = workload.config if workload is not None else WORKLOAD_CONFIGS[name]
        runs = dict(zip(SYSTEMS, folded[i * len(SYSTEMS):(i + 1) * len(SYSTEMS)]))
        # One compute op bundle per walk (Table-2 intensity is uniform
        # across a workload's requests).
        ops = runs["stream"].num_walks * config.ops_per_compute
        results.append(EnergyResult(name, runs, compute_ops=ops))
    return results


def format_fig19(results: list[EnergyResult]) -> str:
    headers = ["workload", *SYSTEMS]
    rows = []
    for result in results:
        norm = result.dram_normalized()
        rows.append([PAPER_LABELS.get(result.workload, result.workload)]
                    + [norm[s] for s in SYSTEMS])
    return render_table(
        headers, rows, "Fig. 19 — Normalized DRAM energy (lower is better)"
    )


def format_fig25(results: list[EnergyResult]) -> str:
    headers = ["workload", "addr (nJ)", "xcache (nJ)", "metal (nJ)",
               "metal/addr accesses", "tile%", "ix%", "walker%"]
    rows = []
    for result in results:
        energy = result.cache_energy_fj()
        addr_acc = result.runs["address"].cache_stats.accesses or 1
        metal_acc = result.runs["metal"].cache_stats.accesses
        breakdown = result.onchip_breakdown()
        rows.append([
            PAPER_LABELS.get(result.workload, result.workload),
            energy["address"] / 1e6,
            energy["xcache"] / 1e6,
            energy["metal"] / 1e6,
            metal_acc / addr_acc,
            breakdown["tile"] * 100,
            breakdown["ix_cache"] * 100,
            breakdown["walker"] * 100,
        ])
    return render_table(
        headers, rows,
        "Fig. 25 — Cache energy (top) and on-chip energy breakdown (bottom)",
    )


def main() -> None:  # pragma: no cover
    results = run_energy()
    print(format_fig19(results))
    print()
    print(format_fig25(results))


if __name__ == "__main__":  # pragma: no cover
    main()
