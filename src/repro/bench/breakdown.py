"""Fig. 20 — breakdown of METAL's speedup into its three factors.

IX: the IX-cache alone with the hardwired utility policy (METAL-IX).
Patterns: reuse managed by descriptors with static parameters (tune off).
Params: dynamic parameter tuning enabled (full METAL).
All normalized to the streaming DSA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.workloads.suite import PAPER_LABELS, Workload

DEFAULT_WORKLOADS = (
    "scan", "sets", "spmm", "select", "where", "join", "rtree", "pagerank",
)

#: (workload, systems) pairs for the cycle-attribution cross-check: one
#: pointer-chasing and one graph workload, streaming vs full METAL.
ATTRIBUTION_WORKLOADS = ("scan", "pagerank")
ATTRIBUTION_SYSTEMS = ("stream", "metal")


@dataclass
class BreakdownResult:
    workload: str
    ix: float
    patterns: float
    params: float


def run_breakdown(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
    executor: Executor | None = None,
) -> list[BreakdownResult]:
    executor = executor or default_executor()
    executor.seed_workloads(prebuilt)
    specs: list[RunSpec] = []
    for name in workloads:
        workload = (prebuilt or {}).get(name)
        cell_scale = workload.scale if workload is not None else scale
        seed = workload.seed if workload is not None else 0
        base = dict(workload=name, scale=cell_scale, seed=seed)
        specs.append(RunSpec(system="stream", **base))
        specs.append(RunSpec(system="metal_ix", **base))
        specs.append(RunSpec.make(
            system="metal", memsys_kwargs={"tune": False}, **base
        ))
        # tune=True is build_memsys's default: this cell dedups with the
        # Fig. 18 metal cell instead of recomputing it.
        specs.append(RunSpec(system="metal", **base))
    folded = executor.run_results(specs)
    results = []
    for i, name in enumerate(workloads):
        base_run, ix, patterns, params = folded[i * 4:(i + 1) * 4]
        results.append(
            BreakdownResult(
                name,
                ix=base_run.makespan / max(1, ix.makespan),
                patterns=base_run.makespan / max(1, patterns.makespan),
                params=base_run.makespan / max(1, params.makespan),
            )
        )
    return results


@dataclass
class AttributionResult:
    """Where one (workload, system) run's walk cycles actually went."""

    workload: str
    system: str
    total_walk_cycles: int
    #: category -> cycles, over repro.obs.profile.ATTRIBUTION_CATEGORIES.
    totals: dict[str, int]
    dropped: int = 0

    def fraction(self, category: str) -> float:
        if self.total_walk_cycles == 0:
            return 0.0
        return self.totals.get(category, 0) / self.total_walk_cycles


def run_attribution(
    workloads: tuple[str, ...] = ATTRIBUTION_WORKLOADS,
    systems: tuple[str, ...] = ATTRIBUTION_SYSTEMS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
    trace_buffer: int = 1 << 22,
    executor: Executor | None = None,
) -> list[AttributionResult]:
    """Traced runs folded into per-component cycle attribution.

    This is the mechanism behind the Fig. 20 factor breakdown, measured
    directly: the speedup METAL's stages buy shows up here as the DRAM
    components (queue/hit/miss) shrinking relative to the streaming DSA.
    Attribution is exact — per walk, the components sum to the measured
    walk latency — unless the ring buffer dropped events (``dropped``).
    """
    executor = executor or default_executor()
    executor.seed_workloads(prebuilt)
    specs: list[RunSpec] = []
    cells: list[tuple[str, str]] = []
    for name in workloads:
        workload = (prebuilt or {}).get(name)
        cell_scale = workload.scale if workload is not None else scale
        seed = workload.seed if workload is not None else 0
        for system in systems:
            cells.append((name, system))
            specs.append(RunSpec.make(
                name, system, scale=cell_scale, seed=seed,
                sim_kwargs={"trace": True, "trace_buffer": trace_buffer},
                collect=("attribution",),
            ))
    results = []
    for (name, system), outcome in zip(cells, executor.run(specs)):
        run = outcome.require()
        attribution = outcome.extras["attribution"]
        results.append(
            AttributionResult(
                workload=name,
                system=system,
                total_walk_cycles=run.total_walk_cycles,
                totals=dict(attribution["totals"]),
                dropped=attribution["dropped"],
            )
        )
    return results


def format_attribution(results: list[AttributionResult]) -> str:
    from repro.obs.profile import ATTRIBUTION_CATEGORIES

    headers = ["workload", "system", "walk cycles"] + [
        f"{cat} %" for cat in ATTRIBUTION_CATEGORIES
    ]
    rows = []
    for r in results:
        rows.append(
            [PAPER_LABELS.get(r.workload, r.workload), r.system,
             r.total_walk_cycles]
            + [100.0 * r.fraction(cat) for cat in ATTRIBUTION_CATEGORIES]
        )
    note = ""
    dropped = sum(r.dropped for r in results)
    if dropped:
        note = f" ({dropped} events dropped; attribution approximate)"
    return render_table(
        headers, rows,
        "Cycle attribution — where walk latency goes, per component" + note,
    )


def format_fig20(results: list[BreakdownResult]) -> str:
    headers = ["workload", "IX only", "+Patterns", "+Params"]
    rows = [
        [PAPER_LABELS.get(r.workload, r.workload), r.ix, r.patterns, r.params]
        for r in results
    ]
    return render_table(
        headers, rows,
        "Fig. 20 — Speedup vs streaming, by contributing factor",
    )


def main() -> None:  # pragma: no cover
    print(format_fig20(run_breakdown()))


if __name__ == "__main__":  # pragma: no cover
    main()
