"""Fig. 20 — breakdown of METAL's speedup into its three factors.

IX: the IX-cache alone with the hardwired utility policy (METAL-IX).
Patterns: reuse managed by descriptors with static parameters (tune off).
Params: dynamic parameter tuning enabled (full METAL).
All normalized to the streaming DSA.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bench.format import render_table
from repro.bench.runner import run_workload
from repro.workloads.suite import PAPER_LABELS, Workload, build_workload

DEFAULT_WORKLOADS = (
    "scan", "sets", "spmm", "select", "where", "join", "rtree", "pagerank",
)

#: (workload, systems) pairs for the cycle-attribution cross-check: one
#: pointer-chasing and one graph workload, streaming vs full METAL.
ATTRIBUTION_WORKLOADS = ("scan", "pagerank")
ATTRIBUTION_SYSTEMS = ("stream", "metal")


@dataclass
class BreakdownResult:
    workload: str
    ix: float
    patterns: float
    params: float


def run_breakdown(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
) -> list[BreakdownResult]:
    results = []
    for name in workloads:
        workload = (prebuilt or {}).get(name) or build_workload(name, scale=scale)
        base = run_workload(workload, "stream").makespan
        ix = run_workload(workload, "metal_ix").makespan
        patterns = run_workload(workload, "metal", tune=False).makespan
        params = run_workload(workload, "metal", tune=True).makespan
        results.append(
            BreakdownResult(
                name,
                ix=base / max(1, ix),
                patterns=base / max(1, patterns),
                params=base / max(1, params),
            )
        )
    return results


@dataclass
class AttributionResult:
    """Where one (workload, system) run's walk cycles actually went."""

    workload: str
    system: str
    total_walk_cycles: int
    #: category -> cycles, over repro.obs.profile.ATTRIBUTION_CATEGORIES.
    totals: dict[str, int]
    dropped: int = 0

    def fraction(self, category: str) -> float:
        if self.total_walk_cycles == 0:
            return 0.0
        return self.totals.get(category, 0) / self.total_walk_cycles


def run_attribution(
    workloads: tuple[str, ...] = ATTRIBUTION_WORKLOADS,
    systems: tuple[str, ...] = ATTRIBUTION_SYSTEMS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
    trace_buffer: int = 1 << 22,
) -> list[AttributionResult]:
    """Traced runs folded into per-component cycle attribution.

    This is the mechanism behind the Fig. 20 factor breakdown, measured
    directly: the speedup METAL's stages buy shows up here as the DRAM
    components (queue/hit/miss) shrinking relative to the streaming DSA.
    Attribution is exact — per walk, the components sum to the measured
    walk latency — unless the ring buffer dropped events (``dropped``).
    """
    from repro.obs.profile import build_profile

    results = []
    for name in workloads:
        workload = (prebuilt or {}).get(name) or build_workload(name, scale=scale)
        sim = replace(
            workload.config.sim_params(), trace=True, trace_buffer=trace_buffer
        )
        for system in systems:
            run = run_workload(workload, system, sim=sim)
            assert run.tracer is not None
            profile = build_profile(run.tracer, strict=False)
            results.append(
                AttributionResult(
                    workload=name,
                    system=system,
                    total_walk_cycles=run.total_walk_cycles,
                    totals=dict(profile.totals),
                    dropped=run.tracer.dropped,
                )
            )
    return results


def format_attribution(results: list[AttributionResult]) -> str:
    from repro.obs.profile import ATTRIBUTION_CATEGORIES

    headers = ["workload", "system", "walk cycles"] + [
        f"{cat} %" for cat in ATTRIBUTION_CATEGORIES
    ]
    rows = []
    for r in results:
        rows.append(
            [PAPER_LABELS.get(r.workload, r.workload), r.system,
             r.total_walk_cycles]
            + [100.0 * r.fraction(cat) for cat in ATTRIBUTION_CATEGORIES]
        )
    note = ""
    dropped = sum(r.dropped for r in results)
    if dropped:
        note = f" ({dropped} events dropped; attribution approximate)"
    return render_table(
        headers, rows,
        "Cycle attribution — where walk latency goes, per component" + note,
    )


def format_fig20(results: list[BreakdownResult]) -> str:
    headers = ["workload", "IX only", "+Patterns", "+Params"]
    rows = [
        [PAPER_LABELS.get(r.workload, r.workload), r.ix, r.patterns, r.params]
        for r in results
    ]
    return render_table(
        headers, rows,
        "Fig. 20 — Speedup vs streaming, by contributing factor",
    )


def main() -> None:  # pragma: no cover
    print(format_fig20(run_breakdown()))


if __name__ == "__main__":  # pragma: no cover
    main()
