"""Fig. 20 — breakdown of METAL's speedup into its three factors.

IX: the IX-cache alone with the hardwired utility policy (METAL-IX).
Patterns: reuse managed by descriptors with static parameters (tune off).
Params: dynamic parameter tuning enabled (full METAL).
All normalized to the streaming DSA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.format import render_table
from repro.bench.runner import run_workload
from repro.workloads.suite import PAPER_LABELS, Workload, build_workload

DEFAULT_WORKLOADS = (
    "scan", "sets", "spmm", "select", "where", "join", "rtree", "pagerank",
)


@dataclass
class BreakdownResult:
    workload: str
    ix: float
    patterns: float
    params: float


def run_breakdown(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
) -> list[BreakdownResult]:
    results = []
    for name in workloads:
        workload = (prebuilt or {}).get(name) or build_workload(name, scale=scale)
        base = run_workload(workload, "stream").makespan
        ix = run_workload(workload, "metal_ix").makespan
        patterns = run_workload(workload, "metal", tune=False).makespan
        params = run_workload(workload, "metal", tune=True).makespan
        results.append(
            BreakdownResult(
                name,
                ix=base / max(1, ix),
                patterns=base / max(1, patterns),
                params=base / max(1, params),
            )
        )
    return results


def format_fig20(results: list[BreakdownResult]) -> str:
    headers = ["workload", "IX only", "+Patterns", "+Params"]
    rows = [
        [PAPER_LABELS.get(r.workload, r.workload), r.ix, r.patterns, r.params]
        for r in results
    ]
    return render_table(
        headers, rows,
        "Fig. 20 — Speedup vs streaming, by contributing factor",
    )


def main() -> None:  # pragma: no cover
    print(format_fig20(run_breakdown()))


if __name__ == "__main__":  # pragma: no cover
    main()
