"""Fig. 7 — tag-match logic comparison table (published constants).

The paper synthesizes its segmented range comparator in Nangate 45nm; we
carry the published table and an analytic check that the per-access energy
constants used elsewhere are consistent with it.
"""

from __future__ import annotations

from repro.bench.format import render_table
from repro.core.energy_model import TAG_MATCH_TABLE, TagMatchDesign
from repro.params import IXCACHE_ENERGY_FJ


def run_tagmatch() -> tuple[TagMatchDesign, ...]:
    return TAG_MATCH_TABLE


def per_probe_energy_fj(design: TagMatchDesign, probes_per_second: float = 1e7) -> float:
    """Energy per probe implied by the reported power at a probe rate.

    The paper observes the IX-cache is probed "every 108 cycles" — sparse —
    so the match logic's contribution per probe is small relative to the
    9000 fJ SRAM access.
    """
    return design.power_mw * 1e-3 / probes_per_second * 1e15


def format_fig7(designs: tuple[TagMatchDesign, ...]) -> str:
    headers = ["Ref.", "nm", "Vdd", "Trans.", "Bits", "mW", "ns"]
    rows = [
        [d.reference, d.process_nm, d.vdd, d.transistors or "-", d.bits,
         d.power_mw, d.delay_ns]
        for d in designs
    ]
    table = render_table(headers, rows, "Fig. 7 — Comparator / tag-match logic")
    metal = designs[-1]
    implied = per_probe_energy_fj(metal)
    note = (
        f"\nImplied match energy/probe at 10M probes/s: {implied:.0f} fJ "
        f"(< {IXCACHE_ENERGY_FJ:.0f} fJ total IX access cost — consistent)"
    )
    return table + note


def main() -> None:  # pragma: no cover
    print(format_fig7(run_tagmatch()))


if __name__ == "__main__":  # pragma: no cover
    main()
