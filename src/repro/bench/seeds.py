"""Robustness: headline ratios across workload seeds.

The paper reports single-run numbers from deterministic simulation; our
workloads are synthetic, so this module quantifies how much the headline
ratios move across generator seeds — the reproduction's error bars.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor

DEFAULT_BASELINES = ("stream", "address", "xcache")


@dataclass
class SeedSweep:
    workload: str
    seeds: tuple[int, ...]
    #: baseline -> list of per-seed METAL-advantage ratios.
    ratios: dict[str, list[float]] = field(default_factory=dict)

    def mean(self, baseline: str) -> float:
        return statistics.fmean(self.ratios[baseline])

    def stdev(self, baseline: str) -> float:
        values = self.ratios[baseline]
        return statistics.stdev(values) if len(values) > 1 else 0.0


def run_seed_sweep(
    workload_name: str = "scan",
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    scale: float = 0.15,
    baselines: tuple[str, ...] = DEFAULT_BASELINES,
    executor: Executor | None = None,
) -> SeedSweep:
    executor = executor or default_executor()
    kinds = (*baselines, "metal")
    specs = [
        RunSpec(workload=workload_name, system=kind, scale=scale, seed=seed)
        for seed in seeds
        for kind in kinds
    ]
    folded = executor.run_results(specs)
    sweep = SeedSweep(workload_name, seeds, {b: [] for b in baselines})
    for i, _seed in enumerate(seeds):
        runs = dict(zip(kinds, folded[i * len(kinds):(i + 1) * len(kinds)]))
        metal = runs["metal"].makespan
        for baseline in baselines:
            sweep.ratios[baseline].append(
                runs[baseline].makespan / max(1, metal)
            )
    return sweep


def format_seed_sweep(sweep: SeedSweep) -> str:
    headers = ["baseline", "mean ratio", "stdev", "min", "max"]
    rows = []
    for baseline, values in sweep.ratios.items():
        rows.append([
            baseline, sweep.mean(baseline), sweep.stdev(baseline),
            min(values), max(values),
        ])
    return render_table(
        headers, rows,
        f"Robustness — METAL advantage on {sweep.workload} over "
        f"{len(sweep.seeds)} seeds",
    )


def main() -> None:  # pragma: no cover
    for name in ("scan", "join", "spmm"):
        print(format_seed_sweep(run_seed_sweep(name)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
