"""Ablations over METAL's design choices (DESIGN.md's supplemental axes).

* **Geometry** — associativity sweep (paper supplemental: "Best geometry:
  16-way. 16 banked").
* **Shared vs. private** — one IX-cache shared by all tiles vs. the same
  capacity partitioned per tile (paper: "Shared is best since access every
  70-180 cycles").
* **Mechanism toggles** — Case-3 coalescing, key-focused insertion,
  touch-filter admission, and the next-line prefetcher on the address
  baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.format import render_table
from repro.bench.runner import build_memsys, run_workload
from repro.params import CacheParams, IXCACHE_ENERGY_FJ
from repro.sim.memsys import MetalMemSys
from repro.sim.metrics import RunResult, simulate
from repro.workloads.suite import Workload, build_workload


# --------------------------------------------------------------------- #
# Geometry (ways) sweep
# --------------------------------------------------------------------- #

def run_geometry_sweep(
    workload: Workload | None = None,
    ways_options: tuple[int, ...] = (1, 4, 8, 16, 32),
    scale: float = 0.25,
) -> dict[int, RunResult]:
    workload = workload or build_workload("scan", scale=scale)
    results = {}
    for ways in ways_options:
        params = CacheParams(
            capacity_bytes=workload.default_cache_bytes,
            ways=ways,
            e_access=IXCACHE_ENERGY_FJ,
        )
        memsys = build_memsys("metal", workload, cache_params=params)
        results[ways] = simulate(
            memsys, workload.requests, memsys.sim, workload.total_index_blocks
        )
    return results


def format_geometry(results: dict[int, RunResult]) -> str:
    headers = ["ways", "makespan", "avg walk latency", "miss rate"]
    rows = [
        [ways, r.makespan, r.avg_walk_latency, r.miss_rate]
        for ways, r in sorted(results.items())
    ]
    return render_table(headers, rows, "Ablation — IX-cache associativity")


# --------------------------------------------------------------------- #
# Shared vs. private IX-cache
# --------------------------------------------------------------------- #

@dataclass
class SharedVsPrivate:
    shared: RunResult
    private_makespan: int
    num_partitions: int
    private_hit_rate: float


def run_shared_vs_private(
    workload: Workload | None = None,
    partitions: int = 4,
    scale: float = 0.25,
) -> SharedVsPrivate:
    """Same total capacity: one shared cache vs. per-tile-group slices.

    Private slices lose cooperative caching: a node cached by one tile
    group cannot short-circuit another group's walks.
    """
    workload = workload or build_workload("scan", scale=scale)
    shared = run_workload(workload, "metal")

    # Each private slice serves one tile group: 1/partitions of the tiles,
    # 1/partitions of the capacity, 1/partitions of the walks. Wall time is
    # the slowest group (they run concurrently).
    group_tiles = max(1, workload.config.tiles // partitions)
    sim = workload.config.scaled(group_tiles).sim_params()
    slice_bytes = max(1024, workload.default_cache_bytes // partitions)
    privates: list[MetalMemSys] = []
    for _ in range(partitions):
        memsys = build_memsys(
            "metal", workload, sim=sim,
            cache_params=CacheParams(
                capacity_bytes=slice_bytes, e_access=IXCACHE_ENERGY_FJ
            ),
        )
        privates.append(memsys)
    buckets = [workload.requests[i::partitions] for i in range(partitions)]
    makespan = 0
    hits = accesses = 0
    for memsys, bucket in zip(privates, buckets):
        run = simulate(memsys, bucket, sim, workload.total_index_blocks)
        makespan = max(makespan, run.makespan)
        if run.cache_stats:
            hits += run.cache_stats.hits
            accesses += run.cache_stats.accesses
    return SharedVsPrivate(
        shared=shared,
        private_makespan=makespan,
        num_partitions=partitions,
        private_hit_rate=hits / accesses if accesses else 0.0,
    )


def format_shared_vs_private(result: SharedVsPrivate) -> str:
    shared_hit = result.shared.cache_stats.hit_rate if result.shared.cache_stats else 0.0
    headers = ["organization", "makespan", "hit rate"]
    rows = [
        ["shared", result.shared.makespan, shared_hit],
        [f"private x{result.num_partitions}", result.private_makespan,
         result.private_hit_rate],
    ]
    return render_table(
        headers, rows, "Ablation — shared vs. private IX-cache (equal capacity)"
    )


# --------------------------------------------------------------------- #
# Mechanism toggles
# --------------------------------------------------------------------- #

@dataclass
class ToggleResult:
    label: str
    run: RunResult


def run_mechanism_toggles(
    workload: Workload | None = None, scale: float = 0.25
) -> list[ToggleResult]:
    workload = workload or build_workload("scan", scale=scale)
    sim = workload.config.sim_params()
    results = [ToggleResult("metal (default)", run_workload(workload, "metal"))]

    # Case-3 coalescing off.
    memsys = build_memsys("metal", workload, coalesce=False)
    results.append(ToggleResult(
        "no coalescing",
        simulate(memsys, workload.requests, sim, workload.total_index_blocks),
    ))

    # Fully-associative IX-cache (no key-block sets).
    memsys = build_memsys("metal", workload, associative=False)
    results.append(ToggleResult(
        "fully associative",
        simulate(memsys, workload.requests, sim, workload.total_index_blocks),
    ))

    # Address baseline variants: flat, next-line prefetch, two-level.
    results.append(ToggleResult("address", run_workload(workload, "address")))
    results.append(ToggleResult("address + prefetch",
                                run_workload(workload, "address_pf")))
    results.append(ToggleResult("address L1+L2",
                                run_workload(workload, "address_l2")))
    return results


def format_toggles(results: list[ToggleResult]) -> str:
    headers = ["configuration", "makespan", "avg walk latency", "index DRAM"]
    rows = [
        [r.label, r.run.makespan, r.run.avg_walk_latency, r.run.index_dram_accesses]
        for r in results
    ]
    return render_table(headers, rows, "Ablation — mechanism toggles")


# --------------------------------------------------------------------- #
# Walk-scheduling policies
# --------------------------------------------------------------------- #

def run_scheduling(
    workload: Workload | None = None, scale: float = 0.25
) -> dict[str, RunResult]:
    """Request-reorder policies (repro.sim.scheduler) under METAL-IX."""
    from repro.sim.scheduler import POLICIES, schedule

    workload = workload or build_workload("scan", scale=scale)
    sim = workload.config.sim_params()
    results = {}
    for policy in POLICIES:
        memsys = build_memsys("metal_ix", workload)
        ordered = schedule(workload.requests, policy)
        results[policy] = simulate(
            memsys, ordered, sim, workload.total_index_blocks
        )
    return results


def format_scheduling(results: dict[str, RunResult]) -> str:
    headers = ["policy", "makespan", "index DRAM", "row-hit rate"]
    rows = []
    for policy, run in results.items():
        total_rows = run.dram.row_hits + run.dram.row_misses
        rows.append([
            policy, run.makespan, run.index_dram_accesses,
            run.dram.row_hits / max(1, total_rows),
        ])
    return render_table(
        headers, rows, "Ablation — walk-issue scheduling policies (METAL-IX)"
    )


def main() -> None:  # pragma: no cover
    workload = build_workload("scan", scale=0.25)
    print(format_geometry(run_geometry_sweep(workload)))
    print()
    print(format_shared_vs_private(run_shared_vs_private(workload)))
    print()
    print(format_toggles(run_mechanism_toggles(workload)))
    print()
    print(format_scheduling(run_scheduling(workload)))


if __name__ == "__main__":  # pragma: no cover
    main()
