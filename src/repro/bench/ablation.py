"""Ablations over METAL's design choices (DESIGN.md's supplemental axes).

* **Geometry** — associativity sweep (paper supplemental: "Best geometry:
  16-way. 16 banked").
* **Shared vs. private** — one IX-cache shared by all tiles vs. the same
  capacity partitioned per tile (paper: "Shared is best since access every
  70-180 cycles").
* **Mechanism toggles** — Case-3 coalescing, key-focused insertion,
  touch-filter admission, and the next-line prefetcher on the address
  baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.sim.metrics import RunResult
from repro.workloads.suite import Workload, build_workload


def _ablation_workload(
    workload: Workload | None, scale: float, executor: Executor,
    default_name: str = "scan",
) -> Workload:
    """Resolve the prebuilt-or-default workload and donate it to workers."""
    workload = workload or build_workload(default_name, scale=scale)
    executor.seed_workloads([workload])
    return workload


# --------------------------------------------------------------------- #
# Geometry (ways) sweep
# --------------------------------------------------------------------- #

def run_geometry_sweep(
    workload: Workload | None = None,
    ways_options: tuple[int, ...] = (1, 4, 8, 16, 32),
    scale: float = 0.25,
    executor: Executor | None = None,
) -> dict[int, RunResult]:
    executor = executor or default_executor()
    workload = _ablation_workload(workload, scale, executor)
    specs = [
        RunSpec.make(
            workload.name, "metal", scale=workload.scale, seed=workload.seed,
            cache_kwargs={"ways": ways},
        )
        for ways in ways_options
    ]
    return dict(zip(ways_options, executor.run_results(specs)))


def format_geometry(results: dict[int, RunResult]) -> str:
    headers = ["ways", "makespan", "avg walk latency", "miss rate"]
    rows = [
        [ways, r.makespan, r.avg_walk_latency, r.miss_rate]
        for ways, r in sorted(results.items())
    ]
    return render_table(headers, rows, "Ablation — IX-cache associativity")


# --------------------------------------------------------------------- #
# Shared vs. private IX-cache
# --------------------------------------------------------------------- #

@dataclass
class SharedVsPrivate:
    shared: RunResult
    private_makespan: int
    num_partitions: int
    private_hit_rate: float


def run_shared_vs_private(
    workload: Workload | None = None,
    partitions: int = 4,
    scale: float = 0.25,
    executor: Executor | None = None,
) -> SharedVsPrivate:
    """Same total capacity: one shared cache vs. per-tile-group slices.

    Private slices lose cooperative caching: a node cached by one tile
    group cannot short-circuit another group's walks.
    """
    executor = executor or default_executor()
    workload = _ablation_workload(workload, scale, executor)
    name, scale, seed = workload.name, workload.scale, workload.seed

    # Each private slice serves one tile group: 1/partitions of the tiles,
    # 1/partitions of the capacity, 1/partitions of the walks. Wall time is
    # the slowest group (they run concurrently).
    group_tiles = max(1, workload.config.tiles // partitions)
    slice_bytes = max(1024, workload.default_cache_bytes // partitions)
    specs = [RunSpec(workload=name, system="metal", scale=scale, seed=seed)]
    specs.extend(
        RunSpec(
            workload=name, system="metal", scale=scale, seed=seed,
            tiles=group_tiles, cache_bytes=slice_bytes,
            requests_slice=(i, partitions),
        )
        for i in range(partitions)
    )
    shared, *privates = executor.run_results(specs)
    makespan = 0
    hits = accesses = 0
    for run in privates:
        makespan = max(makespan, run.makespan)
        if run.cache_stats:
            hits += run.cache_stats.hits
            accesses += run.cache_stats.accesses
    return SharedVsPrivate(
        shared=shared,
        private_makespan=makespan,
        num_partitions=partitions,
        private_hit_rate=hits / accesses if accesses else 0.0,
    )


def format_shared_vs_private(result: SharedVsPrivate) -> str:
    shared_hit = result.shared.cache_stats.hit_rate if result.shared.cache_stats else 0.0
    headers = ["organization", "makespan", "hit rate"]
    rows = [
        ["shared", result.shared.makespan, shared_hit],
        [f"private x{result.num_partitions}", result.private_makespan,
         result.private_hit_rate],
    ]
    return render_table(
        headers, rows, "Ablation — shared vs. private IX-cache (equal capacity)"
    )


# --------------------------------------------------------------------- #
# Mechanism toggles
# --------------------------------------------------------------------- #

@dataclass
class ToggleResult:
    label: str
    run: RunResult


def run_mechanism_toggles(
    workload: Workload | None = None, scale: float = 0.25,
    executor: Executor | None = None,
) -> list[ToggleResult]:
    executor = executor or default_executor()
    workload = _ablation_workload(workload, scale, executor)
    base = dict(scale=workload.scale, seed=workload.seed)
    cells = [
        ("metal (default)",
         RunSpec.make(workload.name, "metal", **base)),
        # Case-3 coalescing off.
        ("no coalescing",
         RunSpec.make(workload.name, "metal", **base,
                      memsys_kwargs={"coalesce": False})),
        # Fully-associative IX-cache (no key-block sets).
        ("fully associative",
         RunSpec.make(workload.name, "metal", **base,
                      memsys_kwargs={"associative": False})),
        # Address baseline variants: flat, next-line prefetch, two-level.
        ("address", RunSpec.make(workload.name, "address", **base)),
        ("address + prefetch",
         RunSpec.make(workload.name, "address_pf", **base)),
        ("address L1+L2",
         RunSpec.make(workload.name, "address_l2", **base)),
    ]
    folded = executor.run_results([spec for _, spec in cells])
    return [ToggleResult(label, run)
            for (label, _), run in zip(cells, folded)]


def format_toggles(results: list[ToggleResult]) -> str:
    headers = ["configuration", "makespan", "avg walk latency", "index DRAM"]
    rows = [
        [r.label, r.run.makespan, r.run.avg_walk_latency, r.run.index_dram_accesses]
        for r in results
    ]
    return render_table(headers, rows, "Ablation — mechanism toggles")


# --------------------------------------------------------------------- #
# Walk-scheduling policies
# --------------------------------------------------------------------- #

def run_scheduling(
    workload: Workload | None = None, scale: float = 0.25,
    executor: Executor | None = None,
) -> dict[str, RunResult]:
    """Request-reorder policies (repro.sim.scheduler) under METAL-IX."""
    from repro.sim.scheduler import POLICIES

    executor = executor or default_executor()
    workload = _ablation_workload(workload, scale, executor)
    specs = [
        RunSpec(
            workload=workload.name, system="metal_ix",
            scale=workload.scale, seed=workload.seed, schedule=policy,
        )
        for policy in POLICIES
    ]
    return dict(zip(POLICIES, executor.run_results(specs)))


def format_scheduling(results: dict[str, RunResult]) -> str:
    headers = ["policy", "makespan", "index DRAM", "row-hit rate"]
    rows = []
    for policy, run in results.items():
        total_rows = run.dram.row_hits + run.dram.row_misses
        rows.append([
            policy, run.makespan, run.index_dram_accesses,
            run.dram.row_hits / max(1, total_rows),
        ])
    return render_table(
        headers, rows, "Ablation — walk-issue scheduling policies (METAL-IX)"
    )


def main() -> None:  # pragma: no cover
    workload = build_workload("scan", scale=0.25)
    print(format_geometry(run_geometry_sweep(workload)))
    print()
    print(format_shared_vs_private(run_shared_vs_private(workload)))
    print()
    print(format_toggles(run_mechanism_toggles(workload)))
    print()
    print(format_scheduling(run_scheduling(workload)))


if __name__ == "__main__":  # pragma: no cover
    main()
