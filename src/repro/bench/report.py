"""Regenerate every table and figure into one text report.

Usage::

    python -m repro.bench.report [--scale 0.25] [--out report.txt]

Workloads are built once per scale and shared across experiments.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import adaptivity, breakdown, energy, occupancy, scaling
from repro.bench import speedup as speedup_mod
from repro.bench import summary as summary_mod
from repro.bench import sweep, tables, tagmatch, trends
from repro.workloads.suite import WORKLOAD_BUILDERS, build_workload


def generate_report(
    scale: float = 0.25, fast: bool = False,
    collect_json: dict | None = None,
) -> str:
    """Run the full harness; returns the text report.

    When ``collect_json`` is a dict, machine-readable figure data is
    stored into it (per-workload speedups, Table-3 ratios, per-run stats).
    """
    sections: list[str] = []
    started = time.time()
    prebuilt = {
        name: build_workload(name, scale=scale) for name in WORKLOAD_BUILDERS
    }

    def add(title: str, body: str) -> None:
        sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")

    add("Fig. 7", tagmatch.format_fig7(tagmatch.run_tagmatch()))
    add("Table 2", tables.format_table2(list(prebuilt.values())))

    trend_results = trends.run_trends(scale=scale, prebuilt=prebuilt)
    add("Fig. 15", trends.format_fig15(trend_results))
    add("Fig. 16", trends.format_fig16(trend_results))
    add("Fig. 17", trends.format_fig17(trend_results))

    speedup_results = speedup_mod.run_speedups(scale=scale, prebuilt=prebuilt)
    add("Fig. 18", speedup_mod.format_fig18(speedup_results))
    if collect_json is not None:
        collect_json["scale"] = scale
        collect_json["fig18"] = {
            r.workload: {k: run.to_dict() for k, run in r.runs.items()}
            for r in speedup_results
        }
        collect_json["headline"] = speedup_mod.headline_ratios(speedup_results)

    energy_results = energy.run_energy(scale=scale, prebuilt=prebuilt)
    add("Fig. 19", energy.format_fig19(energy_results))
    add("Fig. 25", energy.format_fig25(energy_results))

    add("Fig. 20", breakdown.format_fig20(
        breakdown.run_breakdown(scale=scale, prebuilt=prebuilt)))
    add("Fig. 21", occupancy.format_fig21(
        occupancy.run_occupancy(scale=scale, prebuilt=prebuilt)))
    add("Fig. 22", adaptivity.format_fig22(
        adaptivity.run_adaptivity(scale=scale, prebuilt=prebuilt.get("scan"))))

    if not fast:
        scaling_result = scaling.run_scaling()
        add("Fig. 23a", scaling.format_fig23a(scaling_result.records_sweep))
        add("Fig. 23b", scaling.format_fig23b(scaling_result.depth_sweep))
        add("Fig. 24", sweep.format_fig24(sweep.run_sweep(scale=scale, prebuilt=prebuilt)))

    table3 = summary_mod.run_summary(scale=scale)
    add("Table 3", summary_mod.format_table3(table3))
    if collect_json is not None:
        collect_json["table3"] = {
            "speedup": table3.ratios,
            "energy": table3.energy_ratios,
            "ix_only": table3.ix_only_ratios,
            "pattern_gain": list(table3.pattern_gain),
        }

    elapsed = time.time() - started
    sections.append(f"Report generated in {elapsed:.1f}s at scale {scale}.\n")
    return "\n".join(sections)


def trace_overhead_check(
    scale: float = 0.1, workload_name: str = "scan", system: str = "metal"
) -> str:
    """Measure the observability layer's cost on one (workload, system).

    Runs the same simulation with tracing off and on, asserts the
    aggregate numbers are identical (instrumentation must not perturb the
    model), and reports the wall-clock overhead plus the counter snapshot
    of the traced run.
    """
    from dataclasses import replace

    from repro.bench.format import render_table
    from repro.bench.runner import build_memsys
    from repro.sim.metrics import simulate

    lines: list[str] = []
    workload = build_workload(workload_name, scale=scale)
    timings: dict[bool, float] = {}
    results = {}
    for trace in (False, True):
        sim = replace(workload.config.sim_params(), trace=trace)
        memsys = build_memsys(system, workload, sim=sim)
        started = time.perf_counter()
        results[trace] = simulate(
            memsys, workload.requests, sim, workload.total_index_blocks
        )
        timings[trace] = time.perf_counter() - started
    off, on = results[False], results[True]
    for attr in ("makespan", "num_walks", "total_walk_cycles",
                 "short_circuited", "index_dram_accesses"):
        a, b = getattr(off, attr), getattr(on, attr)
        if a != b:
            raise AssertionError(
                f"tracing perturbed {attr}: off={a} on={b}"
            )
    overhead = (timings[True] - timings[False]) / max(timings[False], 1e-9)
    lines.append(
        f"{workload.name} / {system}: aggregates identical with tracing "
        f"on/off; wall-clock overhead {overhead * 100:+.1f}% "
        f"({timings[False]:.3f}s -> {timings[True]:.3f}s)"
    )
    assert on.tracer is not None and on.counters is not None
    lines.append(
        f"{len(on.tracer)} events buffered, {on.tracer.dropped} dropped"
    )
    rows = [[name, value] for name, value in on.counters.items()
            if name.startswith(("events.", "cache.", "dram.", "engine."))]
    lines.append(render_table(["counter", "value"], rows, "Counter snapshot"))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (1.0 = repo default sizes)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the report to this file as well as stdout")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable figure data to this file")
    parser.add_argument("--fast", action="store_true",
                        help="skip the slow Fig. 23/24 sweeps")
    parser.add_argument("--verify-trace-overhead", action="store_true",
                        help="only check the observability layer: identical "
                             "aggregates with tracing on/off + overhead %%")
    args = parser.parse_args(argv)
    if args.verify_trace_overhead:
        print(trace_overhead_check(scale=args.scale))
        return 0
    payload: dict | None = {} if args.json else None
    report = generate_report(scale=args.scale, fast=args.fast,
                             collect_json=payload)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report)
    if args.json and payload is not None:
        import json

        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
