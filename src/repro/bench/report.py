"""Regenerate every table and figure into one text report.

Usage::

    python -m repro.bench.report [--scale 0.25] [--out report.txt]

Workloads are built once per scale and shared across experiments.

Regression baselines: ``--baseline FILE --write-baseline`` stores the
per-figure key metrics (Fig. 18 speedups, headline ratios, Table-3
geomeans) of this run; a later ``--baseline FILE`` run compares against
them and exits nonzero when any metric moved beyond the relative
tolerance. The simulation is deterministic integer-cycle, so at a fixed
scale/seed the stored metrics are exactly reproducible across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

#: Default relative tolerance for baseline comparison. Generous enough to
#: absorb intentional small model adjustments; a genuine perf regression
#: moves the headline ratios far more than this.
BASELINE_DEFAULT_RTOL = 0.05
#: Baseline file schema version (bump on incompatible layout changes).
BASELINE_SCHEMA = 1

#: Exit codes for the baseline path (also used by CI).
EXIT_BASELINE_MISSING = 2
EXIT_REGRESSION = 3

from repro.bench import adaptivity, breakdown, energy, occupancy, scaling
from repro.bench import speedup as speedup_mod
from repro.bench import summary as summary_mod
from repro.bench import sweep, tables, tagmatch, trends
from repro.exec import ExecError, Executor, ResultStore
from repro.workloads.suite import WORKLOAD_BUILDERS, build_workload


def generate_report(
    scale: float = 0.25, fast: bool = False,
    collect_json: dict | None = None,
    executor: Executor | None = None,
) -> str:
    """Run the full harness; returns the text report.

    When ``collect_json`` is a dict, machine-readable figure data is
    stored into it (per-workload speedups, Table-3 ratios, per-run stats).

    Cells are submitted through ``executor`` (an in-process serial one is
    created when omitted); a failed cell turns its section into a failure
    note — spec plus worker traceback — instead of killing the report.
    """
    sections: list[str] = []
    started = time.time()
    own_executor = executor is None
    executor = executor or Executor(jobs=1)
    prebuilt = {
        name: build_workload(name, scale=scale) for name in WORKLOAD_BUILDERS
    }

    def add(title: str, body: str) -> None:
        sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")

    def guarded(block) -> None:
        """Run one experiment block; render its failure instead of dying."""
        try:
            block()
        except ExecError as exc:
            add(f"{getattr(block, '__name__', 'section')} FAILED", str(exc))

    add("Fig. 7", tagmatch.format_fig7(tagmatch.run_tagmatch()))
    add("Table 2", tables.format_table2(list(prebuilt.values())))

    def figs_15_17() -> None:
        trend_results = trends.run_trends(
            scale=scale, prebuilt=prebuilt, executor=executor)
        add("Fig. 15", trends.format_fig15(trend_results))
        add("Fig. 16", trends.format_fig16(trend_results))
        add("Fig. 17", trends.format_fig17(trend_results))

    def fig_18() -> None:
        speedup_results = speedup_mod.run_speedups(
            scale=scale, prebuilt=prebuilt, executor=executor)
        add("Fig. 18", speedup_mod.format_fig18(speedup_results))
        if collect_json is not None:
            collect_json["fig18"] = {
                r.workload: {k: run.to_dict() for k, run in r.runs.items()}
                for r in speedup_results
            }
            collect_json["headline"] = speedup_mod.headline_ratios(
                speedup_results)

    def figs_19_25() -> None:
        energy_results = energy.run_energy(
            scale=scale, prebuilt=prebuilt, executor=executor)
        add("Fig. 19", energy.format_fig19(energy_results))
        add("Fig. 25", energy.format_fig25(energy_results))

    def fig_20() -> None:
        add("Fig. 20", breakdown.format_fig20(
            breakdown.run_breakdown(
                scale=scale, prebuilt=prebuilt, executor=executor)))

    def attribution() -> None:
        add("Cycle attribution", breakdown.format_attribution(
            breakdown.run_attribution(
                scale=scale, prebuilt=prebuilt, executor=executor)))

    def fig_21() -> None:
        add("Fig. 21", occupancy.format_fig21(
            occupancy.run_occupancy(
                scale=scale, prebuilt=prebuilt, executor=executor)))

    def fig_22() -> None:
        add("Fig. 22", adaptivity.format_fig22(
            adaptivity.run_adaptivity(
                scale=scale, prebuilt=prebuilt.get("scan"),
                executor=executor)))

    def figs_23_24() -> None:
        scaling_result = scaling.run_scaling(executor=executor)
        add("Fig. 23a", scaling.format_fig23a(scaling_result.records_sweep))
        add("Fig. 23b", scaling.format_fig23b(scaling_result.depth_sweep))
        add("Fig. 24", sweep.format_fig24(
            sweep.run_sweep(scale=scale, prebuilt=prebuilt,
                            executor=executor)))

    def table_3() -> None:
        table3 = summary_mod.run_summary(scale=scale, executor=executor)
        add("Table 3", summary_mod.format_table3(table3))
        if collect_json is not None:
            collect_json["table3"] = {
                "speedup": table3.ratios,
                "energy": table3.energy_ratios,
                "ix_only": table3.ix_only_ratios,
                "pattern_gain": list(table3.pattern_gain),
            }

    if collect_json is not None:
        collect_json["scale"] = scale
    try:
        guarded(figs_15_17)
        guarded(fig_18)
        guarded(figs_19_25)
        guarded(fig_20)
        if not fast:
            guarded(attribution)
        guarded(fig_21)
        guarded(fig_22)
        if not fast:
            guarded(figs_23_24)
        guarded(table_3)
    finally:
        if own_executor:
            executor.close()

    elapsed = time.time() - started
    sections.append(executor.stats.summary(executor.jobs))
    sections.append(f"Report generated in {elapsed:.1f}s at scale {scale}.\n")
    return "\n".join(sections)


def extract_key_metrics(payload: dict) -> dict[str, float]:
    """Flatten a ``collect_json`` payload into baseline-worthy metrics.

    Speedups and ratios rather than raw makespans: ratios are what the
    paper reports and they stay meaningful across deliberate retimings
    of a single component.
    """
    metrics: dict[str, float] = {}
    for workload, runs in sorted((payload.get("fig18") or {}).items()):
        base = runs.get("stream")
        base_makespan = base["makespan"] if base else 0
        for system, run in sorted(runs.items()):
            if base_makespan:
                metrics[f"fig18.{workload}.{system}.speedup"] = (
                    base_makespan / max(1, run["makespan"])
                )
            metrics[f"fig18.{workload}.{system}.miss_rate"] = run["miss_rate"]
            metrics[f"fig18.{workload}.{system}.working_set"] = (
                run["working_set_fraction"]
            )
    for name, value in sorted((payload.get("headline") or {}).items()):
        metrics[f"headline.{name}"] = float(value)
    table3 = payload.get("table3") or {}
    for group in ("speedup", "energy", "ix_only"):
        for name, value in sorted((table3.get(group) or {}).items()):
            metrics[f"table3.{group}.{name}"] = float(value)
    for i, value in enumerate(table3.get("pattern_gain") or ()):
        metrics[f"table3.pattern_gain.{i}"] = float(value)
    return metrics


def write_baseline(path: str, payload: dict, rtol: float) -> dict:
    """Store this run's key metrics as the regression baseline."""
    baseline = {
        "schema": BASELINE_SCHEMA,
        "scale": payload.get("scale"),
        "rtol": rtol,
        "metrics": extract_key_metrics(payload),
    }
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    return baseline


def compare_baseline(
    baseline: dict, payload: dict, rtol: float | None = None
) -> tuple[list[str], list[str]]:
    """Compare a run against a stored baseline.

    Returns ``(regressions, notes)``. A metric regresses when its
    relative difference exceeds ``rtol`` (the baseline's stored tolerance
    unless overridden) or when it vanished from the run; metrics new in
    the run are notes only — they regress nothing until baselined.
    """
    tol = rtol if rtol is not None else baseline.get("rtol", BASELINE_DEFAULT_RTOL)
    expected: dict[str, float] = baseline.get("metrics", {})
    actual = extract_key_metrics(payload)
    regressions: list[str] = []
    notes: list[str] = []
    if baseline.get("scale") != payload.get("scale"):
        regressions.append(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"run {payload.get('scale')} (metrics are scale-dependent)"
        )
        return regressions, notes
    for name, want in sorted(expected.items()):
        if name not in actual:
            regressions.append(f"{name}: missing from run (baseline {want:.6g})")
            continue
        got = actual[name]
        denom = max(abs(want), 1e-12)
        rel = abs(got - want) / denom
        if rel > tol:
            regressions.append(
                f"{name}: {got:.6g} vs baseline {want:.6g} "
                f"({rel * 100:+.1f}% > {tol * 100:.1f}% tolerance)"
            )
    for name in sorted(set(actual) - set(expected)):
        notes.append(f"{name}: new metric {actual[name]:.6g} (not in baseline)")
    return regressions, notes


def trace_overhead_check(
    scale: float = 0.1, workload_name: str = "scan", system: str = "metal"
) -> str:
    """Measure the observability layer's cost on one (workload, system).

    Runs the same simulation with tracing off and on, asserts the
    aggregate numbers are identical (instrumentation must not perturb the
    model), and reports the wall-clock overhead plus the counter snapshot
    of the traced run.
    """
    from dataclasses import replace

    from repro.bench.format import render_table
    from repro.bench.runner import build_memsys
    from repro.sim.metrics import simulate

    lines: list[str] = []
    workload = build_workload(workload_name, scale=scale)
    timings: dict[bool, float] = {}
    results = {}
    for trace in (False, True):
        sim = replace(workload.config.sim_params(), trace=trace)
        memsys = build_memsys(system, workload, sim=sim)
        started = time.perf_counter()
        # record_latencies=True in both modes so the latency/depth
        # histograms exist on both sides of the byte-identity check.
        results[trace] = simulate(
            memsys, workload.requests, sim, workload.total_index_blocks,
            record_latencies=True,
        )
        timings[trace] = time.perf_counter() - started
    off, on = results[False], results[True]
    for attr in ("makespan", "num_walks", "total_walk_cycles",
                 "short_circuited", "index_dram_accesses"):
        a, b = getattr(off, attr), getattr(on, attr)
        if a != b:
            raise AssertionError(
                f"tracing perturbed {attr}: off={a} on={b}"
            )
    on_dict = dict(on.to_dict())
    on_dict.pop("counters", None)  # tracing-only by construction
    off_json = json.dumps(off.to_dict(), sort_keys=True)
    on_json = json.dumps(on_dict, sort_keys=True)
    if off_json != on_json:
        raise AssertionError(
            "tracing perturbed the to_dict() summary (counters aside):\n"
            f"off: {off_json}\non:  {on_json}"
        )
    overhead = (timings[True] - timings[False]) / max(timings[False], 1e-9)
    lines.append(
        f"{workload.name} / {system}: aggregates identical with tracing "
        f"on/off (to_dict byte-identical, counters aside); wall-clock "
        f"overhead {overhead * 100:+.1f}% "
        f"({timings[False]:.3f}s -> {timings[True]:.3f}s)"
    )
    assert on.tracer is not None and on.counters is not None
    lines.append(
        f"{len(on.tracer)} events buffered, {on.tracer.dropped} dropped"
    )
    rows = [[name, value] for name, value in on.counters.items()
            if name.startswith(("events.", "cache.", "dram.", "engine."))]
    lines.append(render_table(["counter", "value"], rows, "Counter snapshot"))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (1.0 = repo default sizes)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the report to this file as well as stdout")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable figure data to this file")
    parser.add_argument("--fast", action="store_true",
                        help="skip the slow Fig. 23/24 sweeps")
    parser.add_argument("--jobs", type=str, default="1",
                        help="worker processes for simulation cells: a "
                             "number or 'auto' (all cores); 1 = in-process")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk result cache and recompute "
                             "every cell")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result cache root (default: $REPRO_CACHE_DIR "
                             "or .repro_cache)")
    parser.add_argument("--verify-trace-overhead", action="store_true",
                        help="only check the observability layer: identical "
                             "aggregates with tracing on/off + overhead %%")
    parser.add_argument("--baseline", type=str, default=None,
                        help="compare key metrics against this baseline "
                             "JSON; nonzero exit on regression")
    parser.add_argument("--write-baseline", action="store_true",
                        help="(re)write the --baseline file from this run")
    parser.add_argument("--baseline-rtol", type=float, default=None,
                        help="relative tolerance for baseline comparison "
                             "(default: the baseline file's stored value)")
    args = parser.parse_args(argv)
    if args.verify_trace_overhead:
        print(trace_overhead_check(scale=args.scale))
        return 0
    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline FILE")
    payload: dict | None = {} if (args.json or args.baseline) else None
    store = None
    if not args.no_cache:
        store = ResultStore(root=args.cache_dir)
        store.prune_stale()
    with Executor(jobs=args.jobs, store=store) as executor:
        report = generate_report(scale=args.scale, fast=args.fast,
                                 collect_json=payload, executor=executor)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report)
    if args.json and payload is not None:
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
    if args.baseline:
        assert payload is not None
        if args.write_baseline:
            baseline = write_baseline(
                args.baseline, payload,
                args.baseline_rtol if args.baseline_rtol is not None
                else BASELINE_DEFAULT_RTOL,
            )
            print(f"baseline written to {args.baseline} "
                  f"({len(baseline['metrics'])} metrics, "
                  f"rtol {baseline['rtol']})")
            return 0
        if not os.path.exists(args.baseline):
            print(f"baseline file not found: {args.baseline} "
                  f"(create it with --write-baseline)", file=sys.stderr)
            return EXIT_BASELINE_MISSING
        with open(args.baseline) as f:
            baseline = json.load(f)
        regressions, notes = compare_baseline(
            baseline, payload, rtol=args.baseline_rtol
        )
        for note in notes:
            print(f"note: {note}")
        if regressions:
            print(f"{len(regressions)} metric(s) regressed vs "
                  f"{args.baseline}:", file=sys.stderr)
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
            return EXIT_REGRESSION
        print(f"baseline check passed: "
              f"{len(baseline.get('metrics', {}))} metrics within "
              f"tolerance of {args.baseline}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
