"""Fig. 22 — level-pattern adaptivity over walk windows.

Replays the Scan workload in windows and records the level band the tuned
descriptor settles on per batch, against the static (untuned) band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.workloads.suite import Workload


@dataclass
class AdaptivityResult:
    workload: str
    windows: list[dict[str, Any]] = field(default_factory=list)


def run_adaptivity(
    workload_name: str = "scan",
    scale: float = 0.25,
    num_windows: int = 10,
    prebuilt: Workload | None = None,
    executor: Executor | None = None,
) -> AdaptivityResult:
    executor = executor or default_executor()
    if prebuilt is not None:
        executor.seed_workloads([prebuilt])
        scale, seed = prebuilt.scale, prebuilt.seed
    else:
        seed = 0
    spec = RunSpec.make(
        workload_name, "metal", scale=scale, seed=seed,
        memsys_kwargs={"batch_windows": num_windows, "tune": True},
        collect=("controller_history", "start_levels"),
    )
    outcome = executor.run([spec])[0]
    run = outcome.require()
    history = outcome.extras["controller_history"]
    start_levels = outcome.extras["start_levels"]
    batch = max(50, run.num_walks // num_windows)
    result = AdaptivityResult(workload_name)
    for i, entry in enumerate(history):
        descriptor = entry["descriptors"][0]
        window_levels = start_levels[i * batch : (i + 1) * batch]
        mean_start = (
            sum(window_levels) / len(window_levels) if window_levels else 0.0
        )
        result.windows.append(
            {
                "window": i + 1,
                "start": descriptor.get("start"),
                "end": descriptor.get("end"),
                "mean_start_level": mean_start,
                "hit_rate": entry["hit_rate"],
                "occupancy": entry["occupancy"],
            }
        )
    return result


def format_fig22(result: AdaptivityResult) -> str:
    headers = [
        "window", "band start", "band end", "mean short-circuit level",
        "hit rate", "occupancy",
    ]
    rows = [
        [w["window"], w["start"], w["end"], w["mean_start_level"],
         w["hit_rate"], w["occupancy"]]
        for w in result.windows
    ]
    return render_table(
        headers, rows,
        f"Fig. 22 — Level-pattern adaptivity per walk window ({result.workload}): "
        "the cached frontier deepens as parameters tune",
    )


def main() -> None:  # pragma: no cover
    print(format_fig22(run_adaptivity()))


if __name__ == "__main__":  # pragma: no cover
    main()
