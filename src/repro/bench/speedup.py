"""Fig. 18 — speedup of every organization over the streaming DSA.

"METAL improves performance vs. streaming DSAs by 7.8x, address-caches by
4.1x, and state-of-the-art DSA-cache by 2.4x." The shallow (-S) variants
demonstrate that the advantage shrinks when there is little reach to
exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import geomean, render_bars, render_table
from repro.bench.runner import SYSTEMS
from repro.exec import Executor, RunSpec, default_executor
from repro.sim.metrics import RunResult
from repro.workloads.suite import PAPER_LABELS, WORKLOAD_BUILDERS, Workload

ALL_WORKLOADS = tuple(WORKLOAD_BUILDERS)


@dataclass
class SpeedupResult:
    workload: str
    runs: dict[str, RunResult] = field(default_factory=dict)

    def speedups(self) -> dict[str, float]:
        base = self.runs["stream"].makespan
        return {k: base / max(1, r.makespan) for k, r in self.runs.items()}


def run_speedups(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    scale: float = 0.25,
    prebuilt: dict[str, Workload] | None = None,
    executor: Executor | None = None,
) -> list[SpeedupResult]:
    executor = executor or default_executor()
    executor.seed_workloads(prebuilt)
    specs: list[RunSpec] = []
    for name in workloads:
        workload = (prebuilt or {}).get(name)
        cell_scale = workload.scale if workload is not None else scale
        seed = workload.seed if workload is not None else 0
        specs.extend(
            RunSpec(workload=name, system=kind, scale=cell_scale, seed=seed)
            for kind in SYSTEMS
        )
    folded = executor.run_results(specs)
    results = []
    for i, name in enumerate(workloads):
        runs = dict(zip(SYSTEMS, folded[i * len(SYSTEMS):(i + 1) * len(SYSTEMS)]))
        results.append(SpeedupResult(name, runs))
    return results


def headline_ratios(results: list[SpeedupResult]) -> dict[str, float]:
    """Geomean METAL advantage over each baseline (the abstract's claims)."""
    ratios: dict[str, list[float]] = {"stream": [], "address": [], "xcache": [], "metal_ix": []}
    for result in results:
        metal = result.runs["metal"].makespan
        for base in ratios:
            ratios[base].append(result.runs[base].makespan / max(1, metal))
    return {base: geomean(vals) for base, vals in ratios.items()}


def format_fig18(results: list[SpeedupResult]) -> str:
    headers = ["workload", *SYSTEMS]
    rows = []
    for result in results:
        sp = result.speedups()
        rows.append([PAPER_LABELS.get(result.workload, result.workload)]
                    + [sp[s] for s in SYSTEMS])
    ratios = headline_ratios(results)
    table = render_table(
        headers, rows, "Fig. 18 — Speedup over the streaming DSA (higher is better)"
    )
    bars = render_bars(
        [PAPER_LABELS.get(r.workload, r.workload) for r in results],
        [r.speedups()["metal"] for r in results],
        title="\nMETAL speedup per workload:",
    )
    summary = (
        "\nHeadline (geomean METAL advantage): "
        + ", ".join(f"{k}: {v:.2f}x" for k, v in ratios.items())
    )
    return table + "\n" + bars + summary


def main() -> None:  # pragma: no cover
    print(format_fig18(run_speedups()))


if __name__ == "__main__":  # pragma: no cover
    main()
