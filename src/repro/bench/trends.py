"""Figs. 15-17 — miss rate, working set, walk latency across organizations.

Section 5.1's "initial investigation on why METAL's cache organization is
fundamentally more effective": compares METAL against X-cache and a
fully-associative OPT address cache at equal capacity, plus a 16x-larger
FA address cache (the paper's "FA (1MB)").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.sim.metrics import RunResult
from repro.workloads.suite import PAPER_LABELS, Workload

#: Organizations of Figs. 15-17, plus the 16x FA cache of Observation 6.
TREND_SYSTEMS = ("fa_opt", "xcache", "metal_ix", "metal")
DEFAULT_WORKLOADS = ("scan", "sets", "spmm", "join", "rtree", "pagerank")


@dataclass
class TrendResult:
    """Per-workload, per-system metrics behind Figs. 15-17."""

    workload: str
    runs: dict[str, RunResult] = field(default_factory=dict)

    def miss_rates(self) -> dict[str, float]:
        return {k: r.miss_rate for k, r in self.runs.items()}

    def working_sets(self) -> dict[str, float]:
        return {k: r.working_set_fraction for k, r in self.runs.items()}

    def walk_latencies(self) -> dict[str, float]:
        return {k: r.avg_walk_latency for k, r in self.runs.items()}


def run_trends(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.25,
    big_factor: int = 16,
    prebuilt: dict[str, Workload] | None = None,
    executor: Executor | None = None,
) -> list[TrendResult]:
    """Run the Fig. 15-17 comparison; includes the big FA address cache."""
    executor = executor or default_executor()
    executor.seed_workloads(prebuilt)
    cell_systems = (*TREND_SYSTEMS, "fa_big", "stream")
    specs: list[RunSpec] = []
    for name in workloads:
        workload = (prebuilt or {}).get(name)
        cell_scale = workload.scale if workload is not None else scale
        seed = workload.seed if workload is not None else 0
        for kind in TREND_SYSTEMS:
            specs.append(
                RunSpec(workload=name, system=kind, scale=cell_scale, seed=seed)
            )
        specs.append(RunSpec(
            workload=name, system="fa_opt", scale=cell_scale, seed=seed,
            cache_factor=big_factor,
        ))
        specs.append(
            RunSpec(workload=name, system="stream", scale=cell_scale, seed=seed)
        )
    folded = executor.run_results(specs)
    results = []
    stride = len(cell_systems)
    for i, name in enumerate(workloads):
        trend = TrendResult(name)
        trend.runs = dict(zip(cell_systems, folded[i * stride:(i + 1) * stride]))
        results.append(trend)
    return results


def _table(results: list[TrendResult], metric: str, title: str) -> str:
    systems = ["fa_opt", "fa_big", "xcache", "metal_ix", "metal"]
    headers = ["workload", *systems]
    rows = []
    for trend in results:
        values = getattr(trend, metric)()
        rows.append([PAPER_LABELS.get(trend.workload, trend.workload)]
                    + [values.get(s, float("nan")) for s in systems])
    return render_table(headers, rows, title)


def format_fig15(results: list[TrendResult]) -> str:
    return _table(results, "miss_rates", "Fig. 15 — Miss rate (lower is better)")


def format_fig16(results: list[TrendResult]) -> str:
    return _table(
        results, "working_sets",
        "Fig. 16 — Working set: fraction of index walk traffic served by DRAM",
    )


def format_fig17(results: list[TrendResult]) -> str:
    return _table(
        results, "walk_latencies", "Fig. 17 — Average walk latency in cycles"
    )


def main() -> None:  # pragma: no cover - CLI convenience
    results = run_trends()
    print(format_fig15(results))
    print()
    print(format_fig16(results))
    print()
    print(format_fig17(results))


if __name__ == "__main__":  # pragma: no cover
    main()
