"""Fig. 24 — design sweep: tile count x IX-cache size, with regions.

The paper sweeps 16-128 tiles and 8 kB-2 MB caches and classifies each
point as Bandwidth-, Cache-, or Parallelism-limited. At our reduced scale
the tile counts and cache sizes shrink by the same ~4-8x factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.format import render_table
from repro.exec import Executor, RunSpec, default_executor
from repro.workloads.suite import PAPER_LABELS, Workload

DEFAULT_WORKLOADS = ("join", "spmm", "rtree")
DEFAULT_TILES = (4, 8, 16, 32)
DEFAULT_CACHES = (2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024)

#: Region classification thresholds (paper: Band.Lim is >= 50% of peak
#: HBM bandwidth).
BANDWIDTH_LIMIT = 0.5
MISS_LIMIT = 0.3


@dataclass
class SweepCell:
    workload: str
    tiles: int
    cache_bytes: int
    speedup: float
    bandwidth: float
    miss_rate: float

    @property
    def region(self) -> str:
        if self.bandwidth >= BANDWIDTH_LIMIT:
            return "band.lim"
        if self.miss_rate >= MISS_LIMIT:
            return "cache.lim"
        return "par.lim"


def run_sweep(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    tiles: tuple[int, ...] = DEFAULT_TILES,
    caches: tuple[int, ...] = DEFAULT_CACHES,
    scale: float = 0.25,
    base_tiles: int = 4,
    prebuilt: dict[str, Workload] | None = None,
    executor: Executor | None = None,
) -> list[SweepCell]:
    """Normalized speedup grid; base = small-tile streaming DSA."""
    executor = executor or default_executor()
    executor.seed_workloads(prebuilt)
    specs: list[RunSpec] = []
    grid: list[tuple[str, int, int]] = []
    for name in workloads:
        workload = (prebuilt or {}).get(name)
        cell_scale = workload.scale if workload is not None else scale
        seed = workload.seed if workload is not None else 0
        specs.append(RunSpec(
            workload=name, system="stream", scale=cell_scale, seed=seed,
            tiles=base_tiles,
        ))
        grid.append((name, base_tiles, 0))
        for tile_count in tiles:
            for cache_bytes in caches:
                specs.append(RunSpec(
                    workload=name, system="metal", scale=cell_scale, seed=seed,
                    tiles=tile_count, cache_bytes=cache_bytes,
                ))
                grid.append((name, tile_count, cache_bytes))
    folded = executor.run_results(specs)
    cells = []
    stride = 1 + len(tiles) * len(caches)
    for i, name in enumerate(workloads):
        block = folded[i * stride:(i + 1) * stride]
        base = block[0].makespan
        for (cell_name, tile_count, cache_bytes), run in zip(
            grid[i * stride + 1:(i + 1) * stride], block[1:]
        ):
            cells.append(
                SweepCell(
                    workload=cell_name,
                    tiles=tile_count,
                    cache_bytes=cache_bytes,
                    speedup=base / max(1, run.makespan),
                    bandwidth=run.bandwidth_utilization,
                    miss_rate=run.miss_rate,
                )
            )
    return cells


def pareto_point(cells: list[SweepCell], workload: str) -> SweepCell:
    """Smallest configuration within 5% of the workload's best speedup."""
    mine = [c for c in cells if c.workload == workload]
    best = max(c.speedup for c in mine)
    good = [c for c in mine if c.speedup >= 0.95 * best]
    return min(good, key=lambda c: (c.cache_bytes, c.tiles))


def format_fig24(cells: list[SweepCell]) -> str:
    headers = ["workload", "tiles", "cache", "speedup", "bw util", "region"]
    rows = [
        [PAPER_LABELS.get(c.workload, c.workload), c.tiles,
         f"{c.cache_bytes // 1024}KB", c.speedup, c.bandwidth, c.region]
        for c in cells
    ]
    return render_table(
        headers, rows,
        "Fig. 24 — Speedup vs cache size and tile count (base: small streaming DSA)",
    )


def main() -> None:  # pragma: no cover
    cells = run_sweep()
    print(format_fig24(cells))
    for name in DEFAULT_WORKLOADS:
        p = pareto_point(cells, name)
        print(f"Pareto {name}: {p.tiles} tiles, {p.cache_bytes // 1024}KB "
              f"-> {p.speedup:.2f}x ({p.region})")


if __name__ == "__main__":  # pragma: no cover
    main()
