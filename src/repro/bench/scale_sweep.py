"""Paper-scale sweep: do the headline trends survive up to 1x scale?

The reproduction's default runs sit ~100x below the paper's sizes.
:mod:`repro.bench.scale_sensitivity` already checks the system orderings
over the small-scale regime (repro scales 0.1-0.5); this sweep pushes the
other direction — up to the paper's 10M-key scan index — using the
streaming keygen (:mod:`repro.workloads.stream`) and the SoA index
backend (:mod:`repro.indexes.soa`), the two layers that exist precisely
so a 1x point fits in RAM.

Points are expressed as *fractions of paper scale*: ``frac=1.0`` means
repro scale ``PAPER_SCALE`` (10M scan records), ``frac=0.01`` means 100K
records. Every point builds the workload under ``tracemalloc`` and gates
the build peak against a committed per-point byte budget, then simulates
a fixed number of walks (``max_walks`` truncates the key stream to an
exact prefix) on the stream baseline and on METAL, so makespan ratios
across points reflect index growth, not walk volume.

``BENCH_scale.json`` commits the sweep: miss rates, speedups, block
counts, and measured build peaks per point. ``--check`` re-runs a subset
and verifies the trends (speedup floor, miss-rate ordering, memory
budget) still hold; CI runs the 0.01/0.05 points on every push.
"""

from __future__ import annotations

import json
import resource
import tracemalloc
from dataclasses import dataclass, field
from typing import Any

from repro.bench.format import render_table
from repro.bench.runner import build_memsys
from repro.sim.metrics import RunResult, simulate
from repro.workloads.suite import PAPER_SCALE, build_workload, scaled

#: Paper-scale fractions the committed baseline covers. 1.0 is the
#: paper's 10M-key scan index.
DEFAULT_POINTS = (0.01, 0.05, 0.25, 1.0)
#: Fractions cheap enough for per-push CI.
CI_POINTS = (0.01, 0.05)
#: Systems compared at every point; "stream" is the speedup denominator.
SYSTEMS = ("stream", "metal")
#: Walk-count cap: every point simulates the same stream prefix, so the
#: sweep varies index size only.
MAX_WALKS = 20_000

#: tracemalloc build-peak budget per point: a flat floor for interpreter
#: noise plus a per-record SoA allowance (key/column arrays, level
#: arrays, and the transient temporaries of vectorized construction).
BUDGET_FLOOR_BYTES = 96 * 1024 * 1024
BUDGET_PER_RECORD = 260

DEFAULT_BASELINE = "BENCH_scale.json"
#: Minimum METAL-over-stream speedup required at every point.
MIN_SPEEDUP = 1.5
#: Relative tolerance for --check against committed metrics.
CHECK_RTOL = 0.05

EXIT_TREND_VIOLATED = 1
EXIT_BASELINE_MISSING = 2
EXIT_REGRESSED = 3


def point_budget_bytes(num_records: int) -> int:
    """Build-peak budget for a point with ``num_records`` indexed keys."""
    return BUDGET_FLOOR_BYTES + num_records * BUDGET_PER_RECORD


@dataclass
class SweepPoint:
    """One paper-scale fraction: sizes, build memory, and run metrics."""

    frac: float
    scale: float
    num_records: int
    num_walks: int
    index_blocks: int
    build_peak_bytes: int
    budget_bytes: int
    rss_peak_bytes: int
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    speedup: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return dict(vars(self))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepPoint":
        return cls(**data)


def run_point(
    frac: float,
    workload_name: str = "scan",
    seed: int = 0,
    backend: str = "soa",
    max_walks: int = MAX_WALKS,
) -> SweepPoint:
    """Build + simulate one paper-scale fraction.

    The build runs under tracemalloc (the sweep's memory gate measures
    construction, which dominates the footprint — the simulation adds
    bounded per-walk state). RSS peak is reported informationally: it is
    process-lifetime-monotone, so only the largest point's value means
    anything in a multi-point run.
    """
    scale = frac * PAPER_SCALE
    tracemalloc.start()
    try:
        workload = build_workload(
            workload_name, scale=scale, seed=seed,
            backend=backend, max_walks=max_walks,
        )
        _, build_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    num_records = scaled(40_000, scale, 2_000)
    point = SweepPoint(
        frac=frac,
        scale=scale,
        num_records=num_records,
        num_walks=len(workload.requests),
        index_blocks=workload.total_index_blocks,
        build_peak_bytes=build_peak,
        budget_bytes=point_budget_bytes(num_records),
        rss_peak_bytes=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
    )
    runs: dict[str, RunResult] = {}
    for kind in SYSTEMS:
        sim = workload.config.sim_params()
        memsys = build_memsys(kind, workload, workload.default_cache_bytes, sim)
        runs[kind] = simulate(
            memsys, workload.requests, sim, workload.total_index_blocks
        )
    point.metrics = {
        kind: {
            "makespan": run.makespan,
            "miss_rate": run.miss_rate,
            "avg_walk_latency": run.avg_walk_latency,
            "working_set_fraction": run.working_set_fraction,
        }
        for kind, run in runs.items()
    }
    point.speedup = runs["stream"].makespan / max(1, runs["metal"].makespan)
    return point


def run_scale_sweep(
    points: tuple[float, ...] = DEFAULT_POINTS,
    workload_name: str = "scan",
    seed: int = 0,
    backend: str = "soa",
    max_walks: int = MAX_WALKS,
) -> list[SweepPoint]:
    """Run the sweep smallest-first (RSS peaks stay attributable)."""
    return [
        run_point(frac, workload_name, seed, backend, max_walks)
        for frac in sorted(points)
    ]


def check_trends(points: list[SweepPoint]) -> list[str]:
    """The paper's trends, as hard predicates over a finished sweep."""
    problems = []
    for p in points:
        if p.build_peak_bytes > p.budget_bytes:
            problems.append(
                f"frac {p.frac:g}: build peak {p.build_peak_bytes:,}B "
                f"exceeds budget {p.budget_bytes:,}B"
            )
        if p.speedup < MIN_SPEEDUP:
            problems.append(
                f"frac {p.frac:g}: METAL speedup {p.speedup:.2f}x below "
                f"floor {MIN_SPEEDUP}x"
            )
        if p.metrics["metal"]["miss_rate"] >= p.metrics["stream"]["miss_rate"]:
            problems.append(
                f"frac {p.frac:g}: METAL miss rate "
                f"{p.metrics['metal']['miss_rate']:.3f} not below stream's "
                f"{p.metrics['stream']['miss_rate']:.3f}"
            )
    for prev, cur in zip(points, points[1:]):
        if cur.index_blocks <= prev.index_blocks:
            problems.append(
                f"index blocks not growing: frac {prev.frac:g} -> "
                f"{cur.frac:g} gives {prev.index_blocks} -> {cur.index_blocks}"
            )
    return problems


def sweep_to_baseline(points: list[SweepPoint]) -> dict[str, Any]:
    return {
        "version": 1,
        "workload": "scan",
        "backend": "soa",
        "max_walks": MAX_WALKS,
        "min_speedup": MIN_SPEEDUP,
        "points": [p.to_dict() for p in points],
    }


def write_baseline(points: list[SweepPoint], path: str) -> None:
    with open(path, "w") as f:
        json.dump(sweep_to_baseline(points), f, indent=2, sort_keys=True)
        f.write("\n")


def load_baseline(path: str) -> dict[str, Any] | None:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def check_against_baseline(
    points: list[SweepPoint], baseline: dict[str, Any],
    rtol: float = CHECK_RTOL,
) -> list[str]:
    """Compare re-run points to the committed sweep.

    Makespans and miss rates are deterministic per (scale, seed), so the
    tolerance only absorbs intentional small simulator changes; the
    memory gate uses the committed budget, not the committed measurement
    (allocator noise across Python versions is real, budgets are not).
    """
    by_frac = {p["frac"]: p for p in baseline.get("points", [])}
    problems = []
    for p in points:
        ref = by_frac.get(p.frac)
        if ref is None:
            problems.append(f"frac {p.frac:g}: not in baseline")
            continue
        if p.build_peak_bytes > ref["budget_bytes"]:
            problems.append(
                f"frac {p.frac:g}: build peak {p.build_peak_bytes:,}B "
                f"exceeds committed budget {ref['budget_bytes']:,}B"
            )
        for field_name in ("num_records", "num_walks", "index_blocks"):
            if getattr(p, field_name) != ref[field_name]:
                problems.append(
                    f"frac {p.frac:g}: {field_name} {getattr(p, field_name)} "
                    f"!= committed {ref[field_name]}"
                )
        for kind in SYSTEMS:
            for metric in ("makespan", "miss_rate"):
                got = p.metrics[kind][metric]
                want = ref["metrics"][kind][metric]
                if abs(got - want) > rtol * max(abs(want), 1e-12):
                    problems.append(
                        f"frac {p.frac:g}: {kind} {metric} {got:g} drifted "
                        f"from committed {want:g} (rtol {rtol:g})"
                    )
    return problems


def format_sweep(points: list[SweepPoint]) -> str:
    rows = [
        [
            f"{p.frac:g}", f"{p.num_records:,}", f"{p.num_walks:,}",
            f"{p.index_blocks:,}",
            f"{p.build_peak_bytes / 2**20:.1f}",
            f"{p.budget_bytes / 2**20:.0f}",
            f"{p.metrics['stream']['miss_rate']:.3f}",
            f"{p.metrics['metal']['miss_rate']:.3f}",
            f"{p.speedup:.2f}x",
        ]
        for p in points
    ]
    return render_table(
        ["paper frac", "records", "walks", "index blocks", "build MB",
         "budget MB", "stream miss", "metal miss", "METAL speedup"],
        rows, "Paper-scale sweep (scan, SoA backend, fixed walk prefix)",
    )


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="paper-scale sweep (repro.bench.scale_sweep)"
    )
    parser.add_argument("--points", type=str, default=None,
                        help="comma-separated paper-scale fractions "
                             "(default: the committed sweep's points)")
    parser.add_argument("--baseline", type=str, default=DEFAULT_BASELINE)
    parser.add_argument("--write-baseline", action="store_true",
                        help="(re)write --baseline from this run")
    parser.add_argument("--check", action="store_true",
                        help="compare this run to --baseline; exit 3 on "
                             "drift, 2 if the baseline is missing")
    args = parser.parse_args(argv)

    points_arg = (
        tuple(float(x) for x in args.points.split(","))
        if args.points else DEFAULT_POINTS
    )
    points = run_scale_sweep(points=points_arg)
    print(format_sweep(points))
    problems = check_trends(points)
    if problems:
        print("\nSCALE TRENDS VIOLATED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return EXIT_TREND_VIOLATED
    print("\ntrend check: METAL speedup and miss-rate advantage hold at "
          "every point; builds stayed within their memory budgets")
    if args.write_baseline:
        write_baseline(points, args.baseline)
        print(f"scale baseline written to {args.baseline}")
        return 0
    if args.check:
        baseline = load_baseline(args.baseline)
        if baseline is None:
            print(f"baseline {args.baseline} missing or unreadable",
                  file=sys.stderr)
            return EXIT_BASELINE_MISSING
        drift = check_against_baseline(points, baseline)
        if drift:
            print("\nSCALE SWEEP REGRESSED vs baseline:", file=sys.stderr)
            for problem in drift:
                print(f"  - {problem}", file=sys.stderr)
            return EXIT_REGRESSED
        print("baseline check: sweep matches the committed "
              f"{args.baseline} (rtol {CHECK_RTOL:g})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
