"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (the harness's 'figure')."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "x",
) -> str:
    """ASCII bar chart — the closest a text report gets to a figure."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values, default=0.0)
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(value / peak * width) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {_fmt(value)}{unit}")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's headline ratios are geomeans)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
