"""Benchmark harness regenerating every table and figure of Section 5.

Each module maps to one experiment (see DESIGN.md's experiment index);
:mod:`repro.bench.runner` is the shared workload-x-memory-system driver and
:mod:`repro.bench.report` regenerates everything into a text report.
"""

from repro.bench.runner import (
    CACHE_SYSTEMS,
    SYSTEMS,
    build_memsys,
    compare_systems,
    run_workload,
)

__all__ = [
    "build_memsys",
    "CACHE_SYSTEMS",
    "compare_systems",
    "run_workload",
    "SYSTEMS",
]
