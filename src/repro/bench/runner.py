"""Shared driver: run one workload through each memory organization.

Centralizes the per-system setup the experiments share: cache geometry,
IX-cache key-block sizing from the workload's key universe, fresh
descriptors per run, and the FA-OPT two-pass construction.
"""

from __future__ import annotations

from typing import Any

from repro.core.ix_cache import block_bits_for
from repro.params import CacheParams, IXCACHE_ENERGY_FJ, SimParams
from repro.sim.memsys import MemorySystem, make_memsys
from repro.sim.metrics import RunResult, simulate
from repro.workloads.suite import Workload

#: Every organization the evaluation compares, in Fig. 18 order.
SYSTEMS: tuple[str, ...] = ("stream", "address", "fa_opt", "xcache", "metal_ix", "metal")
#: The cache-bearing subset (Fig. 15-17 trends).
CACHE_SYSTEMS: tuple[str, ...] = ("fa_opt", "xcache", "metal_ix", "metal")


def cache_params_for(kind: str, cache_bytes: int, ways: int = 16, banks: int = 16) -> CacheParams:
    energy = IXCACHE_ENERGY_FJ if kind.startswith("metal") else 7_000.0
    return CacheParams(
        capacity_bytes=cache_bytes, ways=ways, banks=banks, e_access=energy
    )


def build_memsys(
    kind: str,
    workload: Workload,
    cache_bytes: int | None = None,
    sim: SimParams | None = None,
    tune: bool = True,
    batch_walks: int | None = None,
    **overrides: Any,
) -> MemorySystem:
    """Instantiate one memory system configured for a workload."""
    cache_bytes = cache_bytes or workload.default_cache_bytes
    sim = sim or workload.config.sim_params()
    params = overrides.pop("cache_params", None) or cache_params_for(kind, cache_bytes)
    kwargs: dict[str, Any] = {}
    if kind.startswith("metal"):
        default_bits = workload.ix_key_block_bits
        if default_bits is None:
            default_bits = block_bits_for(workload.key_universe, params)
        kwargs["key_block_bits"] = overrides.pop("key_block_bits", default_bits)
    if kind == "metal":
        kwargs["descriptors"] = overrides.pop(
            "descriptors", workload.descriptor_factory()
        )
        kwargs["tune"] = tune
        kwargs["batch_walks"] = batch_walks or max(
            200, len(workload.requests) // 8
        )
    if kind == "fa_opt":
        kwargs["requests"] = workload.faopt_pairs()
    kwargs.update(overrides)
    return make_memsys(kind, sim, params, **kwargs)


def run_workload(
    workload: Workload,
    kind: str,
    cache_bytes: int | None = None,
    sim: SimParams | None = None,
    timed: bool = True,
    record_latencies: bool = False,
    **overrides: Any,
) -> RunResult:
    """Simulate one (workload, memory system) pair."""
    sim = sim or workload.config.sim_params()
    memsys = build_memsys(kind, workload, cache_bytes, sim, **overrides)
    return simulate(
        memsys,
        workload.requests,
        sim,
        workload.total_index_blocks,
        timed=timed,
        record_latencies=record_latencies,
    )


def compare_systems(
    workload: Workload,
    kinds: tuple[str, ...] = SYSTEMS,
    cache_bytes: int | None = None,
    sim: SimParams | None = None,
    timed: bool = True,
    record_latencies: bool = False,
) -> dict[str, RunResult]:
    """Run every requested organization over one workload."""
    return {
        kind: run_workload(workload, kind, cache_bytes, sim, timed=timed,
                           record_latencies=record_latencies)
        for kind in kinds
    }
