"""Index data structures the target DSAs walk (Section 2.2).

All indexes share the traits the paper identifies: hierarchical structure
with internal roots, single-key lookups with short-circuit potential,
compressed internal roots carrying [Lo, Hi] ranges, deep layouts, and
ordered traversals. Every node carries a synthetic DRAM address so the
memory-system models can cache it.
"""

from repro.indexes.adjacency import AdjacencyList
from repro.indexes.base import IndexNode, WalkableIndex
from repro.indexes.bplustree import BPlusTree
from repro.indexes.fiber import FiberMatrix
from repro.indexes.pagetable import RadixPageTable
from repro.indexes.rtree import RTree2D, Rect
from repro.indexes.skiplist import SkipList
from repro.indexes.soa import SoABPlusTree, SoANode, SoARecordTable
from repro.indexes.sorted_set import SortedSet
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.indexes.table import RecordTable

__all__ = [
    "AdjacencyList",
    "BPlusTree",
    "DynamicSparseTensor",
    "FiberMatrix",
    "IndexNode",
    "RadixPageTable",
    "RecordTable",
    "Rect",
    "RTree2D",
    "SkipList",
    "SoABPlusTree",
    "SoANode",
    "SoARecordTable",
    "SortedSet",
    "WalkableIndex",
]
