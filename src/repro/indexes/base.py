"""Common node and index abstractions shared by every index type.

The memory-system models (address cache, X-cache, IX-cache) are generic
over :class:`IndexNode`: a node knows its level, its key range ``[lo, hi]``,
its sorted keys and children, and its DRAM address/size. An index exposes
``walk(key)`` (the root-to-leaf node path) plus enough geometry for the
working-set and occupancy metrics.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from typing import Any, Protocol, runtime_checkable

from repro.mem.layout import Allocator
from repro.params import KEY_BYTES, PTR_BYTES

_node_ids = itertools.count()
_index_ids = itertools.count()


def next_index_id() -> int:
    """Unique id per index instance; namespaces keys in shared caches."""
    return next(_index_ids)


class IndexNode:
    """One node of a multi-level index, as the hardware sees it.

    ``level`` counts from the root (root = 0) downward; ``lo``/``hi`` are the
    smallest and largest keys reachable through this node — exactly the
    [Lo, Hi] tuple the IX-cache uses as a tag (Fig. 5).
    """

    __slots__ = (
        "node_id",
        "level",
        "lo",
        "hi",
        "keys",
        "children",
        "values",
        "address",
        "nbytes",
        "next_leaf",
    )

    def __init__(
        self,
        level: int,
        keys: Sequence[Any],
        *,
        children: list["IndexNode"] | None = None,
        values: list[Any] | None = None,
        lo: Any = None,
        hi: Any = None,
    ) -> None:
        self.node_id = next(_node_ids)
        self.level = level
        self.keys = list(keys)
        self.children = children
        self.values = values
        self.lo = lo if lo is not None else (self.keys[0] if self.keys else None)
        self.hi = hi if hi is not None else (self.keys[-1] if self.keys else None)
        self.address = 0
        self.nbytes = 0
        self.next_leaf: IndexNode | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def byte_size(self) -> int:
        """Size of the node's on-DRAM representation."""
        n_keys = len(self.keys)
        n_ptrs = len(self.children) if self.children is not None else len(self.values or ())
        return max(KEY_BYTES, n_keys * KEY_BYTES + n_ptrs * PTR_BYTES)

    def covers(self, key: Any) -> bool:
        """Whether ``key`` falls inside this node's [lo, hi] range."""
        if self.lo is None or self.hi is None:
            return False
        return self.lo <= key <= self.hi

    def child_for(self, key: Any) -> "IndexNode":
        """Select the child whose subtree covers ``key``.

        Mirrors the hit-path child select of Fig. 6: parallel <= across the
        sorted separator keys, then first-set-bit from the right.
        """
        if self.children is None:
            raise TypeError("leaf nodes have no children")
        idx = _branch_index(self.keys, key)
        return self.children[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return f"<{kind} L{self.level} [{self.lo}..{self.hi}] #{self.node_id}>"


def _branch_index(separators: Sequence[Any], key: Any) -> int:
    """Index of the child to follow given B+tree separator keys.

    Child ``i`` holds keys < separators[i]; the last child holds the rest.
    """
    lo, hi = 0, len(separators)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < separators[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


@runtime_checkable
class WalkableIndex(Protocol):
    """What the walkers and cache models need from any index."""

    allocator: Allocator

    @property
    def root(self) -> IndexNode: ...

    @property
    def height(self) -> int: ...

    def walk(self, key: Any) -> list[IndexNode]: ...

    def nodes(self) -> Iterator[IndexNode]: ...


def assign_addresses(nodes: Iterator[IndexNode], allocator: Allocator) -> int:
    """Give every node a DRAM address; return total index bytes."""
    total = 0
    for node in nodes:
        node.nbytes = node.byte_size()
        node.address = allocator.alloc_index(node.nbytes)
        total += node.nbytes
    return total


def count_blocks(nodes: Iterator[IndexNode]) -> int:
    """Total distinct 64B blocks occupied by an index (working-set denom)."""
    blocks: set[int] = set()
    for node in nodes:
        blocks.update(Allocator.blocks_spanned(node.address, node.nbytes))
    return len(blocks)
