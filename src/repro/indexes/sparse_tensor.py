"""Dynamic sparse tensors (Chou & Amarasinghe, OOPSLA'22) — deep SpMM index.

The paper's SpMM workload (Fig. 10) stores matrix B with "the non-zero (NZ)
column ids indexed in a B+Tree; the leaves hold the NZs and their row ids".
This module provides that representation: a B+tree over column coordinates
whose leaf values are the column's nonzero (row, value) lists, allocated in
the DRAM data region. The tree supports dynamic insertion of new nonzeros
(what makes the tensor "dynamic").
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from repro.indexes.base import IndexNode
from repro.indexes.bplustree import BPlusTree
from repro.mem.layout import Allocator
from repro.params import KEY_BYTES

_NNZ_ENTRY_BYTES = 2 * KEY_BYTES  # (row id, value)


class _Column:
    """One stored column: its nonzeros and their data-region address."""

    __slots__ = ("col", "entries", "address")

    def __init__(self, col: int, address: int) -> None:
        self.col = col
        self.entries: list[tuple[int, float]] = []
        self.address = address


class DynamicSparseTensor:
    """Column-major sparse matrix behind a B+tree coordinate index.

    ``fanout`` controls index depth: the paper's deep configuration uses a
    small fan-out so the tree reaches ~10 levels; see
    :meth:`BPlusTree.fanout_for_depth`.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        fanout: int = 4,
        allocator: Allocator | None = None,
    ) -> None:
        rows, cols = shape
        if rows <= 0 or cols <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        self.shape = shape
        self.allocator = allocator or Allocator()
        self._tree = BPlusTree(fanout=fanout, allocator=self.allocator)
        self.index_id = self._tree.index_id
        self.nnz = 0

    @classmethod
    def from_coo(
        cls,
        shape: tuple[int, int],
        triples: Iterable[tuple[int, int, float]],
        fanout: int = 4,
        allocator: Allocator | None = None,
    ) -> "DynamicSparseTensor":
        """Bulk-build from (row, col, value) triples."""
        tensor = cls(shape, fanout=fanout, allocator=allocator)
        by_col: dict[int, list[tuple[int, float]]] = {}
        for r, c, v in triples:
            tensor._check_coords(r, c)
            by_col.setdefault(c, []).append((r, v))
        columns = []
        for c, entries in by_col.items():
            entries.sort()
            column = _Column(
                c, tensor.allocator.alloc_data(max(1, len(entries)) * _NNZ_ENTRY_BYTES)
            )
            column.entries = entries
            columns.append((c, column))
            tensor.nnz += len(entries)
        tensor._tree = BPlusTree.bulk_load(columns, fanout=fanout, allocator=tensor.allocator)
        tensor.index_id = tensor._tree.index_id
        return tensor

    def _check_coords(self, row: int, col: int) -> None:
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(f"coordinate ({row}, {col}) outside shape {self.shape}")

    # ------------------------------------------------------------------ #
    # Dynamic updates
    # ------------------------------------------------------------------ #

    def set(self, row: int, col: int, value: float) -> None:
        """Insert or overwrite one nonzero (grows the index if needed)."""
        self._check_coords(row, col)
        column = self._tree.get(col)
        if column is None:
            column = _Column(col, self.allocator.alloc_data(_NNZ_ENTRY_BYTES))
            self._tree.insert(col, column)
        for i, (r, _) in enumerate(column.entries):
            if r == row:
                column.entries[i] = (row, value)
                return
        column.entries.append((row, value))
        column.entries.sort()
        self.nnz += 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> IndexNode:
        return self._tree.root

    @property
    def height(self) -> int:
        return self._tree.height

    @property
    def on_structural_change(self) -> list:
        """Invalidation hooks of the backing coordinate index."""
        return self._tree.on_structural_change

    def walk(self, col: int) -> list[IndexNode]:
        return self._tree.walk(col)

    def walk_from(self, node: IndexNode, col: int) -> list[IndexNode]:
        return self._tree.walk_from(node, col)

    def nodes(self) -> Iterator[IndexNode]:
        return self._tree.nodes()

    def col_nonzeros(self, col: int) -> list[tuple[int, float]]:
        """The (row, value) list of one column ([] if empty)."""
        column = self._tree.get(col)
        return list(column.entries) if column is not None else []

    def col_address(self, col: int) -> int | None:
        column = self._tree.get(col)
        return column.address if column is not None else None

    def stored_columns(self) -> list[int]:
        return [c for c, _ in self._tree.items()]

    def get(self, row: int, col: int) -> float:
        for r, v in self.col_nonzeros(col):
            if r == row:
                return v
        return 0.0

    def to_dense(self) -> list[list[float]]:
        """Small-matrix helper for tests."""
        rows, cols = self.shape
        dense = [[0.0] * cols for _ in range(rows)]
        for c, column in self._tree.items():
            for r, v in column.entries:
                dense[r][c] = v
        return dense

    def spmv(self, x: list[float]) -> list[float]:
        """y = A @ x using column-wise accumulation (inner loop of SpMM)."""
        rows, cols = self.shape
        if len(x) != cols:
            raise ValueError(f"vector length {len(x)} != cols {cols}")
        y = [0.0] * rows
        for c, column in self._tree.items():
            xc = x[c]
            if xc == 0.0:
                continue
            for r, v in column.entries:
                y[r] += v * xc
        return y
