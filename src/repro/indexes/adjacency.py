"""Adjacency-list graph behind a vertex index — PageRank-push substrate.

Aurochs scans graph adjacency lists "in an unordered manner" (Table 2: Adj.
List, [key, degree]). With millions of vertices the vertex directory itself
is a multi-level index; we model it as a B+tree over vertex ids whose leaf
values carry (degree, edge-list address). Edge lists live in the DRAM data
region and are streamed once located.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import NamedTuple

from repro.indexes.base import IndexNode
from repro.indexes.bplustree import BPlusTree
from repro.mem.layout import Allocator
from repro.params import KEY_BYTES


class VertexRecord(NamedTuple):
    degree: int
    address: int
    neighbors: tuple[int, ...]


class AdjacencyList:
    """Graph with a B+tree vertex directory and data-region edge lists."""

    def __init__(
        self,
        edges: Iterable[tuple[int, int]],
        num_vertices: int | None = None,
        fanout: int = 9,
        allocator: Allocator | None = None,
    ) -> None:
        self.allocator = allocator or Allocator()
        adjacency: dict[int, list[int]] = {}
        max_vertex = -1
        for src, dst in edges:
            if src < 0 or dst < 0:
                raise ValueError(f"negative vertex id in edge ({src}, {dst})")
            adjacency.setdefault(src, []).append(dst)
            max_vertex = max(max_vertex, src, dst)
        self.num_vertices = num_vertices if num_vertices is not None else max_vertex + 1
        if max_vertex >= self.num_vertices:
            raise ValueError(f"edge references vertex {max_vertex} >= {self.num_vertices}")
        records = []
        self.num_edges = 0
        for v in sorted(adjacency):
            neighbors = tuple(sorted(adjacency[v]))
            self.num_edges += len(neighbors)
            address = self.allocator.alloc_data(max(1, len(neighbors)) * KEY_BYTES)
            records.append((v, VertexRecord(len(neighbors), address, neighbors)))
        self._tree = BPlusTree.bulk_load(records, fanout=fanout, allocator=self.allocator)
        self.index_id = self._tree.index_id

    @property
    def root(self) -> IndexNode:
        return self._tree.root

    @property
    def height(self) -> int:
        return self._tree.height

    def walk(self, vertex: int) -> list[IndexNode]:
        return self._tree.walk(vertex)

    def walk_from(self, node: IndexNode, vertex: int) -> list[IndexNode]:
        return self._tree.walk_from(node, vertex)

    def nodes(self) -> Iterator[IndexNode]:
        return self._tree.nodes()

    def neighbors(self, vertex: int) -> tuple[int, ...]:
        record = self._tree.get(vertex)
        return record.neighbors if record is not None else ()

    def degree(self, vertex: int) -> int:
        record = self._tree.get(vertex)
        return record.degree if record is not None else 0

    def record(self, vertex: int) -> VertexRecord | None:
        return self._tree.get(vertex)

    def vertices_with_edges(self) -> list[int]:
        return [v for v, _ in self._tree.items()]

    # ------------------------------------------------------------------ #
    # Reference algorithms (functional semantics for tests/examples)
    # ------------------------------------------------------------------ #

    def pagerank_push(
        self, damping: float = 0.85, iterations: int = 20
    ) -> list[float]:
        """Push-style PageRank over the adjacency index."""
        n = self.num_vertices
        if n == 0:
            return []
        rank = [1.0 / n] * n
        for _ in range(iterations):
            nxt = [(1.0 - damping) / n] * n
            dangling = 0.0
            for v in range(n):
                record = self._tree.get(v)
                if record is None or record.degree == 0:
                    dangling += rank[v]
                    continue
                share = damping * rank[v] / record.degree
                for u in record.neighbors:
                    nxt[u] += share
            spread = damping * dangling / n
            rank = [r + spread for r in nxt]
        return rank
