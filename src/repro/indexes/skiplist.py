"""Skip list — the per-bucket structure of Redis-style sorted sets (§4.4).

Each element is a *tower* of forward pointers; the pointer at level ``l``
skips over all towers shorter than ``l``. For the cache models every
(tower, level) pair is an :class:`IndexNode` whose range tag covers the
*segment* it guards: ``[S_i, next_at_level - 1]``. Segments at one level
partition the key space, so covering nodes along a search path are nested
exactly like tree levels, and the IX-cache's deepest-level tie-break picks
the nearest cached predecessor.

Level numbering follows the tree convention (0 = closest to the "root"):
the top skip level is level ``level_offset`` and the base list is the
deepest level.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from typing import Any

from repro.indexes.base import IndexNode, next_index_id
from repro.mem.layout import Allocator

#: Bytes of one forward-pointer record inside a tower.
_LEVEL_NODE_BYTES = 16


class _Tower:
    """One skip-list element: a score, its members, and per-level nodes."""

    __slots__ = ("score", "members", "height", "nodes", "forward", "address")

    def __init__(self, score: Any, height: int) -> None:
        self.score = score
        self.members: list[Any] = []
        self.height = height
        self.nodes: list[IndexNode] = []
        self.forward: list["_Tower | None"] = [None] * height
        self.address = 0


class SkipList:
    """Seeded-randomized skip list keyed by integer score.

    ``p`` is the promotion probability; ``max_height`` bounds tower height.
    ``level_offset`` shifts node levels so a containing structure (the
    sorted-set hash directory) can occupy shallower levels.
    """

    HEAD_SCORE = float("-inf")

    def __init__(
        self,
        p: float = 0.25,
        max_height: int = 12,
        seed: int = 0,
        allocator: Allocator | None = None,
        level_offset: int = 0,
    ) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"promotion probability must be in (0, 1), got {p}")
        if max_height < 1:
            raise ValueError("max_height must be >= 1")
        self.p = p
        self.index_id = next_index_id()
        self.max_height = max_height
        self.level_offset = level_offset
        self.allocator = allocator or Allocator()
        self._rng = random.Random(seed)
        self._head = _Tower(self.HEAD_SCORE, max_height)
        self._head.address = self.allocator.alloc_index(max_height * _LEVEL_NODE_BYTES)
        self._size = 0
        self._max_score: Any = None
        self._dirty = True
        self._locations: dict[int, tuple[_Tower, int]] = {}
        #: (tower address, level) -> base-level hops of that forward
        #: pointer; powers O(log n) rank queries (Redis zslGetRank spans).
        self._spans: dict[tuple[int, int], int] = {}
        self._tower_count = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self.max_height + self.level_offset

    def _random_height(self) -> int:
        h = 1
        while h < self.max_height and self._rng.random() < self.p:
            h += 1
        return h

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, score: Any, member: Any) -> None:
        """Insert a (score, member) record; same-score members coalesce."""
        update: list[_Tower] = [self._head] * self.max_height
        cur = self._head
        for lvl in reversed(range(self.max_height)):
            while cur.forward[lvl] is not None and cur.forward[lvl].score < score:
                cur = cur.forward[lvl]
            update[lvl] = cur
        candidate = cur.forward[0]
        if candidate is not None and candidate.score == score:
            if member not in candidate.members:
                candidate.members.append(member)
                candidate.members.sort()
                self._size += 1
            self._dirty = True
            return
        tower = _Tower(score, self._random_height())
        tower.members.append(member)
        tower.address = self.allocator.alloc_index(tower.height * _LEVEL_NODE_BYTES)
        for lvl in range(tower.height):
            tower.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = tower
        self._size += 1
        if self._max_score is None or score > self._max_score:
            self._max_score = score
        self._dirty = True

    def finalize(self) -> None:
        """(Re)build per-level IndexNodes and their segment range tags.

        Called lazily by queries; cache models must not hold nodes across a
        later mutation (ranges go stale — rebuild invalidates by identity).
        """
        if not self._dirty:
            return
        self._locations.clear()
        towers = [self._head]
        cur = self._head.forward[0]
        while cur is not None:
            towers.append(cur)
            cur = cur.forward[0]
        self._tower_count = len(towers) - 1
        position = {id(tower): i for i, tower in enumerate(towers)}
        self._spans.clear()
        for tower in towers:
            for lvl in range(tower.height):
                nxt = tower.forward[lvl]
                if nxt is not None:
                    self._spans[(tower.address, lvl)] = (
                        position[id(nxt)] - position[id(tower)]
                    )
        for tower in towers:
            tower.nodes = []
            for lvl in range(tower.height):
                nxt = tower.forward[lvl]
                hi = self._max_score if nxt is None else nxt.score - 1
                node = IndexNode(
                    self.level_offset + (self.max_height - 1 - lvl),
                    [tower.score],
                    values=list(tower.members),
                    lo=tower.score,
                    hi=hi,
                )
                node.address = tower.address + lvl * _LEVEL_NODE_BYTES
                node.nbytes = _LEVEL_NODE_BYTES
                tower.nodes.append(node)
                self._locations[node.node_id] = (tower, lvl)
        self._dirty = False

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def walk(self, score: Any) -> list[IndexNode]:
        """Nodes a walker touches finding the greatest tower <= score.

        The head's top-level record is always read first (it is the entry
        point), then one node per rightward hop.
        """
        self.finalize()
        path: list[IndexNode] = [self._head.nodes[self.max_height - 1]]
        cur = self._head
        for lvl in reversed(range(self.max_height)):
            while cur.forward[lvl] is not None and cur.forward[lvl].score <= score:
                cur = cur.forward[lvl]
                path.append(cur.nodes[lvl])
        return path

    def walk_from(self, node: IndexNode, score: Any) -> list[IndexNode]:
        """Continue a walk from a cached skip node toward ``score``."""
        self.finalize()
        located = self._locations.get(node.node_id)
        if located is None:
            raise KeyError(f"node {node!r} is not part of this skip list (stale?)")
        tower, lvl = located
        path: list[IndexNode] = [node]
        cur = tower
        for level in reversed(range(lvl + 1)):
            while cur.forward[level] is not None and cur.forward[level].score <= score:
                cur = cur.forward[level]
                path.append(cur.nodes[level])
        return path

    def get(self, score: Any) -> list[Any] | None:
        """Members stored at exactly ``score``, or None."""
        cur = self._head
        for lvl in reversed(range(self.max_height)):
            while cur.forward[lvl] is not None and cur.forward[lvl].score <= score:
                cur = cur.forward[lvl]
        if cur is not self._head and cur.score == score:
            return list(cur.members)
        return None

    def rank(self, score: Any) -> int:
        """Number of towers with score strictly below ``score`` (ZRANK).

        Computed by a skip-level descent over per-pointer spans (the Redis
        zslGetRank algorithm), so it costs O(log n) like a walk, not O(n).
        """
        self.finalize()
        rank = 0
        cur = self._head
        for lvl in reversed(range(self.max_height)):
            while cur.forward[lvl] is not None and cur.forward[lvl].score < score:
                rank += self._spans[(cur.address, lvl)]
                cur = cur.forward[lvl]
        return rank

    def by_rank(self, rank: int) -> tuple[Any, list[Any]] | None:
        """The (score, members) of the rank-th tower (0-based), or None."""
        self.finalize()
        if rank < 0 or rank >= self._tower_count:
            return None
        traversed = -1  # head sits before rank 0
        cur = self._head
        for lvl in reversed(range(self.max_height)):
            while cur.forward[lvl] is not None:
                step = self._spans[(cur.address, lvl)]
                if traversed + step > rank:
                    break
                traversed += step
                cur = cur.forward[lvl]
            if traversed == rank and cur is not self._head:
                return cur.score, list(cur.members)
        return None

    def nodes(self) -> Iterator[IndexNode]:
        self.finalize()
        cur: _Tower | None = self._head
        while cur is not None:
            yield from cur.nodes
            cur = cur.forward[0]

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        cur = self._head.forward[0]
        while cur is not None:
            yield cur.score, list(cur.members)
            cur = cur.forward[0]

    def check_invariants(self) -> None:
        """Assert ordering, tower-height, and segment-partition invariants."""
        self.finalize()
        scores = [s for s, _ in self.items()]
        assert scores == sorted(scores), "base list out of order"
        assert len(set(scores)) == len(scores), "duplicate towers for one score"
        for lvl in range(self.max_height):
            cur = self._head.forward[0]
            segment_scores = []
            while cur is not None:
                if cur.height > lvl:
                    segment_scores.append(cur.score)
                cur = cur.forward[0]
            # Level-l chain must be the subsequence of taller towers.
            chain = []
            hop = self._head.forward[lvl] if lvl < self._head.height else None
            while hop is not None:
                chain.append(hop.score)
                hop = hop.forward[lvl]
            assert chain == segment_scores, f"level {lvl} chain skips towers"
