"""Structure-of-arrays B+tree storage for paper-scale indexes.

The object-path :class:`~repro.indexes.bplustree.BPlusTree` spends
roughly 500-700 bytes of Python overhead per node (an ``IndexNode``,
its boxed key list, its child list), which caps practical tree sizes
two orders of magnitude below the paper's 10M-400M keys. This module
stores the same tree as a handful of numpy arrays per level — ``lo``,
``hi``, ``nbytes``, ``address`` — plus the one shared sorted key array,
so a 10M-key tree costs a few hundred MB instead of tens of GB.

The cache models never see the arrays. They see :class:`SoANode` views
that quack exactly like ``IndexNode`` (``level``/``lo``/``hi``/``keys``/
``children``/``values``/``address``/``nbytes``/``next_leaf``/
``covers``/``child_for``), created lazily per visited node and memoized
so the ``is``-identity contracts of the IX-/X-cache hold (a cached node
and a re-walked node must be the same object). A walk materializes at
most ``height`` views; cold nodes stay as array rows.

Layout is a byte-exact replica of the object path. ``bulk_load`` there
allocates: a 16-byte burn for the pre-bulk-load root, then every node
in BFS order via ``assign_addresses`` (``nbytes = byte_size()``, each
address 64-byte aligned). Because all addresses are aligned, node ``i+1``
lands at ``addr_i + align64(nbytes_i)`` — a cumulative sum — so the SoA
build issues ONE allocator call for the whole span and computes the
per-node addresses vectorized. The equivalence suite
(``tests/test_soa_backend.py``) pins `RunResult` byte-identity across
backends; the committed baselines pin it across releases.

Geometry recap (mirrors ``BPlusTree.bulk_load``): leaves take ``fanout``
keys left to right; each upper level groups ``fanout`` children, its
separators are the ``lo`` of every child but the first; root has level
0, leaves level ``height - 1``; a tree of at most ``fanout`` keys is a
single root leaf.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.indexes.base import next_index_id
from repro.mem.layout import Allocator, align_up
from repro.params import BLOCK_SIZE, KEY_BYTES, PTR_BYTES

#: SoA node_ids live far above the object-path ``itertools.count`` ids so
#: the two backends can share TouchFilter/occupancy sets without
#: collision: index i's nodes occupy [(i+1) << 44, (i+2) << 44).
_NODE_ID_SHIFT = 44


@dataclass
class _Level:
    """Per-level column store: one row per node, left to right."""

    lo: np.ndarray        # smallest key reachable through node j
    hi: np.ndarray        # largest key reachable through node j
    counts: np.ndarray    # children per internal node / keys per leaf
    nbytes: np.ndarray    # byte_size(), exactly as assign_addresses sets it
    address: np.ndarray   # 64B-aligned DRAM address

    def __len__(self) -> int:
        return len(self.lo)


class SoANode:
    """Lazy ``IndexNode``-shaped view over one row of a :class:`_Level`.

    Views are memoized by the owning tree, so two walks reaching the
    same node get the same object — the identity the IX-cache's
    set-partition bookkeeping and METAL's leaf-peek depend on.
    """

    __slots__ = (
        "_tree", "_pos", "_keys", "_children", "_values",
        "node_id", "level", "lo", "hi", "address", "nbytes",
    )

    def __init__(self, tree: "SoABPlusTree", level: int, pos: int) -> None:
        row = tree._levels[level]
        self._tree = tree
        self._pos = pos
        self._keys: list | None = None
        self._children: list | None = None
        self._values: list | None = None
        self.level = level
        self.node_id = tree._node_id_base + tree._level_offsets[level] + pos
        self.lo = int(row.lo[pos])
        self.hi = int(row.hi[pos])
        self.address = int(row.address[pos])
        self.nbytes = int(row.nbytes[pos])

    @property
    def is_leaf(self) -> bool:
        return self.level == self._tree.height - 1

    @property
    def keys(self) -> list[int]:
        if self._keys is None:
            tree = self._tree
            if self.is_leaf:
                start = self._pos * tree.fanout
                count = int(tree._levels[self.level].counts[self._pos])
                self._keys = tree._keys[start : start + count].tolist()
            else:
                self._keys = self._separators().tolist()
        return self._keys

    @property
    def children(self) -> "list[SoANode] | None":
        if self.is_leaf:
            return None
        if self._children is None:
            tree = self._tree
            start = self._pos * tree.fanout
            count = int(tree._levels[self.level].counts[self._pos])
            self._children = [
                tree._view(self.level + 1, start + i) for i in range(count)
            ]
        return self._children

    @property
    def values(self) -> list[Any] | None:
        if not self.is_leaf:
            return None
        if self._values is None:
            tree = self._tree
            start = self._pos * tree.fanout
            count = int(tree._levels[self.level].counts[self._pos])
            self._values = [tree._value(start + i) for i in range(count)]
        return self._values

    @property
    def next_leaf(self) -> "SoANode | None":
        if not self.is_leaf:
            return None
        nxt = self._pos + 1
        if nxt >= len(self._tree._levels[self.level]):
            return None
        return self._tree._view(self.level, nxt)

    def byte_size(self) -> int:
        return self.nbytes

    def covers(self, key: Any) -> bool:
        return self.lo <= key <= self.hi

    def child_for(self, key: Any) -> "SoANode":
        if self.is_leaf:
            raise TypeError("leaf nodes have no children")
        idx = int(np.searchsorted(self._separators(), key, side="right"))
        return self._tree._view(self.level + 1, self._pos * self._tree.fanout + idx)

    def _separators(self) -> np.ndarray:
        """Child lo-bounds past the first — ``bulk_load``'s separator keys."""
        tree = self._tree
        start = self._pos * tree.fanout
        count = int(tree._levels[self.level].counts[self._pos])
        return tree._levels[self.level + 1].lo[start + 1 : start + count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return f"<soa-{kind} L{self.level} [{self.lo}..{self.hi}] #{self.node_id}>"


class SoABPlusTree:
    """Read-only B+tree over a sorted key array, stored as per-level arrays.

    ``values`` maps a key's row index to its stored value (the record
    tuple for tables); it is called lazily, so the tree itself holds no
    per-key Python objects. Dynamic workloads keep the object backend:
    :meth:`insert` and :meth:`delete` raise.
    """

    def __init__(
        self,
        keys: np.ndarray,
        fanout: int = 9,
        allocator: Allocator | None = None,
        values: Callable[[int], Any] | None = None,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if len(keys) == 0:
            raise ValueError("SoA backend requires a non-empty key set")
        if len(keys) > 1 and not (np.diff(keys) > 0).all():
            raise ValueError("SoA backend requires strictly increasing keys")
        self.fanout = fanout
        self.index_id = next_index_id()
        self.allocator = allocator or Allocator()
        self._keys = keys
        self._size = len(keys)
        self._value_fn = values if values is not None else (lambda i: None)
        self.on_structural_change: list = []
        self._views: dict[int, SoANode] = {}
        # The object path's __init__ allocates a 16B empty root that
        # bulk_load later abandons; replicate the burn so every
        # subsequent index address matches.
        self.allocator.alloc_index(16)
        self._levels = self._build_levels(keys, fanout)
        self._node_id_base = (self.index_id + 1) << _NODE_ID_SHIFT
        self._level_offsets = np.concatenate(
            ([0], np.cumsum([len(lvl) for lvl in self._levels[:-1]]))
        ).tolist()
        self.total_bytes = self._assign_addresses()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_levels(keys: np.ndarray, fanout: int) -> list[_Level]:
        n = len(keys)
        n_leaves = -(-n // fanout)
        starts = np.arange(n_leaves, dtype=np.int64) * fanout
        ends = np.minimum(starts + fanout, n)
        counts = ends - starts
        leaves = _Level(
            lo=keys[starts],
            hi=keys[ends - 1],
            counts=counts,
            # Leaf byte_size: count keys + count value pointers.
            nbytes=counts * (KEY_BYTES + PTR_BYTES),
            address=np.zeros(n_leaves, dtype=np.int64),
        )
        levels = [leaves]
        while len(levels[0]) > 1:
            below = levels[0]
            m = len(below)
            n_nodes = -(-m // fanout)
            starts = np.arange(n_nodes, dtype=np.int64) * fanout
            ends = np.minimum(starts + fanout, m)
            counts = ends - starts
            levels.insert(
                0,
                _Level(
                    lo=below.lo[starts],
                    hi=below.hi[ends - 1],
                    counts=counts,
                    # Internal byte_size: (count-1) separators + count ptrs.
                    nbytes=(2 * counts - 1) * KEY_BYTES,
                    address=np.zeros(n_nodes, dtype=np.int64),
                ),
            )
        return levels

    def _assign_addresses(self) -> int:
        """Vectorized replica of ``assign_addresses`` over BFS order.

        Every object-path address is 64B-aligned, so consecutive nodes
        sit ``align64(nbytes)`` apart; one allocator call for the whole
        span lands the region cursor exactly where the per-node loop
        leaves it (last node's address + its unaligned byte_size).
        """
        nbytes = np.concatenate([lvl.nbytes for lvl in self._levels])
        aligned = (nbytes + (BLOCK_SIZE - 1)) // BLOCK_SIZE * BLOCK_SIZE
        span = int(aligned.sum() - aligned[-1] + nbytes[-1])
        base = self.allocator.alloc_index(span)
        offsets = base + np.concatenate(([0], np.cumsum(aligned[:-1])))
        pos = 0
        for lvl in self._levels:
            lvl.address = offsets[pos : pos + len(lvl)]
            pos += len(lvl)
        return int(nbytes.sum())

    # ------------------------------------------------------------------ #
    # Node views
    # ------------------------------------------------------------------ #

    def _view(self, level: int, pos: int) -> SoANode:
        linear = self._level_offsets[level] + pos
        node = self._views.get(linear)
        if node is None:
            node = SoANode(self, level, pos)
            self._views[linear] = node
        return node

    def _value(self, row: int) -> Any:
        return self._value_fn(row)

    # ------------------------------------------------------------------ #
    # Queries (IndexNode-walker contract)
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> SoANode:
        return self._view(0, 0)

    @property
    def height(self) -> int:
        return len(self._levels)

    def __len__(self) -> int:
        return self._size

    def walk(self, key: Any) -> list[SoANode]:
        node = self.root
        path = [node]
        while not node.is_leaf:
            node = node.child_for(key)
            path.append(node)
        return path

    def walk_from(self, node: SoANode, key: Any) -> list[SoANode]:
        if not node.covers(key) and node is not self.root:
            raise ValueError(f"node {node!r} does not cover key {key!r}")
        path = [node]
        while not node.is_leaf:
            node = node.child_for(key)
            path.append(node)
        return path

    def batch_positions(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`walk`: per-level positions for a key chunk.

        Returns a ``(len(keys), height)`` int64 array whose row ``i``
        holds the position of every node ``walk(keys[i])`` visits, one
        ``searchsorted`` per level over the SoA ``lo`` columns instead of
        one per (key, node). Equivalent to the scalar ``child_for``
        because each level's ``lo`` column is strictly increasing and a
        parent's separator array is exactly its child window of that
        column: the scalar pick ``start + searchsorted(separators, key,
        'right')`` equals the global "last node with lo <= key" clamped
        into the window (keys below the window route to its first child,
        keys beyond it to its last).
        """
        levels = self._levels
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        fanout = self.fanout
        out = np.zeros((len(keys), len(levels)), dtype=np.int64)
        pos = out[:, 0]
        for level in range(len(levels) - 1):
            start = pos * fanout
            last = start + levels[level].counts[pos] - 1
            g = np.searchsorted(levels[level + 1].lo, keys, side="right") - 1
            pos = np.clip(g, start, last)
            out[:, level + 1] = pos
        return out

    def _row_of(self, key: Any) -> int | None:
        idx = int(np.searchsorted(self._keys, key))
        if idx < self._size and int(self._keys[idx]) == key:
            return idx
        return None

    def get(self, key: Any, default: Any = None) -> Any:
        row = self._row_of(key)
        return self._value(row) if row is not None else default

    def __contains__(self, key: Any) -> bool:
        return self._row_of(key) is not None

    def range_scan(self, lo: Any, hi: Any) -> Iterator[tuple[int, Any]]:
        if lo > hi:
            return
        start = int(np.searchsorted(self._keys, lo, side="left"))
        end = int(np.searchsorted(self._keys, hi, side="right"))
        for row in range(start, end):
            yield int(self._keys[row]), self._value(row)

    def items(self) -> Iterator[tuple[int, Any]]:
        for row in range(self._size):
            yield int(self._keys[row]), self._value(row)

    def nodes(self) -> Iterator[SoANode]:
        """BFS over every node — materializes all views; test-scale only."""
        for level, lvl in enumerate(self._levels):
            for pos in range(len(lvl)):
                yield self._view(level, pos)

    def level_nodes(self, level: int) -> list[SoANode]:
        return [self._view(level, pos) for pos in range(len(self._levels[level]))]

    def total_blocks(self) -> int:
        return self.total_blocks_fast()

    def total_blocks_fast(self) -> int:
        """Distinct 64B blocks without materializing node views.

        Valid because every address is 64B-aligned (nodes never share a
        block), so each node spans exactly ``align64(nbytes) / 64``
        blocks of its own — the same count ``count_blocks`` derives.
        """
        total = 0
        for lvl in self._levels:
            aligned = (lvl.nbytes + (BLOCK_SIZE - 1)) // BLOCK_SIZE
            total += int(aligned.sum())
        return total

    # ------------------------------------------------------------------ #
    # Mutation (unsupported by design)
    # ------------------------------------------------------------------ #

    def insert(self, key: Any, value: Any) -> None:
        raise NotImplementedError(
            "SoA backend is read-only (bulk-loaded); use the object "
            "backend for dynamic workloads"
        )

    def delete(self, key: Any) -> bool:
        raise NotImplementedError(
            "SoA backend is read-only (bulk-loaded); use the object "
            "backend for dynamic workloads"
        )


class SoARecordTable:
    """Array-backed :class:`~repro.indexes.table.RecordTable` equivalent.

    Columns are numpy arrays; records materialize as dicts only when a
    relational operator asks for one. Allocation order replicates
    ``RecordTable.from_records`` — placeholder-tree burn, all record
    data, then the bulk-loaded tree — so record and node addresses are
    byte-identical across backends.
    """

    def __init__(
        self,
        columns: tuple[str, ...],
        key_column: str,
        arrays: dict[str, np.ndarray],
        fanout: int = 9,
        allocator: Allocator | None = None,
    ) -> None:
        if key_column not in columns:
            raise ValueError(f"key column {key_column!r} not in {columns}")
        missing = set(columns) - set(arrays)
        if missing:
            raise ValueError(f"arrays missing columns {sorted(missing)}")
        self.columns = columns
        self.key_column = key_column
        self.allocator = allocator or Allocator()
        self._fanout = fanout
        self._arrays = {
            name: np.ascontiguousarray(arrays[name]) for name in columns
        }
        self.record_bytes = 16 * len(columns)
        keys = np.ascontiguousarray(self._arrays[key_column], dtype=np.int64)
        lengths = {name: len(a) for name, a in self._arrays.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged column lengths: {lengths}")
        # Burn: RecordTable.__init__ builds a placeholder BPlusTree
        # (one index id, one 16B root) that from_records replaces.
        next_index_id()
        self.allocator.alloc_index(16)
        # Records: the object path allocates record_bytes per record in
        # key order; 64B alignment makes that a fixed stride, so one
        # span allocation reproduces every address and the final cursor.
        n = len(keys)
        self._record_stride = align_up(self.record_bytes, BLOCK_SIZE)
        self._data_base = self.allocator.alloc_data(
            self._record_stride * (n - 1) + self.record_bytes
        )
        self._tree = SoABPlusTree(
            keys, fanout=fanout, allocator=self.allocator, values=self._stored,
        )
        self.index_id = self._tree.index_id

    def _stored(self, row: int) -> tuple[int, dict[str, Any]]:
        """(address, record) — the value shape object-path leaves hold."""
        return self._address_of(row), self._record(row)

    def _address_of(self, row: int) -> int:
        return self._data_base + self._record_stride * row

    def _record(self, row: int) -> dict[str, Any]:
        return {name: int(self._arrays[name][row]) for name in self.columns}

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def height(self) -> int:
        return self._tree.height

    @property
    def root(self) -> SoANode:
        return self._tree.root

    @property
    def on_structural_change(self) -> list:
        return self._tree.on_structural_change

    def walk(self, key: int) -> list[SoANode]:
        return self._tree.walk(key)

    def walk_from(self, node: SoANode, key: int) -> list[SoANode]:
        return self._tree.walk_from(node, key)

    def nodes(self) -> Iterator[SoANode]:
        return self._tree.nodes()

    def total_blocks_fast(self) -> int:
        return self._tree.total_blocks_fast()

    # ------------------------------------------------------------------ #
    # Relational operators (RecordTable semantics)
    # ------------------------------------------------------------------ #

    def get(self, key: int) -> dict[str, Any] | None:
        row = self._tree._row_of(key)
        return self._record(row) if row is not None else None

    def record_address(self, key: int) -> int | None:
        row = self._tree._row_of(key)
        return self._address_of(row) if row is not None else None

    def select_range(self, lo: int, hi: int) -> Iterator[dict[str, Any]]:
        for _, (_, record) in self._tree.range_scan(lo, hi):
            yield record

    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[dict[str, Any]]:
        for _, (_, record) in self._tree.items():
            if predicate(record):
                yield record

    def join(
        self, other: Any, column: str
    ) -> Iterator[tuple[dict[str, Any], dict[str, Any]]]:
        """Index nested-loop join: probe ``other``'s key index per record."""
        for _, (_, record) in self._tree.items():
            matched = other.get(record[column])
            if matched is not None:
                yield record, matched

    def scan(self) -> Iterator[dict[str, Any]]:
        for row in range(len(self._tree)):
            yield self._record(row)

    def insert(self, record: dict[str, Any]) -> None:
        raise NotImplementedError(
            "SoA backend is read-only (bulk-loaded); use the object "
            "backend for dynamic workloads"
        )


__all__ = ["SoABPlusTree", "SoANode", "SoARecordTable"]
