"""Relational record table with a primary-key B+tree — Gorgon substrate.

Gorgon runs declarative operators (map/filter, SELECT, WHERE, JOIN) over
tables of records. Records live in the DRAM data region; the primary key is
indexed by a B+tree whose leaves point at the records, which is what the
Scan / Analytics / JOIN workloads walk.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Any

from repro.indexes.base import IndexNode
from repro.indexes.bplustree import BPlusTree
from repro.mem.layout import Allocator


class RecordTable:
    """A table of dict records indexed by an integer primary key."""

    def __init__(
        self,
        columns: tuple[str, ...],
        key_column: str,
        fanout: int = 9,
        allocator: Allocator | None = None,
    ) -> None:
        if key_column not in columns:
            raise ValueError(f"key column {key_column!r} not in {columns}")
        self.columns = columns
        self.key_column = key_column
        self.allocator = allocator or Allocator()
        self._fanout = fanout
        self._tree = BPlusTree(fanout=fanout, allocator=self.allocator)
        self.index_id = self._tree.index_id
        self.record_bytes = 16 * len(columns)

    @classmethod
    def from_records(
        cls,
        columns: tuple[str, ...],
        key_column: str,
        records: Iterable[dict[str, Any]],
        fanout: int = 9,
        allocator: Allocator | None = None,
    ) -> "RecordTable":
        table = cls(columns, key_column, fanout=fanout, allocator=allocator)
        keyed = []
        for record in records:
            table._validate(record)
            address = table.allocator.alloc_data(table.record_bytes)
            keyed.append((record[key_column], (address, dict(record))))
        table._tree = BPlusTree.bulk_load(keyed, fanout=fanout, allocator=table.allocator)
        table.index_id = table._tree.index_id
        return table

    def _validate(self, record: dict[str, Any]) -> None:
        missing = set(self.columns) - set(record)
        if missing:
            raise ValueError(f"record missing columns {sorted(missing)}")

    def insert(self, record: dict[str, Any]) -> None:
        self._validate(record)
        address = self.allocator.alloc_data(self.record_bytes)
        self._tree.insert(record[self.key_column], (address, dict(record)))

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def height(self) -> int:
        return self._tree.height

    @property
    def root(self) -> IndexNode:
        return self._tree.root

    @property
    def on_structural_change(self) -> list:
        """Invalidation hooks of the primary-key index."""
        return self._tree.on_structural_change

    def walk(self, key: int) -> list[IndexNode]:
        return self._tree.walk(key)

    def walk_from(self, node: IndexNode, key: int) -> list[IndexNode]:
        return self._tree.walk_from(node, key)

    def nodes(self) -> Iterator[IndexNode]:
        return self._tree.nodes()

    # ------------------------------------------------------------------ #
    # Relational operators (functional semantics)
    # ------------------------------------------------------------------ #

    def get(self, key: int) -> dict[str, Any] | None:
        stored = self._tree.get(key)
        return stored[1] if stored is not None else None

    def record_address(self, key: int) -> int | None:
        stored = self._tree.get(key)
        return stored[0] if stored is not None else None

    def select_range(self, lo: int, hi: int) -> Iterator[dict[str, Any]]:
        """SELECT * WHERE key BETWEEN lo AND hi (index range scan)."""
        for _, (_, record) in self._tree.range_scan(lo, hi):
            yield record

    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[dict[str, Any]]:
        """Full-scan filter (the WHERE clause over a non-key column)."""
        for _, (_, record) in self._tree.items():
            if predicate(record):
                yield record

    def join(
        self, other: "RecordTable", column: str
    ) -> Iterator[tuple[dict[str, Any], dict[str, Any]]]:
        """Index nested-loop join: probe ``other``'s key index per record."""
        for _, (_, record) in self._tree.items():
            matched = other.get(record[column])
            if matched is not None:
                yield record, matched

    def scan(self) -> Iterator[dict[str, Any]]:
        for _, (_, record) in self._tree.items():
            yield record
