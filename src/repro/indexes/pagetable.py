"""Radix page table — the IX-cache's CPU/MMU generalization.

The paper's related work notes that the "IX-cache generalizes the
classical concept of guarded page tables and translation caches ... CPU/GPU
extensions are future work". This module implements that extension: an
x86-64-style 4-level radix page table whose table nodes are
:class:`IndexNode` objects tagged with the virtual-address range they
translate — so the same IX-cache that short-circuits B+tree walks acts as
a page-walk cache (a generalization of skip-level translation caches).

Each level consumes ``bits_per_level`` of the virtual page number; a node
at level ``l`` covers a VA range of ``page_size * 2^(bits*(levels-l))``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.indexes.base import IndexNode, next_index_id
from repro.mem.layout import Allocator
from repro.params import PTR_BYTES


class RadixPageTable:
    """Multi-level radix page table over a virtual address space.

    ``levels=4, bits_per_level=9, page_bits=12`` reproduces x86-64's
    48-bit layout. Table nodes are allocated in the index region (they are
    what walkers fetch); translations map VPN -> PFN.
    """

    def __init__(
        self,
        levels: int = 4,
        bits_per_level: int = 9,
        page_bits: int = 12,
        allocator: Allocator | None = None,
    ) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        if bits_per_level < 1:
            raise ValueError("bits_per_level must be >= 1")
        self.levels = levels
        self.bits_per_level = bits_per_level
        self.page_bits = page_bits
        self.index_id = next_index_id()
        self.allocator = allocator or Allocator()
        self.on_structural_change: list = []
        self._next_pfn = 1
        self._root = self._make_node(0, 0)
        self.mapped_pages = 0

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def va_bits(self) -> int:
        return self.page_bits + self.levels * self.bits_per_level

    @property
    def height(self) -> int:
        return self.levels

    @property
    def root(self) -> IndexNode:
        return self._root

    def _span_bits(self, level: int) -> int:
        """VA bits covered by one entry of a node at ``level``."""
        return self.page_bits + (self.levels - 1 - level) * self.bits_per_level

    def _node_span_bits(self, level: int) -> int:
        return self._span_bits(level) + self.bits_per_level

    def _slot(self, vaddr: int, level: int) -> int:
        return (vaddr >> self._span_bits(level)) & ((1 << self.bits_per_level) - 1)

    def _make_node(self, level: int, base_vaddr: int) -> IndexNode:
        span = 1 << self._node_span_bits(level)
        node = IndexNode(level, [], values=None, lo=base_vaddr,
                         hi=base_vaddr + span - 1)
        node.children = None  # children managed as a slot dict
        node.values = {}
        node.nbytes = (1 << self.bits_per_level) * PTR_BYTES
        node.address = self.allocator.alloc_index(node.nbytes)
        return node

    # ------------------------------------------------------------------ #
    # Mapping and translation
    # ------------------------------------------------------------------ #

    def map_page(self, vaddr: int, pfn: int | None = None) -> int:
        """Install a translation for the page containing ``vaddr``."""
        self._check(vaddr)
        node = self._root
        for level in range(self.levels - 1):
            slot = self._slot(vaddr, level)
            child = node.values.get(slot)
            if child is None:
                base = (vaddr >> self._node_span_bits(level + 1)) << (
                    self._node_span_bits(level + 1)
                )
                child = self._make_node(level + 1, base)
                node.values[slot] = child
            node = child
        slot = self._slot(vaddr, self.levels - 1)
        if slot not in node.values:
            self.mapped_pages += 1
        if pfn is None:
            pfn = self._next_pfn
            self._next_pfn += 1
        node.values[slot] = pfn
        return pfn

    def translate(self, vaddr: int) -> int | None:
        """VA -> PA, or None if unmapped."""
        self._check(vaddr)
        node = self._root
        for level in range(self.levels - 1):
            node = node.values.get(self._slot(vaddr, level))
            if node is None:
                return None
        pfn = node.values.get(self._slot(vaddr, self.levels - 1))
        if pfn is None:
            return None
        return (pfn << self.page_bits) | (vaddr & ((1 << self.page_bits) - 1))

    def unmap_page(self, vaddr: int) -> bool:
        """Remove a translation; fires invalidation hooks (TLB shootdown)."""
        self._check(vaddr)
        node = self._root
        for level in range(self.levels - 1):
            node = node.values.get(self._slot(vaddr, level))
            if node is None:
                return False
        removed = node.values.pop(self._slot(vaddr, self.levels - 1), None)
        if removed is None:
            return False
        self.mapped_pages -= 1
        page = vaddr >> self.page_bits << self.page_bits
        for callback in self.on_structural_change:
            callback(page, page + (1 << self.page_bits) - 1)
        return True

    # ------------------------------------------------------------------ #
    # Walk surface (what the IX-cache machinery consumes)
    # ------------------------------------------------------------------ #

    def walk(self, vaddr: int) -> list[IndexNode]:
        """The page-walk: root to the deepest existing table node."""
        self._check(vaddr)
        path = [self._root]
        node = self._root
        for level in range(self.levels - 1):
            child = node.values.get(self._slot(vaddr, level))
            if not isinstance(child, IndexNode):
                break
            path.append(child)
            node = child
        return path

    def walk_from(self, node: IndexNode, vaddr: int) -> list[IndexNode]:
        """Continue a page-walk from a cached table node (skip levels)."""
        if not node.covers(vaddr):
            raise ValueError(f"node {node!r} does not cover {vaddr:#x}")
        path = [node]
        cur = node
        for level in range(node.level, self.levels - 1):
            child = cur.values.get(self._slot(vaddr, level))
            if not isinstance(child, IndexNode):
                break
            path.append(child)
            cur = child
        return path

    def nodes(self) -> Iterator[IndexNode]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            for child in node.values.values():
                if isinstance(child, IndexNode):
                    stack.append(child)

    def _check(self, vaddr: int) -> None:
        if not 0 <= vaddr < (1 << self.va_bits):
            raise ValueError(
                f"virtual address {vaddr:#x} outside {self.va_bits}-bit space"
            )
