"""Shallow compressed fibers (CSR5/CSF-style) — the SpMM-S index.

Fibers are the paper's shallow alternative to dynamic sparse tensors
(Fig. 18, "-S" variants): a fixed 3-level structure — root directory over
column blocks, per-block coordinate segments, and leaf nonzero runs. Because
the index is at most 3 levels, there is little reach for METAL to exploit,
which is exactly the behaviour the -S experiments demonstrate.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from repro.indexes.base import IndexNode, assign_addresses, next_index_id
from repro.mem.layout import Allocator
from repro.params import KEY_BYTES

_NNZ_ENTRY_BYTES = 2 * KEY_BYTES


class FiberMatrix:
    """Column-fiber sparse matrix with a fixed-depth (3-level) index.

    Level 0: root directory of column-block separators.
    Level 1: per-block sorted column coordinate segments.
    Level 2: leaves holding each column's (row, value) run.
    """

    HEIGHT = 3

    def __init__(
        self,
        shape: tuple[int, int],
        triples: Iterable[tuple[int, int, float]],
        allocator: Allocator | None = None,
    ) -> None:
        rows, cols = shape
        if rows <= 0 or cols <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        self.shape = shape
        self.index_id = next_index_id()
        self.allocator = allocator or Allocator()

        by_col: dict[int, list[tuple[int, float]]] = {}
        for r, c, v in triples:
            if not (0 <= r < rows and 0 <= c < cols):
                raise IndexError(f"coordinate ({r}, {c}) outside shape {shape}")
            by_col.setdefault(c, []).append((r, v))
        self.nnz = sum(len(e) for e in by_col.values())
        stored = sorted(by_col)

        # Leaves: one per stored column.
        self._leaves: dict[int, IndexNode] = {}
        leaf_nodes: list[IndexNode] = []
        for c in stored:
            entries = sorted(by_col[c])
            leaf = IndexNode(2, [c], values=entries, lo=c, hi=c)
            self._leaves[c] = leaf
            leaf_nodes.append(leaf)

        # Middle segments: sqrt grouping keeps the directory and segments
        # balanced regardless of column count.
        group = max(2, math.ceil(math.sqrt(max(1, len(leaf_nodes)))))
        segments: list[IndexNode] = []
        for start in range(0, len(leaf_nodes), group):
            chunk = leaf_nodes[start : start + group]
            segments.append(
                IndexNode(
                    1,
                    [leaf.lo for leaf in chunk],
                    children=list(chunk),
                    lo=chunk[0].lo,
                    hi=chunk[-1].hi,
                )
            )
        if not segments:
            segments = [IndexNode(1, [], children=[], lo=0, hi=0)]

        self._root = IndexNode(
            0,
            [seg.lo for seg in segments[1:]],
            children=segments,
            lo=segments[0].lo,
            hi=segments[-1].hi,
        )
        self.total_bytes = assign_addresses(self.nodes(), self.allocator)

    @property
    def root(self) -> IndexNode:
        return self._root

    @property
    def height(self) -> int:
        return self.HEIGHT

    def nodes(self) -> Iterator[IndexNode]:
        yield self._root
        for seg in self._root.children or ():
            yield seg
            yield from seg.children or ()

    def walk(self, col: int) -> list[IndexNode]:
        """Directory -> segment -> column leaf (may stop early on absence)."""
        path = [self._root]
        if not self._root.children:
            return path
        seg = self._root.child_for(col)
        path.append(seg)
        for leaf in seg.children or ():
            if leaf.lo == col:
                path.append(leaf)
                break
        return path

    def walk_from(self, node: IndexNode, col: int) -> list[IndexNode]:
        if node.is_leaf:
            return [node]
        path = [node]
        for leaf in node.children or ():
            if leaf.lo == col:
                path.append(leaf)
                break
        return path

    def col_nonzeros(self, col: int) -> list[tuple[int, float]]:
        leaf = self._leaves.get(col)
        return list(leaf.values) if leaf is not None else []

    def stored_columns(self) -> list[int]:
        return sorted(self._leaves)

    def get(self, row: int, col: int) -> float:
        for r, v in self.col_nonzeros(col):
            if r == row:
                return v
        return 0.0
