"""B+tree — the textbook index of the paper's running example (Fig. 1).

Supports bulk loading (with explicit fan-out so experiments can dial index
depth from 10 to 18 levels, Section 5.5), dynamic inserts with node splits
(needed by the dynamic sparse tensors of Chou & Amarasinghe), point walks,
and leaf-linked range scans.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.indexes.base import (
    IndexNode,
    _branch_index,
    assign_addresses,
    count_blocks,
    next_index_id,
)
from repro.mem.layout import Allocator


class BPlusTree:
    """A B+tree over integer-comparable keys.

    ``fanout`` is the maximum number of children of an internal node (and
    the maximum number of key/value pairs in a leaf). The paper's Table 2
    "Degree 5 (9 keys)" corresponds to ``fanout=9`` here with a minimum
    fill of 5.
    """

    def __init__(self, fanout: int = 9, allocator: Allocator | None = None) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout
        self.index_id = next_index_id()
        self.allocator = allocator or Allocator()
        self._root: IndexNode = IndexNode(0, [], values=[])
        self._allocate(self._root)
        self._size = 0
        self.total_bytes = self._root.nbytes
        #: Callbacks fired as fn(lo, hi) when a structural change (node
        #: split / root growth) makes cached copies of that key range
        #: stale. Caches subscribe here to invalidate (Section 3.2's miss
        #: handler keeps the IX-cache coherent with dynamic indexes).
        self.on_structural_change: list = []
        self._dirty_ranges: list[tuple[Any, Any]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[tuple[Any, Any]],
        fanout: int = 9,
        allocator: Allocator | None = None,
    ) -> "BPlusTree":
        """Build a tree from (key, value) pairs; keys need not be sorted."""
        tree = cls(fanout=fanout, allocator=allocator)
        pairs = sorted(items, key=lambda kv: kv[0])
        if not pairs:
            return tree
        keys = [k for k, _ in pairs]
        if any(keys[i] == keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("bulk_load requires distinct keys")

        leaves: list[IndexNode] = []
        for start in range(0, len(pairs), fanout):
            chunk = pairs[start : start + fanout]
            leaf = IndexNode(
                0,
                [k for k, _ in chunk],
                values=[v for _, v in chunk],
            )
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)

        level_nodes = leaves
        while len(level_nodes) > 1:
            parents: list[IndexNode] = []
            for start in range(0, len(level_nodes), fanout):
                group = level_nodes[start : start + fanout]
                separators = [child.lo for child in group[1:]]
                parent = IndexNode(
                    0,
                    separators,
                    children=list(group),
                    lo=group[0].lo,
                    hi=group[-1].hi,
                )
                parents.append(parent)
            level_nodes = parents

        tree._root = level_nodes[0]
        tree._size = len(pairs)
        tree._relevel()
        tree.total_bytes = assign_addresses(tree.nodes(), tree.allocator)
        return tree

    @staticmethod
    def fanout_for_depth(num_keys: int, depth: int) -> int:
        """Fan-out that gives roughly ``depth`` levels for ``num_keys`` keys."""
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if num_keys <= 1:
            return 2
        return max(2, round(num_keys ** (1.0 / depth)))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> IndexNode:
        return self._root

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root counts as 1)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def __len__(self) -> int:
        return self._size

    def walk(self, key: Any) -> list[IndexNode]:
        """The root-to-leaf node path a hardware walker would traverse."""
        path = [self._root]
        node = self._root
        while not node.is_leaf:
            node = node.child_for(key)
            path.append(node)
        return path

    def walk_from(self, node: IndexNode, key: Any) -> list[IndexNode]:
        """Continue a walk from an arbitrary (e.g. IX-cache-hit) node."""
        if not node.covers(key) and node is not self._root:
            raise ValueError(f"node {node!r} does not cover key {key!r}")
        path = [node]
        while not node.is_leaf:
            node = node.child_for(key)
            path.append(node)
        return path

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self.walk(key)[-1]
        for k, v in zip(leaf.keys, leaf.values):
            if k == key:
                return v
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def range_scan(self, lo: Any, hi: Any) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) with lo <= key <= hi via leaf links."""
        if lo > hi:
            return
        leaf = self.walk(lo)[-1]
        while leaf is not None:
            for k, v in zip(leaf.keys, leaf.values):
                if k > hi:
                    return
                if k >= lo:
                    yield k, v
            leaf = leaf.next_leaf

    def items(self) -> Iterator[tuple[Any, Any]]:
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def nodes(self) -> Iterator[IndexNode]:
        """Breadth-first iteration over every node."""
        frontier = [self._root]
        while frontier:
            nxt: list[IndexNode] = []
            for node in frontier:
                yield node
                if node.children:
                    nxt.extend(node.children)
            frontier = nxt

    def level_nodes(self, level: int) -> list[IndexNode]:
        return [n for n in self.nodes() if n.level == level]

    def total_blocks(self) -> int:
        return count_blocks(self.nodes())

    # ------------------------------------------------------------------ #
    # Dynamic inserts
    # ------------------------------------------------------------------ #

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite; splits full nodes on the way back up.

        Structural changes are reported through ``on_structural_change``
        so caches holding stale node ranges can invalidate.
        """
        self._dirty_ranges.clear()
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            old_root = self._root
            self._root = IndexNode(
                0,
                [sep],
                children=[old_root, right],
                lo=old_root.lo,
                hi=right.hi,
            )
            self._allocate(self._root)
            self._relevel()
        if self._dirty_ranges and self.on_structural_change:
            lo = min(r[0] for r in self._dirty_ranges)
            hi = max(r[1] for r in self._dirty_ranges)
            for callback in self.on_structural_change:
                callback(lo, hi)

    def _insert(self, node: IndexNode, key: Any, value: Any) -> tuple[Any, IndexNode] | None:
        if node.is_leaf:
            return self._insert_into_leaf(node, key, value)
        idx = 0
        while idx < len(node.keys) and key >= node.keys[idx]:
            idx += 1
        child = node.children[idx]
        split = self._insert(child, key, value)
        node.lo = node.children[0].lo
        node.hi = node.children[-1].hi
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        node.hi = node.children[-1].hi
        if len(node.children) <= self.fanout:
            return None
        return self._split_internal(node)

    def _insert_into_leaf(self, leaf: IndexNode, key: Any, value: Any) -> tuple[Any, IndexNode] | None:
        pos = 0
        while pos < len(leaf.keys) and leaf.keys[pos] < key:
            pos += 1
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            leaf.values[pos] = value
            return None
        leaf.keys.insert(pos, key)
        leaf.values.insert(pos, value)
        self._size += 1
        old_lo, old_hi = leaf.lo, leaf.hi
        leaf.lo, leaf.hi = leaf.keys[0], leaf.keys[-1]
        if len(leaf.keys) <= self.fanout:
            return None
        if old_lo is not None:
            self._dirty_ranges.append((min(old_lo, leaf.lo), max(old_hi, leaf.hi)))
        mid = len(leaf.keys) // 2
        right = IndexNode(leaf.level, leaf.keys[mid:], values=leaf.values[mid:])
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.lo, leaf.hi = leaf.keys[0], leaf.keys[-1]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        self._allocate(right)
        return right.lo, right

    def _split_internal(self, node: IndexNode) -> tuple[Any, IndexNode]:
        self._dirty_ranges.append((node.lo, node.hi))
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = IndexNode(
            node.level,
            node.keys[mid + 1 :],
            children=node.children[mid + 1 :],
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        node.lo = node.children[0].lo
        node.hi = node.children[-1].hi
        right.lo = right.children[0].lo
        right.hi = right.children[-1].hi
        self._allocate(right)
        return sep, right

    # ------------------------------------------------------------------ #
    # Deletion
    # ------------------------------------------------------------------ #

    def delete(self, key: Any) -> bool:
        """Remove a key; rebalances by borrowing or merging.

        Returns True if the key existed. Merges are structural changes and
        fire ``on_structural_change`` like splits do.
        """
        self._dirty_ranges.clear()
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
        # Shrink the root when it degenerates to a single child.
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._dirty_ranges.append((self._root.lo, self._root.hi))
            self._root = self._root.children[0]
            self._relevel()
        if self._dirty_ranges and self.on_structural_change:
            los = [r[0] for r in self._dirty_ranges if r[0] is not None]
            his = [r[1] for r in self._dirty_ranges if r[1] is not None]
            if los and his:
                for callback in self.on_structural_change:
                    callback(min(los), max(his))
        return removed

    def _min_leaf_keys(self) -> int:
        return max(1, self.fanout // 2)

    def _min_children(self) -> int:
        return max(2, (self.fanout + 1) // 2)

    def _delete(self, node: IndexNode, key: Any) -> bool:
        if node.is_leaf:
            for i, k in enumerate(node.keys):
                if k == key:
                    node.keys.pop(i)
                    node.values.pop(i)
                    if node.keys:
                        node.lo, node.hi = node.keys[0], node.keys[-1]
                    else:
                        node.lo = node.hi = None
                    return True
            return False
        idx = _branch_index(node.keys, key)
        child = node.children[idx]
        removed = self._delete(child, key)
        if removed:
            self._rebalance(node, idx)
            if node.children:
                node.lo = node.children[0].lo
                node.hi = node.children[-1].hi
        return removed

    def _underflowing(self, node: IndexNode) -> bool:
        if node.is_leaf:
            return len(node.keys) < self._min_leaf_keys()
        return len(node.children) < self._min_children()

    def _rebalance(self, parent: IndexNode, idx: int) -> None:
        child = parent.children[idx]
        if not self._underflowing(child):
            return
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        if left is not None and not self._would_underflow_after_lend(left):
            self._borrow_from_left(parent, idx)
        elif right is not None and not self._would_underflow_after_lend(right):
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge(parent, idx - 1)
        elif right is not None:
            self._merge(parent, idx)

    def _would_underflow_after_lend(self, node: IndexNode) -> bool:
        if node.is_leaf:
            return len(node.keys) - 1 < self._min_leaf_keys()
        return len(node.children) - 1 < self._min_children()

    def _borrow_from_left(self, parent: IndexNode, idx: int) -> None:
        left, child = parent.children[idx - 1], parent.children[idx]
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            # Rotate through the parent separator.
            moved = left.children.pop()
            child.children.insert(0, moved)
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
        self._refresh_bounds(left)
        self._refresh_bounds(child)

    def _borrow_from_right(self, parent: IndexNode, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            moved = right.children.pop(0)
            child.children.append(moved)
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
        self._refresh_bounds(child)
        self._refresh_bounds(right)

    def _merge(self, parent: IndexNode, left_idx: int) -> None:
        """Merge children left_idx and left_idx+1 into one node."""
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        self._dirty_ranges.append((left.lo, right.hi))
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)
        self._refresh_bounds(left)

    def _refresh_bounds(self, node: IndexNode) -> None:
        if node.is_leaf:
            if node.keys:
                node.lo, node.hi = node.keys[0], node.keys[-1]
        elif node.children:
            node.lo = node.children[0].lo
            node.hi = node.children[-1].hi

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _allocate(self, node: IndexNode) -> None:
        node.nbytes = max(node.byte_size(), 16)
        node.address = self.allocator.alloc_index(node.nbytes)

    def _relevel(self) -> None:
        """Renumber levels from the root after structural changes."""
        frontier = [self._root]
        level = 0
        while frontier:
            nxt: list[IndexNode] = []
            for node in frontier:
                node.level = level
                if node.children:
                    nxt.extend(node.children)
            frontier = nxt
            level += 1

    def _leftmost_leaf(self) -> IndexNode:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated.

        Used by the property-based tests: sorted keys in every node,
        children ranges nested inside parent ranges, uniform leaf depth,
        and leaf links covering all keys in order.
        """
        depths: set[int] = set()

        def visit(node: IndexNode, depth: int, lo: Any, hi: Any) -> None:
            assert node.keys == sorted(node.keys), "node keys unsorted"
            if node.lo is not None and lo is not None:
                assert node.lo >= lo, "child range escapes parent lo"
            if node.hi is not None and hi is not None:
                assert node.hi <= hi, "child range escapes parent hi"
            if node.is_leaf:
                depths.add(depth)
                assert len(node.keys) == len(node.values)
                return
            assert len(node.children) == len(node.keys) + 1, "key/child arity"
            bounds = [lo, *node.keys, hi]
            for i, child in enumerate(node.children):
                visit(child, depth + 1, bounds[i], bounds[i + 1])

        visit(self._root, 0, None, None)
        assert len(depths) <= 1, f"leaves at multiple depths: {depths}"
        linked = [k for k, _ in self.items()]
        assert linked == sorted(linked), "leaf chain out of order"
        assert len(linked) == self._size, "size mismatch with leaf chain"
