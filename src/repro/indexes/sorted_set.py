"""Sorted sets — Redis-style hash index of skip-list buckets (§4.4).

Records are (member, score) tuples. Scores map to hash buckets; each bucket
is an ordered skip list. Scores may be *explicit* (user-assigned ordering,
e.g. feed popularity) or *implicit* (a hash of the member string, letting
wide string keys fit the hardware's fixed key width).

Bucketing is order-preserving (score-range partitioning, as the paper's
consistent/order-preserving-hashing discussion permits) so that the global
score is a valid IX-cache probe key: bucket ranges never overlap, and range
scans stay meaningful.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator
from repro.indexes.base import IndexNode, next_index_id
from repro.indexes.skiplist import SkipList
from repro.mem.layout import Allocator

_DIRECTORY_ENTRY_BYTES = 16


def implicit_score(member: str, score_space: int) -> int:
    """Deterministic hash of a member string into the score space."""
    digest = hashlib.blake2b(member.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % score_space


class SortedSet:
    """Hash directory of score-partitioned skip-list buckets.

    ``score_space`` is the exclusive upper bound on scores; the directory
    splits it into ``num_buckets`` contiguous ranges. The deep configuration
    (few buckets, long skip lists) is the paper's "Sets"; many buckets with
    short lists is "Sets-S".
    """

    def __init__(
        self,
        score_space: int,
        num_buckets: int = 64,
        skip_p: float = 0.25,
        max_height: int = 12,
        seed: int = 0,
        allocator: Allocator | None = None,
    ) -> None:
        if score_space <= 0:
            raise ValueError("score_space must be positive")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.score_space = score_space
        self.index_id = next_index_id()
        self.num_buckets = num_buckets
        self.allocator = allocator or Allocator()
        self._directory_address = self.allocator.alloc_index(
            num_buckets * _DIRECTORY_ENTRY_BYTES
        )
        self._buckets = [
            SkipList(
                p=skip_p,
                max_height=max_height,
                seed=seed + b,
                allocator=self.allocator,
                level_offset=1,  # level 0 is the directory entry
            )
            for b in range(num_buckets)
        ]
        self._dir_nodes = [self._make_dir_node(b) for b in range(num_buckets)]
        self._size = 0

    def _make_dir_node(self, bucket: int) -> IndexNode:
        lo, hi = self.bucket_range(bucket)
        node = IndexNode(0, [lo], values=[bucket], lo=lo, hi=hi)
        node.address = self._directory_address + bucket * _DIRECTORY_ENTRY_BYTES
        node.nbytes = _DIRECTORY_ENTRY_BYTES
        return node

    def bucket_of(self, score: int) -> int:
        if not 0 <= score < self.score_space:
            raise ValueError(f"score {score} outside [0, {self.score_space})")
        return score * self.num_buckets // self.score_space

    def bucket_range(self, bucket: int) -> tuple[int, int]:
        lo = -(-bucket * self.score_space // self.num_buckets)
        hi = -(-(bucket + 1) * self.score_space // self.num_buckets) - 1
        return lo, hi

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, member: str, score: int | None = None) -> int:
        """Insert a member; hash the member if no explicit score is given.

        Returns the score actually used.
        """
        if score is None:
            score = implicit_score(member, self.score_space)
        self._buckets[self.bucket_of(score)].insert(score, member)
        self._size += 1
        return score

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return 1 + max(b.height - 1 for b in self._buckets)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def walk(self, score: int) -> list[IndexNode]:
        """Directory read, then the bucket's skip-list walk."""
        bucket = self.bucket_of(score)
        return [self._dir_nodes[bucket]] + self._buckets[bucket].walk(score)

    def walk_from(self, node: IndexNode, score: int) -> list[IndexNode]:
        bucket = self.bucket_of(score)
        if node is self._dir_nodes[bucket]:
            return [node] + self._buckets[bucket].walk(score)
        return self._buckets[bucket].walk_from(node, score)

    def members_at(self, score: int) -> list[str]:
        found = self._buckets[self.bucket_of(score)].get(score)
        return found or []

    def lookup(self, member: str, score: int | None = None) -> bool:
        """Membership test: walk to the score, validate by member scan."""
        if score is None:
            score = implicit_score(member, self.score_space)
        return member in self.members_at(score)

    def rank(self, score: int) -> int:
        """Number of distinct scores strictly below ``score`` (ZRANK).

        Buckets are score-ordered, so the global rank is the tower count of
        the preceding buckets plus the in-bucket skip-list rank.
        """
        bucket = self.bucket_of(score)
        rank = 0
        for b in range(bucket):
            sl = self._buckets[b]
            sl.finalize()
            rank += sl._tower_count
        return rank + self._buckets[bucket].rank(score)

    def by_rank(self, rank: int) -> tuple[int, list[str]] | None:
        """The (score, members) at a global rank, or None out of range."""
        if rank < 0:
            return None
        remaining = rank
        for sl in self._buckets:
            sl.finalize()
            if remaining < sl._tower_count:
                return sl.by_rank(remaining)
            remaining -= sl._tower_count
        return None

    def range_scan(self, lo: int, hi: int) -> Iterator[tuple[int, str]]:
        """All (score, member) pairs with lo <= score <= hi, in order."""
        if lo > hi:
            return
        for bucket in range(self.bucket_of(lo), self.bucket_of(min(hi, self.score_space - 1)) + 1):
            for score, members in self._buckets[bucket].items():
                if lo <= score <= hi:
                    for member in members:
                        yield score, member

    def nodes(self) -> Iterator[IndexNode]:
        yield from self._dir_nodes
        for bucket in self._buckets:
            yield from bucket.nodes()

    def bucket(self, b: int) -> SkipList:
        return self._buckets[b]
