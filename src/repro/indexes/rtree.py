"""Two-dimensional R-tree built from paired B-trees (§4.3).

The paper's spatial-analysis workload indexes quadrilaterals "bound by x and
y coordinates; each of the coordinates are indexed in a BTree with the leaf
values in the x-tree serving as keys to the y-tree". A query walks the
x-tree for a point's x coordinate, retrieves the correlated y keys, then
walks the (smaller) y-tree for each to assemble candidate quadrilaterals.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.indexes.base import IndexNode
from repro.indexes.bplustree import BPlusTree
from repro.mem.layout import Allocator


@dataclass(frozen=True)
class Rect:
    """An axis-aligned quadrilateral (bounding box)."""

    rect_id: int
    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi or self.y_lo > self.y_hi:
            raise ValueError(f"degenerate rect: {self}")

    def contains(self, x: int, y: int) -> bool:
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.x_hi < self.x_lo
            or other.x_lo > self.x_hi
            or other.y_hi < self.y_lo
            or other.y_lo > self.y_hi
        )


class RTree2D:
    """Paired x/y B-trees over quadrilateral anchor coordinates.

    The x-tree maps each distinct ``x_lo`` to the list of (y_lo, rect_id)
    anchored there; the y-tree maps each distinct ``y_lo`` to the rects
    anchored at that y. Table 2 uses degree 5 / depth 10 for BTree-x and
    degree 3 / depth 6 for BTree-y; both are constructor knobs here.
    """

    def __init__(
        self,
        rects: Iterable[Rect],
        x_fanout: int = 9,
        y_fanout: int = 5,
        allocator: Allocator | None = None,
    ) -> None:
        self.allocator = allocator or Allocator()
        self._rects: dict[int, Rect] = {}
        #: Widest rect extents: bound how far left/down of a query point an
        #: anchor can sit while still containing it (the scan window).
        self.max_width = 0
        self.max_height = 0
        x_map: dict[int, list[tuple[int, int]]] = {}
        y_map: dict[int, list[int]] = {}
        for rect in rects:
            if rect.rect_id in self._rects:
                raise ValueError(f"duplicate rect id {rect.rect_id}")
            self._rects[rect.rect_id] = rect
            self.max_width = max(self.max_width, rect.x_hi - rect.x_lo)
            self.max_height = max(self.max_height, rect.y_hi - rect.y_lo)
            x_map.setdefault(rect.x_lo, []).append((rect.y_lo, rect.rect_id))
            y_map.setdefault(rect.y_lo, []).append(rect.rect_id)
        self.x_tree = BPlusTree.bulk_load(
            sorted(x_map.items()), fanout=x_fanout, allocator=self.allocator
        )
        self.y_tree = BPlusTree.bulk_load(
            sorted(y_map.items()), fanout=y_fanout, allocator=self.allocator
        )

    def __len__(self) -> int:
        return len(self._rects)

    def rect(self, rect_id: int) -> Rect:
        return self._rects[rect_id]

    # ------------------------------------------------------------------ #
    # Walk surface (used by the simulator)
    # ------------------------------------------------------------------ #

    def x_walk(self, x: int) -> list[IndexNode]:
        return self.x_tree.walk(x)

    def y_walk(self, y: int) -> list[IndexNode]:
        return self.y_tree.walk(y)

    def correlated_y_keys(self, x: int, window: int = 0) -> list[int]:
        """The y keys reachable from x-tree leaves within +-window of x."""
        keys: list[int] = []
        for _, anchored in self.x_tree.range_scan(x - window, x + window):
            keys.extend(y for y, _ in anchored)
        return sorted(set(keys))

    # ------------------------------------------------------------------ #
    # Spatial queries (functional semantics, used by tests/examples)
    # ------------------------------------------------------------------ #

    def query_point(self, x: int, y: int) -> list[Rect]:
        """Rects containing the point, via a bounded x-tree range scan.

        A containing rect's anchor must lie in [x - max_width, x], so the
        scan is an index range scan of that window (the §4.3 walk pattern)
        rather than a full pass.
        """
        found: list[Rect] = []
        seen: set[int] = set()
        for _, anchored in self.x_tree.range_scan(x - self.max_width, x):
            for _, rect_id in anchored:
                rect = self._rects[rect_id]
                if rect_id not in seen and rect.contains(x, y):
                    seen.add(rect_id)
                    found.append(rect)
        return sorted(found, key=lambda r: r.rect_id)

    def query_window(self, window: Rect) -> list[Rect]:
        """Rects intersecting the window, via a bounded x-tree range scan."""
        hits: list[Rect] = []
        seen: set[int] = set()
        lo = window.x_lo - self.max_width
        for _, anchored in self.x_tree.range_scan(lo, window.x_hi):
            for _, rect_id in anchored:
                rect = self._rects[rect_id]
                if rect_id not in seen and rect.intersects(window):
                    seen.add(rect_id)
                    hits.append(rect)
        return sorted(hits, key=lambda r: r.rect_id)

    def query_window_bruteforce(self, window: Rect) -> list[Rect]:
        """Reference semantics for testing the index-driven query."""
        hits = [r for r in self._rects.values() if r.intersects(window)]
        return sorted(hits, key=lambda r: r.rect_id)

    def nodes(self) -> Iterator[IndexNode]:
        yield from self.x_tree.nodes()
        yield from self.y_tree.nodes()
