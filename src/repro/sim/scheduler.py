"""Walk-request scheduling policies.

The walker pipeline multiplexes walks to harvest memory-level parallelism
(Section 3.2); *which* walks run adjacently also matters: key-adjacent
walks share index paths (better cache reuse) and DRAM rows (better
row-buffer hit rates). This module provides reorder policies applied
before simulation:

* ``fifo``      — issue order (the default everywhere else).
* ``key_sorted``— globally sort by (index, key): maximal path sharing, at
  the cost of any original ordering semantics.
* ``batched``   — sort within fixed-size batches: bounded reordering, the
  realistic hardware option (a small reorder window).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.metrics import WalkRequest

POLICIES = ("fifo", "key_sorted", "batched")


def _sort_key(request: WalkRequest) -> tuple[int, int]:
    return (getattr(request.index, "index_id", 0), request.key)


def schedule(
    requests: Sequence[WalkRequest],
    policy: str = "fifo",
    batch: int = 64,
) -> list[WalkRequest]:
    """Return the request stream reordered per ``policy``.

    ``batch`` is the reorder-window size for the ``batched`` policy
    (hardware reorder buffers are small; 64 walks is generous).
    """
    if policy == "fifo":
        return list(requests)
    if policy == "key_sorted":
        return sorted(requests, key=_sort_key)
    if policy == "batched":
        if batch <= 0:
            raise ValueError("batch must be positive")
        out: list[WalkRequest] = []
        for start in range(0, len(requests), batch):
            out.extend(sorted(requests[start : start + batch], key=_sort_key))
        return out
    raise ValueError(f"unknown scheduling policy {policy!r}; choose from {POLICIES}")


def reorder_distance(
    original: Sequence[WalkRequest], scheduled: Sequence[WalkRequest]
) -> float:
    """Mean displacement of requests — how aggressive the reorder was."""
    if len(original) != len(scheduled):
        raise ValueError("schedules must be permutations of each other")
    position: dict[int, list[int]] = {}
    for i, request in enumerate(original):
        position.setdefault(id(request), []).append(i)
    total = 0
    for j, request in enumerate(scheduled):
        slots = position.get(id(request))
        if not slots:
            raise ValueError("scheduled stream contains foreign requests")
        total += abs(slots.pop() - j)
    return total / max(1, len(original))
