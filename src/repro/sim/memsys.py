"""Memory-system organizations under comparison (Section 5, Table 1).

Each variant turns one index walk into a :class:`WalkTrace` of timed
accesses while mutating its cache state:

* ``stream``   — streaming DSA: every node touch goes to DRAM.
* ``address``  — set-associative LRU address cache: full root-to-leaf walk
  with per-block probes (a hit eliminates a single DRAM access).
* ``fa_opt``   — fully-associative address cache with Belady-OPT
  replacement (two-pass; walks must replay in preparation order).
* ``xcache``   — X-cache [50]: key-tagged leaf cache; a hit short-circuits
  the whole walk, a miss walks root-to-leaf from DRAM and inserts the leaf.
* ``metal`` / ``metal_ix`` — IX-cache probe short-circuits to the deepest
  cached covering node; nodes fetched on the way down are offered to the
  pattern controller (METAL) or greedily inserted (METAL-IX).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from functools import lru_cache
from typing import Any

from repro.core.descriptors import LevelDescriptor, WalkContext
from repro.core.ix_cache import _UTILITY_MAX, _entry_level
from repro.core.metal import Metal, MetalIX
from repro.core.packing import pack_node
from repro.indexes.base import IndexNode
from repro.mem.address_cache import AddressCache
from repro.mem.opt_cache import belady_hit_flags
from repro.mem.stats import CacheStats
from repro.obs.tracer import NULL_TRACER
from repro.params import BLOCK_SIZE, NS_STRIDE, CacheParams, SimParams
from repro.sim.engine import (
    Access,
    K_DRAM,
    K_LATENCY,
    K_PREFETCH,
    K_SRAM,
    WalkTrace,
)


#: Preallocated WalkContext rows for the batch emitters: a context is a
#: pure (short_circuited, position) value, so walks at the same position
#: share one instance instead of allocating a NamedTuple per node.
_CTX_MAX = 64
_CTX_FULL = tuple(WalkContext(False, p) for p in range(_CTX_MAX))
_CTX_SHORT = tuple(WalkContext(True, p) for p in range(_CTX_MAX))


def namespace_fn(index: Any) -> Callable[[int], int]:
    """Map raw index keys into the shared, per-index namespaced key space."""
    base = getattr(index, "index_id", 0) * NS_STRIDE
    neg_inf = float("-inf")
    pos_inf = float("inf")

    def ns(key: Any) -> int:
        if key is None or key == neg_inf:
            key = 0
        elif key == pos_inf:
            key = NS_STRIDE - 1
        k = int(key)
        if k < 0:
            k = 0
        elif k >= NS_STRIDE:
            k = NS_STRIDE - 1
        return base + k

    return ns


@lru_cache(maxsize=None)
def _blocks_for(address: int, nbytes: int) -> tuple[int, ...]:
    """Footprint for one (address, nbytes) extent — the memoized core.

    The footprint is an affine function of the extent alone (the METAL
    observation that walk behaviour is affine in (level, range) applies to
    node geometry too), so it is computed once per distinct extent instead
    of once per node visit. Keyed on (address, nbytes) rather than node
    identity: structural mutations allocate fresh extents, so stale nodes
    can never alias a live entry.
    """
    first = address - (address % BLOCK_SIZE)
    total = max(1, -(-(address + max(nbytes, 1) - first) // BLOCK_SIZE))
    touched = min(total, 1 + max(0, total - 1).bit_length())
    # Header plus evenly spaced probe blocks (deterministic for replay).
    if touched >= total:
        picks = range(total)
    else:
        step = total / touched
        picks = sorted({int(i * step) for i in range(touched)})
    return tuple(first + p * BLOCK_SIZE for p in picks)


def _node_blocks(node: IndexNode) -> tuple[int, ...]:
    """Block-aligned addresses a walker actually touches in a node.

    A multi-block node is binary-searched, not read whole: the walker
    fetches the header block plus ~log2(blocks) probe blocks. Every memory
    organization uses the same footprint, so comparisons stay fair.
    """
    return _blocks_for(node.address, node.nbytes)


class MemorySystem(ABC):
    """Turns walks into access traces while maintaining cache state."""

    name: str = "abstract"

    def __init__(self, sim: SimParams | None = None) -> None:
        self.sim = sim or SimParams()
        self.tracer = NULL_TRACER
        #: Optional FaultInjector (repro.faults). None on fault-free runs;
        #: only systems with corruptible state (the IX-cache) act on it.
        self.faults = None
        # One immutable compute step shared by every walk: traces only
        # ever read Access objects, so the hot loops skip an allocation
        # per visited node.
        self._search_step = Access("compute", cycles=self.sim.t_search)
        # Memoized namespace closures keyed by index_id (namespace_fn is
        # a pure function of the id, so sharing one closure per index is
        # behavior-identical to the scalar per-walk construction).
        self._ns_cache: dict[int, Callable[[int], int]] = {}

    def attach_faults(self, injector) -> None:
        """Wire a FaultInjector into the trace-generation path."""
        self.faults = injector

    def attach_obs(self, tracer, registry=None) -> None:
        """Wire tracing through this system and its cache components.

        Binds the system's :class:`CacheStats` (when it has one) under
        ``cache.<name>`` in the registry and propagates the tracer into
        the underlying cache models so their probe/insert/evict events
        flow into one buffer.
        """
        self.tracer = tracer
        if registry is not None:
            stats = self.cache_stats
            if stats is not None:
                registry.bind_stats(f"cache.{self.name}", stats, (
                    "accesses", "hits", "misses",
                    "insertions", "evictions", "bypasses",
                ))
        self._attach_components(tracer, registry)

    def _attach_components(self, tracer, registry=None) -> None:
        """Propagate the tracer into owned cache models (overridden)."""

    @abstractmethod
    def process_walk(self, index: Any, key: int) -> WalkTrace:
        """Produce the access trace for one point walk."""

    def process_range_scan(self, index: Any, lo: int, hi: int) -> WalkTrace:
        """Walk to ``lo`` then stream leaves through ``hi`` (Section 2.2).

        Range scans are the other half of the paper's access mix ("both
        range scans and point queries are common"). The walk to the low
        edge is cacheable; the leaf stream that follows is sequential and
        handled by :meth:`_scan_leaf` (DRAM by default — caches override
        to serve cached leaves on-chip).
        """
        trace = self.process_walk(index, lo)
        leaf = index.walk(lo)[-1]
        leaves = 0
        while leaf is not None and leaf.lo is not None and leaf.lo <= hi:
            if leaves > 0:  # the first leaf was fetched by the walk
                self._scan_leaf(index, leaf, trace.accesses)
                trace.nodes_visited += 1
            leaves += 1
            leaf = getattr(leaf, "next_leaf", None)
        return trace

    def _scan_leaf(self, index: Any, leaf: IndexNode, accesses: list[Access]) -> None:
        for addr in _node_blocks(leaf):
            accesses.append(Access("dram", addr, BLOCK_SIZE))

    def process_chunk(self, batch: Any, requests: list[Any], prepared: list[Any]) -> None:
        """Emit one request chunk into a columnar ``TraceBatch``.

        ``prepared[i]`` is ``(planner, positions_row)`` when the batch
        planner resolved request ``i``'s walk vectorized, else None.
        The base implementation is the exact scalar fallback — one
        WalkTrace per request, converted by ``TraceBatch.add_trace`` —
        so order-sensitive systems (FA-OPT replay, the L2 hierarchy)
        and range scans stay byte-identical without native emitters.
        Subclasses with native emitters must preserve per-request cache
        mutation order exactly.
        """
        for request in requests:
            self._fallback_walk(batch, request)

    def _fallback_walk(self, batch: Any, request: Any) -> None:
        """Scalar trace generation for one request, columnarized."""
        if request.scan_hi is not None:
            trace = self.process_range_scan(
                request.index, request.key, request.scan_hi
            )
        else:
            trace = self.process_walk(request.index, request.key)
        batch.add_trace(trace, request)

    def _ns_for(self, index: Any) -> Callable[[int], int]:
        index_id = getattr(index, "index_id", 0)
        ns = self._ns_cache.get(index_id)
        if ns is None:
            ns = namespace_fn(index)
            self._ns_cache[index_id] = ns
        return ns

    @property
    def cache_stats(self) -> CacheStats | None:
        return None

    @property
    def cache_accesses(self) -> int:
        stats = self.cache_stats
        return stats.accesses if stats is not None else 0

    def _search(self) -> Access:
        return self._search_step


class StreamingMemSys(MemorySystem):
    """No index reuse: each visited node is a DRAM fetch (Aurochs/SJoin)."""

    name = "stream"

    def process_walk(self, index: Any, key: int) -> WalkTrace:
        path = index.walk(key)
        accesses: list[Access] = []
        append = accesses.append
        search = self._search_step
        for node in path:
            for addr in _blocks_for(node.address, node.nbytes):
                append(Access("dram", addr, BLOCK_SIZE))
            append(search)
        return WalkTrace(key, accesses, start_level=0, nodes_visited=len(path))

    def process_chunk(self, batch: Any, requests: list[Any], prepared: list[Any]) -> None:
        t_search = self.sim.t_search
        kinds = batch.kinds
        a1 = batch.a1
        a2 = batch.a2
        for request, prep in zip(requests, prepared):
            if prep is None:
                self._fallback_walk(batch, request)
                continue
            planner, row = prep
            templates = planner.template_map(t_search)
            offsets = planner._level_offsets
            index_dram = 0
            for level, pos in enumerate(row):
                linear = offsets[level] + pos
                t = templates.get(linear)
                if t is None:
                    t = planner.build_template(level, pos, t_search)
                    templates[linear] = t
                kinds += t[0]
                a1 += t[1]
                a2 += t[2]
                index_dram += t[3]
            batch.index_dram += index_dram
            batch.finish_walk(request, 0, planner.height, False, False)


class AddressCacheMemSys(MemorySystem):
    """Conventional address cache in front of DRAM (Widx / MAD style).

    ``prefetch=True`` adds a next-line prefetcher (the classic linked-data
    mitigation the related work surveys): every demand miss also pulls the
    following block. It helps multi-block nodes but cannot predict the
    data-dependent child pointer — exactly the limitation the paper's
    walks expose.
    """

    name = "address"

    def __init__(
        self,
        sim: SimParams | None = None,
        cache_params: CacheParams | None = None,
        prefetch: bool = False,
    ) -> None:
        super().__init__(sim)
        self.cache = AddressCache(cache_params)
        self.prefetch = prefetch
        if prefetch:
            self.name = "address_pf"

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    def _attach_components(self, tracer, registry=None) -> None:
        self.cache.attach_obs(tracer, registry)

    def process_walk(self, index: Any, key: int) -> WalkTrace:
        path = index.walk(key)
        accesses: list[Access] = []
        append = accesses.append
        search = self._search_step
        probe_cycles = self.sim.t_addr_probe
        lookup = self.cache.lookup
        insert = self.cache.insert
        prefetch = self.prefetch
        for node in path:
            for block_addr in _blocks_for(node.address, node.nbytes):
                append(Access(
                    "sram", cycles=probe_cycles,
                    port=block_addr // BLOCK_SIZE,
                ))
                if not lookup(block_addr):
                    append(Access("dram", block_addr, BLOCK_SIZE))
                    insert(block_addr)
                    if prefetch:
                        nxt = block_addr + BLOCK_SIZE
                        if not self.cache.contains(nxt):
                            append(Access("dram_prefetch", nxt, BLOCK_SIZE))
                            insert(nxt)
            append(search)
        return WalkTrace(key, accesses, start_level=0, nodes_visited=len(path))

    def process_chunk(self, batch: Any, requests: list[Any], prepared: list[Any]) -> None:
        t_probe = self.sim.t_addr_probe
        t_search = self.sim.t_search
        kinds = batch.kinds
        a1 = batch.a1
        a2 = batch.a2
        lookup = self.cache.lookup
        insert = self.cache.insert
        contains = self.cache.contains
        prefetch = self.prefetch
        block_size = BLOCK_SIZE
        for request, prep in zip(requests, prepared):
            if prep is None:
                self._fallback_walk(batch, request)
                continue
            planner, row = prep
            index_dram = 0
            for level, pos in enumerate(row):
                for block_addr in planner.blocks(level, pos):
                    kinds.append(K_SRAM)
                    a1.append(block_addr // block_size)
                    a2.append(t_probe)
                    if not lookup(block_addr):
                        kinds.append(K_DRAM)
                        a1.append(block_addr)
                        a2.append(0)
                        index_dram += 1
                        insert(block_addr)
                        if prefetch:
                            nxt = block_addr + block_size
                            if not contains(nxt):
                                kinds.append(K_PREFETCH)
                                a1.append(nxt)
                                a2.append(0)
                                insert(nxt)
                kinds.append(K_LATENCY)
                a1.append(t_search)
                a2.append(0)
            batch.index_dram += index_dram
            batch.finish_walk(request, 0, planner.height, False, False)

    def _scan_leaf(self, index: Any, leaf: IndexNode, accesses: list[Access]) -> None:
        for block_addr in _node_blocks(leaf):
            accesses.append(Access(
                "sram", cycles=self.sim.t_addr_probe,
                port=block_addr // BLOCK_SIZE,
            ))
            if not self.cache.lookup(block_addr):
                accesses.append(Access("dram", block_addr, BLOCK_SIZE))
                self.cache.insert(block_addr)


class HierarchyMemSys(MemorySystem):
    """Two-level (L1 + shared L2) address hierarchy baseline.

    A stronger conventional strawman than the flat address cache: walkers
    get a fast private-ish L1 backed by the shared L2. Walks still
    serialize level by level; only the per-level service latency changes.
    """

    name = "address_l2"

    def __init__(
        self,
        sim: SimParams | None = None,
        cache_params: CacheParams | None = None,
    ) -> None:
        super().__init__(sim)
        from repro.mem.hierarchy import CacheHierarchy, HierarchyParams

        if cache_params is not None:
            # Split the budget 1:7 between L1 and L2 (typical ratio).
            l1_bytes = max(BLOCK_SIZE * 4, cache_params.capacity_bytes // 8)
            params = HierarchyParams(
                l1=CacheParams(capacity_bytes=l1_bytes, ways=4, t_hit=2),
                l2=CacheParams(
                    capacity_bytes=max(BLOCK_SIZE * 4,
                                       cache_params.capacity_bytes - l1_bytes),
                    ways=cache_params.ways,
                    t_hit=14,
                ),
            )
            self.hierarchy = CacheHierarchy(params)
        else:
            self.hierarchy = CacheHierarchy()

    @property
    def cache_stats(self) -> CacheStats:
        # Report the L2 (shared level) statistics: the L1 is a latency
        # filter, capacity behaviour lives in the L2.
        return self.hierarchy.l2.stats

    def _attach_components(self, tracer, registry=None) -> None:
        self.hierarchy.l1.attach_obs(tracer, registry, prefix="cache.address_l1")
        self.hierarchy.l2.attach_obs(tracer, registry)

    def process_walk(self, index: Any, key: int) -> WalkTrace:
        path = index.walk(key)
        accesses: list[Access] = []
        append = accesses.append
        search = self._search_step
        hierarchy = self.hierarchy
        lookup = hierarchy.lookup
        l1_cycles = hierarchy.latency_of(1)
        l2_cycles = hierarchy.latency_of(2)
        miss_cycles = hierarchy.miss_latency_cycles
        for node in path:
            for block_addr in _blocks_for(node.address, node.nbytes):
                level = lookup(block_addr)
                if level == 1:
                    append(Access("sram", cycles=l1_cycles))
                elif level == 2:
                    append(Access(
                        "sram", cycles=l2_cycles,
                        port=block_addr // BLOCK_SIZE,
                    ))
                else:
                    append(Access(
                        "sram", cycles=miss_cycles,
                        port=block_addr // BLOCK_SIZE,
                    ))
                    append(Access("dram", block_addr, BLOCK_SIZE))
                    hierarchy.insert(block_addr)
            append(search)
        return WalkTrace(key, accesses, start_level=0, nodes_visited=len(path))


class FAOPTMemSys(MemorySystem):
    """Fully-associative address cache with Belady-OPT replacement.

    Built via :meth:`prepare` from the complete walk sequence; walks must
    then be processed in exactly that order.
    """

    name = "fa_opt"

    def __init__(
        self,
        walk_blocks: list[list[int]],
        hit_flags: list[bool],
        sim: SimParams | None = None,
    ) -> None:
        super().__init__(sim)
        self._walk_blocks = walk_blocks
        self._flags = hit_flags
        self._walk_cursor = 0
        self._flag_cursor = 0
        self.stats = CacheStats()

    @classmethod
    def prepare(
        cls,
        requests: Iterable[tuple[Any, int]],
        cache_params: CacheParams | None = None,
        sim: SimParams | None = None,
    ) -> "FAOPTMemSys":
        """Two-pass construction from (index, key) walk requests."""
        params = cache_params or CacheParams()
        walk_blocks: list[list[int]] = []
        flat: list[int] = []
        for index, key in requests:
            blocks = []
            for node in index.walk(key):
                blocks.extend(addr // BLOCK_SIZE for addr in _node_blocks(node))
            walk_blocks.append(blocks)
            flat.extend(blocks)
        flags = belady_hit_flags(flat, params.entries)
        return cls(walk_blocks, flags, sim)

    @property
    def cache_stats(self) -> CacheStats:
        return self.stats

    def process_walk(self, index: Any, key: int) -> WalkTrace:
        if self._walk_cursor >= len(self._walk_blocks):
            raise IndexError("FA-OPT replayed more walks than prepared")
        blocks = self._walk_blocks[self._walk_cursor]
        self._walk_cursor += 1
        accesses: list[Access] = []
        for block in blocks:
            # Fully-associative lookup = CAM match across every entry.
            accesses.append(Access(
                "sram", cycles=self.sim.t_fa_probe, port=block,
            ))
            hit = self._flags[self._flag_cursor]
            self._flag_cursor += 1
            self.stats.record(hit)
            if self.tracer.enabled:
                self.tracer.emit("opt_probe", block=block, hit=hit)
            if not hit:
                self.stats.insertions += 1
                accesses.append(Access("dram", block * BLOCK_SIZE, BLOCK_SIZE))
            accesses.append(self._search())
        return WalkTrace(key, accesses, start_level=0, nodes_visited=len(blocks))


class XCacheMemSys(MemorySystem):
    """X-cache: leaf cache tagged by application key."""

    name = "xcache"

    def __init__(
        self, sim: SimParams | None = None, cache_params: CacheParams | None = None
    ) -> None:
        super().__init__(sim)
        from repro.mem.xcache import XCache

        self.cache = XCache(cache_params)

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    def _attach_components(self, tracer, registry=None) -> None:
        self.cache.attach_obs(tracer, registry)

    def process_walk(self, index: Any, key: int) -> WalkTrace:
        ns = namespace_fn(index)
        accesses: list[Access] = [
            Access("sram", cycles=self.sim.t_addr_probe, port=hash(ns(key)) & 0xFFFF)
        ]
        leaf = self.cache.lookup(ns(key))
        if leaf is not None:
            # Fast path: the whole walk is short-circuited.
            return WalkTrace(
                key,
                accesses,
                start_level=getattr(leaf, "level", 0),
                nodes_visited=0,
                short_circuited=True,
                full_hit=True,
            )
        path = index.walk(key)
        append = accesses.append
        search = self._search_step
        for node in path:
            for addr in _blocks_for(node.address, node.nbytes):
                append(Access("dram", addr, BLOCK_SIZE))
            append(search)
        self.cache.insert(ns(key), path[-1])
        return WalkTrace(key, accesses, start_level=0, nodes_visited=len(path))

    def process_chunk(self, batch: Any, requests: list[Any], prepared: list[Any]) -> None:
        t_probe = self.sim.t_addr_probe
        t_search = self.sim.t_search
        kinds = batch.kinds
        a1 = batch.a1
        a2 = batch.a2
        lookup = self.cache.lookup
        insert = self.cache.insert
        for request, prep in zip(requests, prepared):
            if prep is None:
                self._fallback_walk(batch, request)
                continue
            planner, row = prep
            ns = self._ns_for(request.index)
            ns_key = ns(request.key)
            kinds.append(K_SRAM)
            a1.append(hash(ns_key) & 0xFFFF)
            a2.append(t_probe)
            leaf = lookup(ns_key)
            if leaf is not None:
                # Fast path: the whole walk is short-circuited.
                batch.finish_walk(
                    request, getattr(leaf, "level", 0), 0, True, True
                )
                continue
            templates = planner.template_map(t_search)
            offsets = planner._level_offsets
            index_dram = 0
            for level, pos in enumerate(row):
                linear = offsets[level] + pos
                t = templates.get(linear)
                if t is None:
                    t = planner.build_template(level, pos, t_search)
                    templates[linear] = t
                kinds += t[0]
                a1 += t[1]
                a2 += t[2]
                index_dram += t[3]
            insert(ns_key, planner.view(planner.height - 1, row[-1]))
            batch.index_dram += index_dram
            batch.finish_walk(request, 0, planner.height, False, False)


class MetalMemSys(MemorySystem):
    """METAL / METAL-IX: IX-cache probe + pattern-directed insertions."""

    def __init__(self, policy: MetalIX, sim: SimParams | None = None) -> None:
        super().__init__(sim)
        self.policy = policy
        self.name = policy.name
        self._tracked: set[int] = set()

    @property
    def cache_stats(self) -> CacheStats:
        return self.policy.stats

    def _attach_components(self, tracer, registry=None) -> None:
        self.policy.attach_obs(tracer, registry)

    def _track(self, index: Any) -> None:
        """Subscribe to the index's structural changes for invalidation."""
        index_id = getattr(index, "index_id", None)
        if index_id is None or index_id in self._tracked:
            return
        self._tracked.add(index_id)
        hooks = getattr(index, "on_structural_change", None)
        if hooks is None:
            return
        ns = namespace_fn(index)

        def invalidate(lo: Any, hi: Any) -> None:
            self.policy.cache.invalidate_range(ns(lo), ns(hi))

        hooks.append(invalidate)

    def process_walk(self, index: Any, key: int) -> WalkTrace:
        self._track(index)
        ns = namespace_fn(index)
        height = index.height
        faults = self.faults
        if faults is not None and faults.storm():
            # Invalidation storm: a span of key blocks around the probed
            # key is invalidated wholesale (coherence storm / spurious
            # structural-change signal), forcing re-misses.
            cache = self.policy.cache
            span = faults.plan.storm_span_blocks << cache.key_block_bits
            center = ns(key)
            faults.stats.storm_evictions += cache.invalidate_range(
                max(0, center - span), center + span
            )
        self.policy.begin_walk(index.index_id, key)
        accesses: list[Access] = [
            Access("sram", cycles=self.sim.t_ix_probe,
                   port=self.policy.cache.set_of(ns(key)))
        ]
        start = self.policy.probe(ns(key))
        if start is not None and faults is not None and faults.tag_corrupted():
            # The matched range tag failed its integrity check: trust
            # nothing it covers — invalidate the entry and refetch via a
            # full root-to-leaf walk (detected, recovered, accounted).
            self.policy.cache.invalidate_range(ns(key), ns(key))
            faults.stats.tag_refetches += 1
            start = None
        if start is not None and not start.covers(key):
            # Stale hit: the index mutated under us and no invalidation
            # hook was wired. Fall back to a full walk.
            start = None
        path = None
        if start is not None:
            try:
                path = index.walk_from(start, key)
            except KeyError:
                # Stale node no longer part of the structure (rebuilt).
                path = None
        if path is not None and start is not None:
            remaining = path[1:]  # the cached node itself is on-chip
            start_level = start.level
            short = True
            if self.tracer.enabled:
                self.tracer.emit("ix_short_circuit", key=key,
                                 level=start_level, skipped=start_level)
        else:
            path = index.walk(key)
            remaining = path
            start_level = 0
            short = False
        append = accesses.append
        search = self._search_step
        consider = self.policy.consider
        index_id = index.index_id
        ns_key = ns(key)
        for position, node in enumerate(remaining):
            for addr in _blocks_for(node.address, node.nbytes):
                append(Access("dram", addr, BLOCK_SIZE))
            append(search)
            consider(
                index_id, node, height, ns, WalkContext(short, position),
                key=ns_key,
            )
        self.policy.end_walk()
        return WalkTrace(
            key,
            accesses,
            start_level=start_level,
            nodes_visited=len(remaining),
            short_circuited=short,
            full_hit=short and not remaining,
        )

    def process_chunk(self, batch: Any, requests: list[Any], prepared: list[Any]) -> None:
        # The scalar probe/consider/end_walk pipeline with the dispatch
        # chain (MetalIX.consider -> PatternController.decide ->
        # descriptor.decide) inlined: same calls on the same state in the
        # same order, minus two Python frames per visited node.
        policy = self.policy
        cache = policy.cache
        cache_insert = cache.insert
        cache_stats = cache.stats
        cache_tracer = cache.tracer
        # Replacement-policy dispatch, hoisted like the rest: the default
        # keeps its inlined counter bump; other policies get their on_hit.
        default_policy = cache._default_policy
        policy_on_hit = cache.policy.on_hit
        sets = cache._sets
        wide = cache._wide
        kbb = cache.key_block_bits
        num_sets = cache.num_sets
        hit_levels = cache.hit_levels
        controller = policy.controller
        ctrl_tracer = controller.tracer if controller is not None else None
        t_probe = self.sim.t_ix_probe
        t_search = self.sim.t_search
        block_bytes = cache.params.block_bytes
        tracked = self._tracked
        ns_cache = self._ns_cache
        kinds = batch.kinds
        a1 = batch.a1
        a2 = batch.a2
        b_offsets = batch.offsets
        b_start_levels = batch.start_levels
        b_visits = batch.visits
        cur_planner = None  # memoized map lookups (one index per chunk
        cur_index = -1      # in the common case)
        wt_map: Any = None
        packed_map: Any = None
        # Batch counters accumulated locally, flushed once after the loop.
        accesses = 0
        hits = 0
        index_dram = 0
        nodes_visited = 0
        shorts = 0
        fulls = 0
        for request, prep in zip(requests, prepared):
            if prep is None:
                self._fallback_walk(batch, request)
                continue
            planner, row = prep
            index = request.index
            key = request.key
            index_id = index.index_id
            if index_id not in tracked:
                self._track(index)
            ns = ns_cache.get(index_id)
            if ns is None:
                ns = self._ns_for(index)
            height = planner.height
            if controller is not None:
                descriptor = controller._by_index.get(
                    index_id, controller._default
                )
                if descriptor is not None:
                    descriptor.observe_key(key)
            else:
                descriptor = None
            ns_key = ns(key)
            kinds.append(K_SRAM)
            set_idx = (ns_key >> kbb) % num_sets
            a1.append(set_idx)
            a2.append(t_probe)
            # IXCache.probe inlined (same scans, same tie-break, same
            # stats/utility updates; counters flushed after the loop).
            candidates = []
            for entry in sets[set_idx]:
                tag = entry.tag
                if tag.lo <= ns_key <= tag.hi:
                    candidates.append(entry)
            for entry in wide:
                tag = entry.tag
                if tag.lo <= ns_key <= tag.hi:
                    candidates.append(entry)
            start = None
            accesses += 1
            if candidates:
                if len(candidates) > 1:
                    candidates.sort(key=_entry_level, reverse=True)
                for entry in candidates:
                    for part_tag, part_node in entry.parts:
                        if part_tag.lo <= ns_key <= part_tag.hi:
                            start = part_node
                            break
                    if start is not None:
                        hits += 1
                        if default_policy:
                            if entry.utility < _UTILITY_MAX:
                                entry.utility += 1
                        else:
                            policy_on_hit(entry)
                        if entry.life > 0:
                            entry.life -= 1
                        hit_levels[entry.tag.level] += 1
                        break
            if cache_tracer.enabled:
                cache_tracer.emit("ix_probe", key=ns_key,
                                  hit=start is not None)
                if start is not None:
                    cache_tracer.emit("ix_hit", key=ns_key,
                                      level=entry.tag.level)
            if start is not None and start.covers(key):
                # A covering cached node is exactly the node the full
                # walk routes through at its level (sibling ranges are
                # disjoint and a parent's range covers its children's),
                # so the rest of the path is the positions row below it
                # — the scalar ``walk_from`` without the per-level
                # ``child_for`` chain. The SoA tree is read-only, so
                # the scalar path's stale-node KeyError cannot occur.
                start_level = start.level
                base_level = start_level + 1
                short = True
                ctx_row = _CTX_SHORT
            else:
                start_level = 0
                base_level = 0
                short = False
                ctx_row = _CTX_FULL
            if planner is not cur_planner or index_id != cur_index:
                cur_planner = planner
                cur_index = index_id
                wt_map = planner.walk_template_map(t_search)
                packed_map = planner.packed_map(index_id, block_bytes)
            wt_key = (base_level, row[-1])
            wt = wt_map.get(wt_key)
            if wt is None:
                wt = planner.build_walk_template(base_level, row, t_search)
                wt_map[wt_key] = wt
            kinds += wt[0]
            a1 += wt[1]
            a2 += wt[2]
            index_dram += wt[3]
            nodes = wt[4]
            if descriptor is None:
                # Greedy insert-all (METAL-IX, or no governing
                # descriptor): PatternController.decide returns
                # INSERT_ALL without counting insertions.
                for lp, node in nodes:
                    packed = packed_map.get(lp)
                    if packed is None:
                        packed = pack_node(node, ns, block_bytes)
                        packed_map[lp] = packed
                    cache_insert(node, ns, key=ns_key, packed=packed)
            elif type(descriptor) is LevelDescriptor:
                # LevelDescriptor.decide inlined: it only ever returns the
                # two life-0 singletons, and tune() runs between walks, so
                # the band bounds are constants for this request. Same
                # checks, same TouchFilter.admit call order.
                insertions = controller._insertions_by_level
                ctrl_enabled = ctrl_tracer.enabled
                d_start = descriptor.start
                d_end = descriptor.end
                d_mid = (d_start + d_end + 1) // 2 + 1
                frontier_walk = short and descriptor.frontier
                admit = descriptor._filter.admit
                position = 0
                for lp, node in nodes:
                    level = lp[0]
                    if level < d_start or level > d_end or level >= height:
                        ins = False
                    elif frontier_walk:
                        ins = position == 0 and admit(node.node_id)
                    else:
                        ins = level < d_mid or admit(node.node_id)
                    position += 1
                    if ins:
                        insertions[level] += 1
                        if ctrl_enabled:
                            ctrl_tracer.emit(
                                "desc_decision", level=level,
                                insert=True, life=0)
                        packed = packed_map.get(lp)
                        if packed is None:
                            packed = pack_node(node, ns, block_bytes)
                            packed_map[lp] = packed
                        cache_insert(node, ns, key=ns_key, packed=packed)
                    else:
                        if ctrl_enabled:
                            ctrl_tracer.emit(
                                "desc_decision", level=level,
                                insert=False, life=0)
                        cache_stats.bypasses += 1
                        if cache_tracer.enabled:
                            cache_tracer.emit("ix_bypass", reason="pattern")
            else:
                insertions = controller._insertions_by_level
                ctrl_enabled = ctrl_tracer.enabled
                decide = descriptor.decide
                position = 0
                for lp, node in nodes:
                    level = lp[0]
                    ctx = (ctx_row[position] if position < _CTX_MAX
                           else WalkContext(short, position))
                    position += 1
                    decision = decide(node, height, ctx)
                    if decision.insert:
                        insertions[level] += 1
                        if ctrl_enabled:
                            ctrl_tracer.emit(
                                "desc_decision", level=level,
                                insert=True, life=decision.life)
                        packed = packed_map.get(lp)
                        if packed is None:
                            packed = pack_node(node, ns, block_bytes)
                            packed_map[lp] = packed
                        cache_insert(node, ns, life=decision.life,
                                     key=ns_key, packed=packed)
                    else:
                        if ctrl_enabled:
                            ctrl_tracer.emit(
                                "desc_decision", level=level,
                                insert=False, life=decision.life)
                        cache_stats.bypasses += 1
                        if cache_tracer.enabled:
                            cache_tracer.emit("ix_bypass", reason="pattern")
            if controller is not None:
                walks = controller._walks_in_batch + 1
                controller._walks_in_batch = walks
                if walks >= controller.batch_walks:
                    controller._finish_batch()
            # TraceBatch.finish_walk inlined (same appends, same order).
            address = request.data_address
            if address is not None:
                nbytes = request.data_bytes
                if nbytes <= BLOCK_SIZE:
                    kinds.append(K_DRAM)
                    a1.append(address)
                    a2.append(0)
                else:
                    for tail in range(0, nbytes, BLOCK_SIZE):
                        kinds.append(K_DRAM)
                        a1.append(address + tail)
                        a2.append(0)
            compute = request.compute_cycles
            if compute:
                kinds.append(K_LATENCY)
                a1.append(compute)
                a2.append(0)
            b_offsets.append(len(kinds))
            b_start_levels.append(start_level)
            visited = len(nodes)
            b_visits.append(visited)
            nodes_visited += visited
            if short:
                shorts += 1
                if not nodes:
                    fulls += 1
        cache_stats.accesses += accesses
        cache_stats.hits += hits
        cache_stats.misses += accesses - hits
        batch.index_dram += index_dram
        batch.nodes_visited += nodes_visited
        batch.short_circuited += shorts
        batch.full_hits += fulls

    def _scan_leaf(self, index: Any, leaf: IndexNode, accesses: list[Access]) -> None:
        ns = namespace_fn(index)
        accesses.append(Access(
            "sram", cycles=self.sim.t_ix_probe,
            port=self.policy.cache.set_of(ns(leaf.lo)) if leaf.lo is not None else -1,
        ))
        if leaf.lo is not None and self.policy.cache.peek(ns(leaf.lo)) is leaf:
            return  # leaf already resident: served on-chip
        for addr in _node_blocks(leaf):
            accesses.append(Access("dram", addr, BLOCK_SIZE))
        self.policy.consider(
            index.index_id, leaf, index.height, ns,
            WalkContext(True, 0), key=ns(leaf.lo) if leaf.lo is not None else None,
        )


def make_memsys(
    kind: str,
    sim: SimParams | None = None,
    cache_params: CacheParams | None = None,
    descriptors: Any = None,
    requests: Sequence[tuple[Any, int]] | None = None,
    batch_walks: int = 1_000,
    tune: bool = True,
    **metal_kwargs,
) -> MemorySystem:
    """Factory over every organization the evaluation compares.

    ``descriptors`` is required for ``metal``; ``requests`` is required for
    ``fa_opt`` (the two-pass OPT construction).
    """
    if kind == "stream":
        return StreamingMemSys(sim)
    if kind == "address":
        return AddressCacheMemSys(sim, cache_params)
    if kind == "address_pf":
        return AddressCacheMemSys(sim, cache_params, prefetch=True)
    if kind == "address_l2":
        return HierarchyMemSys(sim, cache_params)
    if kind == "fa_opt":
        if requests is None:
            raise ValueError("fa_opt needs the full request sequence")
        return FAOPTMemSys.prepare(requests, cache_params, sim)
    if kind == "xcache":
        return XCacheMemSys(sim, cache_params)
    if kind == "metal_ix":
        return MetalMemSys(MetalIX(cache_params, **metal_kwargs), sim)
    if kind == "metal":
        if descriptors is None:
            raise ValueError("metal needs reuse descriptors")
        policy = Metal(
            descriptors, cache_params, batch_walks=batch_walks, tune=tune, **metal_kwargs
        )
        return MetalMemSys(policy, sim)
    raise ValueError(f"unknown memory system kind {kind!r}")
