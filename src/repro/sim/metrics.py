"""Run orchestration and result metrics.

:func:`simulate` drives a memory system over a workload's walk requests,
times the traces on the event engine, and bundles the metrics every
experiment consumes: makespan, average walk latency, miss rate, DRAM
energy/traffic, and the working-set fraction of Fig. 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

from repro.mem.dram import DRAM
from repro.mem.layout import Allocator
from repro.mem.stats import CacheStats, DRAMStats
from repro.obs.histogram import Histogram
from repro.obs.registry import Registry
from repro.obs.tracer import Tracer
from repro.params import BLOCK_SIZE, SimParams
from repro.sim.engine import Access, Engine, WalkTrace
from repro.sim.memsys import MemorySystem


class WalkRequest(NamedTuple):
    """One unit of DSA work: walk ``index`` for ``key``, then compute.

    ``data_address``/``data_bytes`` describe the leaf data-object fetch
    (identical across cache designs — the caches only target the index).
    ``compute_cycles`` is the application compute per walk (Table 2's
    Ops/Compute divided by tile issue width).
    """

    index: Any
    key: int
    compute_cycles: int = 0
    data_address: int | None = None
    data_bytes: int = 64
    #: When set, the request is a range scan [key, scan_hi]: the walk to
    #: ``key`` is followed by a leaf stream through ``scan_hi``.
    scan_hi: int | None = None


@dataclass
class RunResult:
    """Everything the benchmarks report about one (memsys, workload) run."""

    name: str
    makespan: int
    num_walks: int
    total_walk_cycles: int
    dram: DRAMStats
    cache_stats: CacheStats | None
    total_index_blocks: int
    short_circuited: int = 0
    full_hits: int = 0
    nodes_visited: int = 0
    start_levels: list[int] = field(default_factory=list)
    walk_latencies: list[int] = field(default_factory=list)
    bandwidth_utilization: float = 0.0
    #: Distinct index blocks fetched from DRAM per window of walks,
    #: averaged, over the total index blocks (secondary locality metric).
    windowed_working_set: float = 0.0
    #: Index-region DRAM block fetches this run actually performed.
    index_dram_accesses: int = 0
    #: Index-region DRAM block fetches a streaming (cache-less) DSA would
    #: perform on the same requests — the Fig. 16 denominator.
    baseline_index_accesses: int = 0
    #: Observability: counter-registry snapshot (None when tracing off).
    counters: dict[str, int | float] | None = None
    #: Observability: the tracer holding buffered events (None when off).
    tracer: Tracer | None = None
    #: Walk-latency distribution (populated when latencies were recorded:
    #: ``record_latencies=True`` or tracing enabled).
    latency_hist: Histogram | None = None
    #: Probe-depth distribution: nodes visited per walk (always populated;
    #: identical with tracing on or off).
    depth_hist: Histogram | None = None
    #: Fault-injection & resilience ledger (repro.faults.FaultStats
    #: as a dict); None on fault-free runs, keeping to_dict byte-identical
    #: to the pre-fault-layer serialization.
    faults: dict[str, int] | None = None

    @property
    def avg_walk_latency(self) -> float:
        if self.num_walks == 0:
            return 0.0
        return self.total_walk_cycles / self.num_walks

    @property
    def miss_rate(self) -> float:
        return self.cache_stats.miss_rate if self.cache_stats else 1.0

    @property
    def working_set_fraction(self) -> float:
        """Fig. 16: fraction of the index's walk traffic served by DRAM.

        1.0 for a streaming DSA (every node touch is a DRAM fetch); caches
        shrink it by serving touches on-chip, and METAL shrinks it further
        by eliminating touches outright (short-circuits).
        """
        if self.baseline_index_accesses == 0:
            return 0.0
        return min(1.0, self.index_dram_accesses / self.baseline_index_accesses)

    @property
    def dram_energy_fj(self) -> float:
        return self.dram.energy_fj

    def speedup_vs(self, baseline: "RunResult") -> float:
        if self.makespan == 0:
            return float("inf")
        return baseline.makespan / self.makespan

    def latency_percentiles(self) -> dict[str, int] | None:
        """p50/p90/p99/max walk latency, or None when not recorded."""
        if self.latency_hist is None or self.latency_hist.count == 0:
            return None
        hist = self.latency_hist
        return {
            "p50": hist.percentile(50),
            "p90": hist.percentile(90),
            "p99": hist.percentile(99),
            "max": hist.max,
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable summary (for machine-readable reports)."""
        return {
            "system": self.name,
            "makespan": self.makespan,
            "num_walks": self.num_walks,
            "avg_walk_latency": self.avg_walk_latency,
            "miss_rate": self.miss_rate,
            "working_set_fraction": self.working_set_fraction,
            "short_circuited": self.short_circuited,
            "full_hits": self.full_hits,
            "nodes_visited": self.nodes_visited,
            "dram": {
                "accesses": self.dram.accesses,
                "reads": self.dram.reads,
                "writes": self.dram.writes,
                "energy_fj": self.dram.energy_fj,
                "bytes_moved": self.dram.bytes_moved,
                "row_hits": self.dram.row_hits,
                "row_misses": self.dram.row_misses,
            },
            "cache": (
                {
                    "accesses": self.cache_stats.accesses,
                    "hits": self.cache_stats.hits,
                    "misses": self.cache_stats.misses,
                    "insertions": self.cache_stats.insertions,
                    "evictions": self.cache_stats.evictions,
                    "bypasses": self.cache_stats.bypasses,
                }
                if self.cache_stats is not None
                else None
            ),
            "index_dram_accesses": self.index_dram_accesses,
            "bandwidth_utilization": self.bandwidth_utilization,
            "total_walk_cycles": self.total_walk_cycles,
            "total_index_blocks": self.total_index_blocks,
            "baseline_index_accesses": self.baseline_index_accesses,
            "windowed_working_set": self.windowed_working_set,
            **(
                {"latency": {**self.latency_hist.to_dict(),
                             "state": self.latency_hist.state()}}
                if self.latency_hist is not None and self.latency_hist.count
                else {}
            ),
            **(
                {"probe_depth": {**self.depth_hist.to_dict(),
                                 "state": self.depth_hist.state()}}
                if self.depth_hist is not None and self.depth_hist.count
                else {}
            ),
            **({"counters": self.counters} if self.counters is not None else {}),
            **({"faults": self.faults} if self.faults is not None else {}),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` (JSON round-trip safe).

        Derived quantities (``avg_walk_latency``, ``miss_rate``,
        ``working_set_fraction``, histogram percentiles) are recomputed
        from the restored state, so ``from_dict(d).to_dict() == d`` holds
        byte-for-byte. Raw per-walk lists (``walk_latencies``,
        ``start_levels``) and the live tracer do not survive serialization;
        the latency distribution survives via the histogram state.
        """
        dram_d = data["dram"]
        dram = DRAMStats(
            reads=dram_d["reads"],
            writes=dram_d["writes"],
            row_hits=dram_d["row_hits"],
            row_misses=dram_d["row_misses"],
            energy_fj=dram_d["energy_fj"],
            bytes_moved=dram_d["bytes_moved"],
        )
        cache_d = data.get("cache")
        cache = (
            CacheStats(
                accesses=cache_d["accesses"],
                hits=cache_d["hits"],
                misses=cache_d["misses"],
                insertions=cache_d["insertions"],
                evictions=cache_d["evictions"],
                bypasses=cache_d["bypasses"],
            )
            if cache_d is not None
            else None
        )
        latency_d = data.get("latency")
        depth_d = data.get("probe_depth")
        counters = data.get("counters")
        faults = data.get("faults")
        return cls(
            name=data["system"],
            makespan=data["makespan"],
            num_walks=data["num_walks"],
            total_walk_cycles=data["total_walk_cycles"],
            dram=dram,
            cache_stats=cache,
            total_index_blocks=data["total_index_blocks"],
            short_circuited=data["short_circuited"],
            full_hits=data["full_hits"],
            nodes_visited=data["nodes_visited"],
            bandwidth_utilization=data["bandwidth_utilization"],
            windowed_working_set=data["windowed_working_set"],
            index_dram_accesses=data["index_dram_accesses"],
            baseline_index_accesses=data["baseline_index_accesses"],
            counters=dict(counters) if counters is not None else None,
            faults=dict(faults) if faults is not None else None,
            latency_hist=(
                Histogram.from_state(latency_d["state"]) if latency_d else None
            ),
            depth_hist=(
                Histogram.from_state(depth_d["state"]) if depth_d else None
            ),
        )


def _windowed_working_set(
    traces: list[WalkTrace], total_index_blocks: int, window: int
) -> float:
    """Average distinct index-region DRAM blocks per window of walks.

    This is the Fig. 16 working-set metric: how much of the index a steady
    window of walks actually pulls from DRAM. Data-region accesses are
    excluded (identical across cache designs).
    """
    if total_index_blocks <= 0 or not traces:
        return 0.0
    data_base_block = Allocator.DATA_BASE // BLOCK_SIZE
    block_size = BLOCK_SIZE
    fractions: list[float] = []
    # Single pass with one reused set: windows are disjoint, so the set is
    # drained at each boundary instead of rebuilt per window slice.
    touched: set[int] = set()
    add = touched.add
    in_window = 0
    for trace in traces:
        for access in trace.accesses:
            if access.kind != "dram":
                continue
            address = access.address
            first = address // block_size
            if first >= data_base_block:
                continue
            nbytes = access.nbytes
            if nbytes <= block_size:
                add(first)
            else:
                last = (address + nbytes - 1) // block_size
                touched.update(range(first, last + 1))
        in_window += 1
        if in_window == window:
            fractions.append(min(1.0, len(touched) / total_index_blocks))
            touched.clear()
            in_window = 0
    if in_window:
        fractions.append(min(1.0, len(touched) / total_index_blocks))
    return sum(fractions) / len(fractions)


def simulate(
    memsys: MemorySystem,
    requests: list[WalkRequest],
    sim: SimParams | None = None,
    total_index_blocks: int = 0,
    timed: bool = True,
    record_latencies: bool = False,
    working_set_window: int = 2_000,
    tracer: Tracer | None = None,
    registry: Registry | None = None,
) -> RunResult:
    """Run a workload through a memory system and time it.

    The functional pass (trace generation + cache state) happens in request
    order; the engine then times the traces with walker-context overlap and
    bank contention. ``timed=False`` uses the cheap functional timing.

    Observability: when ``sim.trace`` is set (or a ``tracer`` is passed), a
    :class:`Tracer` and :class:`Registry` are wired through the memory
    system, engine, DRAM, and crossbar; the result carries the tracer plus
    a counter snapshot. With tracing off (the default) the hot paths see
    only a ``NULL_TRACER.enabled`` check.
    """
    from repro.sim.memsys import _node_blocks  # avoid an import cycle

    sim = sim or memsys.sim
    if tracer is None and sim.trace:
        tracer = Tracer(capacity=sim.trace_buffer)
    tracing = tracer is not None
    if tracing:
        registry = registry or Registry()
        memsys.attach_obs(tracer, registry)
    # Fault injection: an injector exists only for a non-empty plan, so
    # ``faults=None`` and an all-zero-rate plan take identical code paths
    # (and produce byte-identical results) by construction.
    injector = None
    if sim.faults is not None and not sim.faults.is_empty:
        from repro.faults import FaultInjector

        injector = FaultInjector(sim.faults)
        memsys.attach_faults(injector)
        if tracing:
            injector.attach_obs(registry)
    if timed and sim.walk_batch > 0 and not tracing and injector is None:
        # Vectorized batch pipeline (contractually byte-identical; see
        # repro.sim.batch). Traced and faulted runs always stay on the
        # scalar path below so injection sites and event attribution
        # keep one canonical order.
        from repro.sim.batch import simulate_batched

        return simulate_batched(
            memsys,
            requests,
            sim,
            total_index_blocks=total_index_blocks,
            record_latencies=record_latencies,
            working_set_window=working_set_window,
        )
    traces: list[WalkTrace] = []
    short = full = visited = 0
    index_dram = baseline = 0
    depth_hist = Histogram()
    start_levels: list[int] = []
    data_base = Allocator.DATA_BASE
    baseline_cache: dict[tuple[int, int], int] = {}
    for walk_ordinal, request in enumerate(requests):
        if tracing:
            tracer.walk = walk_ordinal
        if request.scan_hi is not None:
            trace = memsys.process_range_scan(
                request.index, request.key, request.scan_hi
            )
        else:
            trace = memsys.process_walk(request.index, request.key)
        for access in trace.accesses:
            if access.kind == "dram" and access.address < data_base:
                index_dram += 1
        walk_id = (id(request.index), request.key)
        if walk_id not in baseline_cache:
            baseline_cache[walk_id] = sum(
                len(_node_blocks(node)) for node in request.index.walk(request.key)
            )
        baseline += baseline_cache[walk_id]
        if request.data_address is not None:
            trace.accesses.append(
                Access("dram", request.data_address, request.data_bytes)
            )
        if request.compute_cycles:
            trace.accesses.append(Access("compute", cycles=request.compute_cycles))
        traces.append(trace)
        short += trace.short_circuited
        full += trace.full_hit
        visited += trace.nodes_visited
        depth_hist.record(trace.nodes_visited)
        start_levels.append(trace.start_level)

    engine = Engine(sim, DRAM(sim.dram))
    if tracing:
        tracer.walk = -1  # engine events carry explicit walk ids
        engine.attach_obs(tracer, registry)
        # The profiler and percentile gauges need per-walk latencies.
        record_latencies = True
    if injector is not None:
        engine.attach_faults(injector)
    if timed:
        result = engine.run(traces, record_latencies=record_latencies)
    else:
        result = engine.run_functional(traces, record_latencies=record_latencies)
    if injector is not None:
        injector.finalize(result.num_walks)
    latency_hist = (
        Histogram.from_values(result.walk_latencies)
        if result.walk_latencies else None
    )
    counters = None
    if tracing and registry is not None:
        registry.set("engine.makespan", result.makespan)
        registry.set("engine.num_walks", result.num_walks)
        registry.set("engine.total_walk_cycles", result.total_walk_cycles)
        registry.set("walks.short_circuited", short)
        registry.set("walks.full_hits", full)
        registry.set("walks.nodes_visited", visited)
        for kind, count in tracer.counts.items():
            registry.set(f"events.{kind}", count)
        registry.set("events.dropped", tracer.dropped)
        if latency_hist is not None and latency_hist.count:
            for name, value in latency_hist.to_dict().items():
                registry.set(f"walk_latency.{name}", value)
        if depth_hist.count:
            for name, value in depth_hist.to_dict().items():
                registry.set(f"probe_depth.{name}", value)
        counters = registry.snapshot()
    return RunResult(
        name=memsys.name,
        makespan=result.makespan,
        num_walks=result.num_walks,
        total_walk_cycles=result.total_walk_cycles,
        dram=engine.dram.stats,
        cache_stats=memsys.cache_stats,
        total_index_blocks=total_index_blocks,
        short_circuited=short,
        full_hits=full,
        nodes_visited=visited,
        start_levels=start_levels,
        walk_latencies=result.walk_latencies,
        bandwidth_utilization=engine.dram.bandwidth_utilization(max(1, result.makespan)),
        windowed_working_set=_windowed_working_set(
            traces, total_index_blocks, working_set_window
        ),
        index_dram_accesses=index_dram,
        baseline_index_accesses=baseline,
        counters=counters,
        tracer=tracer,
        latency_hist=latency_hist,
        depth_hist=depth_hist,
        faults=injector.stats.to_dict() if injector is not None else None,
    )
