"""Tile backend adapter: the event engine as an online-service backend.

The serving layer (:mod:`repro.serve`) models each tile of the
client -> load-balancer -> N-tile topology as one METAL instance. Rather
than co-simulating N copies of the event engine inside the queueing
loop, the adapter runs the per-tile cell **once** — the ordinary
``simulate(..., record_latencies=True)`` path — and replays its per-walk
latency sequence as the tile's per-request service times. Each tile
reads the same measured distribution from a different phase offset, so
tiles are statistically identical but not in lockstep, and a tile's
``speedup`` multiplier rescales its service times (skewed-fleet
scenarios for the balancer studies).

Cycles convert to serving-layer nanoseconds at :data:`CLOCK_MHZ` (a
2 GHz DSA clock, matching the paper's ~1 ns Fig. 7 tag-match budget at
2 cycles/ns). Everything here is deterministic: same (workload, system,
scale, seed) => same service sequence, on any machine.
"""

from __future__ import annotations

from collections import OrderedDict

#: DSA clock used to convert engine cycles to wall-clock nanoseconds.
CLOCK_MHZ = 2_000

#: Per-process model memo (mirrors repro.exec.worker's workload memo):
#: a load sweep revisits the same backend cell once per swept load.
_MODEL_MEMO: OrderedDict[tuple, "TileServiceModel"] = OrderedDict()
_MEMO_LIMIT = 8


def cycles_to_ns(cycles: int, clock_mhz: int = CLOCK_MHZ) -> int:
    """Integer nanoseconds for ``cycles`` at ``clock_mhz`` (>= 1)."""
    return max(1, (cycles * 1_000 + clock_mhz // 2) // clock_mhz)


class TileServiceModel:
    """Per-tile service-time streams replayed from one simulated run."""

    __slots__ = ("base_ns", "tiles", "_offsets")

    def __init__(self, base_ns: list[int], tiles: int) -> None:
        if not base_ns:
            raise ValueError("service model needs at least one latency sample")
        if tiles < 1:
            raise ValueError("tiles must be >= 1")
        self.base_ns = base_ns
        self.tiles = tiles
        stride = len(base_ns) // tiles
        self._offsets = [tile * stride for tile in range(tiles)]

    @property
    def mean_ns(self) -> float:
        """Mean unscaled service time — the capacity-calibration anchor."""
        return sum(self.base_ns) / len(self.base_ns)

    def service_ns(self, tile: int, k: int, speedup: float = 1.0) -> int:
        """Service time of tile ``tile``'s ``k``-th request (int ns >= 1)."""
        base = self.base_ns[(self._offsets[tile] + k) % len(self.base_ns)]
        if speedup == 1.0:
            return base
        return max(1, round(base / speedup))

    def walk_index(self, tile: int, k: int) -> int:
        """Backend walk ordinal replayed as tile ``tile``'s ``k``-th
        request — the link from a serving-side service span to the
        sim-side walk span the profiler attributes."""
        return (self._offsets[tile] + k) % len(self.base_ns)


def build_service_model(
    workload: str,
    system: str,
    scale: float,
    seed: int,
    tiles: int,
    clock_mhz: int = CLOCK_MHZ,
) -> TileServiceModel:
    """Simulate the backend cell once and wrap its walk latencies.

    Uses the exec worker's memoized workload builder, so a serve sweep
    (and the worker processes executing it) build the big index
    structures once per process. Imports stay local: ``repro.sim`` is
    imported by the bench layer, not the other way around.
    """
    key = (workload, system, scale, seed, tiles, clock_mhz)
    model = _MODEL_MEMO.get(key)
    if model is not None:
        _MODEL_MEMO.move_to_end(key)
        return model

    from repro.bench.runner import build_memsys
    from repro.exec.spec import RunSpec
    from repro.exec.worker import _get_workload
    from repro.sim.metrics import simulate

    spec = RunSpec(workload=workload, system=system, scale=scale, seed=seed)
    built = _get_workload(spec)
    memsys = build_memsys(system, built, None, built.config.sim_params())
    result = simulate(
        memsys, built.requests, memsys.sim, built.total_index_blocks,
        record_latencies=True,
    )
    base_ns = [cycles_to_ns(lat, clock_mhz) for lat in result.walk_latencies]
    model = TileServiceModel(base_ns, tiles)
    _MODEL_MEMO[key] = model
    _MODEL_MEMO.move_to_end(key)
    while len(_MODEL_MEMO) > _MEMO_LIMIT:
        _MODEL_MEMO.popitem(last=False)
    return model


def clear_model_memo() -> None:
    """Forget memoized service models (tests force fresh builds)."""
    _MODEL_MEMO.clear()
