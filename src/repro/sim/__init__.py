"""Cycle-approximate simulation: memory systems, event engine, metrics.

The flow mirrors Fig. 14's toolflow at the granularity that matters for the
evaluation: workloads produce walk requests; a memory system (streaming /
address cache / FA-OPT / X-cache / METAL) turns each walk into a trace of
timed accesses; the event engine multiplexes walker contexts over banked
DRAM and reports latency, traffic, and energy.
"""

from repro.sim.engine import Access, Engine, EngineResult, WalkTrace
from repro.sim.memsys import (
    AddressCacheMemSys,
    FAOPTMemSys,
    HierarchyMemSys,
    MemorySystem,
    MetalMemSys,
    StreamingMemSys,
    XCacheMemSys,
    make_memsys,
)
from repro.sim.metrics import RunResult, WalkRequest, simulate
from repro.sim.noc import Crossbar
from repro.sim.scheduler import schedule

__all__ = [
    "Access",
    "AddressCacheMemSys",
    "Crossbar",
    "Engine",
    "EngineResult",
    "FAOPTMemSys",
    "HierarchyMemSys",
    "make_memsys",
    "MemorySystem",
    "MetalMemSys",
    "RunResult",
    "schedule",
    "simulate",
    "StreamingMemSys",
    "WalkRequest",
    "WalkTrace",
    "XCacheMemSys",
]
