"""Vectorized batch pipeline: columnar traces + numpy walk generation.

The scalar path in :mod:`repro.sim.metrics` materializes one
:class:`~repro.sim.engine.Access` object per timed step — roughly ten
objects per walk — and re-derives every node footprint and DRAM bank
split inside the event loop. This module replaces that representation
for timed, untraced, fault-free runs:

* :class:`TraceBatch` — one columnar access stream for the whole run
  (parallel ``kinds``/``a1``/``a2`` int lists plus per-walk offsets),
  consumed by ``Engine.run_batch`` which vectorizes the block ->
  (bank, row) decomposition up front (``DRAM.decompose``).
* :class:`BatchWalkPlanner` — numpy walk generation over the SoA
  B+tree (:meth:`~repro.indexes.soa.SoABPlusTree.batch_positions`):
  one ``searchsorted`` per level per key chunk instead of one per
  (key, node), plus memoized per-node emission templates.
* :func:`simulate_batched` — the drop-in twin of
  :func:`repro.sim.metrics.simulate` for the gated configuration.

Byte-identity with the scalar path is a hard contract: every field of
``RunResult.to_dict()`` — makespan, DRAM stats (including float energy,
accumulated in the same event order), cache stats, working-set metrics,
histograms — matches the scalar run bit for bit. ``tests/
test_vector_equivalence.py`` and the CI ``vectorized-equivalence`` job
enforce it across all six systems.

Indexes without SoA level arrays (the object backend, skip lists,
radix tables) and range-scan requests fall back to the scalar trace
generators per request and are converted into the columnar stream by
:meth:`TraceBatch.add_trace`, so mixed workloads stay exact.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mem.dram import DRAM
from repro.mem.layout import Allocator
from repro.obs.histogram import Histogram
from repro.params import BLOCK_SIZE, SimParams
from repro.sim.engine import Engine, K_DRAM, K_LATENCY, K_PREFETCH, K_SRAM
from repro.sim.memsys import MemorySystem, _blocks_for, _node_blocks
from repro.sim.metrics import RunResult
from repro.workloads.stream import chunked

#: Memoized small tuples for template assembly: a node with ``nb``
#: blocks always emits ``nb`` DRAM entries plus one search step.
_KIND_TUPLES: dict[int, tuple[int, ...]] = {}
_ZERO_TUPLES: dict[int, tuple[int, ...]] = {}


def _kinds_tuple(nb: int) -> tuple[int, ...]:
    t = _KIND_TUPLES.get(nb)
    if t is None:
        t = (K_DRAM,) * nb + (K_LATENCY,)
        _KIND_TUPLES[nb] = t
    return t


def _zeros_tuple(n: int) -> tuple[int, ...]:
    t = _ZERO_TUPLES.get(n)
    if t is None:
        t = (0,) * n
        _ZERO_TUPLES[n] = t
    return t


class TraceBatch:
    """Columnar access stream for one run: the batch twin of WalkTrace.

    Parallel lists hold one small int per timed step: ``kinds`` is the
    K_* code, ``a1``/``a2`` the operands (address + write flag for DRAM,
    port + service cycles for SRAM, cycles for latency-only steps).
    ``offsets[i]:offsets[i+1]`` delimits walk ``i``. Multi-block
    extents (data-object fetches) are pre-expanded to one entry per
    64B block — exactly the per-offset loop the scalar engine runs.
    """

    __slots__ = (
        "kinds", "a1", "a2", "offsets", "start_levels", "visits",
        "index_dram", "short_circuited", "full_hits", "nodes_visited",
        "data_base", "_arrays",
    )

    def __init__(self) -> None:
        self.kinds: list[int] = []
        self.a1: list[int] = []
        self.a2: list[int] = []
        self.offsets: list[int] = [0]
        self.start_levels: list[int] = []
        self.visits: list[int] = []
        self.index_dram = 0
        self.short_circuited = 0
        self.full_hits = 0
        self.nodes_visited = 0
        self.data_base = Allocator.DATA_BASE
        self._arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def num_walks(self) -> int:
        return len(self.offsets) - 1

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The stream as int64 arrays (memoized; built once per run)."""
        if self._arrays is None:
            self._arrays = (
                np.array(self.kinds, dtype=np.int64),
                np.array(self.a1, dtype=np.int64),
                np.array(self.a2, dtype=np.int64),
            )
        return self._arrays

    def finish_walk(
        self, request: Any, start_level: int, visited: int,
        short: bool, full: bool,
    ) -> None:
        """Close one walk: append its data/compute tail and metadata.

        Mirrors the scalar epilogue in ``simulate`` exactly — the
        data-object fetch and compute step land after the index trace
        and are never counted as index DRAM traffic.
        """
        if request.data_address is not None:
            address = request.data_address
            nbytes = request.data_bytes
            kinds = self.kinds
            a1 = self.a1
            a2 = self.a2
            if nbytes <= BLOCK_SIZE:
                kinds.append(K_DRAM)
                a1.append(address)
                a2.append(0)
            else:
                for offset in range(0, nbytes, BLOCK_SIZE):
                    kinds.append(K_DRAM)
                    a1.append(address + offset)
                    a2.append(0)
        if request.compute_cycles:
            self.kinds.append(K_LATENCY)
            self.a1.append(request.compute_cycles)
            self.a2.append(0)
        self.offsets.append(len(self.kinds))
        self.start_levels.append(start_level)
        self.visits.append(visited)
        self.nodes_visited += visited
        if short:
            self.short_circuited += 1
        if full:
            self.full_hits += 1

    def add_trace(self, trace: Any, request: Any) -> None:
        """Convert one scalar WalkTrace (the per-request fallback path).

        Index-region DRAM accesses are counted at Access granularity
        before the data/compute tail is appended — the same ordering the
        scalar accounting loop uses.
        """
        kinds = self.kinds
        a1 = self.a1
        a2 = self.a2
        data_base = self.data_base
        index_dram = 0
        for access in trace.accesses:
            kind = access.kind
            if kind == "dram":
                address = access.address
                if address < data_base:
                    index_dram += 1
                nbytes = access.nbytes
                w = 1 if access.write else 0
                if nbytes <= BLOCK_SIZE:
                    kinds.append(K_DRAM)
                    a1.append(address)
                    a2.append(w)
                else:
                    for offset in range(0, nbytes, BLOCK_SIZE):
                        kinds.append(K_DRAM)
                        a1.append(address + offset)
                        a2.append(w)
            elif kind == "sram":
                if access.port >= 0:
                    kinds.append(K_SRAM)
                    a1.append(access.port)
                    a2.append(access.cycles)
                else:
                    kinds.append(K_LATENCY)
                    a1.append(access.cycles)
                    a2.append(0)
            elif kind == "dram_prefetch":
                address = access.address
                nbytes = access.nbytes
                if nbytes <= BLOCK_SIZE:
                    kinds.append(K_PREFETCH)
                    a1.append(address)
                    a2.append(0)
                else:
                    for offset in range(0, nbytes, BLOCK_SIZE):
                        kinds.append(K_PREFETCH)
                        a1.append(address + offset)
                        a2.append(0)
            else:  # compute
                kinds.append(K_LATENCY)
                a1.append(access.cycles)
                a2.append(0)
        self.index_dram += index_dram
        self.finish_walk(
            request, trace.start_level, trace.nodes_visited,
            bool(trace.short_circuited), bool(trace.full_hit),
        )


class BatchWalkPlanner:
    """Numpy walk generation + per-node emission templates for one tree.

    Wraps a :class:`~repro.indexes.soa.SoABPlusTree`: ``positions``
    resolves a key chunk with one ``searchsorted`` per level;
    ``baseline`` vectorizes the streaming-DSA block-count denominator;
    ``template`` memoizes each node's (kinds, operands) emission so hot
    nodes append by tuple concatenation instead of re-deriving their
    block footprint per visit. Planners are cached on the tree, so
    repeated runs over one workload reuse every template.
    """

    __slots__ = (
        "tree", "height", "view", "_levels", "_level_offsets",
        "_block_counts", "_blocks", "_templates", "_walk_templates",
        "_packed",
    )

    def __init__(self, tree: Any) -> None:
        self.tree = tree
        self.height = tree.height
        self.view = tree._view
        self._levels = tree._levels
        self._level_offsets = [int(o) for o in tree._level_offsets]
        self._block_counts: list[np.ndarray | None] = [None] * self.height
        self._blocks: dict[int, tuple[int, ...]] = {}
        # Keyed by t_search: templates bake the search-step latency in.
        self._templates: dict[int, dict[int, tuple]] = {}
        self._walk_templates: dict[int, dict[tuple[int, int], tuple]] = {}
        # pack_node results per (index_id, block_bytes): packing is pure
        # in the node's geometry and the index namespace, and the SoA
        # tree is immutable, so packed entry lists can be reused across
        # inserts (IXCache.insert never mutates the supplied list).
        self._packed: dict[tuple[int, int], dict[tuple[int, int], list]] = {}

    def positions(self, keys: np.ndarray) -> np.ndarray:
        return self.tree.batch_positions(keys)

    def _counts(self, level: int) -> np.ndarray:
        """Per-node touched-block counts for one level (lazy, vectorized).

        Replicates ``len(_blocks_for(address, nbytes))`` for aligned
        nodes: ``total = ceil(nbytes / 64)`` blocks, of which the walker
        touches ``min(total, 1 + bit_length(total - 1))`` (header +
        binary-search probes; the probe picks are distinct by
        construction). ``frexp`` exponents are exact bit lengths for
        every representable count.
        """
        counts = self._block_counts[level]
        if counts is None:
            nbytes = self._levels[level].nbytes
            total = -(-nbytes // BLOCK_SIZE)
            bits = np.frexp((total - 1).astype(np.float64))[1]
            counts = np.minimum(total, 1 + bits).astype(np.int64)
            self._block_counts[level] = counts
        return counts

    def baseline(self, rows: np.ndarray) -> int:
        """Streaming block count summed over a chunk of walk rows."""
        total = 0
        for level in range(self.height):
            total += int(self._counts(level)[rows[:, level]].sum())
        return total

    def blocks(self, level: int, pos: int) -> tuple[int, ...]:
        """The node's touched block addresses (shared scalar memo)."""
        linear = self._level_offsets[level] + pos
        b = self._blocks.get(linear)
        if b is None:
            lvl = self._levels[level]
            b = _blocks_for(int(lvl.address[pos]), int(lvl.nbytes[pos]))
            self._blocks[linear] = b
        return b

    def template_map(self, t_search: int) -> dict[int, tuple]:
        m = self._templates.get(t_search)
        if m is None:
            m = {}
            self._templates[t_search] = m
        return m

    def build_template(self, level: int, pos: int, t_search: int) -> tuple:
        """(kinds, a1, a2, n_blocks) for one node visit + search step."""
        blocks = self.blocks(level, pos)
        nb = len(blocks)
        return (
            _kinds_tuple(nb),
            blocks + (t_search,),
            _zeros_tuple(nb + 1),
            nb,
        )

    def packed_map(
        self, index_id: int, block_bytes: int
    ) -> dict[tuple[int, int], list]:
        m = self._packed.get((index_id, block_bytes))
        if m is None:
            m = {}
            self._packed[(index_id, block_bytes)] = m
        return m

    def walk_template_map(self, t_search: int) -> dict[tuple[int, int], tuple]:
        m = self._walk_templates.get(t_search)
        if m is None:
            m = {}
            self._walk_templates[t_search] = m
        return m

    def build_walk_template(
        self, base_level: int, row: list[int], t_search: int
    ) -> tuple:
        """Concatenated emission for the sub-walk from ``base_level`` down.

        The path below any level is unique per leaf, so the memo key
        ``(base_level, row[-1])`` serves every walk routed through that
        leaf. Returns ``(kinds, a1, a2, index_dram, nodes)`` with
        ``nodes`` the (level, pos) pairs in visit order for the policy
        loop.
        """
        per_node = self.template_map(t_search)
        offsets = self._level_offsets
        kinds: tuple = ()
        a1: tuple = ()
        a2: tuple = ()
        total = 0
        nodes = []
        for position, pos in enumerate(row[base_level:]):
            level = base_level + position
            linear = offsets[level] + pos
            t = per_node.get(linear)
            if t is None:
                t = self.build_template(level, pos, t_search)
                per_node[linear] = t
            kinds += t[0]
            a1 += t[1]
            a2 += t[2]
            total += t[3]
            # The memoized node view rides in the template so the policy
            # loop never re-resolves it.
            nodes.append(((level, pos), self.view(level, pos)))
        return (kinds, a1, a2, total, tuple(nodes))


def _planner_for(
    index: Any, planners: dict[int, BatchWalkPlanner | None]
) -> BatchWalkPlanner | None:
    """The index's planner, or None when it has no SoA level arrays."""
    key = id(index)
    if key in planners:
        return planners[key]
    tree = getattr(index, "_tree", index)
    planner = None
    if getattr(tree, "_levels", None) is not None:
        # Cache on the tree itself (it has no __slots__): repeated runs
        # over the same workload reuse the planner's templates.
        planner = tree.__dict__.get("_batch_planner")
        if planner is None:
            planner = BatchWalkPlanner(tree)
            tree._batch_planner = planner
    planners[key] = planner
    return planner


def _plan_chunk(
    requests: list[Any],
    planners: dict[int, BatchWalkPlanner | None],
    baseline_cache: dict[tuple[int, int], int],
) -> tuple[list[tuple[BatchWalkPlanner, list[int]] | None], int]:
    """Resolve one request chunk: vectorized walk rows + baseline count.

    Returns ``prepared`` (per request: ``(planner, positions_row)`` for
    point walks over SoA indexes, None for fallback requests) and the
    chunk's streaming-baseline increment. Range scans contribute their
    point-walk baseline here (matching the scalar accounting) but emit
    through the scalar fallback.
    """
    prepared: list[tuple[BatchWalkPlanner, list[int]] | None] = (
        [None] * len(requests)
    )
    baseline = 0
    groups: dict[int, tuple[BatchWalkPlanner, list[int]]] = {}
    for i, request in enumerate(requests):
        planner = _planner_for(request.index, planners)
        if planner is None:
            walk_id = (id(request.index), request.key)
            b = baseline_cache.get(walk_id)
            if b is None:
                b = sum(
                    len(_node_blocks(node))
                    for node in request.index.walk(request.key)
                )
                baseline_cache[walk_id] = b
            baseline += b
        else:
            group = groups.get(id(request.index))
            if group is None:
                groups[id(request.index)] = (planner, [i])
            else:
                group[1].append(i)
    for planner, members in groups.values():
        keys = np.fromiter(
            (requests[i].key for i in members), dtype=np.int64,
            count=len(members),
        )
        rows = planner.positions(keys)
        baseline += planner.baseline(rows)
        rows_list = rows.tolist()
        for j, i in enumerate(members):
            if requests[i].scan_hi is None:
                prepared[i] = (planner, rows_list[j])
    return prepared, baseline


def _batch_windowed_working_set(
    batch: TraceBatch, total_index_blocks: int, window: int
) -> float:
    """Vectorized twin of ``metrics._windowed_working_set``.

    Distinct index-region DRAM blocks per window of walks, averaged.
    Every batch DRAM entry is one 64B block, so distinct (window, block)
    pairs fall out of one ``np.unique`` over an encoded pair array; the
    final fraction average runs in python floats, in window order, so
    the float result matches the scalar accumulation bit for bit.
    """
    num_walks = batch.num_walks
    if total_index_blocks <= 0 or num_walks == 0:
        return 0.0
    kinds_arr, a1_arr, _ = batch.arrays()
    offsets = np.array(batch.offsets, dtype=np.int64)
    walk_of = np.repeat(
        np.arange(num_walks, dtype=np.int64), np.diff(offsets)
    )
    is_index = (kinds_arr == K_DRAM) & (a1_arr < batch.data_base)
    windows = walk_of[is_index] // window
    blocks = a1_arr[is_index] // BLOCK_SIZE
    num_windows = -(-num_walks // window)
    # Index blocks sit below DATA_BASE // 64 < 2**25; window ids fit
    # alongside them in an int64 without collision.
    codes = np.unique((windows << 36) | blocks)
    counts = np.bincount(codes >> 36, minlength=num_windows)
    fractions = [
        min(1.0, count / total_index_blocks) for count in counts.tolist()
    ]
    return sum(fractions) / len(fractions)


def simulate_batched(
    memsys: MemorySystem,
    requests: list[Any],
    sim: SimParams,
    total_index_blocks: int = 0,
    record_latencies: bool = False,
    working_set_window: int = 2_000,
) -> RunResult:
    """Chunked, vectorized twin of :func:`repro.sim.metrics.simulate`.

    Only reached through the gate there: timed, untraced, fault-free
    runs with ``sim.walk_batch > 0``. Trace generation goes through the
    memory system's ``process_chunk`` (native columnar emitters for
    stream/address/xcache/metal; scalar fallback otherwise), and timing
    through ``Engine.run_batch``.
    """
    batch = TraceBatch()
    planners: dict[int, BatchWalkPlanner | None] = {}
    baseline_cache: dict[tuple[int, int], int] = {}
    baseline = 0
    for part in chunked(requests, sim.walk_batch):
        prepared, chunk_baseline = _plan_chunk(
            part, planners, baseline_cache
        )
        baseline += chunk_baseline
        memsys.process_chunk(batch, part, prepared)

    engine = Engine(sim, DRAM(sim.dram))
    result = engine.run_batch(batch, record_latencies=record_latencies)
    latency_hist = (
        Histogram.from_values(result.walk_latencies)
        if result.walk_latencies else None
    )
    depth_hist = Histogram()
    if batch.visits:
        # Grouped ascending records land in the same buckets with the
        # same count/total/min/max as the scalar per-walk loop.
        for value, count in enumerate(
            np.bincount(np.asarray(batch.visits, dtype=np.int64)).tolist()
        ):
            if count:
                depth_hist.record(value, count)
    return RunResult(
        name=memsys.name,
        makespan=result.makespan,
        num_walks=result.num_walks,
        total_walk_cycles=result.total_walk_cycles,
        dram=engine.dram.stats,
        cache_stats=memsys.cache_stats,
        total_index_blocks=total_index_blocks,
        short_circuited=batch.short_circuited,
        full_hits=batch.full_hits,
        nodes_visited=batch.nodes_visited,
        start_levels=batch.start_levels,
        walk_latencies=result.walk_latencies,
        bandwidth_utilization=engine.dram.bandwidth_utilization(
            max(1, result.makespan)
        ),
        windowed_working_set=_batch_windowed_working_set(
            batch, total_index_blocks, working_set_window
        ),
        index_dram_accesses=batch.index_dram,
        baseline_index_accesses=baseline,
        counters=None,
        tracer=None,
        latency_hist=latency_hist,
        depth_hist=depth_hist,
        faults=None,
    )


__all__ = [
    "BatchWalkPlanner",
    "TraceBatch",
    "simulate_batched",
]
