"""Discrete-event engine multiplexing walker contexts over banked DRAM.

Each compute tile multiplexes several walker contexts (Section 3.2: "we
multiplex multiple walks on a single thread", yielding at long-latency
states). The engine models exactly that: walks are assigned round-robin to
``tiles x walker_contexts`` contexts; contexts advance one access at a time
in global time order, so independent walks overlap their DRAM latencies
(memory-level parallelism) while bank occupancy provides the bandwidth
ceiling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.mem.dram import DRAM
from repro.obs.tracer import NULL_TRACER
from repro.params import BLOCK_SIZE, SimParams
from repro.sim.noc import Crossbar


@dataclass(slots=True)
class Access:
    """One timed step of a walk: a DRAM touch, an SRAM probe, or compute.

    ``port`` >= 0 routes an SRAM probe through the shared crossbar (port
    arbitration + occupancy); -1 means an uncontended local access.
    """

    kind: str  # 'dram' | 'dram_prefetch' | 'sram' | 'compute'
    address: int = 0
    nbytes: int = BLOCK_SIZE
    cycles: int = 0  # latency for 'sram' / 'compute'
    write: bool = False
    port: int = -1


@dataclass(slots=True)
class WalkTrace:
    """The access trace of one walk plus hit-path metadata."""

    key: int
    accesses: list[Access]
    start_level: int = 0
    nodes_visited: int = 0
    short_circuited: bool = False
    full_hit: bool = False


@dataclass(slots=True)
class EngineResult:
    """Aggregate timing of one engine run."""

    makespan: int = 0
    num_walks: int = 0
    total_walk_cycles: int = 0
    walk_latencies: list[int] = field(default_factory=list)

    @property
    def avg_walk_latency(self) -> float:
        if self.num_walks == 0:
            return 0.0
        return self.total_walk_cycles / self.num_walks


class Engine:
    """Times a batch of walk traces over one DRAM instance."""

    def __init__(self, params: SimParams | None = None, dram: DRAM | None = None) -> None:
        self.params = params or SimParams()
        self.dram = dram or DRAM(self.params.dram)
        self.xbar = Crossbar(self.params.xbar)
        self.tracer = NULL_TRACER
        #: Optional FaultInjector (repro.faults). None on fault-free runs:
        #: the lean untraced loop is then taken unchanged.
        self.faults = None

    def attach_obs(self, tracer, registry=None) -> None:
        """Wire tracing through the engine, its DRAM, and its crossbar."""
        self.tracer = tracer
        self.dram.attach_obs(tracer, registry)
        self.xbar.attach_obs(tracer, registry)

    def attach_faults(self, injector) -> None:
        """Wire one FaultInjector through the engine, DRAM, and crossbar.

        Faulted runs always take the general event loop (tracing on or
        off), so the injection sites are visited in one canonical order
        and the fault schedule cannot depend on observability settings.
        """
        self.faults = injector
        self.dram.faults = injector
        self.xbar.faults = injector

    @property
    def contexts(self) -> int:
        return max(1, self.params.tiles * self.params.tile.walker_contexts)

    def run(self, traces: list[WalkTrace], record_latencies: bool = False) -> EngineResult:
        """Event-driven timed run; returns makespan and walk latencies.

        The tracer-off path (the default) is a separate branch-free loop:
        no per-access ``tracer.enabled`` checks, hot attributes bound to
        locals, and no heap traffic while the running context stays the
        earliest event (``heappushpop`` only when another context is due).
        Both paths produce identical results — the traced loop keeps the
        straightforward one-event-per-iteration structure so event
        ordering is obvious. Faulted runs (``attach_faults``) always take
        the general loop, tracing on or off, so the injection sites are
        visited in one canonical order and observability settings cannot
        perturb the fault schedule.
        """
        result = EngineResult(num_walks=len(traces))
        if not traces:
            return result
        contexts = self.contexts
        queues: list[list[WalkTrace]] = [[] for _ in range(contexts)]
        for i, trace in enumerate(traces):
            queues[i % contexts].append(trace)

        # Per-context cursor state: (walk index, access index, walk start).
        heap: list[tuple[int, int]] = [(0, c) for c in range(contexts) if queues[c]]
        heapq.heapify(heap)
        walk_idx = [0] * contexts
        access_idx = [0] * contexts
        walk_start = [0] * contexts
        makespan = 0
        tracer = self.tracer
        tracing = tracer.enabled
        faults = self.faults
        if not tracing and faults is None:
            return self._run_untraced(
                result, heap, queues, walk_idx, access_idx, walk_start,
                record_latencies,
            )
        # Walk i sits at queues[i % contexts][i // contexts], so the
        # global walk ordinal is walk_idx * contexts + ctx.
        if tracing:
            for c in range(contexts):
                if queues[c]:
                    tracer.emit("walk_start", ts=0, phase="engine",
                                walk=c, ctx=c)

        # Per-context attribution accumulators (profiling): SRAM probe
        # service cycles and compute cycles of the in-flight walk. DRAM
        # and crossbar components are carried by their own events. With
        # faults attached, retry_acc carries the in-flight walk's backoff
        # cycles and degraded marks a walk that needed the fallback path.
        probe_acc = [0] * contexts
        compute_acc = [0] * contexts
        retry_acc = [0] * contexts
        degraded = [False] * contexts

        while heap:
            now, ctx = heapq.heappop(heap)
            trace = queues[ctx][walk_idx[ctx]]
            accesses = trace.accesses
            if access_idx[ctx] < len(accesses):
                access = accesses[access_idx[ctx]]
                if tracing:
                    # Walk-attribute the DRAM/crossbar events this access
                    # emits; prefetches never stall the walker, so they
                    # stay out of per-walk attribution (walk = -1).
                    tracer.walk = (
                        -1 if access.kind == "dram_prefetch"
                        else walk_idx[ctx] * contexts + ctx
                    )
                if access.kind == "dram":
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        now = self.dram.access(
                            access.address + offset, now, write=access.write
                        )
                    if faults is not None:
                        fails = faults.walker_failures()
                        if fails:
                            now = self._retry_walker_step(
                                faults, access, now, fails,
                                retry_acc, degraded, ctx,
                            )
                elif access.kind == "dram_prefetch":
                    # Prefetches consume bandwidth and bank occupancy but
                    # do not stall the issuing walker.
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        self.dram.access(access.address + offset, now)
                elif access.kind == "sram" and access.port >= 0:
                    if tracing:
                        probe_acc[ctx] += access.cycles
                    now = self.xbar.access(access.port, now, access.cycles)
                else:
                    if tracing:
                        if access.kind == "compute":
                            compute_acc[ctx] += access.cycles
                        else:
                            probe_acc[ctx] += access.cycles
                    now += access.cycles
                access_idx[ctx] += 1
                heapq.heappush(heap, (now, ctx))
                continue
            # Walk complete.
            latency = now - walk_start[ctx]
            result.total_walk_cycles += latency
            if record_latencies:
                result.walk_latencies.append(latency)
            makespan = max(makespan, now)
            if faults is not None and degraded[ctx]:
                faults.stats.walks_degraded += 1
            if tracing:
                # The ``retry`` component exists only on faulted runs so
                # fault-free traced output stays byte-identical.
                extra = (
                    {"retry": retry_acc[ctx], "degraded": degraded[ctx]}
                    if faults is not None else {}
                )
                tracer.emit("walk_end", ts=now, phase="engine",
                            walk=walk_idx[ctx] * contexts + ctx,
                            ctx=ctx, latency=latency,
                            probe=probe_acc[ctx], compute=compute_acc[ctx],
                            **extra)
                probe_acc[ctx] = 0
                compute_acc[ctx] = 0
            retry_acc[ctx] = 0
            degraded[ctx] = False
            walk_idx[ctx] += 1
            access_idx[ctx] = 0
            walk_start[ctx] = now
            if walk_idx[ctx] < len(queues[ctx]):
                if tracing:
                    tracer.emit("walk_start", ts=now, phase="engine",
                                walk=walk_idx[ctx] * contexts + ctx, ctx=ctx)
                heapq.heappush(heap, (now, ctx))

        result.makespan = makespan
        return result

    def _retry_walker_step(
        self,
        faults,
        access: Access,
        now: int,
        fails: int,
        retry_acc: list[int],
        degraded: list[bool],
        ctx: int,
    ) -> int:
        """Bounded retry-with-backoff for a transiently failed refill step.

        The walker context's fetch returned garbage ``fails`` times in a
        row: before re-fetch attempt ``i`` the context backs off
        ``walker_backoff_cycles << i`` cycles, then re-issues the node's
        DRAM accesses. Attempts within ``walker_retry_limit`` are clean
        retries; a step that exhausts the budget completes through one
        final degraded refetch and marks the walk degraded — the request
        always finishes, it is never dropped.
        """
        stats = faults.stats
        plan = faults.plan
        backoff = plan.walker_backoff_cycles
        dram_access = self.dram.access
        nbytes = max(access.nbytes, 1)
        address = access.address
        write = access.write
        for attempt in range(fails):
            pause = backoff << attempt
            now += pause
            stats.retry_backoff_cycles += pause
            retry_acc[ctx] += pause
            for offset in range(0, nbytes, BLOCK_SIZE):
                now = dram_access(address + offset, now, write=write)
        limit = plan.walker_retry_limit
        if fails > limit:
            stats.retries += limit
            stats.retries_exhausted += 1
            degraded[ctx] = True
        else:
            stats.retries += fails
        return now

    def _run_untraced(
        self,
        result: EngineResult,
        heap: list[tuple[int, int]],
        queues: list[list[WalkTrace]],
        walk_idx: list[int],
        access_idx: list[int],
        walk_start: list[int],
        record_latencies: bool,
    ) -> EngineResult:
        """Lean event loop for NULL_TRACER runs (the bench-matrix path).

        Event-for-event equivalent to the traced loop: the popped context
        keeps executing inline while its next event is no later than the
        heap head (the traced formulation re-pushes and immediately
        re-pops the same entry in that case), and a single ``heappushpop``
        replaces the push/pop pair when another context is due first.
        """
        dram_access = self.dram.access
        xbar_access = self.xbar.access
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        block_size = BLOCK_SIZE
        latencies = result.walk_latencies
        total_cycles = 0
        makespan = 0
        while heap:
            now, ctx = heappop(heap)
            queue = queues[ctx]
            qi = walk_idx[ctx]
            accesses = queue[qi].accesses
            na = len(accesses)
            ai = access_idx[ctx]
            while True:
                if ai < na:
                    access = accesses[ai]
                    kind = access.kind
                    if kind == "dram":
                        nbytes = access.nbytes
                        if nbytes <= block_size:
                            now = dram_access(
                                access.address, now, write=access.write
                            )
                        else:
                            address = access.address
                            write = access.write
                            for offset in range(0, nbytes, block_size):
                                now = dram_access(
                                    address + offset, now, write=write
                                )
                    elif kind == "sram" and access.port >= 0:
                        now = xbar_access(access.port, now, access.cycles)
                    elif kind == "dram_prefetch":
                        # Bandwidth/occupancy only; never stalls the walker.
                        nbytes = access.nbytes
                        if nbytes <= block_size:
                            dram_access(access.address, now)
                        else:
                            address = access.address
                            for offset in range(0, nbytes, block_size):
                                dram_access(address + offset, now)
                    else:
                        now += access.cycles
                    ai += 1
                    if heap:
                        head = heap[0]
                        if head[0] < now or (head[0] == now and head[1] < ctx):
                            access_idx[ctx] = ai
                            now, ctx = heappushpop(heap, (now, ctx))
                            queue = queues[ctx]
                            qi = walk_idx[ctx]
                            accesses = queue[qi].accesses
                            na = len(accesses)
                            ai = access_idx[ctx]
                else:
                    # Walk complete. The context continues at the same
                    # cycle: re-pushing (now, ctx) would pop it right back
                    # (it was the minimum and context ids are unique).
                    latency = now - walk_start[ctx]
                    total_cycles += latency
                    if record_latencies:
                        latencies.append(latency)
                    if now > makespan:
                        makespan = now
                    qi += 1
                    walk_idx[ctx] = qi
                    walk_start[ctx] = now
                    if qi < len(queue):
                        ai = 0
                        access_idx[ctx] = 0
                        accesses = queue[qi].accesses
                        na = len(accesses)
                    else:
                        break
        result.total_walk_cycles = total_cycles
        result.makespan = makespan
        return result

    def run_functional(
        self, traces: list[WalkTrace], record_latencies: bool = False
    ) -> EngineResult:
        """Untimed pass: nominal latencies, full traffic/energy accounting.

        Cheap mode for miss-rate / working-set experiments that do not need
        bank contention. Each walk's latency is the serial sum of nominal
        access latencies; the makespan assumes perfect context overlap.
        """
        result = EngineResult(num_walks=len(traces))
        p = self.params.dram
        busy = 0
        for trace in traces:
            latency = 0
            for access in trace.accesses:
                if access.kind == "dram":
                    blocks = max(1, -(-access.nbytes // BLOCK_SIZE))
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        self.dram.access(access.address + offset, 0, write=access.write)
                    latency += p.t_access * blocks
                elif access.kind == "dram_prefetch":
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        self.dram.access(access.address + offset, 0)
                else:
                    latency += access.cycles
            result.total_walk_cycles += latency
            if record_latencies:
                result.walk_latencies.append(latency)
            busy += latency
        result.makespan = max(1, busy // self.contexts)
        return result
