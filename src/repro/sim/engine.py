"""Discrete-event engine multiplexing walker contexts over banked DRAM.

Each compute tile multiplexes several walker contexts (Section 3.2: "we
multiplex multiple walks on a single thread", yielding at long-latency
states). The engine models exactly that: walks are assigned round-robin to
``tiles x walker_contexts`` contexts; contexts advance one access at a time
in global time order, so independent walks overlap their DRAM latencies
(memory-level parallelism) while bank occupancy provides the bandwidth
ceiling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.mem.dram import DRAM
from repro.obs.tracer import NULL_TRACER
from repro.params import BLOCK_SIZE, SimParams
from repro.sim.noc import Crossbar


#: Kind codes of the columnar access stream (``repro.sim.batch``): the
#: batch pipeline stores one small int per access instead of an Access
#: object. ``K_LATENCY`` covers compute steps and portless SRAM probes —
#: everything the event loop times as a plain ``now += cycles``.
K_DRAM = 0
K_PREFETCH = 1
K_SRAM = 2
K_LATENCY = 3


@dataclass(slots=True)
class Access:
    """One timed step of a walk: a DRAM touch, an SRAM probe, or compute.

    ``port`` >= 0 routes an SRAM probe through the shared crossbar (port
    arbitration + occupancy); -1 means an uncontended local access.
    """

    kind: str  # 'dram' | 'dram_prefetch' | 'sram' | 'compute'
    address: int = 0
    nbytes: int = BLOCK_SIZE
    cycles: int = 0  # latency for 'sram' / 'compute'
    write: bool = False
    port: int = -1


@dataclass(slots=True)
class WalkTrace:
    """The access trace of one walk plus hit-path metadata."""

    key: int
    accesses: list[Access]
    start_level: int = 0
    nodes_visited: int = 0
    short_circuited: bool = False
    full_hit: bool = False


@dataclass(slots=True)
class EngineResult:
    """Aggregate timing of one engine run."""

    makespan: int = 0
    num_walks: int = 0
    total_walk_cycles: int = 0
    walk_latencies: list[int] = field(default_factory=list)

    @property
    def avg_walk_latency(self) -> float:
        if self.num_walks == 0:
            return 0.0
        return self.total_walk_cycles / self.num_walks


class Engine:
    """Times a batch of walk traces over one DRAM instance."""

    def __init__(self, params: SimParams | None = None, dram: DRAM | None = None) -> None:
        self.params = params or SimParams()
        self.dram = dram or DRAM(self.params.dram)
        self.xbar = Crossbar(self.params.xbar)
        self.tracer = NULL_TRACER
        #: Optional FaultInjector (repro.faults). None on fault-free runs:
        #: the lean untraced loop is then taken unchanged.
        self.faults = None

    def attach_obs(self, tracer, registry=None) -> None:
        """Wire tracing through the engine, its DRAM, and its crossbar."""
        self.tracer = tracer
        self.dram.attach_obs(tracer, registry)
        self.xbar.attach_obs(tracer, registry)

    def attach_faults(self, injector) -> None:
        """Wire one FaultInjector through the engine, DRAM, and crossbar.

        Faulted runs always take the general event loop (tracing on or
        off), so the injection sites are visited in one canonical order
        and the fault schedule cannot depend on observability settings.
        """
        self.faults = injector
        self.dram.faults = injector
        self.xbar.faults = injector

    @property
    def contexts(self) -> int:
        return max(1, self.params.tiles * self.params.tile.walker_contexts)

    def run(self, traces: list[WalkTrace], record_latencies: bool = False) -> EngineResult:
        """Event-driven timed run; returns makespan and walk latencies.

        The tracer-off path (the default) is a separate branch-free loop:
        no per-access ``tracer.enabled`` checks, hot attributes bound to
        locals, and no heap traffic while the running context stays the
        earliest event (``heappushpop`` only when another context is due).
        Both paths produce identical results — the traced loop keeps the
        straightforward one-event-per-iteration structure so event
        ordering is obvious. Faulted runs (``attach_faults``) always take
        the general loop, tracing on or off, so the injection sites are
        visited in one canonical order and observability settings cannot
        perturb the fault schedule.
        """
        result = EngineResult(num_walks=len(traces))
        if not traces:
            return result
        contexts = self.contexts
        queues: list[list[WalkTrace]] = [[] for _ in range(contexts)]
        for i, trace in enumerate(traces):
            queues[i % contexts].append(trace)

        # Per-context cursor state: (walk index, access index, walk start).
        heap: list[tuple[int, int]] = [(0, c) for c in range(contexts) if queues[c]]
        heapq.heapify(heap)
        walk_idx = [0] * contexts
        access_idx = [0] * contexts
        walk_start = [0] * contexts
        makespan = 0
        tracer = self.tracer
        tracing = tracer.enabled
        faults = self.faults
        engine = self.params.engine
        if engine not in ("heap", "bucket"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'heap' or 'bucket'"
            )
        if not tracing and faults is None:
            if engine == "bucket":
                return self._run_bucket(
                    result, heap, queues, walk_idx, access_idx, walk_start,
                    record_latencies,
                )
            return self._run_untraced(
                result, heap, queues, walk_idx, access_idx, walk_start,
                record_latencies,
            )
        # Walk i sits at queues[i % contexts][i // contexts], so the
        # global walk ordinal is walk_idx * contexts + ctx.
        if tracing:
            for c in range(contexts):
                if queues[c]:
                    tracer.emit("walk_start", ts=0, phase="engine",
                                walk=c, ctx=c)

        # Per-context attribution accumulators (profiling): SRAM probe
        # service cycles and compute cycles of the in-flight walk. DRAM
        # and crossbar components are carried by their own events. With
        # faults attached, retry_acc carries the in-flight walk's backoff
        # cycles and degraded marks a walk that needed the fallback path.
        probe_acc = [0] * contexts
        compute_acc = [0] * contexts
        retry_acc = [0] * contexts
        degraded = [False] * contexts

        while heap:
            now, ctx = heapq.heappop(heap)
            trace = queues[ctx][walk_idx[ctx]]
            accesses = trace.accesses
            if access_idx[ctx] < len(accesses):
                access = accesses[access_idx[ctx]]
                if tracing:
                    # Walk-attribute the DRAM/crossbar events this access
                    # emits; prefetches never stall the walker, so they
                    # stay out of per-walk attribution (walk = -1).
                    tracer.walk = (
                        -1 if access.kind == "dram_prefetch"
                        else walk_idx[ctx] * contexts + ctx
                    )
                if access.kind == "dram":
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        now = self.dram.access(
                            access.address + offset, now, write=access.write
                        )
                    if faults is not None:
                        fails = faults.walker_failures()
                        if fails:
                            now = self._retry_walker_step(
                                faults, access, now, fails,
                                retry_acc, degraded, ctx,
                            )
                elif access.kind == "dram_prefetch":
                    # Prefetches consume bandwidth and bank occupancy but
                    # do not stall the issuing walker.
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        self.dram.access(access.address + offset, now)
                elif access.kind == "sram" and access.port >= 0:
                    if tracing:
                        probe_acc[ctx] += access.cycles
                    now = self.xbar.access(access.port, now, access.cycles)
                else:
                    if tracing:
                        if access.kind == "compute":
                            compute_acc[ctx] += access.cycles
                        else:
                            probe_acc[ctx] += access.cycles
                    now += access.cycles
                access_idx[ctx] += 1
                heapq.heappush(heap, (now, ctx))
                continue
            # Walk complete.
            latency = now - walk_start[ctx]
            result.total_walk_cycles += latency
            if record_latencies:
                result.walk_latencies.append(latency)
            makespan = max(makespan, now)
            if faults is not None and degraded[ctx]:
                faults.stats.walks_degraded += 1
            if tracing:
                # The ``retry`` component exists only on faulted runs so
                # fault-free traced output stays byte-identical.
                extra = (
                    {"retry": retry_acc[ctx], "degraded": degraded[ctx]}
                    if faults is not None else {}
                )
                tracer.emit("walk_end", ts=now, phase="engine",
                            walk=walk_idx[ctx] * contexts + ctx,
                            ctx=ctx, latency=latency,
                            probe=probe_acc[ctx], compute=compute_acc[ctx],
                            **extra)
                probe_acc[ctx] = 0
                compute_acc[ctx] = 0
            retry_acc[ctx] = 0
            degraded[ctx] = False
            walk_idx[ctx] += 1
            access_idx[ctx] = 0
            walk_start[ctx] = now
            if walk_idx[ctx] < len(queues[ctx]):
                if tracing:
                    tracer.emit("walk_start", ts=now, phase="engine",
                                walk=walk_idx[ctx] * contexts + ctx, ctx=ctx)
                heapq.heappush(heap, (now, ctx))

        result.makespan = makespan
        return result

    def _retry_walker_step(
        self,
        faults,
        access: Access,
        now: int,
        fails: int,
        retry_acc: list[int],
        degraded: list[bool],
        ctx: int,
    ) -> int:
        """Bounded retry-with-backoff for a transiently failed refill step.

        The walker context's fetch returned garbage ``fails`` times in a
        row: before re-fetch attempt ``i`` the context backs off
        ``walker_backoff_cycles << i`` cycles, then re-issues the node's
        DRAM accesses. Attempts within ``walker_retry_limit`` are clean
        retries; a step that exhausts the budget completes through one
        final degraded refetch and marks the walk degraded — the request
        always finishes, it is never dropped.
        """
        stats = faults.stats
        plan = faults.plan
        backoff = plan.walker_backoff_cycles
        dram_access = self.dram.access
        nbytes = max(access.nbytes, 1)
        address = access.address
        write = access.write
        for attempt in range(fails):
            pause = backoff << attempt
            now += pause
            stats.retry_backoff_cycles += pause
            retry_acc[ctx] += pause
            for offset in range(0, nbytes, BLOCK_SIZE):
                now = dram_access(address + offset, now, write=write)
        limit = plan.walker_retry_limit
        if fails > limit:
            stats.retries += limit
            stats.retries_exhausted += 1
            degraded[ctx] = True
        else:
            stats.retries += fails
        return now

    def _run_untraced(
        self,
        result: EngineResult,
        heap: list[tuple[int, int]],
        queues: list[list[WalkTrace]],
        walk_idx: list[int],
        access_idx: list[int],
        walk_start: list[int],
        record_latencies: bool,
    ) -> EngineResult:
        """Lean event loop for NULL_TRACER runs (the bench-matrix path).

        Event-for-event equivalent to the traced loop: the popped context
        keeps executing inline while its next event is no later than the
        heap head (the traced formulation re-pushes and immediately
        re-pops the same entry in that case), and a single ``heappushpop``
        replaces the push/pop pair when another context is due first.
        """
        dram_access = self.dram.access
        xbar_access = self.xbar.access
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        block_size = BLOCK_SIZE
        latencies = result.walk_latencies
        total_cycles = 0
        makespan = 0
        while heap:
            now, ctx = heappop(heap)
            queue = queues[ctx]
            qi = walk_idx[ctx]
            accesses = queue[qi].accesses
            na = len(accesses)
            ai = access_idx[ctx]
            while True:
                if ai < na:
                    access = accesses[ai]
                    kind = access.kind
                    if kind == "dram":
                        nbytes = access.nbytes
                        if nbytes <= block_size:
                            now = dram_access(
                                access.address, now, write=access.write
                            )
                        else:
                            address = access.address
                            write = access.write
                            for offset in range(0, nbytes, block_size):
                                now = dram_access(
                                    address + offset, now, write=write
                                )
                    elif kind == "sram" and access.port >= 0:
                        now = xbar_access(access.port, now, access.cycles)
                    elif kind == "dram_prefetch":
                        # Bandwidth/occupancy only; never stalls the walker.
                        nbytes = access.nbytes
                        if nbytes <= block_size:
                            dram_access(access.address, now)
                        else:
                            address = access.address
                            for offset in range(0, nbytes, block_size):
                                dram_access(address + offset, now)
                    else:
                        now += access.cycles
                    ai += 1
                    if heap:
                        head = heap[0]
                        if head[0] < now or (head[0] == now and head[1] < ctx):
                            access_idx[ctx] = ai
                            now, ctx = heappushpop(heap, (now, ctx))
                            queue = queues[ctx]
                            qi = walk_idx[ctx]
                            accesses = queue[qi].accesses
                            na = len(accesses)
                            ai = access_idx[ctx]
                else:
                    # Walk complete. The context continues at the same
                    # cycle: re-pushing (now, ctx) would pop it right back
                    # (it was the minimum and context ids are unique).
                    latency = now - walk_start[ctx]
                    total_cycles += latency
                    if record_latencies:
                        latencies.append(latency)
                    if now > makespan:
                        makespan = now
                    qi += 1
                    walk_idx[ctx] = qi
                    walk_start[ctx] = now
                    if qi < len(queue):
                        ai = 0
                        access_idx[ctx] = 0
                        accesses = queue[qi].accesses
                        na = len(accesses)
                    else:
                        break
        result.total_walk_cycles = total_cycles
        result.makespan = makespan
        return result

    def _run_bucket(
        self,
        result: EngineResult,
        heap: list[tuple[int, int]],
        queues: list[list[WalkTrace]],
        walk_idx: list[int],
        access_idx: list[int],
        walk_start: list[int],
        record_latencies: bool,
    ) -> EngineResult:
        """Calendar-queue event loop: drain one cycle's bucket in one pass.

        Event-for-event equivalent to the heap loops. Contexts due at the
        same cycle sit in one bucket and drain in ascending context order
        — exactly the heap's ``(cycle, ctx)`` tie-break, because only the
        running context can schedule new events for itself at the current
        cycle (context ids are unique in the queue, so a bucket never
        grows while it drains). A context whose next event lands at a
        later cycle re-files into that cycle's bucket; event times are
        monotonically non-decreasing, so a popped cycle is never revisited.
        """
        dram_access = self.dram.access
        xbar_access = self.xbar.access
        heappush = heapq.heappush
        heappop = heapq.heappop
        block_size = BLOCK_SIZE
        latencies = result.walk_latencies
        total_cycles = 0
        makespan = 0
        buckets: dict[int, list[int]] = {0: sorted(c for _, c in heap)}
        bget = buckets.get
        times: list[int] = [0]
        while times:
            t = heappop(times)
            bucket = buckets.pop(t)
            if len(bucket) > 1:
                bucket.sort()
            for ctx in bucket:
                now = t
                queue = queues[ctx]
                qi = walk_idx[ctx]
                accesses = queue[qi].accesses
                na = len(accesses)
                ai = access_idx[ctx]
                while True:
                    if ai < na:
                        access = accesses[ai]
                        kind = access.kind
                        if kind == "dram":
                            nbytes = access.nbytes
                            if nbytes <= block_size:
                                now = dram_access(
                                    access.address, now, write=access.write
                                )
                            else:
                                address = access.address
                                write = access.write
                                for offset in range(0, nbytes, block_size):
                                    now = dram_access(
                                        address + offset, now, write=write
                                    )
                        elif kind == "sram" and access.port >= 0:
                            now = xbar_access(access.port, now, access.cycles)
                        elif kind == "dram_prefetch":
                            nbytes = access.nbytes
                            if nbytes <= block_size:
                                dram_access(access.address, now)
                            else:
                                address = access.address
                                for offset in range(0, nbytes, block_size):
                                    dram_access(address + offset, now)
                        else:
                            now += access.cycles
                        ai += 1
                        if now != t:
                            # Re-file at the new cycle; intermediate
                            # cycles (other contexts' events) drain first,
                            # which is exactly when the heap would switch.
                            access_idx[ctx] = ai
                            walk_idx[ctx] = qi
                            other = bget(now)
                            if other is None:
                                buckets[now] = [ctx]
                                heappush(times, now)
                            else:
                                other.append(ctx)
                            break
                    else:
                        # Walk complete; the context continues at the
                        # same cycle (matching the heap loops).
                        latency = now - walk_start[ctx]
                        total_cycles += latency
                        if record_latencies:
                            latencies.append(latency)
                        if now > makespan:
                            makespan = now
                        qi += 1
                        walk_start[ctx] = now
                        if qi < len(queue):
                            ai = 0
                            accesses = queue[qi].accesses
                            na = len(accesses)
                        else:
                            walk_idx[ctx] = qi
                            break
        result.total_walk_cycles = total_cycles
        result.makespan = makespan
        return result

    def run_batch(self, batch, record_latencies: bool = False) -> EngineResult:
        """Time a columnar access stream (``repro.sim.batch.TraceBatch``).

        The batch pipeline's twin of :meth:`run` for untraced, fault-free
        runs: walk boundaries come from ``batch.offsets`` instead of
        WalkTrace objects, block -> (bank, row) decomposition and crossbar
        port hashing are vectorized up front (``DRAM.decompose``), and
        scheduling uses the calendar queue of :meth:`_run_bucket`. Every
        number written to ``self.dram.stats`` / ``self.xbar`` and the
        returned EngineResult is byte-identical to the scalar path on the
        equivalent WalkTrace list.
        """
        offsets = batch.offsets
        nw = len(offsets) - 1
        result = EngineResult(num_walks=nw)
        if nw == 0:
            return result
        kinds = batch.kinds
        kinds_arr, a1, a2 = batch.arrays()
        is_mem = kinds_arr <= K_PREFETCH
        banks_arr, rows_arr = self.dram.decompose(a1)
        ports = self.xbar.params.ports
        # Per-entry operands, pre-decomposed: p1 = bank / port / cycles,
        # p2 = row / service cycles (numpy scalars are slow to index from
        # the loop, so both drop to plain python lists).
        p1_arr = np.where(
            is_mem, banks_arr,
            np.where(kinds_arr == K_SRAM, a1 % ports, a1),
        )
        p2_arr = np.where(is_mem, rows_arr, a2)
        # Latency-only entries touch no shared state (no bank, no port),
        # so any that are not the last entry of their walk fold into a
        # *pre-delay* on the following entry. The delay is applied when
        # the context is re-filed — the successor still executes at its
        # original cycle, in its original calendar bucket, so every
        # DRAM/crossbar access keeps its exact global order and the
        # result stays byte-identical. Trailing latency entries remain
        # real events (they define the walk's completion time).
        off_arr = np.asarray(offsets, dtype=np.int64)
        is_last = np.zeros(len(kinds_arr), dtype=bool)
        is_last[off_arr[1:] - 1] = True
        movable = (kinds_arr == K_LATENCY) & ~is_last
        if movable.any():
            vals = np.where(movable, a1, 0)
            ecs = np.concatenate(([0], np.cumsum(vals)))
            keep = ~movable
            kept_idx = np.nonzero(keep)[0]
            pre = np.diff(ecs[kept_idx], prepend=0).tolist()
            keep_cum = np.concatenate(([0], np.cumsum(keep)))
            offsets = keep_cum[off_arr].tolist()
            events = list(zip(
                kinds_arr[keep].tolist(),
                p1_arr[keep].tolist(),
                p2_arr[keep].tolist(),
            ))
        else:
            pre = [0] * len(kinds_arr)
            events = list(zip(kinds, p1_arr.tolist(), p2_arr.tolist()))

        dram = self.dram
        t_access = dram._t_access
        t_row_hit = dram._t_row_hit
        t_occupancy = dram._t_occupancy
        e_access = dram._e_access
        e_row_hit = dram._e_row_hit
        bank_free = dram._bank_free
        open_row = dram._open_row
        port_free = self.xbar._port_free
        x_occupancy = self.xbar.params.t_occupancy
        heappush = heapq.heappush
        heappop = heapq.heappop
        latencies = result.walk_latencies

        contexts = self.contexts
        active = list(range(min(contexts, nw)))
        walk_id = list(range(contexts))
        ai_l = [0] * contexts
        end_l = [0] * contexts
        start_l = [0] * contexts
        buckets: dict[int, list[int]] = {}
        bget = buckets.get
        times: list[int] = []
        for c in active:
            ai = offsets[c]
            end = offsets[c + 1]
            ai_l[c] = ai
            end_l[c] = end
            # A folded leading latency schedules the context's first real
            # event at its original cycle (walk start time stays 0).
            s = pre[ai] if ai < end else 0
            other = buckets.get(s)
            if other is None:
                buckets[s] = [c]
                heapq.heappush(times, s)
            else:
                other.append(c)
        energy = 0.0
        row_hits = 0
        row_misses = 0
        xbar_wait = 0
        total_cycles = 0
        makespan = 0
        while times:
            t = heappop(times)
            bucket = buckets.pop(t)
            if len(bucket) > 1:
                bucket.sort()
            for ctx in bucket:
                now = t
                ai = ai_l[ctx]
                end = end_l[ctx]
                while True:
                    if ai < end:
                        k, x, y = events[ai]
                        if k == 0:  # dram (stalls the walker)
                            s = bank_free[x]
                            if s < now:
                                s = now
                            if open_row[x] == y:
                                now = s + t_row_hit
                                energy += e_row_hit
                                row_hits += 1
                            else:
                                now = s + t_access
                                energy += e_access
                                row_misses += 1
                                open_row[x] = y
                            bank_free[x] = s + t_occupancy
                        elif k == 3:  # latency only (compute / local sram)
                            now += x
                        elif k == 2:  # sram via crossbar
                            s = port_free[x]
                            if s < now:
                                s = now
                            else:
                                xbar_wait += s - now
                            port_free[x] = s + x_occupancy
                            now = s + y
                        else:  # dram prefetch: occupancy, no walker stall
                            s = bank_free[x]
                            if s < now:
                                s = now
                            if open_row[x] == y:
                                energy += e_row_hit
                                row_hits += 1
                            else:
                                energy += e_access
                                row_misses += 1
                                open_row[x] = y
                            bank_free[x] = s + t_occupancy
                        ai += 1
                        if ai < end:
                            now += pre[ai]
                        if now != t:
                            ai_l[ctx] = ai
                            other = bget(now)
                            if other is None:
                                buckets[now] = [ctx]
                                heappush(times, now)
                            else:
                                other.append(ctx)
                            break
                    else:
                        latency = now - start_l[ctx]
                        total_cycles += latency
                        if record_latencies:
                            latencies.append(latency)
                        if now > makespan:
                            makespan = now
                        w = walk_id[ctx] + contexts
                        if w < nw:
                            walk_id[ctx] = w
                            start_l[ctx] = now
                            ai = offsets[w]
                            end = offsets[w + 1]
                            end_l[ctx] = end
                            if ai < end:
                                now += pre[ai]
                                if now != t:
                                    ai_l[ctx] = ai
                                    other = bget(now)
                                    if other is None:
                                        buckets[now] = [ctx]
                                        heappush(times, now)
                                    else:
                                        other.append(ctx)
                                    break
                        else:
                            break

        stats = dram.stats
        mem_count = int(is_mem.sum())
        writes = int(((kinds_arr == K_DRAM) & (a2 != 0)).sum())
        stats.reads += mem_count - writes
        stats.writes += writes
        stats.bytes_moved += BLOCK_SIZE * mem_count
        stats.energy_fj += energy
        stats.row_hits += row_hits
        stats.row_misses += row_misses
        if dram._block_shift is not None:
            blocks = a1[is_mem] >> dram._block_shift
        else:
            blocks = a1[is_mem] // BLOCK_SIZE
        stats.touched_blocks.update(blocks.tolist())
        self.xbar.requests += int((kinds_arr == K_SRAM).sum())
        self.xbar.total_wait += xbar_wait
        result.total_walk_cycles = total_cycles
        result.makespan = makespan
        return result

    def run_functional(
        self, traces: list[WalkTrace], record_latencies: bool = False
    ) -> EngineResult:
        """Untimed pass: nominal latencies, full traffic/energy accounting.

        Cheap mode for miss-rate / working-set experiments that do not need
        bank contention. Each walk's latency is the serial sum of nominal
        access latencies; the makespan assumes perfect context overlap.
        """
        result = EngineResult(num_walks=len(traces))
        p = self.params.dram
        busy = 0
        for trace in traces:
            latency = 0
            for access in trace.accesses:
                if access.kind == "dram":
                    blocks = max(1, -(-access.nbytes // BLOCK_SIZE))
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        self.dram.access(access.address + offset, 0, write=access.write)
                    latency += p.t_access * blocks
                elif access.kind == "dram_prefetch":
                    for offset in range(0, max(access.nbytes, 1), BLOCK_SIZE):
                        self.dram.access(access.address + offset, 0)
                else:
                    latency += access.cycles
            result.total_walk_cycles += latency
            if record_latencies:
                result.walk_latencies.append(latency)
            busy += latency
        result.makespan = max(1, busy // self.contexts)
        return result
