"""Crossbar (NoC) model between compute tiles and the shared cache.

"We use non-coherent crossbars in Gem5 to connect the DSA's components to
the scratchpad and IX-cache" (Section 5). The crossbar matters because the
organizations load it very differently: an address cache is probed once
per touched block of every level, while the IX-cache is probed once per
walk ("queried on an average every 108 cycles") — so port contention
amplifies METAL's single-probe advantage under many concurrent walkers.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.params import CrossbarParams


class Crossbar:
    """Port-arbitrated crossbar with per-port occupancy timing."""

    def __init__(self, params: CrossbarParams | None = None) -> None:
        self.params = params or CrossbarParams()
        if self.params.ports <= 0:
            raise ValueError("crossbar needs at least one port")
        self._port_free = [0] * self.params.ports
        self.requests = 0
        self.total_wait = 0
        self.tracer = NULL_TRACER
        #: Optional FaultInjector (repro.faults). None on fault-free runs.
        self.faults = None

    def attach_obs(self, tracer, registry=None, prefix: str = "xbar") -> None:
        """Wire tracing and bind crossbar statistics into a registry."""
        self.tracer = tracer
        if registry is not None:
            registry.bind(f"{prefix}.requests", lambda: self.requests)
            registry.bind(f"{prefix}.total_wait", lambda: self.total_wait)

    def port_of(self, token: int) -> int:
        """Requests hash to ports by a token (cache bank / key block)."""
        return token % self.params.ports

    def access(self, token: int, now: int, service_cycles: int) -> int:
        """Arbitrate one probe; return its completion cycle."""
        port = self.port_of(token)
        start = max(now, self._port_free[port])
        if self.faults is not None:
            # A congestion burst delays service start: the slip is counted
            # as arbitration wait, so it lands in xbar_stall attribution.
            start += self.faults.noc_burst()
        self._port_free[port] = start + self.params.t_occupancy
        self.requests += 1
        self.total_wait += start - now
        if start > now and self.tracer.enabled:
            self.tracer.emit(
                "xbar_stall", ts=now, phase="engine",
                port=port, wait=start - now,
            )
        return start + service_cycles

    @property
    def average_wait(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_wait / self.requests

    def reset_timing(self) -> None:
        self._port_free = [0] * self.params.ports
