"""Walk-span reconstruction and cycle attribution over the event stream.

The tracer gives raw events; this module turns them into *answers*: for
every walk, where did its cycles go? The engine's timing is a serial
chain per walk, so the walk's measured latency decomposes exactly into
six components:

* ``probe``      — SRAM probe service cycles (IX-cache tag match,
  address-cache probes, FA CAM match, hierarchy hits).
* ``xbar_stall`` — cycles queued on a crossbar port before the probe
  was serviced.
* ``dram_queue`` — cycles queued on a busy DRAM bank before the access
  started (bank occupancy is the bandwidth ceiling).
* ``dram_hit``   — row-buffer-hit service cycles.
* ``dram_miss``  — row-buffer-miss service cycles (activate + read).
* ``compute``    — in-node search plus application compute.

Reconstruction folds ``walk_start``/``walk_end`` pairs into
:class:`WalkSpan` records; the probe/compute components ride on
``walk_end`` (accumulated by the engine as it advances the walk), while
the DRAM and crossbar components come from the walk-attributed
``dram_access``/``xbar_stall`` events. :func:`reconcile` checks the
exact-reconciliation invariant — per-walk attribution sums equal the
walk's measured latency, and summed spans equal the ``RunResult``
aggregates, cycle for cycle — so the profiler can be trusted as a
measurement instrument, not an estimate.

Span reconstruction needs the *complete* event stream: a ring buffer
that dropped events cannot reconcile (``strict=True`` raises; the CLI
suggests a bigger ``--buffer``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.histogram import Histogram
from repro.obs.tracer import Tracer

#: Attribution categories, in display order. Sums to walk latency.
ATTRIBUTION_CATEGORIES = (
    "probe", "xbar_stall", "dram_queue", "dram_hit", "dram_miss", "compute",
)

#: Human labels for the report tables.
CATEGORY_LABELS = {
    "probe": "cache probe / tag match",
    "xbar_stall": "crossbar stall",
    "dram_queue": "DRAM bank queueing",
    "dram_hit": "DRAM row-buffer hit",
    "dram_miss": "DRAM row-buffer miss",
    "compute": "search + compute",
    # Extra category present only on fault-injected runs (repro.faults):
    # walker retry backoff cycles. Fault-free profiles never carry it, so
    # their attribution tables stay byte-identical.
    "fault_retry": "fault retry backoff",
}


@dataclass(slots=True)
class WalkSpan:
    """One walk's reconstructed lifetime on the engine timeline."""

    walk: int
    ctx: int
    start: int
    end: int
    latency: int
    attribution: dict[str, int] = field(default_factory=dict)

    @property
    def attributed(self) -> int:
        return sum(self.attribution.values())

    @property
    def unattributed(self) -> int:
        """Cycles the components do not explain (must be 0)."""
        return self.latency - self.attributed


@dataclass
class Profile:
    """Aggregated view of one traced run's walk spans."""

    spans: list[WalkSpan]
    totals: dict[str, int]
    makespan: int
    dropped: int = 0

    @property
    def num_walks(self) -> int:
        return len(self.spans)

    @property
    def total_walk_cycles(self) -> int:
        return sum(span.latency for span in self.spans)

    @property
    def total_attributed(self) -> int:
        return sum(self.totals.values())

    def categories(self) -> tuple[str, ...]:
        """The six fixed categories plus any extras this run carries.

        Extras (``fault_retry`` on fault-injected runs) are appended in
        sorted order; fault-free runs report exactly the fixed tuple.
        """
        extras = sorted(set(self.totals) - set(ATTRIBUTION_CATEGORIES))
        return ATTRIBUTION_CATEGORIES + tuple(extras)

    def fractions(self) -> dict[str, float]:
        """Per-category share of total walk cycles."""
        categories = self.categories()
        denom = self.total_walk_cycles
        if denom == 0:
            return {category: 0.0 for category in categories}
        return {
            category: self.totals.get(category, 0) / denom
            for category in categories
        }

    def latency_histogram(self, significant_bits: int = 5) -> Histogram:
        return Histogram.from_values(
            (span.latency for span in self.spans), significant_bits
        )

    def to_dict(self) -> dict:
        hist = self.latency_histogram()
        return {
            "num_walks": self.num_walks,
            "makespan": self.makespan,
            "total_walk_cycles": self.total_walk_cycles,
            "attribution": {c: self.totals.get(c, 0)
                            for c in self.categories()},
            "fractions": self.fractions(),
            "latency": hist.to_dict(),
        }


def build_profile(tracer: Tracer, strict: bool = True) -> Profile:
    """Fold the event stream into per-walk spans with attribution.

    ``strict`` refuses a tracer whose ring buffer dropped events — the
    spans would silently miss components and fail reconciliation.
    """
    if strict and tracer.dropped:
        raise ValueError(
            f"trace buffer dropped {tracer.dropped} events; profile needs "
            f"the complete stream (raise the tracer capacity)"
        )
    starts: dict[int, tuple[int, int]] = {}
    spans: dict[int, WalkSpan] = {}
    dram: dict[int, dict[str, int]] = {}
    for event in tracer:
        if event.phase != "engine":
            continue
        kind = event.kind
        if kind == "walk_start":
            starts[event.walk] = (event.ts, event.args.get("ctx", 0))
        elif kind == "walk_end":
            ts, ctx = starts.get(event.walk, (None, event.args.get("ctx", 0)))
            latency = event.args.get("latency", 0)
            span = WalkSpan(
                walk=event.walk,
                ctx=event.args.get("ctx", ctx),
                start=event.ts - latency if ts is None else ts,
                end=event.ts,
                latency=latency,
            )
            span.attribution = {
                "probe": event.args.get("probe", 0),
                "xbar_stall": 0,
                "dram_queue": 0,
                "dram_hit": 0,
                "dram_miss": 0,
                "compute": event.args.get("compute", 0),
            }
            if "retry" in event.args:
                # Fault-injected runs only: walker retry backoff cycles
                # (the re-fetch DRAM cycles ride on dram_access events).
                span.attribution["fault_retry"] = event.args["retry"]
            spans[event.walk] = span
        elif kind == "dram_access" and event.walk >= 0:
            # Demand access issued by a walk (prefetches carry walk=-1:
            # they consume bandwidth but never stall the walker).
            bucket = dram.setdefault(
                event.walk, {"dram_queue": 0, "dram_hit": 0, "dram_miss": 0}
            )
            bucket["dram_queue"] += event.args.get("wait", 0)
            if event.args.get("row_hit"):
                bucket["dram_hit"] += event.args.get("latency", 0)
            else:
                bucket["dram_miss"] += event.args.get("latency", 0)
        elif kind == "xbar_stall" and event.walk >= 0:
            bucket = dram.setdefault(
                event.walk, {"dram_queue": 0, "dram_hit": 0, "dram_miss": 0}
            )
            bucket["xbar_stall"] = (
                bucket.get("xbar_stall", 0) + event.args.get("wait", 0)
            )
    for walk, components in dram.items():
        span = spans.get(walk)
        if span is None:
            continue
        for category, cycles in components.items():
            span.attribution[category] += cycles
    ordered = [spans[walk] for walk in sorted(spans)]
    totals = {category: 0 for category in ATTRIBUTION_CATEGORIES}
    makespan = 0
    for span in ordered:
        makespan = max(makespan, span.end)
        for category, cycles in span.attribution.items():
            totals[category] = totals.get(category, 0) + cycles
    return Profile(spans=ordered, totals=totals, makespan=makespan,
                   dropped=tracer.dropped)


def reconcile(profile: Profile, result) -> list[str]:
    """Exact-reconciliation check against ``RunResult`` aggregates.

    Returns a list of human-readable discrepancies; empty means the
    profile accounts for every cycle the simulator measured.
    """
    problems: list[str] = []
    if profile.num_walks != result.num_walks:
        problems.append(
            f"span count {profile.num_walks} != num_walks {result.num_walks}"
        )
    total = profile.total_walk_cycles
    if total != result.total_walk_cycles:
        problems.append(
            f"summed span latencies {total} != total_walk_cycles "
            f"{result.total_walk_cycles}"
        )
    if profile.makespan != result.makespan:
        problems.append(
            f"last span end {profile.makespan} != makespan {result.makespan}"
        )
    if profile.total_attributed != total:
        problems.append(
            f"attributed cycles {profile.total_attributed} != summed span "
            f"latencies {total}"
        )
    bad = [span for span in profile.spans if span.unattributed != 0]
    if bad:
        worst = max(bad, key=lambda s: abs(s.unattributed))
        problems.append(
            f"{len(bad)} walks with unattributed cycles (worst: walk "
            f"{worst.walk} off by {worst.unattributed})"
        )
    return problems


def format_profile(profile: Profile, title: str | None = None) -> str:
    """Attribution table + latency percentiles, ready to print."""
    from repro.bench.format import render_table

    fractions = profile.fractions()
    rows = [
        [CATEGORY_LABELS.get(c, c), profile.totals.get(c, 0),
         f"{fractions[c] * 100:.1f}%"]
        for c in profile.categories()
    ]
    rows.append(["total", profile.total_walk_cycles, "100.0%"])
    lines = [render_table(
        ["component", "cycles", "share"],
        rows,
        title or "Cycle attribution (per-walk critical path)",
    )]
    hist = profile.latency_histogram()
    if hist.count:
        lines.append("")
        lines.append(render_table(
            ["metric", "cycles"],
            [["p50", hist.percentile(50)], ["p90", hist.percentile(90)],
             ["p99", hist.percentile(99)], ["max", hist.max],
             ["mean", round(hist.mean, 1)]],
            "Walk latency distribution",
        ))
    return "\n".join(lines)
