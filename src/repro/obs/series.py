"""Time-series sampling over the event stream (the data behind Figs. 21-22).

The simulator runs in two time domains (see ``docs/simulation.md``):
cache state evolves during trace *generation* (walk-ordinal time), the
engine then times the traces (cycle time). Both get a sampler:

* :func:`gen_series` — every ``walk_interval`` walks: IX-cache resident
  entries (reconstructed as non-coalesced insertions minus evictions, so
  it works offline on any exported trace), insertion/eviction churn,
  probe hit rate, and short-circuit rate in the window.
* :func:`engine_series` — every ``cycle_interval`` cycles: DRAM access
  and row-hit counts, bytes moved, achieved bandwidth (bytes/cycle),
  average bank queue wait, an occupancy-law estimate of bank queue depth
  (waiting cycles / window), and crossbar stalls.

The serving layer (:mod:`repro.serve`) gets the same treatment in wall
time: :func:`request_series` bins ``(completion, latency)`` pairs into
the classic throughput/latency-over-time view, and
:func:`serve_windows` folds a request span log
(:mod:`repro.obs.spans`) into per-window throughput, exact p50/p99,
occupancy-law queue depths, and per-tile utilization.

Both produce a :class:`Series` — a named column table with deterministic
CSV and JSON export, consumed by ``python -m repro profile`` and CI
artifacts. Reconstruction is pure: it reads only the tracer's buffered
events, so a dropped-event warning from the ring buffer applies here
too (the leading window may be incomplete).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracer import Tracer
from repro.params import BLOCK_SIZE


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


@dataclass
class Series:
    """A named, column-ordered sample table with CSV/JSON export."""

    name: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def to_csv(self) -> str:
        lines = [",".join(self.columns)]
        lines.extend(",".join(_fmt_cell(cell) for cell in row)
                     for row in self.rows)
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_csv())

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def gen_series(
    tracer: Tracer,
    walk_interval: int = 64,
    num_walks: int | None = None,
) -> Series:
    """Generation-phase samples: cache state vs. walk ordinal.

    ``ix_resident`` integrates non-coalesced ``ix_insert`` events minus
    ``ix_evict`` events, which equals the IX-cache's live entry count at
    every point of the run (verified against ``len(cache)`` by the
    trace-anchored tests). Rates are per-window, not cumulative. The
    ``walk`` column is the last walk ordinal covered by the window.
    """
    if walk_interval <= 0:
        raise ValueError("walk_interval must be positive")
    if num_walks is None:
        num_walks = max((e.walk for e in tracer if e.walk >= 0), default=-1) + 1
    _EMPTY = {"inserts": 0, "evicts": 0, "probes": 0, "hits": 0, "short": 0}
    windows: dict[int, dict[str, int]] = {}
    for event in tracer:
        if event.phase != "gen" or event.walk < 0:
            continue
        row = windows.setdefault(event.walk // walk_interval, dict(_EMPTY))
        kind = event.kind
        if kind == "ix_insert" and not event.args.get("coalesced"):
            row["inserts"] += 1
        elif kind == "ix_evict":
            row["evicts"] += 1
        elif kind == "ix_probe":
            row["probes"] += 1
            if event.args.get("hit"):
                row["hits"] += 1
        elif kind == "ix_short_circuit":
            row["short"] += 1
    series = Series("gen", [
        "walk", "ix_resident", "ix_inserts", "ix_evictions",
        "probes", "hits", "hit_rate", "short_circuits", "short_circuit_rate",
    ])
    n_windows = max(-(-num_walks // walk_interval),
                    max(windows, default=-1) + 1)
    resident = 0
    for w in range(n_windows):
        row = windows.get(w, _EMPTY)
        resident += row["inserts"] - row["evicts"]
        walks = max(1, min(walk_interval, num_walks - w * walk_interval))
        probes = row["probes"]
        series.rows.append([
            min((w + 1) * walk_interval, max(num_walks, 1)) - 1,
            resident, row["inserts"], row["evicts"],
            probes, row["hits"],
            row["hits"] / probes if probes else 0.0,
            row["short"],
            row["short"] / walks,
        ])
    return series


def engine_series(
    tracer: Tracer,
    cycle_interval: int | None = None,
    makespan: int | None = None,
    buckets: int = 100,
) -> Series:
    """Engine-phase samples: memory-system pressure vs. cycle time.

    When ``cycle_interval`` is None it is derived from the observed (or
    given) makespan so the series has about ``buckets`` rows.
    ``bank_queue_depth`` is the occupancy-law estimate: total cycles
    requests spent queued on busy banks in the window, divided by the
    window length (average number of requests waiting).
    """
    events = [e for e in tracer
              if e.phase == "engine" and e.kind in ("dram_access", "xbar_stall")]
    if makespan is None:
        makespan = max((e.ts for e in events), default=0)
    if cycle_interval is None:
        cycle_interval = max(1, makespan // max(1, buckets))
    if cycle_interval <= 0:
        raise ValueError("cycle_interval must be positive")
    binned: dict[int, dict[str, int]] = {}
    for event in events:
        row = binned.setdefault(event.ts // cycle_interval, {
            "accesses": 0, "row_hits": 0, "queue_wait": 0,
            "xbar_stalls": 0, "xbar_wait": 0,
        })
        if event.kind == "dram_access":
            row["accesses"] += 1
            if event.args.get("row_hit"):
                row["row_hits"] += 1
            row["queue_wait"] += event.args.get("wait", 0)
        else:
            row["xbar_stalls"] += 1
            row["xbar_wait"] += event.args.get("wait", 0)
    series = Series("engine", [
        "cycle", "dram_accesses", "row_hits", "row_misses", "bytes",
        "bandwidth_bytes_per_cycle", "avg_queue_wait", "bank_queue_depth",
        "xbar_stalls", "xbar_wait",
    ])
    for bucket in sorted(binned):
        row = binned[bucket]
        accesses = row["accesses"]
        nbytes = accesses * BLOCK_SIZE
        series.rows.append([
            bucket * cycle_interval,
            accesses,
            row["row_hits"],
            accesses - row["row_hits"],
            nbytes,
            nbytes / cycle_interval,
            row["queue_wait"] / accesses if accesses else 0.0,
            row["queue_wait"] / cycle_interval,
            row["xbar_stalls"],
            row["xbar_wait"],
        ])
    return series


def _exact_percentile(sorted_values: list[int], p: float) -> int:
    """Ceil-rank percentile over a sorted sample (no bucketization)."""
    if not sorted_values:
        return 0
    rank = max(1, -(-len(sorted_values) * round(p * 100) // 10_000))
    return sorted_values[rank - 1]


def _overlap_into(acc: list[int], start: int, end: int, width: int) -> None:
    """Add ``[start, end)``'s per-window overlap (ns) into ``acc``."""
    if end <= start:
        return
    first = start // width
    last = min((end - 1) // width, len(acc) - 1)
    for w in range(first, last + 1):
        lo = max(start, w * width)
        hi = min(end, (w + 1) * width)
        if hi > lo:
            acc[w] += hi - lo


def serve_windows(log, windows: int = 20, tiles: int | None = None,
                  makespan: int | None = None) -> Series:
    """Windowed serving metrics from a request span log.

    ``log`` is a :class:`repro.obs.spans.SpanLog`. The horizon up to the
    last completion (or the given ``makespan``) splits into ``windows``
    equal windows; each row reports, for the requests *completing* in
    the window: throughput (completions/s), exact p50/p99 end-to-end
    latency, occupancy-law queue-depth estimates for the balancer and
    the tiles (waiting ns inside the window / window width — the
    average number of requests queued), mean tile utilization from the
    exact overlap of service intervals with the window, and per-tile
    utilization columns. Pure and deterministic.
    """
    from repro.obs.spans import LB_QUEUE, SERVICE, TILE_QUEUE

    if windows <= 0:
        raise ValueError("windows must be positive")
    n_tiles = tiles if tiles is not None else (
        max((span.tile for span in log), default=-1) + 1)
    columns = ["t_end", "completions", "throughput_rps", "p50_ns", "p99_ns",
               "lb_queue_depth", "tile_queue_depth", "util"]
    columns += [f"util_tile{i}" for i in range(n_tiles)]
    series = Series("serve_windows", columns)
    if not len(log):
        return series
    horizon = makespan if makespan is not None else log.makespan()
    width = max(1, -(-horizon // windows))  # ceil division
    latencies: list[list[int]] = [[] for _ in range(windows)]
    lb_wait = [0] * windows
    tile_wait = [0] * windows
    busy = [[0] * windows for _ in range(n_tiles)]
    for span in log:
        done = span.end
        bucket = min((done - 1) // width, windows - 1) if done > 0 else 0
        latencies[bucket].append(span.latency)
        _overlap_into(lb_wait, *span.hop_interval(LB_QUEUE), width)
        _overlap_into(tile_wait, *span.hop_interval(TILE_QUEUE), width)
        _overlap_into(busy[span.tile], *span.hop_interval(SERVICE), width)
    for w in range(windows):
        lats = sorted(latencies[w])
        utils = [busy[i][w] / width for i in range(n_tiles)]
        series.rows.append([
            (w + 1) * width,
            len(lats),
            len(lats) / (width / 1e9),
            _exact_percentile(lats, 50),
            _exact_percentile(lats, 99),
            lb_wait[w] / width,
            tile_wait[w] / width,
            sum(utils) / n_tiles if n_tiles else 0.0,
            *utils,
        ])
    return series


def request_series(
    completions: list[tuple[int, int]],
    windows: int = 50,
) -> Series:
    """Completion-time samples for an online run (the serving layer).

    ``completions`` is ``(completion_time, latency)`` per request, any
    time unit. The horizon up to the last completion is split into
    ``windows`` equal windows; each row reports the window end, the
    completions inside it, and the mean/max latency of those
    completions — the classic throughput/latency-over-time view of a
    load test. Pure and deterministic: rows depend only on the inputs.
    """
    if windows <= 0:
        raise ValueError("windows must be positive")
    series = Series("request_series", [
        "t_end", "completions", "mean_latency", "max_latency",
    ])
    if not completions:
        return series
    horizon = max(t for t, _ in completions)
    width = max(1, -(-horizon // windows))  # ceil division
    binned: dict[int, list[int]] = {}
    for t_done, latency in completions:
        binned.setdefault(min((t_done - 1) // width, windows - 1)
                          if t_done > 0 else 0, []).append(latency)
    for bucket in range(windows):
        lats = binned.get(bucket)
        series.rows.append([
            (bucket + 1) * width,
            len(lats) if lats else 0,
            sum(lats) / len(lats) if lats else 0.0,
            max(lats) if lats else 0,
        ])
    return series
