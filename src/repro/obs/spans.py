"""Request-level span trees for the serving layer (distributed tracing).

The serving simulator (:mod:`repro.serve.engine`) times every request
through a fixed chain of stations; when ``ServeSpec.trace`` is set it
records one :class:`RequestSpan` per request — the span tree of that
request's life, flattened to the chain of hops the feed-forward topology
guarantees:

    client_net -> lb_queue -> lb_service -> lb_net -> tile_queue
               -> service -> response_net

Hops are stored as durations; boundaries are cumulative from the
request's generation time, so the spans are contiguous by construction
and the *recorded* end-to-end latency is kept separately — the
reconciliation invariant (``sum(hops) == latency`` for every request,
checked by :meth:`SpanLog.validate`) is therefore a real cross-check of
the engine's accounting, not a tautology.

``service`` spans carry the backend walk ordinal they replay
(``walk >= 0`` for ``backend="sim"``), linking a serving-side span to
the sim-side walk span the profiler (:mod:`repro.obs.profile`)
reconstructs for the same walk — the cycle-level attribution of the
nanosecond-level service hop.

On top of the log sit the analyses: :func:`tail_attribution` decomposes
the slowest-percentile requests into per-hop components (reconciling
exactly with their end-to-end latencies), and
:func:`reconcile_spans` checks the log against a ``ServeResult``'s
aggregate histograms and per-tile accounting, mirroring the sim-side
``obs.profile.reconcile`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Hop names in chain order. Every request's latency decomposes exactly
#: into these seven components.
HOPS: tuple[str, ...] = (
    "client_net", "lb_queue", "lb_service", "lb_net",
    "tile_queue", "service", "response_net",
)

#: Human labels for the attribution tables.
HOP_LABELS = {
    "client_net": "client -> balancer hop",
    "lb_queue": "balancer queueing",
    "lb_service": "balancer dispatch",
    "lb_net": "balancer -> tile hop",
    "tile_queue": "tile queueing",
    "service": "tile service (walk)",
    "response_net": "tile -> client hop",
}

#: Hop indices used by the windowed series / exporters.
LB_QUEUE = HOPS.index("lb_queue")
TILE_QUEUE = HOPS.index("tile_queue")
SERVICE = HOPS.index("service")
RESPONSE_NET = HOPS.index("response_net")


@dataclass(slots=True)
class RequestSpan:
    """One request's span tree, flattened to its hop chain."""

    #: Arrival ordinal in the merged population stream (dispatch order).
    rid: int
    user: int
    tile: int
    #: Backend walk ordinal the service hop replays (-1 for fixed backend).
    walk: int
    #: Generation (arrival) time in ns — the root span's start.
    start: int
    #: Recorded end-to-end latency in ns (independent of the hops).
    latency: int
    #: Hop durations in :data:`HOPS` order.
    hops: tuple[int, ...]

    @property
    def end(self) -> int:
        return self.start + self.latency

    @property
    def attributed(self) -> int:
        return sum(self.hops)

    @property
    def unattributed(self) -> int:
        """Nanoseconds the hops do not explain (must be 0)."""
        return self.latency - self.attributed

    def spans(self) -> Iterator[tuple[str, int, int]]:
        """``(hop_name, start_ns, end_ns)`` children, contiguous."""
        t = self.start
        for name, dur in zip(HOPS, self.hops):
            yield name, t, t + dur
            t += dur

    def hop_interval(self, index: int) -> tuple[int, int]:
        """Absolute ``(start, end)`` of the ``index``-th hop."""
        t = self.start + sum(self.hops[:index])
        return t, t + self.hops[index]

    def to_row(self) -> list[int]:
        return [self.rid, self.user, self.tile, self.walk,
                self.start, self.latency, *self.hops]

    @classmethod
    def from_row(cls, row: list[int]) -> "RequestSpan":
        return cls(rid=int(row[0]), user=int(row[1]), tile=int(row[2]),
                   walk=int(row[3]), start=int(row[4]), latency=int(row[5]),
                   hops=tuple(int(v) for v in row[6:]))


@dataclass
class SpanLog:
    """Every traced request of one serving run, in dispatch order."""

    requests: list[RequestSpan] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[RequestSpan]:
        return iter(self.requests)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly compact form (one row of ints per request)."""
        return {"hops": list(HOPS),
                "requests": [span.to_row() for span in self.requests]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanLog":
        if list(data.get("hops", [])) != list(HOPS):
            raise ValueError(
                f"span log hop schema {data.get('hops')!r} != {list(HOPS)}")
        return cls(requests=[RequestSpan.from_row(row)
                             for row in data["requests"]])

    def completions(self) -> list[tuple[int, int]]:
        """``(completion_time, latency)`` pairs, completion-sorted —
        the :func:`repro.obs.series.request_series` input."""
        return sorted((span.end, span.latency) for span in self.requests)

    def makespan(self) -> int:
        return max((span.end for span in self.requests), default=0)

    def latencies(self) -> list[int]:
        return [span.latency for span in self.requests]

    def validate(self) -> list[str]:
        """Per-request invariants; empty means the log reconciles.

        Every request's hop durations must be non-negative and sum
        exactly to its recorded end-to-end latency, and rids must be the
        dispatch order 0..n-1.
        """
        problems: list[str] = []
        for i, span in enumerate(self.requests):
            if span.rid != i:
                problems.append(f"request {i}: rid {span.rid} out of order")
            if len(span.hops) != len(HOPS):
                problems.append(
                    f"request {span.rid}: {len(span.hops)} hops, "
                    f"want {len(HOPS)}")
                continue
            if any(d < 0 for d in span.hops):
                problems.append(f"request {span.rid}: negative hop duration")
            if span.unattributed != 0:
                problems.append(
                    f"request {span.rid}: hops sum to {span.attributed}ns "
                    f"but latency is {span.latency}ns "
                    f"({span.unattributed}ns unattributed)")
        return problems


def reconcile_spans(log: SpanLog, result: Any) -> list[str]:
    """Check a span log against its ``ServeResult`` aggregates.

    The histograms' ``total`` fields are exact sums (bucketization only
    quantizes percentiles), so the log must match them to the
    nanosecond: end-to-end latencies vs ``latency``, balancer waits vs
    ``lb_wait``, tile waits vs ``tile_wait``, service times vs
    ``service``, plus per-tile request counts and busy time. Returns
    human-readable problems; empty means exact reconciliation.
    """
    problems = log.validate()
    if len(log) != result.offered:
        problems.append(
            f"span log has {len(log)} requests, result offered "
            f"{result.offered}")
    checks = (
        ("latency", result.latency, lambda s: s.latency),
        ("lb_wait", result.lb_wait, lambda s: s.hops[LB_QUEUE]),
        ("tile_wait", result.tile_wait, lambda s: s.hops[TILE_QUEUE]),
        ("service", result.service, lambda s: s.hops[SERVICE]),
    )
    for name, hist, get in checks:
        total = sum(get(span) for span in log)
        if total != hist.total:
            problems.append(
                f"{name}: span sum {total}ns != histogram total "
                f"{hist.total}ns")
    by_tile_count: dict[int, int] = {}
    by_tile_busy: dict[int, int] = {}
    for span in log:
        by_tile_count[span.tile] = by_tile_count.get(span.tile, 0) + 1
        by_tile_busy[span.tile] = (
            by_tile_busy.get(span.tile, 0) + span.hops[SERVICE])
    for tile in result.tiles:
        if by_tile_count.get(tile.tile, 0) != tile.requests:
            problems.append(
                f"tile {tile.tile}: {by_tile_count.get(tile.tile, 0)} "
                f"spans != {tile.requests} recorded requests")
        if by_tile_busy.get(tile.tile, 0) != tile.busy_ns:
            problems.append(
                f"tile {tile.tile}: span service sum "
                f"{by_tile_busy.get(tile.tile, 0)}ns != busy "
                f"{tile.busy_ns}ns")
    return problems


@dataclass
class TailAttribution:
    """Per-hop decomposition of the slowest-percentile requests."""

    percentile: float
    #: Exact latency at the percentile (the slow-set cutoff, inclusive).
    threshold_ns: int
    #: Requests with latency >= threshold.
    count: int
    #: Their end-to-end nanoseconds, summed.
    total_ns: int
    #: Hop name -> summed nanoseconds over the slow set.
    totals: dict[str, int] = field(default_factory=dict)

    def shares(self) -> dict[str, float]:
        if not self.total_ns:
            return {name: 0.0 for name in HOPS}
        return {name: self.totals.get(name, 0) / self.total_ns
                for name in HOPS}

    @property
    def attributed(self) -> int:
        return sum(self.totals.values())

    @property
    def unattributed(self) -> int:
        """Must be 0: the decomposition covers every slow nanosecond."""
        return self.total_ns - self.attributed


def tail_attribution(log: SpanLog, percentile: float = 99.0
                     ) -> TailAttribution:
    """Decompose the slowest ``100 - percentile`` % of requests by hop.

    The cutoff is the *exact* latency quantile over the log (ceil rank,
    matching :meth:`repro.obs.histogram.Histogram.percentile` semantics
    but without bucketization); the slow set is every request at or
    above it, so it is never empty on a non-empty log.
    """
    if not 0 <= percentile <= 100:
        raise ValueError("percentile must be in [0, 100]")
    if not log.requests:
        return TailAttribution(percentile, 0, 0, 0, {n: 0 for n in HOPS})
    latencies = sorted(span.latency for span in log)
    rank = max(1, -(-len(latencies) * round(percentile * 100) // 10_000))
    threshold = latencies[rank - 1]
    totals = {name: 0 for name in HOPS}
    count = 0
    total_ns = 0
    for span in log:
        if span.latency < threshold:
            continue
        count += 1
        total_ns += span.latency
        for name, dur in zip(HOPS, span.hops):
            totals[name] += dur
    return TailAttribution(percentile, threshold, count, total_ns, totals)


def format_tail_attribution(tail: TailAttribution,
                            title: str | None = None) -> str:
    """Tail-decomposition table, ready to print."""
    from repro.bench.format import render_table

    shares = tail.shares()
    rows = [
        [HOP_LABELS.get(name, name),
         tail.totals.get(name, 0),
         round(tail.totals.get(name, 0) / max(1, tail.count) / 1e3, 2),
         f"{shares[name] * 100:.1f}%"]
        for name in HOPS
    ]
    rows.append(["total", tail.total_ns,
                 round(tail.total_ns / max(1, tail.count) / 1e3, 2),
                 "100.0%"])
    return render_table(
        ["hop", "ns", "mean us/req", "share"],
        rows,
        title or (f"p{tail.percentile:g} tail attribution "
                  f"({tail.count} requests >= {tail.threshold_ns}ns)"),
    )
