"""Hierarchical counter/timer registry.

Components register their statistics under dotted names (``dram.reads``,
``cache.metal.hits``, ``events.dram_access``); a :meth:`Registry.snapshot`
resolves everything into one flat, deterministically ordered dict that
``RunResult`` carries and the exporters embed.

Three kinds of entries:

* **counters** — integers owned by the registry (:class:`CounterHandle`);
  cheap ``add()`` in hot paths.
* **bindings** — zero-arg callables sampled lazily at snapshot time.
  Components bind views over stats objects they already maintain
  (``registry.bind("dram.reads", lambda: stats.reads)``) so registration
  adds no per-access cost.
* **timers** — wall-clock accumulators (:class:`TimerHandle`) for host-side
  phases. Excluded from snapshots by default because they are not
  deterministic across runs; pass ``timers=True`` to include them.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from typing import Any


class CounterHandle:
    """A registry-owned integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterHandle({self.name}={self.value})"


class TimerHandle:
    """Accumulates wall-clock nanoseconds across ``with`` blocks."""

    __slots__ = ("name", "total_ns", "count", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_ns = 0
        self.count = 0
        self._started = 0

    def __enter__(self) -> "TimerHandle":
        self._started = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.total_ns += time.perf_counter_ns() - self._started
        self.count += 1


class Registry:
    """Flat-name registry with dotted-path hierarchy conventions."""

    def __init__(self) -> None:
        self._counters: dict[str, CounterHandle] = {}
        self._bindings: dict[str, Callable[[], int | float]] = {}
        self._values: dict[str, int | float] = {}
        self._timers: dict[str, TimerHandle] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> CounterHandle:
        """Create-or-get an owned counter."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = CounterHandle(name)
        return handle

    def timer(self, name: str) -> TimerHandle:
        """Create-or-get a wall-clock timer (context manager)."""
        handle = self._timers.get(name)
        if handle is None:
            handle = self._timers[name] = TimerHandle(name)
        return handle

    def bind(self, name: str, fn: Callable[[], int | float]) -> None:
        """Register a lazily sampled source (resolved at snapshot time)."""
        self._bindings[name] = fn

    def bind_stats(self, prefix: str, stats: Any, fields: Iterable[str]) -> None:
        """Bind attributes of an existing stats object under ``prefix``."""
        for field_name in fields:
            self.bind(
                f"{prefix}.{field_name}",
                (lambda s=stats, f=field_name: getattr(s, f)),
            )

    def set(self, name: str, value: int | float) -> None:
        """Record a point-in-time gauge (e.g. post-run aggregates)."""
        self._values[name] = value

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def snapshot(self, timers: bool = False) -> dict[str, int | float]:
        """Flat name -> value view, sorted by name for determinism."""
        out: dict[str, int | float] = {}
        for name, handle in self._counters.items():
            out[name] = handle.value
        for name, fn in self._bindings.items():
            out[name] = fn()
        out.update(self._values)
        if timers:
            for name, handle in self._timers.items():
                out[f"{name}.total_ns"] = handle.total_ns
                out[f"{name}.count"] = handle.count
        return dict(sorted(out.items()))

    def subtree(self, prefix: str, timers: bool = False) -> dict[str, int | float]:
        """Entries under ``prefix.`` with the prefix stripped."""
        dotted = prefix.rstrip(".") + "."
        return {
            name[len(dotted):]: value
            for name, value in self.snapshot(timers=timers).items()
            if name.startswith(dotted)
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._bindings) + len(self._values)
