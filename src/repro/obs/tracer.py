"""Structured event tracer with a bounded ring buffer.

The tracer records typed :class:`TraceEvent` records from the simulator's
hot paths: walk start/end, IX-cache probe/hit/short-circuit/evict, DRAM
row-buffer hit/miss, crossbar stalls, descriptor decisions. Components
hold a tracer reference that defaults to :data:`NULL_TRACER`; every emit
site is guarded by ``tracer.enabled`` so the untraced path costs one
attribute read and a branch — no allocation, no dict building.

Events live in two time domains (``phase``):

* ``gen``    — trace-generation order: cache state evolves while memory
  systems turn walks into access traces. ``ts`` is the walk ordinal.
* ``engine`` — event-engine time: ``ts`` is the DSA cycle the event
  started at.

The buffer is a ``deque(maxlen=capacity)``: old events are dropped (and
counted in ``dropped``) rather than growing without bound. Per-kind event
*counts* are exact regardless of drops, so counters always reconcile with
``RunResult``/``DRAMStats`` aggregates even on long runs.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One typed event. ``args`` holds kind-specific fields."""

    kind: str
    ts: int
    phase: str = "gen"
    #: Walk ordinal the event belongs to; -1 when not walk-scoped.
    walk: int = -1
    args: dict = field(default_factory=dict)


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent` plus per-kind counts."""

    enabled = True

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events evicted from the ring buffer (buffer full).
        self.dropped = 0
        #: Exact per-kind event counts (immune to ring-buffer drops).
        self.counts: Counter[str] = Counter()
        #: Current walk ordinal; set by the run orchestrator so emit sites
        #: do not need to thread a walk id through every call.
        self.walk = -1

    def emit(self, kind: str, ts: int = 0, phase: str = "gen",
             walk: int | None = None, **args) -> None:
        """Record one event. ``walk=None`` inherits the current walk."""
        self.counts[kind] += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(
            kind, ts, phase, self.walk if walk is None else walk, args
        ))

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Buffered events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.counts.clear()
        self.dropped = 0
        self.walk = -1


class NullTracer:
    """Do-nothing tracer: the default wired into every component.

    ``enabled`` is False so hot paths skip argument evaluation entirely
    (``if tracer.enabled: tracer.emit(...)``); ``emit`` is still a no-op
    for call sites that do not guard.
    """

    enabled = False
    walk = -1
    dropped = 0

    def emit(self, kind: str, ts: int = 0, phase: str = "gen",
             walk: int | None = None, **args) -> None:
        return None

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        return []

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def __len__(self) -> int:
        return 0


#: Shared singleton; components compare against / default to this.
NULL_TRACER = NullTracer()
