"""Streaming log-bucketed histogram (HDR-style) for cycle-valued metrics.

The simulator needs tail latencies (Fig. 17 reports *average* walk
latency, but regressions hide in the p99) without keeping every sample:
a run at scale 1.0 times hundreds of thousands of walks. The classic
answer is HdrHistogram's two-level bucketing: values below
``2 * 2^significant_bits`` get exact unit buckets; above that, each
power-of-two range is split into ``2^significant_bits`` sub-buckets, so
any recorded value is represented by its bucket's upper bound with
relative error at most ``2^-significant_bits``.

Recording is allocation-free once the bucket array has grown to cover
the largest observed value (the array tops out at a couple of thousand
ints for 64-bit values), so a histogram can sit on the untraced path of
the engine without perturbing the zero-overhead guarantee.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class Histogram:
    """Fixed-relative-error histogram over non-negative integers."""

    __slots__ = ("significant_bits", "_sub_count", "_unit_limit",
                 "_counts", "count", "total", "min", "max")

    def __init__(self, significant_bits: int = 5) -> None:
        if not 0 <= significant_bits <= 16:
            raise ValueError("significant_bits must be in [0, 16]")
        self.significant_bits = significant_bits
        self._sub_count = 1 << significant_bits
        #: Values below this are stored in exact unit-width buckets.
        self._unit_limit = 2 * self._sub_count
        self._counts: list[int] = []
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    @classmethod
    def from_values(cls, values: Iterable[int],
                    significant_bits: int = 5) -> "Histogram":
        hist = cls(significant_bits)
        for value in values:
            hist.record(value)
        return hist

    # ------------------------------------------------------------------ #
    # Bucket geometry
    # ------------------------------------------------------------------ #

    @property
    def max_relative_error(self) -> float:
        """Upper bound on (bucket_bound - value) / value for any value."""
        return 2.0 ** -self.significant_bits

    def bucket_index(self, value: int) -> int:
        if value < self._unit_limit:
            return value
        exp = value.bit_length() - 1 - self.significant_bits
        return ((exp + 1) << self.significant_bits) + ((value >> exp) - self._sub_count)

    def bucket_bound(self, index: int) -> int:
        """Inclusive upper bound of bucket ``index`` (its representative)."""
        if index < self._unit_limit:
            return index
        exp = (index >> self.significant_bits) - 1
        sub = index & (self._sub_count - 1)
        return ((self._sub_count + sub + 1) << exp) - 1

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, value: int, count: int = 1) -> None:
        value = int(value)
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        index = self.bucket_index(value)
        counts = self._counts
        if index >= len(counts):
            counts.extend([0] * (index + 1 - len(counts)))
        counts[index] += count
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += count
        self.total += value * count

    def merge(self, other: "Histogram") -> None:
        if other.significant_bits != self.significant_bits:
            raise ValueError("cannot merge histograms of different precision")
        if other.count == 0:
            return
        if len(other._counts) > len(self._counts):
            self._counts.extend([0] * (len(other._counts) - len(self._counts)))
        for index, n in enumerate(other._counts):
            if n:
                self._counts[index] += n
        if self.count == 0 or other.min < self.min:
            self.min = other.min
        self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, p: float) -> int:
        """Value at percentile ``p`` (0..100), within the error bound.

        Reported as the containing bucket's upper bound, clamped to the
        exact recorded maximum so ``percentile(100) == max``.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0
        rank = max(1, -(-self.count * p // 100))  # ceil without floats
        cumulative = 0
        for index, n in enumerate(self._counts):
            if not n:
                continue
            cumulative += n
            if cumulative >= rank:
                return min(self.bucket_bound(index), self.max)
        return self.max

    def percentiles(self, ps: Iterable[float]) -> dict[str, int]:
        return {f"p{p:g}": self.percentile(p) for p in ps}

    def count_at_or_below(self, value: int) -> int:
        """Recorded values known to be ``<= value`` (SLO attainment).

        Counts every bucket whose upper bound is at or below ``value``:
        exact in the unit-bucket range, a conservative undercount by at
        most one bucket's population (relative width
        ``max_relative_error``) above it. Deterministic, so attainment
        numbers derived from it are reproducible bit for bit.
        """
        if self.count == 0 or value < self.min:
            return 0
        if value >= self.max:
            return self.count
        index = self.bucket_index(value)
        if self.bucket_bound(index) > value:
            index -= 1
        return sum(self._counts[:min(index + 1, len(self._counts))])

    def buckets(self) -> Iterator[tuple[int, int]]:
        """Non-empty ``(upper_bound, cumulative_count)`` pairs, ascending."""
        cumulative = 0
        for index, n in enumerate(self._counts):
            if not n:
                continue
            cumulative += n
            yield self.bucket_bound(index), cumulative

    def to_dict(self) -> dict[str, int | float]:
        """Compact JSON-friendly summary used by RunResult/exporters."""
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def state(self) -> dict:
        """Exact internal state, losslessly invertible by :meth:`from_state`.

        ``total`` must be stored explicitly: bucketization quantizes values,
        so it cannot be recomputed from the counts. Counts are sparse
        ``[index, n]`` pairs — most buckets of a latency histogram are empty.
        """
        return {
            "sb": self.significant_bits,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "counts": [[i, n] for i, n in enumerate(self._counts) if n],
        }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`state` output (JSON round-trip safe)."""
        hist = cls(int(state["sb"]))
        pairs = [(int(i), int(n)) for i, n in state["counts"]]
        if pairs:
            hist._counts = [0] * (max(i for i, _ in pairs) + 1)
            for i, n in pairs:
                hist._counts[i] = n
        hist.count = int(state["count"])
        hist.total = int(state["total"])
        hist.min = int(state["min"])
        hist.max = int(state["max"])
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Histogram(count={self.count}, min={self.min}, "
                f"max={self.max}, mean={self.mean:.1f})")
