"""repro.obs — simulator observability: counters, tracing, exporters.

Zero-overhead-when-disabled: every instrumented component defaults to
:data:`NULL_TRACER` and guards emit sites with ``tracer.enabled``. Enable
tracing by constructing :class:`SimParams` with ``trace=True`` (or passing
a :class:`Tracer` to ``simulate``); export with :mod:`repro.obs.export` or
``python -m repro trace <workload>``.
"""

from repro.obs.export import (
    event_to_dict,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import CounterHandle, Registry, TimerHandle
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "CounterHandle",
    "NULL_TRACER",
    "NullTracer",
    "Registry",
    "TimerHandle",
    "TraceEvent",
    "Tracer",
    "event_to_dict",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
