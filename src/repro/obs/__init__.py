"""repro.obs — simulator observability: counters, tracing, analysis.

Zero-overhead-when-disabled: every instrumented component defaults to
:data:`NULL_TRACER` and guards emit sites with ``tracer.enabled``. Enable
tracing by constructing :class:`SimParams` with ``trace=True`` (or passing
a :class:`Tracer` to ``simulate``); export with :mod:`repro.obs.export` or
``python -m repro trace <workload>``.

On top of the raw stream sits the analysis layer:

* :mod:`repro.obs.profile`   — walk-span reconstruction and exact cycle
  attribution (``python -m repro profile``).
* :mod:`repro.obs.histogram` — streaming log-bucketed latency/depth
  percentiles with bounded relative error.
* :mod:`repro.obs.series`    — gen- and engine-time sampling (IX-cache
  occupancy, short-circuit rate, DRAM bandwidth, bank queueing) with
  CSV export, plus the serving layer's windowed request metrics.
* :mod:`repro.obs.spans`     — request-level span trees for the serving
  layer (``ServeSpec.trace``), with exact per-hop tail attribution and
  reconciliation against ServeResult aggregates.
"""

from repro.obs.export import (
    event_to_dict,
    serve_openmetrics,
    serve_trace_to_chrome,
    to_chrome_trace,
    to_jsonl,
    to_openmetrics,
    write_chrome_trace,
    write_jsonl,
    write_openmetrics,
    write_serve_trace,
)
from repro.obs.histogram import Histogram
from repro.obs.profile import (
    ATTRIBUTION_CATEGORIES,
    Profile,
    WalkSpan,
    build_profile,
    format_profile,
    reconcile,
)
from repro.obs.registry import CounterHandle, Registry, TimerHandle
from repro.obs.series import (
    Series,
    engine_series,
    gen_series,
    request_series,
    serve_windows,
)
from repro.obs.spans import (
    HOPS,
    RequestSpan,
    SpanLog,
    TailAttribution,
    format_tail_attribution,
    reconcile_spans,
    tail_attribution,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "CounterHandle",
    "HOPS",
    "Histogram",
    "NULL_TRACER",
    "NullTracer",
    "Profile",
    "Registry",
    "RequestSpan",
    "Series",
    "SpanLog",
    "TailAttribution",
    "TimerHandle",
    "TraceEvent",
    "Tracer",
    "WalkSpan",
    "build_profile",
    "engine_series",
    "event_to_dict",
    "format_profile",
    "format_tail_attribution",
    "gen_series",
    "reconcile",
    "reconcile_spans",
    "request_series",
    "serve_openmetrics",
    "serve_trace_to_chrome",
    "serve_windows",
    "tail_attribution",
    "to_chrome_trace",
    "to_jsonl",
    "to_openmetrics",
    "write_chrome_trace",
    "write_jsonl",
    "write_openmetrics",
    "write_serve_trace",
]
