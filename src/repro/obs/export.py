"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, and OpenMetrics.

JSONL is the machine-diffable format the regression tests anchor on: one
event per line, keys sorted, so two deterministic runs produce
byte-identical files. The Chrome format opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* engine-phase walks become B/E duration slices (one track per walker
  context),
* DRAM accesses become complete (``X``) slices on per-bank tracks, named
  ``row_hit``/``row_miss``,
* crossbar stalls become ``X`` slices on per-port tracks,
* generation-phase cache events (IX probe/hit/short-circuit/evict,
  descriptor decisions, ...) become instant events on a "walkgen" track
  whose timeline is the walk ordinal,
* the counter snapshot rides along under ``otherData``.

The OpenMetrics text exposition (:func:`to_openmetrics`) renders a
counter snapshot plus any :class:`~repro.obs.histogram.Histogram`
objects in the format Prometheus-family scrapers ingest, so two runs'
metrics can be joined or diffed with standard tooling.

The serving layer gets both formats too: :func:`serve_trace_to_chrome`
turns a request span log (:mod:`repro.obs.spans`) into a Perfetto trace
with one track per user/balancer/tile, and :func:`serve_openmetrics`
renders a ``ServeResult`` — scalar gauges, the four latency histograms,
and per-tile load gauges with ``{tile="N"}`` labels.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.histogram import Histogram
from repro.obs.tracer import TraceEvent, Tracer

#: pid assignments for the Chrome export (one "process" per subsystem).
_PID_WALKGEN = 0
_PID_ENGINE = 1
_PID_DRAM = 2
_PID_XBAR = 3

_PROCESS_NAMES = {
    _PID_WALKGEN: "walkgen (trace generation, ts = walk ordinal)",
    _PID_ENGINE: "engine (walker contexts, ts = cycle)",
    _PID_DRAM: "dram (banks, ts = cycle)",
    _PID_XBAR: "crossbar (ports, ts = cycle)",
}


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """Flat JSON-friendly view of one event (kind-specific args inlined)."""
    out: dict[str, Any] = {
        "kind": event.kind,
        "phase": event.phase,
        "ts": event.ts,
        "walk": event.walk,
    }
    out.update(event.args)
    return out


def to_jsonl(tracer: Tracer) -> str:
    """One sorted-key JSON object per line; byte-stable across reruns."""
    return "".join(
        json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":")) + "\n"
        for event in tracer
    )


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as f:
        f.write(to_jsonl(tracer))


def _chrome_event(event: TraceEvent) -> dict[str, Any]:
    """Map one TraceEvent to a Chrome trace_event record."""
    args = dict(event.args)
    if event.walk >= 0:
        args["walk"] = event.walk
    if event.kind in ("walk_start", "walk_end"):
        return {
            "name": "walk",
            "ph": "B" if event.kind == "walk_start" else "E",
            "ts": event.ts,
            "pid": _PID_ENGINE,
            "tid": args.pop("ctx", 0),
            "args": args,
        }
    if event.kind == "dram_access":
        return {
            "name": "row_hit" if args.get("row_hit") else "row_miss",
            "ph": "X",
            "ts": event.ts,
            "dur": args.pop("latency", 1),
            "pid": _PID_DRAM,
            "tid": args.pop("bank", 0),
            "args": args,
        }
    if event.kind == "xbar_stall":
        return {
            "name": "stall",
            "ph": "X",
            "ts": event.ts,
            "dur": args.pop("wait", 1),
            "pid": _PID_XBAR,
            "tid": args.pop("port", 0),
            "args": args,
        }
    return {
        "name": event.kind,
        "ph": "i",
        "s": "t",  # thread-scoped instant
        "ts": event.ts,
        "pid": _PID_WALKGEN,
        "tid": 0,
        "args": args,
    }


def to_chrome_trace(
    tracer: Tracer, counters: dict[str, int | float] | None = None
) -> dict[str, Any]:
    """Chrome ``trace_event`` JSON object (load in Perfetto as-is)."""
    records: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }
        for pid, name in _PROCESS_NAMES.items()
    ]
    open_walks: dict[int, int] = {}  # ctx -> balance, to keep B/E paired
    for event in tracer:
        record = _chrome_event(event)
        if record["ph"] == "B":
            open_walks[record["tid"]] = open_walks.get(record["tid"], 0) + 1
        elif record["ph"] == "E":
            if open_walks.get(record["tid"], 0) <= 0:
                continue  # E without a buffered B (ring dropped it): skip
            open_walks[record["tid"]] -= 1
        records.append(record)
    # Close any walk left open by a truncated buffer so viewers don't
    # render an unbounded slice.
    last_ts = max((e.ts for e in tracer if e.phase == "engine"), default=0)
    for tid, balance in sorted(open_walks.items()):
        for _ in range(balance):
            records.append({
                "name": "walk", "ph": "E", "ts": last_ts,
                "pid": _PID_ENGINE, "tid": tid, "args": {"truncated": True},
            })
    payload: dict[str, Any] = {
        "traceEvents": records,
        "displayTimeUnit": "ns",
        "otherData": {"dropped_events": tracer.dropped},
    }
    if counters is not None:
        payload["otherData"]["counters"] = dict(sorted(counters.items()))
    return payload


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    counters: dict[str, int | float] | None = None,
) -> None:
    with open(path, "w") as f:
        json.dump(to_chrome_trace(tracer, counters), f, sort_keys=True)


# --------------------------------------------------------------------- #
# Serving-layer span traces (repro.obs.spans -> Perfetto)
# --------------------------------------------------------------------- #

#: pid assignments for the serve trace (one "process" per station type).
_PID_SERVE_USERS = 0
_PID_SERVE_LB = 1
_PID_SERVE_TILES = 2

_SERVE_PROCESS_NAMES = {
    _PID_SERVE_USERS: "requests (one track per user, ts = ns)",
    _PID_SERVE_LB: "load balancer (ts = ns)",
    _PID_SERVE_TILES: "tiles (one track per tile, ts = ns)",
}


def serve_trace_to_chrome(log, meta: dict[str, Any] | None = None
                          ) -> dict[str, Any]:
    """Chrome ``trace_event`` JSON for a request span log (Perfetto).

    Three processes: per-user request slices (the root span of each
    request's tree, hop durations in ``args``), the balancer's dispatch
    busy periods on one track, and per-tile tracks with one ``service``
    slice per request (``walk`` links the slice to the sim-side walk
    span the profiler attributes). Balancer and tile slices never
    overlap on their track — the stations are FIFO servers — so the
    trace renders as clean busy/idle timelines.
    """
    from repro.obs.spans import HOPS, RESPONSE_NET, SERVICE, TILE_QUEUE

    lb_service_hop = HOPS.index("lb_service")
    records: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": name}}
        for pid, name in _SERVE_PROCESS_NAMES.items()
    ]
    for span in log:
        hop_args = dict(zip(HOPS, span.hops))
        records.append({
            "name": "request", "ph": "X", "ts": span.start,
            "dur": span.latency, "pid": _PID_SERVE_USERS, "tid": span.user,
            "args": {"rid": span.rid, "tile": span.tile,
                     "walk": span.walk, **hop_args},
        })
        lb_start, lb_end = span.hop_interval(lb_service_hop)
        if lb_end > lb_start:
            records.append({
                "name": "dispatch", "ph": "X", "ts": lb_start,
                "dur": lb_end - lb_start, "pid": _PID_SERVE_LB, "tid": 0,
                "args": {"rid": span.rid, "tile": span.tile},
            })
        svc_start, svc_end = span.hop_interval(SERVICE)
        records.append({
            "name": "service", "ph": "X", "ts": svc_start,
            "dur": svc_end - svc_start, "pid": _PID_SERVE_TILES,
            "tid": span.tile,
            "args": {"rid": span.rid, "walk": span.walk,
                     "tile_queue_ns": span.hops[TILE_QUEUE],
                     "response_net_ns": span.hops[RESPONSE_NET]},
        })
    payload: dict[str, Any] = {
        "traceEvents": records,
        "displayTimeUnit": "ns",
        "otherData": {"requests": len(log)},
    }
    if meta:
        payload["otherData"].update(dict(sorted(meta.items())))
    return payload


def write_serve_trace(log, path: str,
                      meta: dict[str, Any] | None = None) -> None:
    with open(path, "w") as f:
        json.dump(serve_trace_to_chrome(log, meta), f, sort_keys=True)


_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    """Sanitize a dotted counter name into an OpenMetrics metric name."""
    full = f"{prefix}_{name}" if prefix else name
    full = _METRIC_CHARS.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _metric_value(value: int | float) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_openmetrics(
    counters: dict[str, int | float] | None = None,
    histograms: dict[str, Histogram] | None = None,
    prefix: str = "repro",
    labeled: dict[str, list[tuple[dict[str, str], int | float]]] | None = None,
) -> str:
    """OpenMetrics text exposition of counters and histograms.

    Scalar snapshot values become gauges (they are point-in-time reads
    of a finished run, not monotonic process counters); histograms
    become native OpenMetrics histograms with cumulative ``le`` buckets
    over the non-empty log buckets plus ``+Inf``. ``labeled`` maps a
    metric name to ``(labels, value)`` samples — one gauge family with
    one sample per label set (the serving layer's per-tile load gauges).
    Output is sorted by metric name and terminated by ``# EOF`` per the
    spec.
    """
    lines: list[str] = []
    for name in sorted(counters or {}):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_metric_value((counters or {})[name])}")
    for name in sorted(labeled or {}):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in (labeled or {})[name]:
            rendered = ",".join(f'{key}="{labels[key]}"'
                                for key in sorted(labels))
            lines.append(f"{metric}{{{rendered}}} {_metric_value(value)}")
    for name in sorted(histograms or {}):
        hist = (histograms or {})[name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, cumulative in hist.buckets():
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_count {hist.count}")
        lines.append(f"{metric}_sum {hist.total}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: str,
    counters: dict[str, int | float] | None = None,
    histograms: dict[str, Histogram] | None = None,
    prefix: str = "repro",
    labeled: dict[str, list[tuple[dict[str, str], int | float]]] | None = None,
) -> None:
    with open(path, "w") as f:
        f.write(to_openmetrics(counters, histograms, prefix, labeled))


def serve_openmetrics(result, prefix: str = "repro_serve") -> str:
    """OpenMetrics rendering of a :class:`~repro.serve.engine.ServeResult`.

    Scalars (offered/completed, throughput, utilization, makespan)
    become gauges, the four latency histograms become native OpenMetrics
    histograms, and per-tile request counts / busy time / utilization
    become labeled gauge families (``{tile="0"}``), so a serving run can
    be scraped, joined, and diffed with the same tooling as the
    simulator's counter snapshots.
    """
    counters = {
        "load": result.load,
        "users": result.users,
        "offered_requests": result.offered,
        "completed_requests": result.completed,
        "makespan_ns": result.makespan_ns,
        "throughput_rps": result.throughput_rps,
        "utilization": result.utilization,
    }
    histograms = {
        "latency_ns": result.latency,
        "lb_wait_ns": result.lb_wait,
        "tile_wait_ns": result.tile_wait,
        "service_ns": result.service,
    }
    labeled: dict[str, list[tuple[dict[str, str], int | float]]] = {
        "tile_requests": [], "tile_busy_ns": [], "tile_utilization": [],
    }
    for tile in result.tiles:
        labels = {"tile": str(tile.tile)}
        labeled["tile_requests"].append((labels, tile.requests))
        labeled["tile_busy_ns"].append((labels, tile.busy_ns))
        labeled["tile_utilization"].append(
            (labels, tile.utilization(result.makespan_ns)))
    return to_openmetrics(counters, histograms, prefix, labeled)
