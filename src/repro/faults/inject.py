"""FaultInjector — deterministic replay of a FaultPlan, with accounting.

Every injection site owns an independent counted stream: decision ``n`` at
site ``s`` is a pure function of ``(plan.seed, s, n)`` through a
splitmix64-style mixer, so the schedule depends only on the plan and on
how many times each site has been visited — never on Python's hash seed,
on wall clock, on process layout, or on any other site's draws. Two runs
that visit the sites in the same order (the simulator is deterministic)
draw the same faults; tracing on/off shares one code path in the engine,
so it cannot reorder the visits.

The injector also owns the resilience ledger, :class:`FaultStats`: every
injected fault and every resilience action (retry, refetch, storm
eviction, degraded completion) is counted, so a run can prove that
``walks_completed + walks_degraded == num_walks`` — no request is ever
silently lost.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.faults.plan import FaultPlan

_M64 = (1 << 64) - 1
#: Injection-site identifiers (stable: part of the determinism contract).
SITE_DRAM_SPIKE = 1
SITE_BANK_STALL = 2
SITE_NOC_BURST = 3
SITE_WALKER_FAIL = 4
SITE_TAG_CORRUPT = 5
SITE_STORM = 6


def _mix(seed: int, site: int, n: int) -> float:
    """Uniform [0, 1) draw from (seed, site, counter) — splitmix64 finalizer."""
    x = (seed * 0x9E3779B97F4A7C15
         + site * 0xBF58476D1CE4E5B9
         + n * 0x94D049BB133111EB + 0xD6E8FEB86659FD93) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return (x >> 11) * (1.0 / (1 << 53))


@dataclass(slots=True)
class FaultStats:
    """Injection and resilience ledger for one run.

    ``*_injected`` count fault events that fired; the remaining fields
    count the resilience machinery's responses. ``walks_total`` /
    ``walks_completed`` are stamped by the orchestrator after the engine
    run so the no-lost-requests invariant is checkable from the serialized
    result alone.
    """

    dram_spikes_injected: int = 0
    bank_stalls_injected: int = 0
    noc_bursts_injected: int = 0
    walker_faults_injected: int = 0
    tag_corruptions_injected: int = 0
    storms_injected: int = 0
    #: Extra cycles injected directly (spikes + stalls + bursts + backoff).
    injected_stall_cycles: int = 0
    #: Walker-step retry attempts performed (each refetches the node).
    retries: int = 0
    #: Cycles spent waiting in retry backoff (profiler: ``fault_retry``).
    retry_backoff_cycles: int = 0
    #: Walker steps whose retry budget was exhausted (degraded fallback).
    retries_exhausted: int = 0
    #: Corrupted-tag recoveries: invalidate the entry, refetch via full walk.
    tag_refetches: int = 0
    #: IX-cache entries evicted by invalidation storms.
    storm_evictions: int = 0
    #: Walks that finished only through a degraded fallback.
    walks_degraded: int = 0
    #: Walks that finished cleanly (stamped post-run).
    walks_completed: int = 0
    #: Total walks issued (stamped post-run).
    walks_total: int = 0

    @property
    def faults_injected(self) -> int:
        return (self.dram_spikes_injected + self.bank_stalls_injected
                + self.noc_bursts_injected + self.walker_faults_injected
                + self.tag_corruptions_injected + self.storms_injected)

    def to_dict(self) -> dict[str, int]:
        """Deterministically ordered, JSON-round-trip-safe summary."""
        data = asdict(self)
        data["faults_injected"] = self.faults_injected
        return dict(sorted(data.items()))


class FaultInjector:
    """Replays one :class:`FaultPlan` through counted per-site streams."""

    __slots__ = ("plan", "stats", "_counters")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._counters = [0] * (SITE_STORM + 1)

    def _draw(self, site: int) -> float:
        n = self._counters[site]
        self._counters[site] = n + 1
        return _mix(self.plan.seed, site, n)

    # ------------------------------------------------------------------ #
    # Memory-system sites (timed paths)
    # ------------------------------------------------------------------ #

    def dram_spike(self) -> int:
        """Extra service latency for this DRAM access (0 = no fault)."""
        plan = self.plan
        if plan.dram_spike_rate and self._draw(SITE_DRAM_SPIKE) < plan.dram_spike_rate:
            self.stats.dram_spikes_injected += 1
            self.stats.injected_stall_cycles += plan.dram_spike_cycles
            return plan.dram_spike_cycles
        return 0

    def bank_stall(self) -> int:
        """Extra bank occupancy after this DRAM access (0 = no fault)."""
        plan = self.plan
        if plan.bank_stall_rate and self._draw(SITE_BANK_STALL) < plan.bank_stall_rate:
            self.stats.bank_stalls_injected += 1
            self.stats.injected_stall_cycles += plan.bank_stall_cycles
            return plan.bank_stall_cycles
        return 0

    def noc_burst(self) -> int:
        """Service-start slip for this crossbar probe (0 = no fault)."""
        plan = self.plan
        if plan.noc_burst_rate and self._draw(SITE_NOC_BURST) < plan.noc_burst_rate:
            self.stats.noc_bursts_injected += 1
            self.stats.injected_stall_cycles += plan.noc_burst_cycles
            return plan.noc_burst_cycles
        return 0

    def walker_failures(self) -> int:
        """Consecutive transient failures of one walker refill step.

        0 means the step succeeds first try. A positive count ``f`` means
        ``min(f, walker_retry_limit)`` retry attempts are performed; when
        ``f > walker_retry_limit`` the retry budget is exhausted and the
        walk must complete through the degraded fallback. The stream is
        consumed one draw per (attempted) failure, so the count is bounded
        by ``walker_retry_limit + 1`` draws per step.
        """
        plan = self.plan
        rate = plan.walker_fail_rate
        if not rate:
            return 0
        fails = 0
        limit = plan.walker_retry_limit
        while fails <= limit and self._draw(SITE_WALKER_FAIL) < rate:
            fails += 1
        if fails:
            self.stats.walker_faults_injected += 1
        return fails

    # ------------------------------------------------------------------ #
    # IX-cache sites (trace-generation path)
    # ------------------------------------------------------------------ #

    def tag_corrupted(self) -> bool:
        """Does this probe hit's range tag read corrupted?"""
        plan = self.plan
        if plan.tag_corrupt_rate and self._draw(SITE_TAG_CORRUPT) < plan.tag_corrupt_rate:
            self.stats.tag_corruptions_injected += 1
            return True
        return False

    def storm(self) -> bool:
        """Does an invalidation storm hit before this walk's probe?"""
        plan = self.plan
        if plan.storm_rate and self._draw(SITE_STORM) < plan.storm_rate:
            self.stats.storms_injected += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def attach_obs(self, registry) -> None:
        """Bind the ledger under ``faults.*`` (snapshot-time sampling)."""
        if registry is None:
            return
        stats = self.stats
        for name in sorted(stats.to_dict()):
            registry.bind(f"faults.{name}",
                          lambda s=stats, f=name: getattr(s, f))

    def finalize(self, num_walks: int) -> None:
        """Stamp the no-lost-requests accounting after the engine run."""
        self.stats.walks_total = num_walks
        self.stats.walks_completed = num_walks - self.stats.walks_degraded
