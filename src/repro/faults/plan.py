"""FaultPlan — a frozen, canonically-hashed fault schedule description.

A plan is pure data: JSON scalars only, serialized to the same canonical
form :class:`repro.exec.spec.RunSpec` uses, so faulted runs flow through
the exec layer's dedup and content-addressed result cache unchanged — a
faulted spec and its unfaulted twin can never collide, and two plans that
mean the same schedule always hash the same.

Rates are per-opportunity probabilities (one draw per injection site
visit); cycle fields are the penalty magnitudes. A plan whose every rate
is zero is *empty*: the simulator treats it exactly like ``faults=None``
(no injector is built, no branch beyond the construction-time check), so
``FaultPlan()`` is byte-identical to no plan by construction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields


@dataclass(frozen=True)
class FaultPlan:
    """Seeded schedule of injected adversity for one simulation.

    Fault taxonomy (see ``docs/robustness.md``):

    * **DRAM latency spikes** — a read/write completes ``dram_spike_cycles``
      late (thermal throttling, refresh collision).
    * **DRAM bank stalls** — a bank stays busy ``bank_stall_cycles`` extra
      after a request (rank-level refresh burst); queueing delay surfaces
      in later accesses' ``dram_queue`` attribution.
    * **NoC congestion bursts** — a crossbar port's service start slips by
      ``noc_burst_cycles`` (background traffic burst).
    * **Transient walker-context failures** — a walker's DRAM refill step
      returns garbage; the walker retries with exponential backoff
      (``walker_backoff_cycles << attempt``) up to ``walker_retry_limit``
      times, re-fetching the node each time. A step that exhausts its
      retries completes through a degraded full refetch and marks the walk
      degraded.
    * **IX-cache tag corruption** — a probe hit's range tag fails its
      integrity check; the entry is invalidated and the walk refetches via
      a full root-to-leaf walk (detect + invalidate-and-refetch fallback).
    * **Invalidation storms** — a span of ``storm_span_blocks`` key blocks
      around the probed key is invalidated wholesale (coherence storm /
      spurious structural-change signal), forcing re-misses.
    """

    seed: int = 0
    #: Per-access probability of a DRAM latency spike.
    dram_spike_rate: float = 0.0
    dram_spike_cycles: int = 400
    #: Per-access probability of an extended bank stall.
    bank_stall_rate: float = 0.0
    bank_stall_cycles: int = 200
    #: Per-probe probability of a crossbar congestion burst.
    noc_burst_rate: float = 0.0
    noc_burst_cycles: int = 32
    #: Per-refill probability that a walker step transiently fails.
    walker_fail_rate: float = 0.0
    walker_retry_limit: int = 3
    walker_backoff_cycles: int = 16
    #: Per-hit probability that the matched range tag reads corrupted.
    tag_corrupt_rate: float = 0.0
    #: Per-walk probability of an invalidation storm around the key.
    storm_rate: float = 0.0
    storm_span_blocks: int = 4

    _RATE_FIELDS = (
        "dram_spike_rate", "bank_stall_rate", "noc_burst_rate",
        "walker_fail_rate", "tag_corrupt_rate", "storm_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        for name in ("dram_spike_cycles", "bank_stall_cycles",
                     "noc_burst_cycles", "walker_backoff_cycles",
                     "walker_retry_limit", "storm_span_blocks"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "FaultPlan":
        """Every fault class at probability ``rate`` (storms at rate/4).

        The resilience-curve convention (``bench.chaos`` / ``repro chaos``):
        one knob sweeps the whole taxonomy, with the heavyweight storms
        scaled down so a 10% sweep degrades rather than wipes the cache.
        """
        kwargs = dict(
            seed=seed,
            dram_spike_rate=rate,
            bank_stall_rate=rate,
            noc_burst_rate=rate,
            walker_fail_rate=rate,
            tag_corrupt_rate=rate,
            storm_rate=rate / 4,
        )
        kwargs.update(overrides)
        return cls(**kwargs)

    @property
    def is_empty(self) -> bool:
        """True when no fault can ever fire (every rate is zero).

        An empty plan is contractually identical to ``faults=None``: the
        orchestrator skips injector construction entirely, so a rate-0
        plan can never perturb a run.
        """
        return all(getattr(self, name) == 0.0 for name in self._RATE_FIELDS)

    def to_dict(self) -> dict:
        return asdict(self)

    def items(self) -> tuple[tuple[str, int | float], ...]:
        """Sorted (field, value) pairs — the RunSpec-embeddable form."""
        return tuple(sorted(asdict(self).items()))

    def canonical(self) -> str:
        """Stable JSON text: same meaning => same bytes => same digest."""
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)},
            sort_keys=True, separators=(",", ":"),
        )

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for tables and logs."""
        if self.is_empty:
            return "no-faults"
        peak = max(getattr(self, name) for name in self._RATE_FIELDS)
        return f"faults@{peak:g}s{self.seed}"
