"""Deterministic fault injection and resilience accounting (``repro.faults``).

METAL's evaluation assumes a well-behaved memory system; this layer is the
robustness counterpart. A :class:`FaultPlan` is a frozen, canonically-hashed
description of a *seeded schedule* of adverse events — DRAM latency spikes
and bank stalls, NoC congestion bursts, transient walker-context failures,
and IX-cache range-tag corruption / invalidation storms. A
:class:`FaultInjector` replays that schedule deterministically through
hooks threaded into the engine, both memory models, and the DSA layer, and
accounts every resilience action (retries, refetches, degraded walks,
injected stall cycles) in :class:`FaultStats`.

Determinism contract:

* same plan (same seed, same rates) => bit-identical fault schedule =>
  byte-identical :class:`repro.sim.metrics.RunResult`;
* ``faults=None`` and an *empty* plan (every rate zero) are byte-identical
  to the pre-fault-layer simulator — the hooks cost one predictable branch;
* no request is ever lost: every injected fault is either retried to
  success or the walk completes through a degraded fallback and is counted
  (``walks_completed + walks_degraded == num_walks``).
"""

from repro.faults.inject import FaultInjector, FaultStats
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan", "FaultStats"]
