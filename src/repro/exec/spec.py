"""RunSpec — a frozen, canonically-hashable description of one simulation.

Every bench cell — one (workload, memory system) simulation with its
overrides — is described declaratively instead of via ad-hoc kwargs
plumbing. The spec serializes to a canonical JSON form whose SHA-256
digest keys the on-disk result cache and the per-spec deterministic
seeding, so two specs that mean the same run always hash the same
(kwargs are stored as sorted tuples regardless of construction order).

Only JSON scalars are allowed in override values: a spec must mean the
same bytes on every machine and Python version.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

Scalar = (type(None), bool, int, float, str)

KwargItems = tuple[tuple[str, Any], ...]


def _freeze_kwargs(value: Any, label: str) -> KwargItems:
    """Normalize a kwargs mapping (or item sequence) to sorted tuples."""
    if value is None:
        return ()
    items = value.items() if isinstance(value, dict) else value
    frozen = []
    for key, val in items:
        if not isinstance(key, str):
            raise TypeError(f"{label} keys must be strings, got {key!r}")
        if not isinstance(val, Scalar):
            raise TypeError(
                f"{label}[{key!r}] must be a JSON scalar, got {type(val).__name__}"
            )
        frozen.append((key, val))
    frozen.sort()
    return tuple(frozen)


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell, ready to hash, ship to a worker, and cache.

    ``op`` selects the worker routine: ``"run"`` is the standard
    build-workload/build-memsys/simulate cell; ``"dynamic_mix"`` is the
    mutating-index extension (bench.dynamic), where ``workload_kwargs``
    carries the mix parameters instead of builder arguments.
    """

    workload: str
    system: str
    scale: float = 0.25
    seed: int = 0
    op: str = "run"
    #: Explicit cache capacity; None = the workload's default.
    cache_bytes: int | None = None
    #: Multiplier on the (default or explicit) capacity (Fig. 15's 16x FA).
    cache_factor: int | None = None
    timed: bool = True
    record_latencies: bool = False
    #: Tile count override: SimParams come from config.scaled(tiles).
    tiles: int | None = None
    #: Walk-issue reorder policy (repro.sim.scheduler) applied to requests.
    schedule: str | None = None
    #: (offset, step): simulate requests[offset::step] (partition studies).
    requests_slice: tuple[int, int] | None = None
    #: Extra workload-builder kwargs (e.g. depth= for join).
    workload_kwargs: KwargItems = ()
    #: dataclasses.replace() overrides on the resolved SimParams.
    sim_kwargs: KwargItems = ()
    #: dataclasses.replace() overrides on the resolved CacheParams.
    cache_kwargs: KwargItems = ()
    #: build_memsys overrides (tune, batch_walks, coalesce, ...) plus the
    #: virtual ``batch_windows`` (batch_walks from a window count).
    memsys_kwargs: KwargItems = ()
    #: IX-cache replacement policy (repro.core.policy registry name). Only
    #: the METAL systems honor non-default values; the default keeps every
    #: digest-relevant byte identical to specs that predate the field.
    policy: str = "utility_rrip"
    #: Online admission-threshold tuner config (ThresholdTuner ctor kwargs
    #: as sorted items, same canonical form as the *_kwargs fields). ()
    #: means no tuner. Metal-only, like ``policy``.
    tuner: KwargItems = ()
    #: Replay an external walk trace (trace_io JSONL, ``.gz`` ok) instead
    #: of the workload's own request stream. The workload still builds —
    #: the trace re-binds to its indexes by name (index0, index1...).
    trace_path: str | None = None
    #: SHA-256 of the trace file. Required alongside ``trace_path``: the
    #: path alone can't key the result cache (same path, new bytes), so
    #: the digest pins the content and the worker verifies it at load.
    trace_sha256: str | None = None
    #: Fault-injection schedule: a repro.faults.FaultPlan stored as its
    #: sorted (field, value) items, the same canonical form as *_kwargs.
    #: () means fault-free; a faulted spec therefore hashes differently
    #: from its unfaulted twin by construction, while flowing through the
    #: dedup/cache machinery unchanged.
    faults: KwargItems = ()
    #: Worker-side artifacts to ship back beside the RunResult (e.g.
    #: "occupancy_by_level", "controller_history", "start_levels",
    #: "attribution", "index_heights"). Part of the hash: a cached payload
    #: must contain what the consumer asked for.
    collect: tuple[str, ...] = ()

    @classmethod
    def make(cls, workload: str, system: str, **kwargs: Any) -> "RunSpec":
        """Build a spec, normalizing mapping/sequence arguments.

        Accepts dicts for the ``*_kwargs`` fields and any sequence for
        ``requests_slice``/``collect``, so call sites stay readable while
        the stored form is canonical.
        """
        faults = kwargs.get("faults")
        if faults is not None and hasattr(faults, "items") \
                and not isinstance(faults, (dict, tuple, list)):
            # A FaultPlan instance: take its canonical sorted items.
            kwargs["faults"] = faults.items()
        for name in ("workload_kwargs", "sim_kwargs", "cache_kwargs",
                     "memsys_kwargs", "faults", "tuner"):
            if name in kwargs:
                kwargs[name] = _freeze_kwargs(kwargs[name], name)
        if kwargs.get("requests_slice") is not None:
            offset, step = kwargs["requests_slice"]
            kwargs["requests_slice"] = (int(offset), int(step))
        if kwargs.get("trace_path") is not None:
            kwargs["trace_path"] = str(kwargs["trace_path"])
            if not kwargs.get("trace_sha256"):
                raise ValueError(
                    "trace_path requires trace_sha256 (the cache is keyed "
                    "by content, not path); use exec.spec.trace_digest()"
                )
        if "collect" in kwargs:
            kwargs["collect"] = tuple(kwargs["collect"])
        return cls(workload=workload, system=system, **kwargs)

    def canonical(self) -> str:
        """Stable JSON text: same meaning => same bytes => same digest."""
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)},
            sort_keys=True, separators=(",", ":"),
        )

    def canonical_dict(self) -> dict[str, Any]:
        """The canonical form as plain JSON data (tuples become lists)."""
        return json.loads(self.canonical())

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def fault_plan(self):
        """The spec's FaultPlan, rebuilt from its stored items (or None)."""
        if not self.faults:
            return None
        from repro.faults import FaultPlan

        return FaultPlan(**dict(self.faults))

    def label(self) -> str:
        """Short human-readable tag for failure reports and logs."""
        return f"{self.workload}/{self.system}@{self.scale:g}s{self.seed}"


def trace_digest(path: str | Path) -> str:
    """SHA-256 of a trace file's bytes, for ``RunSpec.trace_sha256``."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """SHA-256 over every .py source of the repro package.

    Cached results are only valid for the code that produced them; any
    source edit — not just to the touched modules, simulation behaviour
    is cross-cutting — moves the store to a fresh namespace.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()
