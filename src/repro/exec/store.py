"""ResultStore — content-addressed on-disk cache of run payloads.

Layout::

    <root>/<code_version[:12]>/<digest[:2]>/<digest>.json

where ``digest`` is the RunSpec's canonical SHA-256. Each file stores the
spec's canonical form beside the payload, so a (vanishingly unlikely)
digest collision or a hand-edited file reads as a miss, never as wrong
data. Writes go through a temp file + :func:`os.replace`, so concurrent
report invocations sharing a store race benignly (last atomic write
wins; both wrote the same bytes).

Simulation results depend on the whole simulator, so the namespace is the
hash of every ``repro`` source file (:func:`repro.exec.spec.code_version`):
editing any module invalidates the store wholesale rather than guessing
at dependency structure. Stale version directories are garbage, reclaimed
by :meth:`ResultStore.prune_stale`.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any

from repro.exec.spec import RunSpec, code_version

#: Environment override for the default store root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default store root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class ResultStore:
    """Content-addressed payload cache keyed by RunSpec digest + code hash."""

    def __init__(self, root: str | Path | None = None,
                 version: str | None = None) -> None:
        self.root = Path(root if root is not None else default_cache_dir())
        self.version = version or code_version()

    def path_for(self, spec: RunSpec) -> Path:
        digest = spec.digest()
        return self.root / self.version[:12] / digest[:2] / f"{digest}.json"

    def get(self, spec: RunSpec) -> dict[str, Any] | None:
        """The stored payload, or None on miss/corruption/spec mismatch."""
        path = self.path_for(spec)
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("spec") != spec.canonical_dict():
            return None
        return data.get("payload")

    def put(self, spec: RunSpec, payload: dict[str, Any]) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump({"spec": spec.canonical_dict(), "payload": payload}, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def prune_stale(self) -> int:
        """Delete result directories of other code versions; count removed."""
        if not self.root.is_dir():
            return 0
        keep = self.version[:12]
        removed = 0
        for entry in self.root.iterdir():
            if entry.is_dir() and entry.name != keep:
                shutil.rmtree(entry, ignore_errors=True)
                removed += 1
        return removed
