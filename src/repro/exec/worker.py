"""Worker-side execution of one RunSpec.

This module is the only code that turns a spec back into live objects —
workload, memory system, simulation — and it runs identically in-process
(``jobs=1``) and inside a ``ProcessPoolExecutor`` worker. The returned
payload is always round-tripped through JSON before anyone reads it, so
the serial path, the parallel path, and the warm-cache path hand the
caller byte-identical data: parallelism and caching cannot change a
single reported number.

Workloads are built worker-side from the spec (registry name + scale +
seed + builder kwargs) and memoized per process with a small LRU;
:func:`seed_workload` lets a caller that already built a workload (the
report's Table-2 prebuilds, test fixtures) donate it to the in-process
memo. With a forked pool the memo is inherited copy-on-write.
"""

from __future__ import annotations

import json
import random
from collections import OrderedDict
from dataclasses import replace
from typing import Any

from repro.bench.runner import build_memsys, cache_params_for
from repro.exec.spec import RunSpec
from repro.sim.metrics import RunResult, simulate
from repro.workloads.suite import Workload, build_workload

#: Per-process workload memo: big index structures dominate build time,
#: and a report's specs revisit the same few (name, scale, seed) keys.
_WORKLOAD_MEMO: OrderedDict[tuple, Workload] = OrderedDict()
_MEMO_LIMIT = 16


def _memo_key(name: str, scale: float, seed: int,
              kwargs: tuple = ()) -> tuple:
    return (name, scale, seed, kwargs)


def seed_workload(workload: Workload) -> None:
    """Donate an already-built registry workload to the in-process memo.

    Keyed by the scale/seed stamped by ``build_workload`` — only donate
    workloads built through the registry with default builder kwargs.
    """
    _remember(_memo_key(workload.name, workload.scale, workload.seed), workload)


def clear_workload_memo() -> None:
    """Forget memoized workloads (tests use this to force fresh builds)."""
    _WORKLOAD_MEMO.clear()


def _remember(key: tuple, workload: Workload) -> None:
    _WORKLOAD_MEMO[key] = workload
    _WORKLOAD_MEMO.move_to_end(key)
    while len(_WORKLOAD_MEMO) > _MEMO_LIMIT:
        _WORKLOAD_MEMO.popitem(last=False)


def _get_workload(spec: RunSpec) -> Workload:
    key = _memo_key(spec.workload, spec.scale, spec.seed, spec.workload_kwargs)
    workload = _WORKLOAD_MEMO.get(key)
    if workload is None:
        workload = build_workload(
            spec.workload, scale=spec.scale, seed=spec.seed,
            **dict(spec.workload_kwargs),
        )
        _remember(key, workload)
    else:
        _WORKLOAD_MEMO.move_to_end(key)
    return workload


def _collect_extras(
    spec: RunSpec, workload: Workload, memsys: Any, result: RunResult
) -> dict[str, Any]:
    extras: dict[str, Any] = {}
    for key in spec.collect:
        if key == "occupancy_by_level":
            occupancy = memsys.policy.cache.occupancy_by_level()
            extras[key] = {str(level): n for level, n in occupancy.items()}
        elif key == "controller_history":
            extras[key] = list(memsys.policy.controller.history)
        elif key == "start_levels":
            extras[key] = list(result.start_levels)
        elif key == "index_heights":
            extras[key] = [index.height for index in workload.indexes]
        elif key == "attribution":
            from repro.obs.profile import build_profile

            assert result.tracer is not None, "attribution needs sim.trace"
            profile = build_profile(result.tracer, strict=False)
            extras[key] = {
                "totals": dict(profile.totals),
                "dropped": result.tracer.dropped,
            }
        else:
            raise ValueError(f"unknown collect key {key!r}")
    return extras


def _load_trace_requests(spec: RunSpec, workload: Workload) -> list:
    """Replay requests from the spec's walk trace (pipe run mode).

    The digest check runs before parsing: a cached result is keyed by
    the trace's content hash, so replaying a spec against a silently
    modified file must fail loudly, not return stale-keyed data.
    """
    from repro.exec.spec import trace_digest
    from repro.workloads.trace_io import load_trace

    actual = trace_digest(spec.trace_path)
    if actual != spec.trace_sha256:
        raise ValueError(
            f"trace {spec.trace_path} has sha256 {actual[:12]}..., spec "
            f"expects {spec.trace_sha256[:12]}... — file changed since "
            "the spec was built"
        )
    names = {f"index{i}": index for i, index in enumerate(workload.indexes)}
    return load_trace(spec.trace_path, names)


def _execute_run(spec: RunSpec) -> dict[str, Any]:
    workload = _get_workload(spec)
    config = workload.config
    sim = (config.scaled(spec.tiles) if spec.tiles else config).sim_params()
    if spec.sim_kwargs:
        sim = replace(sim, **dict(spec.sim_kwargs))
    if spec.faults:
        sim = replace(sim, faults=spec.fault_plan())
    cache_bytes = spec.cache_bytes or workload.default_cache_bytes
    if spec.cache_factor:
        cache_bytes *= spec.cache_factor

    requests = workload.requests
    if spec.trace_path is not None:
        requests = _load_trace_requests(spec, workload)
    if spec.requests_slice is not None:
        offset, step = spec.requests_slice
        requests = requests[offset::step]
    if spec.schedule is not None:
        from repro.sim.scheduler import schedule

        requests = schedule(requests, spec.schedule)

    overrides = dict(spec.memsys_kwargs)
    if spec.policy != "utility_rrip" or spec.tuner:
        if spec.system not in ("metal", "metal_ix"):
            raise ValueError(
                f"policy/tuner overrides only apply to METAL systems, "
                f"got system {spec.system!r}"
            )
        if spec.policy != "utility_rrip":
            overrides["policy"] = spec.policy
        if spec.tuner:
            if spec.system != "metal":
                raise ValueError("tuner needs the pattern controller (metal)")
            overrides["tuner"] = dict(spec.tuner)
    tune = overrides.pop("tune", True)
    batch_walks = overrides.pop("batch_walks", None)
    batch_windows = overrides.pop("batch_windows", None)
    if batch_windows:
        # bench.adaptivity's window sizing, from the effective request count.
        batch_walks = max(50, len(requests) // batch_windows)
    if spec.cache_kwargs:
        overrides["cache_params"] = replace(
            cache_params_for(spec.system, cache_bytes), **dict(spec.cache_kwargs)
        )
    if spec.system == "fa_opt" and requests is not workload.requests:
        # FA-OPT's two-pass construction must see the effective sequence.
        overrides["requests"] = [(r.index, r.key) for r in requests]

    memsys = build_memsys(
        spec.system, workload, cache_bytes, sim,
        tune=tune, batch_walks=batch_walks, **overrides,
    )
    result = simulate(
        memsys, requests, sim, workload.total_index_blocks,
        timed=spec.timed, record_latencies=spec.record_latencies,
    )
    return {
        "op": "run",
        "result": result.to_dict(),
        "extras": _collect_extras(spec, workload, memsys, result),
    }


def _execute_dynamic_mix(spec: RunSpec) -> dict[str, Any]:
    from repro.bench.dynamic import mix_cell

    kwargs = dict(spec.workload_kwargs)
    data = mix_cell(
        kind=spec.system,
        num_records=kwargs["num_records"],
        num_ops=kwargs["num_ops"],
        read_fraction=kwargs["read_fraction"],
        cache_bytes=spec.cache_bytes or 8 * 1024,
        seed=spec.seed,
    )
    return {"op": "dynamic_mix", "data": data, "extras": {}}


def _execute_serve(spec: Any) -> dict[str, Any]:
    # Lazy import: the serve layer (and its span/SLO observability
    # stack) loads only in workers that actually run serving cells.
    from repro.serve.engine import execute_serve

    return execute_serve(spec)


#: op -> executor. A third frozen canonically-hashed spec type plugs in
#: here; everything else (dedup, pool, store, JSON normalization) is
#: op-agnostic.
_DISPATCH = {
    "run": _execute_run,
    "dynamic_mix": _execute_dynamic_mix,
    "serve": _execute_serve,
}


def execute_spec(spec: RunSpec) -> dict[str, Any]:
    """Run one spec and return its JSON-normalized payload.

    Dispatches on ``spec.op`` via :data:`_DISPATCH`, so any frozen
    canonically-hashed spec type with the RunSpec duck interface
    (``digest``/``canonical_dict``/``label``/``op``) rides the same
    dedup/pool/store machinery — :class:`repro.serve.spec.ServeSpec`
    is the second such type.

    Seeds the module-level RNG from the spec digest first: any stray
    ``random`` use downstream is deterministic per spec, independent of
    which worker runs it or what ran before.
    """
    execute = _DISPATCH.get(spec.op)
    if execute is None:
        raise ValueError(f"unknown spec op {spec.op!r}")
    random.seed(int(spec.digest()[:16], 16))
    # The per-node block-footprint memo is unbounded; across a sweep of
    # many differently-sized workloads it would grow without limit (and
    # carry stale geometry between unrelated specs), so start each spec
    # with a cold memo.
    from repro.sim.memsys import _blocks_for

    _blocks_for.cache_clear()
    payload = execute(spec)
    # Normalize through JSON so live, pooled, and cached results are
    # byte-identical (tuples -> lists, int keys -> str keys, etc.).
    return json.loads(json.dumps(payload))
