"""Declarative run pipeline: spec one simulation, execute many, cache all.

* :class:`RunSpec` — frozen, canonically-hashable description of a cell.
* :class:`Executor` — batch submission with dedup, process-parallel
  fan-out (``jobs``), and structured failure capture.
* :class:`ResultStore` — content-addressed on-disk cache keyed by spec
  digest + code version.
"""

from repro.exec.executor import (
    ExecError,
    ExecStats,
    Executor,
    RunOutcome,
    default_executor,
    resolve_jobs,
)
from repro.exec.spec import RunSpec, code_version
from repro.exec.store import ResultStore, default_cache_dir

__all__ = [
    "ExecError",
    "ExecStats",
    "Executor",
    "ResultStore",
    "RunOutcome",
    "RunSpec",
    "code_version",
    "default_cache_dir",
    "default_executor",
    "resolve_jobs",
]
